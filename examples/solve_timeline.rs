//! Visualize a distributed solve: per-rank event timelines of the proposed
//! 3D SpTRSV rendered as an ASCII Gantt chart (`#` compute, `>` send,
//! `.` receive/wait). The L phase, the sparse-allreduce hourglass, and the
//! U phase are all visible, as is the idle-grid pattern when the same
//! solve runs with the baseline algorithm.
//!
//! Also exports each solve as a Chrome/Perfetto trace (open the JSON in
//! ui.perfetto.dev for the zoomable version of the same picture) and
//! prints the measured critical path.
//!
//! ```text
//! cargo run --release --example solve_timeline
//! ```

use simgrid::{export_perfetto, render_timeline};
use sptrsv::{solve_traced, Plan};
use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let a = gen::poisson2d_9pt(24, 24);
    let (px, py, pz) = (2, 2, 4);
    let fact = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), 1);

    for (label, slug, algorithm) in [
        ("proposed 3D [SC'23]", "new3d", Algorithm::New3d),
        ("baseline 3D [ICS'19]", "baseline3d", Algorithm::Baseline3d),
    ] {
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs: 1,
            algorithm,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let plan = Arc::new(Plan::new(Arc::clone(&fact), px, py, pz));
        let out = solve_traced(&plan, &b, &cfg, true);
        assert!(sparse::rel_residual_inf(&a, &out.x, &b, 1) < 1e-10);
        println!(
            "\n=== {label}: {} ranks, simulated {:.1} µs ===",
            px * py * pz,
            out.makespan * 1e6
        );
        println!("    (#' compute, '>' send, '.' recv/wait; one row per rank)");
        print!("{}", render_timeline(&out.traces, out.makespan, 100));
        print!("{}", out.critical_path().report(3));
        let path = std::env::temp_dir().join(format!("sptrsv_trace_{slug}.json"));
        std::fs::write(&path, export_perfetto(&out.traces, px * py)).expect("write trace");
        println!(
            "    Perfetto trace: {} (open in ui.perfetto.dev)",
            path.display()
        );
    }
    println!("\nNote the baseline's trailing idle rows (grids that finished their");
    println!("subtree and wait) versus the proposed algorithm's uniform activity.");
}
