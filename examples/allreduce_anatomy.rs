//! Anatomy of the inter-grid communication: sparse allreduce vs the naive
//! per-node allreduce, and tree vs flat intra-grid communication.
//!
//! Runs the proposed 3D solver in its three ablated variants on the same
//! KKT optimization matrix (nlpkkt analog) and prints the message counts
//! and byte volumes per category — making the paper's §3.2/§3.3 arguments
//! concrete.
//!
//! ```text
//! cargo run --release --example allreduce_anatomy
//! ```

use simgrid::Category;
use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let a = gen::kkt3d(8, 8, 8);
    println!("KKT matrix: n = {}, nnz = {}", a.nrows(), a.nnz());
    let fact = Arc::new(factorize(&a, 8, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), 1);

    println!(
        "\n{:<34} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "variant", "time (µs)", "XY msgs", "XY MiB", "Z msgs", "Z MiB"
    );
    for (label, algorithm) in [
        ("proposed (trees + sparse ARed)", Algorithm::New3d),
        ("ablation: flat intra-grid comm", Algorithm::New3dFlat),
        (
            "ablation: naive per-node ARed",
            Algorithm::New3dNaiveAllreduce,
        ),
        ("baseline 3D [ICS'19]", Algorithm::Baseline3d),
    ] {
        let cfg = SolverConfig {
            px: 2,
            py: 4,
            pz: 8,
            nrhs: 1,
            algorithm,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&fact, &b, &cfg);
        let res = sparse::rel_residual_inf(&a, &out.x, &b, 1);
        assert!(res < 1e-9, "residual {res}");
        let (xym, xyb, zm, zb) = out.stats.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, s| {
            (
                acc.0 + s.msgs_sent[Category::XyComm as usize],
                acc.1 + s.bytes_sent[Category::XyComm as usize],
                acc.2 + s.msgs_sent[Category::ZComm as usize],
                acc.3 + s.bytes_sent[Category::ZComm as usize],
            )
        });
        println!(
            "{:<34} {:>11.1} {:>10} {:>10.3} {:>10} {:>10.3}",
            label,
            out.makespan * 1e6,
            xym,
            xyb as f64 / (1 << 20) as f64,
            zm,
            zb as f64 / (1 << 20) as f64
        );
    }
    println!("\n(read the Z columns: the sparse allreduce moves the fewest inter-grid");
    println!(" messages and bytes; the baseline's pairwise lsum reduction moves ~2x the");
    println!(" bytes, and the naive per-node allreduce ~2.4x the messages)");
}
