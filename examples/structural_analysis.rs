//! Domain scenario: a structural-mechanics solve campaign (ldoor-style).
//!
//! A 3D elasticity stiffness matrix is factorized once and then solved
//! against many right-hand sides — the many-load-case / preconditioner
//! regime the paper's introduction motivates, where SpTRSV (not the
//! factorization) dominates end-to-end time. Compares the 2D solver
//! (`Pz = 1`), the baseline 3D solver, and the proposed 3D solver on the
//! same 64 simulated Cori Haswell cores, with 1 and 50 RHS as in the
//! paper's GPU studies.
//!
//! ```text
//! cargo run --release --example structural_analysis
//! ```

use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let a = gen::elasticity3d(8, 8, 8, 7);
    println!(
        "elasticity stiffness matrix: n = {}, nnz = {} ({} dofs/vertex)",
        a.nrows(),
        a.nnz(),
        3
    );
    let fact = Arc::new(factorize(&a, 4, &SymbolicOptions::default()).expect("factorization"));
    println!(
        "factorized once: nnz(LU) = {}, density {:.3}%",
        fact.lu.sym().nnz_lu(),
        100.0 * fact.lu.sym().nnz_lu() as f64 / (a.nrows() as f64 * a.nrows() as f64)
    );

    let p = 64;
    for nrhs in [1usize, 50] {
        println!("\n--- {nrhs} load case(s), {p} ranks ---");
        let b = gen::standard_rhs(a.nrows(), nrhs);
        for (label, pz, algorithm) in [
            ("2D comm-optimized [CSC'18]", 1usize, Algorithm::New3d),
            ("baseline 3D       [ICS'19]", 4, Algorithm::Baseline3d),
            ("proposed 3D       [SC'23] ", 4, Algorithm::New3d),
        ] {
            let p2 = p / pz;
            let px = (p2 as f64).sqrt() as usize;
            let py = p2 / px;
            let cfg = SolverConfig {
                px,
                py,
                pz,
                nrhs,
                algorithm,
                arch: Arch::Cpu,
                machine: MachineModel::cori_haswell(),
                chaos_seed: 0,
                fault: Default::default(),
                backend: Default::default(),
                executor: Default::default(),
            };
            let out = solve_distributed(&fact, &b, &cfg);
            let res = sparse::rel_residual_inf(&a, &out.x, &b, nrhs);
            assert!(res < 1e-9, "residual {res}");
            println!(
                "{label}  ({px}x{py}x{pz}): {:9.3} µs simulated, residual {:.1e}",
                out.makespan * 1e6,
                res
            );
        }
    }
}
