//! Quickstart: factor a sparse matrix and run the proposed 3D SpTRSV on a
//! simulated CPU cluster, comparing it against the baseline 3D algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn main() {
    // A 2D Poisson problem — the analog of the paper's s2D9pt2048 matrix.
    let a = gen::poisson2d_9pt(64, 64);
    println!("matrix: n = {}, nnz = {}", a.nrows(), a.nnz());

    // Nested dissection + symbolic analysis + supernodal numeric LU.
    // `pz = 4` forces the top two separator levels to be binary so the
    // matrix can be laid out on up to four 2D grids.
    let fact = Arc::new(factorize(&a, 4, &SymbolicOptions::default()).expect("factorization"));
    println!(
        "LU factors: {} supernodes, nnz(LU) = {}",
        fact.lu.sym().n_supernodes(),
        fact.lu.sym().nnz_lu()
    );

    let b = gen::standard_rhs(a.nrows(), 1);

    for (label, algorithm) in [
        ("baseline 3D [ICS'19]", Algorithm::Baseline3d),
        ("proposed 3D [SC'23] ", Algorithm::New3d),
    ] {
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 4,
            nrhs: 1,
            algorithm,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&fact, &b, &cfg);
        let res = sparse::rel_residual_inf(&a, &out.x, &b, 1);
        println!(
            "{label}: simulated time {:9.3} µs on {} ranks, residual {:.2e}",
            out.makespan * 1e6,
            cfg.px * cfg.py * cfg.pz,
            res
        );
        assert!(res < 1e-10, "solution must satisfy Ax = b");
    }
}
