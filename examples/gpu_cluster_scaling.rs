//! Domain scenario: scaling the fusion-simulation solve on a GPU cluster.
//!
//! Mirrors the paper's §4.2 campaign at example scale: the fusion matrix
//! (s1_mat analog) is solved on simulated Perlmutter GPU nodes with
//! `1 × 1 × Pz` layouts, comparing CPU ranks against one-GPU-per-rank
//! execution as `Pz` grows — the experiment behind the paper's headline
//! "the proposed GPU 3D SpTRSV scales to 256 GPUs while 2D GPU SpTRSV
//! stops at 4".
//!
//! ```text
//! cargo run --release --example gpu_cluster_scaling
//! ```

use sptrsv_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let a = gen::fusion_band(4_000, 8, 400, 13);
    println!("fusion matrix: n = {}, nnz = {}", a.nrows(), a.nnz());
    let max_pz = 16;
    let fact = Arc::new(factorize(&a, max_pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), 1);

    println!(
        "\n{:>6} {:>14} {:>14} {:>10}",
        "Pz", "CPU time (µs)", "GPU time (µs)", "GPU/CPU"
    );
    let mut pz = 1;
    while pz <= max_pz {
        let mut times = [0.0f64; 2];
        for (slot, arch) in [(0, Arch::Cpu), (1, Arch::Gpu)] {
            let cfg = SolverConfig {
                px: 1,
                py: 1,
                pz,
                nrhs: 1,
                algorithm: Algorithm::New3d,
                arch,
                machine: MachineModel::perlmutter_gpu(),
                chaos_seed: 0,
                fault: Default::default(),
                backend: Default::default(),
                executor: Default::default(),
            };
            let out = solve_distributed(&fact, &b, &cfg);
            let res = sparse::rel_residual_inf(&a, &out.x, &b, 1);
            assert!(res < 1e-9, "residual {res}");
            times[slot] = out.makespan;
        }
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>9.2}x",
            pz,
            times[0] * 1e6,
            times[1] * 1e6,
            times[0] / times[1]
        );
        pz *= 2;
    }
    println!("\n(speedups > 1x mean the GPU path wins; the paper reports up to 6.5x)");
}
