//! Real process-per-rank transport backend (backend #3).
//!
//! Where `comm_native` runs every rank as a thread in one address space —
//! so a "send" is an `Arc` refcount bump — this crate runs each rank as a
//! separate **OS process** talking over Unix-domain sockets. Nothing is
//! shared: every message crosses the process boundary as a
//! [`simgrid::wire`] frame, which is exactly the regime of a real MPI
//! job on one node. The point is conformance pressure: the solver, the
//! collectives, and the tag protocol must survive genuine serialization,
//! process scheduling, and kernel socket buffering while still producing
//! solutions bit-identical to the simulator.
//!
//! ## Topology and bootstrap
//!
//! The parent binds one listening socket per rank inside a fresh
//! rendezvous directory, writes a plain-text `manifest.txt` (rank count,
//! then one socket path per line), and only then forks the rank
//! processes; since every listener exists before any child runs, a
//! child's lazy `connect` to a peer can never race the peer's bind.
//! Children read the manifest for peer addresses, accept inbound
//! connections on their own listener, and push decoded frames into a
//! single inbox queue. One socket per ordered (sender, receiver) pair +
//! in-order frame decoding preserves the per-source FIFO the
//! [`Transport`] contract requires.
//!
//! Results travel back out of band: each child gets a pre-forked
//! socketpair and writes one length-prefixed blob — its [`RankStats`],
//! merged [`Metrics`], flight-recorder spans, and the rank program's
//! [`WirePack`]-encoded return value — then `_exit`s without touching
//! inherited stdio buffers. A child that panics (including the stall
//! watchdog) exits with status 101, which the parent surfaces as a panic
//! naming the rank; the parent polls `waitpid` while reading results so a
//! dead child is reported within ~50 ms instead of hanging the run.
//!
//! ## Clock and attribution
//!
//! The parent captures the monotonic epoch *before* forking, so every
//! child inherits the same `Instant` and `now()` is comparable across
//! ranks (`CLOCK_MONOTONIC` is per-boot, not per-process). Time
//! attribution is measured-elapsed-since-last-stamp, identical to
//! `comm_native`. Communicator ids come from a single shared-memory
//! counter page mapped before the forks, so `split` allocates ids with
//! the same fetch-add discipline as the threaded backend.

use parking_lot::{Condvar, Mutex};
use simgrid::wire::{self, FrameHeader, WireError, WirePack, WireReader};
use simgrid::{
    Category, EventKind, FaultMark, FlightRecorder, MachineModel, Metrics, MsgInfo, Payload,
    RankStats, RecvMsg, RunReport, TraceEvent, Transport,
};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives (same
/// convention as the simulator and the threaded backend).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// Child exit status for a rank whose program (or stall watchdog)
/// panicked.
const EXIT_PANIC: i32 = 101;

/// Child exit status for a rank that finished but could not deliver its
/// result blob to the parent.
const EXIT_RESULT_LOST: i32 = 102;

/// Minimal libc surface for process management; the workspace vendors no
/// `libc` crate, so the handful of calls are declared directly.
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        fn fork() -> c_int;
        fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
        fn kill(pid: c_int, sig: c_int) -> c_int;
        fn _exit(code: c_int) -> !;
        fn getpid() -> c_int;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const WNOHANG: c_int = 1;
    const SIGKILL: c_int = 9;
    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 0x01;
    const MAP_ANONYMOUS: c_int = 0x20;
    const PAGE: usize = 4096;

    /// `fork(2)`: 0 in the child, the child's pid in the parent, negative
    /// on failure.
    pub fn fork_process() -> i32 {
        unsafe { fork() }
    }

    /// Non-blocking reap: the raw wait status if `pid` has exited.
    pub fn wait_nohang(pid: i32) -> Option<i32> {
        let mut status: c_int = 0;
        match unsafe { waitpid(pid, &mut status, WNOHANG) } {
            r if r == pid => Some(status),
            _ => None,
        }
    }

    /// Blocking reap of `pid`; returns the raw wait status.
    pub fn wait_blocking(pid: i32) -> i32 {
        let mut status: c_int = 0;
        unsafe { waitpid(pid, &mut status, 0) };
        status
    }

    /// Decode a raw wait status into an exit-code-like value: the exit
    /// code for a clean exit, `128 + signal` for a signal death.
    pub fn exit_code(raw: i32) -> i32 {
        if raw & 0x7f == 0 {
            (raw >> 8) & 0xff
        } else {
            128 + (raw & 0x7f)
        }
    }

    /// SIGKILL `pid` (best effort).
    pub fn kill_hard(pid: i32) {
        unsafe { kill(pid, SIGKILL) };
    }

    /// Terminate immediately without running destructors or flushing
    /// inherited stdio buffers — mandatory in a forked child.
    pub fn exit_now(code: i32) -> ! {
        unsafe { _exit(code) }
    }

    /// This process's pid.
    pub fn pid() -> i32 {
        unsafe { getpid() }
    }

    /// Map one anonymous page shared across future forks.
    pub fn map_shared_page() -> *mut u8 {
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                PAGE,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(
            !std::ptr::eq(p, usize::MAX as *mut c_void) && !p.is_null(),
            "comm-proc: mmap of the shared counter page failed"
        );
        p as *mut u8
    }

    /// Unmap a page from [`map_shared_page`].
    pub fn unmap_page(p: *mut u8) {
        unsafe { munmap(p as *mut c_void, PAGE) };
    }
}

/// Non-owning handle to the fork-shared communicator-id counter.
#[derive(Clone, Copy)]
struct CounterHandle {
    ptr: *const AtomicU64,
}

impl CounterHandle {
    fn fetch_add(&self, n: u64) -> u64 {
        unsafe { (*self.ptr).fetch_add(n, Ordering::Relaxed) }
    }
}

/// Owning side of the shared counter page (parent unmaps at run end).
struct SharedCounter {
    ptr: *mut AtomicU64,
}

impl SharedCounter {
    fn new(init: u64) -> Self {
        let ptr = sys::map_shared_page() as *mut AtomicU64;
        unsafe { ptr.write(AtomicU64::new(init)) };
        SharedCounter { ptr }
    }

    fn handle(&self) -> CounterHandle {
        CounterHandle { ptr: self.ptr }
    }
}

impl Drop for SharedCounter {
    fn drop(&mut self) {
        sys::unmap_page(self.ptr as *mut u8);
    }
}

/// A decoded inbound message queued for matching.
struct InMsg {
    comm_id: u64,
    src: u32,
    tag: u64,
    /// Real receive-side arrival time (seconds since cluster epoch),
    /// stamped by the reader thread when the frame is decoded.
    arrival: f64,
    payload: Payload,
    seq: u64,
}

/// The rank's single inbox: reader threads push decoded frames, the rank
/// program scans and waits.
struct Inbox {
    queue: Mutex<VecDeque<InMsg>>,
    cv: Condvar,
}

/// Per-process rank context; owned by the rank's main thread, shared by
/// all of that rank's communicator handles.
struct ChildCtx {
    world_rank: usize,
    epoch: Instant,
    model: MachineModel,
    inbox: Arc<Inbox>,
    /// Socket path per world rank, from the manifest.
    peers: Vec<PathBuf>,
    /// Lazily opened outbound connections, indexed by world rank. One
    /// stream per destination keeps the per-source FIFO.
    conns: RefCell<Vec<Option<UnixStream>>>,
    /// Reused frame-encoding buffer: steady-state sends allocate nothing
    /// beyond payload growth.
    scratch: RefCell<Vec<u8>>,
    stats: RefCell<RankStats>,
    /// Elapsed seconds at the last time attribution (see `charge`).
    last_stamp: Cell<f64>,
    /// Per-communicator collective sequence numbers (same tag-isolation
    /// scheme as the simulator).
    coll_seq: RefCell<HashMap<u64, u64>>,
    metrics: RefCell<Metrics>,
    /// Messages sent so far; seq ids are `(world_rank + 1) << 32 | n`,
    /// matching the simulator's deterministic allocation scheme.
    sent_seq: Cell<u64>,
    flight: RefCell<FlightRecorder>,
    /// Fork-shared id counter backing `split`.
    next_comm_id: CounterHandle,
    stall_timeout: Option<Duration>,
    flight_dump_path: Option<PathBuf>,
}

impl ChildCtx {
    #[inline]
    fn elapsed(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Handle to a communicator from one rank process. Clonable within the
/// owning rank; never crosses a process boundary.
pub struct ProcComm {
    ctx: Rc<ChildCtx>,
    id: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<Vec<u32>>,
    my_idx: usize,
}

impl Clone for ProcComm {
    fn clone(&self) -> Self {
        ProcComm {
            ctx: Rc::clone(&self.ctx),
            id: self.id,
            members: Arc::clone(&self.members),
            my_idx: self.my_idx,
        }
    }
}

impl ProcComm {
    /// Attribute the real time elapsed since this rank's previous
    /// attribution point to `cat` (identical to `comm_native`).
    fn charge(&self, cat: Category) -> f64 {
        let now = self.ctx.elapsed();
        let dt = now - self.ctx.last_stamp.get();
        self.ctx.last_stamp.set(now);
        self.ctx.stats.borrow_mut().time[cat as usize] += dt;
        dt
    }

    /// Encode `payload` as one wire frame and write it to `dst`'s socket,
    /// connecting lazily on first use. `counted` selects whether the send
    /// appears in traffic statistics; the *accounted* byte count uses the
    /// same `8·len + 64` envelope constant as the other backends so
    /// cross-backend message statistics stay comparable (the physical
    /// frame is `56 + 8·len` bytes).
    fn send_to(&self, dst: usize, tag: u64, payload: &[f64], cat: Category, counted: bool) {
        let dst_world = self.members[dst] as usize;
        let bytes = 8 * payload.len() + 64;
        if counted {
            let mut st = self.ctx.stats.borrow_mut();
            st.bytes_sent[cat as usize] += bytes as u64;
            st.msgs_sent[cat as usize] += 1;
        }
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.sent", 1);
            m.observe("msgs.bytes", simgrid::BYTE_BUCKETS, bytes as f64);
        }
        let seq = {
            let n = self.ctx.sent_seq.get() + 1;
            self.ctx.sent_seq.set(n);
            ((self.ctx.world_rank as u64 + 1) << 32) | n
        };
        let header = FrameHeader {
            comm_id: self.id,
            src: self.my_idx as u32,
            bitmap_words: 0,
            tag,
            seq,
        };
        {
            let mut conns = self.ctx.conns.borrow_mut();
            let conn = conns[dst_world].get_or_insert_with(|| {
                UnixStream::connect(&self.ctx.peers[dst_world]).unwrap_or_else(|e| {
                    panic!(
                        "comm-proc: rank {} cannot connect to world rank {dst_world}: {e}",
                        self.ctx.world_rank
                    )
                })
            });
            let mut scratch = self.ctx.scratch.borrow_mut();
            scratch.clear();
            wire::encode_frame(&mut scratch, &header, payload);
            conn.write_all(&scratch).unwrap_or_else(|e| {
                panic!(
                    "comm-proc: rank {} failed sending to world rank {dst_world}: {e}",
                    self.ctx.world_rank
                )
            });
        }
        let sent_at = self.ctx.elapsed();
        self.ctx.flight.borrow_mut().record(TraceEvent {
            t0: sent_at,
            t1: sent_at,
            kind: EventKind::Send,
            category: cat,
            msg: Some(MsgInfo {
                peer: dst_world,
                bytes,
                tag,
                seq,
                arrival: sent_at,
                faults: FaultMark::default(),
            }),
            detail: None,
        });
    }

    /// Blocking receive of the first queued message (in real arrival
    /// order) matching `matches` on this communicator. Does not touch the
    /// statistics.
    fn recv_matching(&self, matches: impl Fn(usize, u64) -> bool) -> RecvMsg {
        let inbox = &self.ctx.inbox;
        let mut q = inbox.queue.lock();
        let started = self.ctx.stall_timeout.map(|limit| (Instant::now(), limit));
        loop {
            let pick = q
                .iter()
                .position(|m| m.comm_id == self.id && matches(m.src as usize, m.tag));
            if let Some(idx) = pick {
                let m = q.remove(idx).expect("picked index in bounds");
                return RecvMsg {
                    src: m.src as usize,
                    tag: m.tag,
                    arrival: m.arrival,
                    payload: m.payload,
                    seq: m.seq,
                    dup: false,
                    jittered: false,
                };
            }
            match started {
                None => inbox.cv.wait(&mut q),
                Some((t0, limit)) => {
                    let waited = t0.elapsed();
                    if waited >= limit {
                        let report = self.stall_report(&q, waited);
                        drop(q);
                        self.dump_flight_on_stall();
                        panic!("{report}");
                    }
                    // Wake periodically so a stalled rank times out even
                    // when nothing ever notifies.
                    let chunk = (limit - waited).min(Duration::from_millis(100));
                    inbox.cv.wait_for(&mut q, chunk);
                }
            }
        }
    }

    /// Count a delivery and attribute the receive (including the blocked
    /// wait) to `cat`.
    fn charge_recv(&self, msg: &RecvMsg, cat: Category) {
        let dt = self.charge(cat);
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.received", 1);
            m.observe("recv.wait_seconds", simgrid::WAIT_BUCKETS, dt.max(0.0));
        }
        let t1 = self.ctx.last_stamp.get();
        self.ctx.flight.borrow_mut().record(TraceEvent {
            t0: t1 - dt.max(0.0),
            t1,
            kind: EventKind::Recv,
            category: cat,
            msg: Some(MsgInfo {
                peer: self.members[msg.src] as usize,
                bytes: 8 * msg.payload.len() + 64,
                tag: msg.tag,
                seq: msg.seq,
                arrival: msg.arrival,
                faults: FaultMark::default(),
            }),
            detail: None,
        });
    }

    /// Watchdog diagnostic for a stalled receive, mirroring the other
    /// backends' report shape.
    fn stall_report(&self, q: &VecDeque<InMsg>, waited: Duration) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "comm-proc watchdog: world rank {} (comm {} rank {}/{}) stalled in recv for {:.2?}",
            self.ctx.world_rank,
            self.id,
            self.my_idx,
            self.members.len(),
            waited,
        );
        let _ = writeln!(s, "  wall clock: {:.6e} s", self.ctx.elapsed());
        let _ = writeln!(s, "  queued-but-unmatched messages: {}", q.len());
        const CAP: usize = 32;
        for m in q.iter().take(CAP) {
            let _ = writeln!(
                s,
                "    comm {:>3} src {:>4} tag {:#018x} arrival {:>12.6e} len {}",
                m.comm_id,
                m.src,
                m.tag,
                m.arrival,
                m.payload.len(),
            );
        }
        if q.len() > CAP {
            let _ = writeln!(s, "    ... {} more", q.len() - CAP);
        }
        s
    }

    /// Dump this rank's flight ring on a stall. A process can only see
    /// its own ring, so each rank writes `<stem>.rank<r>.<ext>`; the
    /// timeline is padded with empty ranks so the span `tid` still equals
    /// the world rank.
    fn dump_flight_on_stall(&self) {
        let Some(path) = &self.ctx.flight_dump_path else {
            return;
        };
        let path = rank_dump_path(path, self.ctx.world_rank);
        let mut timelines: Vec<Vec<TraceEvent>> = vec![Vec::new(); self.ctx.world_rank];
        timelines.push(self.ctx.flight.borrow().drain());
        let json = simgrid::export_perfetto(&timelines, 0);
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!(
                "comm-proc watchdog: rank {} flight recorder dumped to {}",
                self.ctx.world_rank,
                path.display()
            ),
            Err(e) => eprintln!(
                "comm-proc watchdog: failed to write flight dump {}: {e}",
                path.display()
            ),
        }
    }

    /// Base tag for the next collective on this communicator (same
    /// sequencing scheme as the other backends).
    fn coll_tag(&self) -> u64 {
        let mut seqs = self.ctx.coll_seq.borrow_mut();
        let seq = seqs.entry(self.id).or_insert(0);
        *seq += 1;
        COLLECTIVE_TAG_BASE + *seq * 4
    }

    fn build_split_comm(&self, flat: &[f64], my_color: usize) -> ProcComm {
        let base = flat[0] as u64;
        let mut group: Vec<(usize, usize)> = Vec::new(); // (key, comm_rank_in_parent)
        let mut colors_seen: Vec<usize> = Vec::new();
        for chunk in flat[1..].chunks(3) {
            let (c, k, r) = (chunk[0] as usize, chunk[1] as usize, chunk[2] as usize);
            if !colors_seen.contains(&c) {
                colors_seen.push(c);
            }
            if c == my_color {
                group.push((k, r));
            }
        }
        colors_seen.sort_unstable();
        let color_idx = colors_seen
            .iter()
            .position(|&c| c == my_color)
            .expect("own color present");
        group.sort_unstable();
        let members: Vec<u32> = group.iter().map(|&(_, pr)| self.members[pr]).collect();
        let my_world = self.ctx.world_rank as u32;
        let my_idx = members
            .iter()
            .position(|&w| w == my_world)
            .expect("self in group");
        ProcComm {
            ctx: Rc::clone(&self.ctx),
            id: base + color_idx as u64,
            members: Arc::new(members),
            my_idx,
        }
    }
}

impl Transport for ProcComm {
    fn rank(&self) -> usize {
        self.my_idx
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn world_rank(&self, r: usize) -> usize {
        self.members[r] as usize
    }

    fn model(&self) -> &MachineModel {
        &self.ctx.model
    }

    /// `MPI_Comm_split` over real sockets: gather every member's
    /// `(color, key)` at rank 0, allocate a fresh id block from the
    /// fork-shared counter, broadcast the decisions. Same protocol as the
    /// other backends.
    fn split(&self, color: usize, key: usize) -> Self {
        let me = self.my_idx;
        let size = self.members.len();
        let tag = COLLECTIVE_TAG_BASE + 1;
        if me == 0 {
            let mut triples: Vec<(usize, usize, usize)> = vec![(color, key, 0)];
            for _ in 1..size {
                let m = self.recv_matching(|_, t| t == tag);
                triples.push((m.payload[0] as usize, m.payload[1] as usize, m.src));
            }
            let base = self.ctx.next_comm_id.fetch_add(size as u64);
            let mut flat = Vec::with_capacity(3 * size + 1);
            flat.push(base as f64);
            for &(c, k, r) in &triples {
                flat.push(c as f64);
                flat.push(k as f64);
                flat.push(r as f64);
            }
            for dst in 1..size {
                self.send_to(dst, tag + 1, &flat, Category::Setup, false);
            }
            self.build_split_comm(&flat, color)
        } else {
            self.send_to(0, tag, &[color as f64, key as f64], Category::Setup, false);
            let m = self.recv_matching(|s, t| s == 0 && t == tag + 1);
            self.build_split_comm(&m.payload, color)
        }
    }

    fn now(&self) -> f64 {
        self.ctx.elapsed()
    }

    /// The real clock advances by itself.
    fn advance_to(&self, _t: f64) {}

    /// The modeled duration is ignored: the kernel already ran in this
    /// process, so the *measured* time since the last attribution point
    /// is what gets charged (same substitution as `comm_native`).
    fn compute(&self, _seconds: f64, cat: Category) {
        let dt = self.charge(cat);
        let t1 = self.ctx.last_stamp.get();
        self.ctx
            .flight
            .borrow_mut()
            .record(TraceEvent::compute(t1 - dt, t1, cat));
    }

    fn account(&self, _seconds: f64, cat: Category) {
        let dt = self.charge(cat);
        let t1 = self.ctx.last_stamp.get();
        self.ctx
            .flight
            .borrow_mut()
            .record(TraceEvent::compute(t1 - dt, t1, cat));
    }

    fn time_snapshot(&self) -> [f64; simgrid::N_CATEGORIES] {
        self.ctx.stats.borrow().time
    }

    fn send_shared(&self, dst: usize, tag: u64, payload: &Payload, cat: Category) {
        self.charge(cat);
        self.send_to(dst, tag, payload, cat, true);
    }

    /// The modeled departure and wire times belong to the simulator's
    /// clock domain; here the put is an immediate framed write. Not
    /// subject to any ordering rule (NVSHMEM-style), which the per-pair
    /// socket FIFO already satisfies.
    fn send_timed_shared(
        &self,
        _depart: f64,
        _wire: f64,
        dst: usize,
        tag: u64,
        payload: &Payload,
        cat: Category,
    ) {
        self.send_to(dst, tag, payload, cat, true);
    }

    fn recv(&self, src: Option<usize>, tag: Option<u64>, cat: Category) -> RecvMsg {
        let msg = self.recv_matching(|s, t| {
            src.is_none_or(|want| s == want) && tag.is_none_or(|want| t == want)
        });
        self.charge_recv(&msg, cat);
        msg
    }

    fn recv_tag_masked(&self, mask: u64, value: u64, cat: Category) -> RecvMsg {
        let msg = self.recv_matching(|_, t| t & mask == value);
        self.charge_recv(&msg, cat);
        msg
    }

    fn recv_raw_tag_masked(&self, mask: u64, value: u64) -> RecvMsg {
        self.recv_matching(|_, t| t & mask == value)
    }

    fn barrier(&self, cat: Category) {
        let mut token = [0.0f64];
        let tag = self.coll_tag();
        simgrid::collectives::reduce_bcast(self, tag, &mut token, cat);
    }

    fn allreduce_sum(&self, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        simgrid::collectives::reduce_bcast(self, tag, data, cat);
    }

    fn bcast(&self, root: usize, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        simgrid::collectives::bcast_from(self, root, tag, data, cat);
    }

    fn metric_inc(&self, name: &str, by: u64) {
        self.ctx.metrics.borrow_mut().inc(name, by);
    }

    fn metric_observe(&self, name: &str, bounds: &[f64], v: f64) {
        self.ctx.metrics.borrow_mut().observe(name, bounds, v);
    }
}

/// Options for a process-per-rank cluster run.
#[derive(Clone, Debug)]
pub struct ProcOptions {
    /// Real-time cap on a blocking receive before the rank's watchdog
    /// panics (exiting the process with status 101) instead of hanging.
    /// `None` disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// Capacity of each rank's always-on flight recorder. 0 disables it.
    pub flight_capacity: usize,
    /// When set, a stalling rank dumps its flight ring to this path with
    /// `.rank<r>` inserted before the extension.
    pub flight_dump_path: Option<PathBuf>,
    /// Directory to create the per-run rendezvous directory in. Defaults
    /// to `$SPTRSV_PROC_DIR`, then the system temp dir.
    pub rendezvous_root: Option<PathBuf>,
}

impl Default for ProcOptions {
    fn default() -> Self {
        ProcOptions {
            stall_timeout: Some(Duration::from_secs(30)),
            flight_capacity: 512,
            flight_dump_path: None,
            rendezvous_root: None,
        }
    }
}

/// `<dir>/<stem>.rank<r>.<ext>` (or appended when the path has no
/// extension): one flight-dump file per rank process.
fn rank_dump_path(path: &Path, rank: usize) -> PathBuf {
    match (path.file_stem(), path.extension()) {
        (Some(stem), Some(ext)) => path.with_file_name(format!(
            "{}.rank{rank}.{}",
            stem.to_string_lossy(),
            ext.to_string_lossy()
        )),
        _ => {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            path.with_file_name(format!("{name}.rank{rank}"))
        }
    }
}

/// Distinguishes concurrent runs from one parent process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn rendezvous_dir(opts: &ProcOptions) -> PathBuf {
    let root = opts
        .rendezvous_root
        .clone()
        .or_else(|| std::env::var_os("SPTRSV_PROC_DIR").map(PathBuf::from))
        .unwrap_or_else(std::env::temp_dir);
    root.join(format!(
        "sptrsv-proc-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn read_manifest(dir: &Path) -> (usize, Vec<PathBuf>) {
    let text =
        std::fs::read_to_string(dir.join("manifest.txt")).expect("comm-proc: manifest readable");
    let mut lines = text.lines();
    let nranks: usize = lines
        .next()
        .and_then(|l| l.trim().parse().ok())
        .expect("comm-proc: manifest starts with the rank count");
    let peers: Vec<PathBuf> = lines.take(nranks).map(PathBuf::from).collect();
    assert_eq!(
        peers.len(),
        nranks,
        "comm-proc: manifest lists one socket per rank"
    );
    (nranks, peers)
}

/// Accept inbound connections on this rank's listener forever; one reader
/// thread per connection decodes frames into the inbox. The threads die
/// with the process (`_exit`), so nothing joins them.
fn spawn_acceptor(listener: UnixListener, inbox: Arc<Inbox>, epoch: Instant) {
    std::thread::Builder::new()
        .name("proc-acceptor".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                let inbox = Arc::clone(&inbox);
                let _ = std::thread::Builder::new()
                    .name("proc-reader".into())
                    .spawn(move || reader_loop(conn, inbox, epoch));
            }
        })
        .expect("comm-proc: spawn acceptor thread");
}

fn reader_loop(mut conn: UnixStream, inbox: Arc<Inbox>, epoch: Instant) {
    let mut scratch = Vec::with_capacity(4096);
    loop {
        match wire::read_frame(&mut conn, &mut scratch) {
            Ok((h, payload)) => {
                let msg = InMsg {
                    comm_id: h.comm_id,
                    src: h.src,
                    tag: h.tag,
                    arrival: epoch.elapsed().as_secs_f64(),
                    payload,
                    seq: h.seq,
                };
                inbox.queue.lock().push_back(msg);
                inbox.cv.notify_all();
            }
            // Peer hung up on a frame boundary: normal shutdown.
            Err(WireError::Closed) => break,
            Err(e) => {
                eprintln!("comm-proc: dropping connection after wire error: {e}");
                break;
            }
        }
    }
}

/// Rank-process body: run the rank program, pack the result blob, write
/// it to the parent, and `_exit`. Never returns.
#[allow(clippy::too_many_arguments)]
fn run_child<F, R>(
    rank: usize,
    dir: &Path,
    listener: &UnixListener,
    epoch: Instant,
    model: &MachineModel,
    next_comm_id: CounterHandle,
    mut result: UnixStream,
    opts: &ProcOptions,
    f: &F,
) -> !
where
    F: Fn(ProcComm) -> R,
    R: WirePack,
{
    let blob = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let (nranks, peers) = read_manifest(dir);
        assert!(rank < nranks, "comm-proc: rank within manifest bounds");
        let inbox = Arc::new(Inbox {
            queue: Mutex::new(VecDeque::with_capacity(1024)),
            cv: Condvar::new(),
        });
        spawn_acceptor(
            listener.try_clone().expect("comm-proc: clone own listener"),
            Arc::clone(&inbox),
            epoch,
        );
        let ctx = Rc::new(ChildCtx {
            world_rank: rank,
            epoch,
            model: model.clone(),
            inbox,
            peers,
            conns: RefCell::new((0..nranks).map(|_| None).collect()),
            scratch: RefCell::new(Vec::with_capacity(4096)),
            stats: RefCell::new(RankStats::new(rank)),
            last_stamp: Cell::new(epoch.elapsed().as_secs_f64()),
            coll_seq: RefCell::new(HashMap::new()),
            metrics: RefCell::new(Metrics::new()),
            sent_seq: Cell::new(0),
            flight: RefCell::new(FlightRecorder::new(opts.flight_capacity)),
            next_comm_id,
            stall_timeout: opts.stall_timeout,
            flight_dump_path: opts.flight_dump_path.clone(),
        });
        let world = ProcComm {
            ctx: Rc::clone(&ctx),
            id: 0,
            members: Arc::new((0..nranks as u32).collect()),
            my_idx: rank,
        };
        let r = f(world);
        let mut stats = ctx.stats.borrow().clone();
        stats.final_clock = ctx.elapsed();
        // Ship the pid as a per-rank counter: the conformance suite's
        // proof that ranks really ran in distinct OS processes.
        ctx.metrics
            .borrow_mut()
            .inc(&format!("proc.pid.rank{rank}"), sys::pid() as u64);
        let mut blob = Vec::with_capacity(4096);
        stats.pack(&mut blob);
        ctx.metrics.borrow().pack(&mut blob);
        ctx.flight.borrow().drain().pack(&mut blob);
        r.pack(&mut blob);
        blob
    }));
    match blob {
        Ok(blob) => {
            let mut framed = Vec::with_capacity(8 + blob.len());
            framed.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            framed.extend_from_slice(&blob);
            if result.write_all(&framed).is_err() {
                sys::exit_now(EXIT_RESULT_LOST);
            }
            sys::exit_now(0);
        }
        // The default panic hook already printed the message (watchdog
        // report or rank panic) to the shared stderr.
        Err(_) => sys::exit_now(EXIT_PANIC),
    }
}

/// Tracks forked rank pids; caches wait statuses so no pid is reaped
/// twice.
struct Children {
    pids: Vec<i32>,
    statuses: Vec<Option<i32>>,
}

impl Children {
    fn new(pids: Vec<i32>) -> Self {
        let statuses = vec![None; pids.len()];
        Children { pids, statuses }
    }

    /// Non-blocking sweep; the first rank seen with a nonzero exit code.
    fn poll_failure(&mut self) -> Option<(usize, i32)> {
        for i in 0..self.pids.len() {
            if self.statuses[i].is_none() {
                if let Some(raw) = sys::wait_nohang(self.pids[i]) {
                    self.statuses[i] = Some(sys::exit_code(raw));
                }
            }
            if let Some(c) = self.statuses[i] {
                if c != 0 {
                    return Some((i, c));
                }
            }
        }
        None
    }

    /// Blocking reap of rank `i`; returns its exit code.
    fn wait_code(&mut self, i: usize) -> i32 {
        if let Some(c) = self.statuses[i] {
            return c;
        }
        let c = sys::exit_code(sys::wait_blocking(self.pids[i]));
        self.statuses[i] = Some(c);
        c
    }

    /// SIGKILL and reap every rank not yet reaped.
    fn kill_and_reap_all(&mut self) {
        for i in 0..self.pids.len() {
            if self.statuses[i].is_none() {
                sys::kill_hard(self.pids[i]);
                self.statuses[i] = Some(sys::exit_code(sys::wait_blocking(self.pids[i])));
            }
        }
    }
}

/// Abort the run: kill surviving children, tear down the rendezvous
/// directory, and panic with `why`.
fn fail_run(dir: &Path, kids: &mut Children, why: String) -> ! {
    kids.kill_and_reap_all();
    let _ = std::fs::remove_dir_all(dir);
    panic!("{why}");
}

/// Read exactly `buf.len()` result bytes, polling child liveness every
/// 50 ms so a dead rank is reported promptly instead of hanging the read.
fn read_exact_polled(
    s: &mut UnixStream,
    buf: &mut [u8],
    kids: &mut Children,
    deadline: Option<Instant>,
) -> Result<(), String> {
    let mut got = 0;
    while got < buf.len() {
        match s.read(&mut buf[got..]) {
            Ok(0) => {
                // The peer closed before delivering the full blob. The
                // exit status may land a beat after the EOF; give the
                // kernel a moment to publish it so the error names the
                // rank and status instead of just "closed".
                for _ in 0..100 {
                    if let Some((rank, code)) = kids.poll_failure() {
                        return Err(format!(
                            "comm-proc: rank {rank} exited with status {code} before \
                             delivering its result (stall watchdog or rank panic — see \
                             stderr above)"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                return Err("comm-proc: rank result channel closed early".to_string());
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if let Some((rank, code)) = kids.poll_failure() {
                    return Err(format!(
                        "comm-proc: rank {rank} exited with status {code} before delivering \
                         its result (stall watchdog or rank panic — see stderr above)"
                    ));
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err("comm-proc: timed out waiting for rank results".to_string());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("comm-proc: rank result read failed: {e}")),
        }
    }
    Ok(())
}

/// Run `f` on `nranks` rank **processes** and collect per-rank results
/// and statistics. The returned report has the same shape as the other
/// backends': `makespan` is the real wall-clock of the slowest rank,
/// `flight` holds each rank's recorder contents, and `metrics` merges
/// every rank's counters (including one `proc.pid.rank<r>` counter per
/// rank carrying the child's pid).
///
/// `R` must be [`WirePack`] because the results genuinely cross an
/// address-space boundary; no `Send`/`Sync` bounds are needed because
/// nothing is shared.
pub fn run<F, R>(nranks: usize, model: MachineModel, opts: &ProcOptions, f: F) -> RunReport<R>
where
    F: Fn(ProcComm) -> R,
    R: WirePack,
{
    assert!(nranks > 0);
    let dir = rendezvous_dir(opts);
    std::fs::create_dir_all(&dir).expect("comm-proc: create rendezvous dir");
    let peers: Vec<PathBuf> = (0..nranks)
        .map(|r| dir.join(format!("rank{r}.sock")))
        .collect();
    // Every listener is bound before any child exists, so a lazy connect
    // can never race the peer's bind.
    let listeners: Vec<UnixListener> = peers
        .iter()
        .map(|p| {
            UnixListener::bind(p).unwrap_or_else(|e| panic!("comm-proc: bind {}: {e}", p.display()))
        })
        .collect();
    let mut manifest = format!("{nranks}\n");
    for p in &peers {
        manifest.push_str(&p.to_string_lossy());
        manifest.push('\n');
    }
    std::fs::write(dir.join("manifest.txt"), manifest).expect("comm-proc: write manifest");
    let pairs: Vec<(UnixStream, UnixStream)> = (0..nranks)
        .map(|_| UnixStream::pair().expect("comm-proc: result socketpair"))
        .collect();
    let counter = SharedCounter::new(1);
    let epoch = Instant::now();
    // Flush inherited stdio so no buffered bytes are duplicated into the
    // children (children `_exit` and never flush, but they may print).
    let _ = std::io::stdout().flush();
    let _ = std::io::stderr().flush();
    let mut pids = Vec::with_capacity(nranks);
    for (rank, pair) in pairs.iter().enumerate() {
        match sys::fork_process() {
            0 => {
                let child_end = pair.1.try_clone().expect("comm-proc: clone result end");
                run_child(
                    rank,
                    &dir,
                    &listeners[rank],
                    epoch,
                    &model,
                    counter.handle(),
                    child_end,
                    opts,
                    &f,
                );
            }
            pid if pid > 0 => pids.push(pid),
            e => panic!("comm-proc: fork failed ({e})"),
        }
    }
    let mut kids = Children::new(pids);
    // Parent keeps only its ends; the child ends close with the children.
    let mut parents: Vec<UnixStream> = pairs
        .into_iter()
        .map(|(parent_end, child_end)| {
            drop(child_end);
            parent_end
        })
        .collect();
    let deadline = opts
        .stall_timeout
        .map(|t| Instant::now() + t + Duration::from_secs(15));
    let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(nranks);
    for s in parents.iter_mut() {
        s.set_read_timeout(Some(Duration::from_millis(50)))
            .expect("comm-proc: set result read timeout");
        let mut len8 = [0u8; 8];
        if let Err(why) = read_exact_polled(s, &mut len8, &mut kids, deadline) {
            fail_run(&dir, &mut kids, why);
        }
        let len = u64::from_le_bytes(len8);
        if len > (1 << 30) {
            fail_run(
                &dir,
                &mut kids,
                format!("comm-proc: rank result blob of {len} bytes exceeds the 1 GiB cap"),
            );
        }
        let mut blob = vec![0u8; len as usize];
        if let Err(why) = read_exact_polled(s, &mut blob, &mut kids, deadline) {
            fail_run(&dir, &mut kids, why);
        }
        blobs.push(blob);
    }
    for rank in 0..nranks {
        let code = kids.wait_code(rank);
        if code != 0 {
            fail_run(
                &dir,
                &mut kids,
                format!(
                    "comm-proc: rank {rank} exited with status {code} after delivering \
                         its result"
                ),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    drop(listeners);
    drop(counter);

    let mut stats = Vec::with_capacity(nranks);
    let mut results = Vec::with_capacity(nranks);
    let mut flight = Vec::with_capacity(nranks);
    let mut metrics = Metrics::new();
    for (rank, blob) in blobs.iter().enumerate() {
        let mut r = WireReader::new(blob);
        let unpack_err = |e: WireError| -> ! {
            panic!("comm-proc: rank {rank} result blob corrupt: {e}");
        };
        let s = RankStats::unpack(&mut r).unwrap_or_else(|e| unpack_err(e));
        let m = Metrics::unpack(&mut r).unwrap_or_else(|e| unpack_err(e));
        let fl: Vec<TraceEvent> = Vec::unpack(&mut r).unwrap_or_else(|e| unpack_err(e));
        let res = R::unpack(&mut r).unwrap_or_else(|e| unpack_err(e));
        stats.push(s);
        metrics.merge_from(&m);
        flight.push(fl);
        results.push(res);
    }
    let mut rep = RunReport::new(stats, results);
    rep.flight = flight;
    rep.metrics = metrics;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> MachineModel {
        MachineModel::uniform("toy", 1e9, 1e-6, 1e9, 4)
    }

    #[test]
    fn ping_pong_delivers_payloads() {
        let rep = run(2, toy_model(), &ProcOptions::default(), |c| {
            if c.rank() == 0 {
                Transport::send(&c, 1, 7, &[1.0, 2.0], Category::XyComm);
                let m = Transport::recv(&c, Some(1), Some(8), Category::XyComm);
                assert_eq!(&m.payload[..], &[3.0]);
            } else {
                let m = Transport::recv(&c, Some(0), Some(7), Category::XyComm);
                assert_eq!(&m.payload[..], &[1.0, 2.0]);
                Transport::send(&c, 0, 8, &[3.0], Category::XyComm);
            }
            c.now()
        });
        assert!(rep.makespan > 0.0, "real time passed");
        assert_eq!(rep.metrics.counter("msgs.received"), 2);
    }

    #[test]
    fn fifo_non_overtaking_per_source() {
        let rep = run(2, toy_model(), &ProcOptions::default(), |c| {
            if c.rank() == 0 {
                Transport::send(&c, 1, 5, &[1.0], Category::XyComm);
                Transport::send(&c, 1, 5, &[2.0], Category::XyComm);
                Transport::send(&c, 1, 5, &[3.0], Category::XyComm);
                Vec::new()
            } else {
                (0..3)
                    .map(|_| Transport::recv(&c, Some(0), Some(5), Category::XyComm).payload[0])
                    .collect::<Vec<f64>>()
            }
        });
        assert_eq!(rep.results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_masked_receives_leave_other_phases_queued() {
        let rep = run(2, toy_model(), &ProcOptions::default(), |c| {
            if c.rank() == 0 {
                // Epoch 1 message sent *before* the epoch 0 message.
                Transport::send(&c, 1, (1 << 48) | 7, &[10.0], Category::XyComm);
                Transport::send(&c, 1, 7, &[1.0], Category::XyComm);
                (0.0, 0.0)
            } else {
                let mask = !((1u64 << 48) - 1);
                let e0 = c.recv_tag_masked(mask, 0, Category::XyComm).payload[0];
                let e1 = c.recv_tag_masked(mask, 1 << 48, Category::XyComm).payload[0];
                (e0, e1)
            }
        });
        assert_eq!(rep.results[1], (1.0, 10.0));
    }

    /// The reduction order is pinned to the simulator's: allreduce
    /// results must be bit-identical even though every contribution
    /// crossed a process boundary as a wire frame.
    #[test]
    fn allreduce_bits_match_the_simulator() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            // Values chosen so summation order matters in f64.
            let contrib = |r: usize| vec![1.0 + 1e-16 * r as f64, (r as f64 + 0.1).ln(), 3e300];
            let proc = run(p, toy_model(), &ProcOptions::default(), move |c| {
                let mut v = contrib(c.rank());
                c.allreduce_sum(&mut v, Category::ZComm);
                v
            });
            let sim = simgrid::run(
                p,
                toy_model(),
                &simgrid::ClusterOptions::default(),
                move |c| {
                    let mut v = contrib(c.rank());
                    c.allreduce_sum(&mut v, Category::ZComm);
                    v
                },
            );
            for r in 0..p {
                let got: Vec<u64> = proc.results[r].iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = sim.results[r].iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "rank {r} of {p}");
            }
        }
    }

    #[test]
    fn split_creates_disjoint_comms() {
        let rep = run(6, toy_model(), &ProcOptions::default(), |c| {
            let color = c.rank() % 2;
            let sub = c.split(color, c.rank());
            let mut v = [c.rank() as f64];
            sub.allreduce_sum(&mut v, Category::ZComm);
            (sub.rank() as u64, sub.size() as u64, v[0])
        });
        for wr in 0..6 {
            let (sr, ss, sum) = rep.results[wr];
            assert_eq!(ss, 3);
            assert_eq!(sr as usize, wr / 2);
            assert_eq!(sum, if wr % 2 == 0 { 6.0 } else { 9.0 });
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let rep = run(5, toy_model(), &ProcOptions::default(), |c| {
            let mut v = if c.rank() == 3 { [42.0] } else { [0.0] };
            c.bcast(3, &mut v, Category::XyComm);
            v[0]
        });
        assert!(rep.results.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn category_times_tile_the_rank_runtime() {
        let rep = run(2, toy_model(), &ProcOptions::default(), |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                c.compute(0.0, Category::Flop); // charges the real 20ms
                Transport::send(&c, 1, 1, &[1.0], Category::XyComm);
            } else {
                Transport::recv(&c, Some(0), Some(1), Category::ZComm);
            }
        });
        let flop = rep.stats[0].time[Category::Flop as usize];
        assert!(flop >= 0.015, "measured compute time charged: {flop}");
        // Rank 1 blocked on the receive for ~as long; charged to ZComm.
        let z = rep.stats[1].time[Category::ZComm as usize];
        assert!(z >= 0.015, "blocked receive time charged: {z}");
        assert!(rep.makespan >= 0.015);
    }

    /// The flight recorders cross the process boundary in the result
    /// blobs and still pair sends to receives by sequence id.
    #[test]
    fn flight_recorder_crosses_the_process_boundary() {
        let rep = run(2, toy_model(), &ProcOptions::default(), |c| {
            if c.rank() == 0 {
                c.compute(0.0, Category::Flop);
                Transport::send(&c, 1, 7, &[1.0, 2.0], Category::XyComm);
            } else {
                Transport::recv(&c, Some(0), Some(7), Category::XyComm);
            }
        });
        assert_eq!(rep.flight.len(), 2);
        let kinds: Vec<EventKind> = rep.flight[0].iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Compute));
        assert!(kinds.contains(&EventKind::Send));
        assert!(rep.flight[1].iter().any(|e| e.kind == EventKind::Recv));
        let send_seq = rep.flight[0]
            .iter()
            .find(|e| e.kind == EventKind::Send)
            .and_then(|e| e.msg.map(|m| m.seq))
            .unwrap();
        assert!(rep.flight[1]
            .iter()
            .any(|e| e.msg.is_some_and(|m| m.seq == send_seq)));
    }

    /// The acceptance gate of this backend: every rank really is a
    /// distinct OS process, proven by the pids it ships in its metrics.
    #[test]
    fn ranks_run_in_separate_processes() {
        let rep = run(4, toy_model(), &ProcOptions::default(), |c| {
            c.barrier(Category::Setup);
        });
        let me = std::process::id() as u64;
        let mut pids: Vec<u64> = (0..4)
            .map(|r| rep.metrics.counter(&format!("proc.pid.rank{r}")))
            .collect();
        assert!(
            pids.iter().all(|&p| p != 0 && p != me),
            "rank pids {pids:?} must be real and distinct from the parent {me}"
        );
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 4, "every rank ran in its own process");
    }

    #[test]
    fn stall_watchdog_dumps_flight_recorder_per_rank() {
        let dump = std::env::temp_dir().join("comm_proc_stall_flight_test.json");
        let rank0_dump = std::env::temp_dir().join("comm_proc_stall_flight_test.rank0.json");
        let _ = std::fs::remove_file(&dump);
        let _ = std::fs::remove_file(&rank0_dump);
        let opts = ProcOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            flight_dump_path: Some(dump.clone()),
            ..ProcOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                // Real traffic first so the stalling rank holds spans.
                let mut v = [c.rank() as f64];
                c.allreduce_sum(&mut v, Category::ZComm);
                if c.rank() == 0 {
                    // Never satisfied: the watchdog fires and dumps.
                    Transport::recv(&c, Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic in the parent");
        drop(err);
        let json =
            std::fs::read_to_string(&rank0_dump).expect("rank 0 wrote its flight dump on stall");
        let v: serde_json::Value = serde_json::from_str(&json).expect("dump is valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde_json::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert!(
            events.iter().any(|e| {
                e.get("ph") == Some(&serde_json::Value::Str("X".into()))
                    && e.get("tid") == Some(&serde_json::Value::Int(0))
            }),
            "rank 0 has no spans in its stall dump"
        );
        let _ = std::fs::remove_file(&rank0_dump);
    }

    /// A stalling (or panicking) rank surfaces as a parent panic naming
    /// the rank and its exit status instead of hanging the run.
    #[test]
    fn watchdog_failure_surfaces_as_nonzero_exit() {
        let opts = ProcOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            ..ProcOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                if c.rank() == 0 {
                    // Tag 99 is never sent: rank 0 stalls forever.
                    Transport::recv(&c, Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic, not hang");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("exited with status 101"),
            "diagnostic missing: {msg}"
        );
        assert!(msg.contains("rank 0"), "diagnostic missing: {msg}");
    }
}
