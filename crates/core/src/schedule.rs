//! The compiled per-rank communication-schedule IR.
//!
//! Every distributed solver in this crate — the proposed 3D algorithm
//! (CPU and GPU), its flat-communication ablation, and the ICS'19
//! baseline — used to rebuild the same per-pass data structures at the
//! start of every solve: broadcast/reduction tree links, `fmod`
//! dependency counters, expected-message counts, symbolic block lists,
//! and the pack layouts of the inter-grid exchanges. This module
//! precomputes all of it once per [`Plan`] into a serializable
//! [`Schedule`], and the executors become thin interpreters over it
//! (see [`run_pass`]). Repeated `Solver3d::solve` calls then perform no
//! schedule setup at all — the paper's "setup once, solve many
//! right-hand sides" usage.
//!
//! One schedule is compiled per [`ScheduleKey`] (algorithm family ×
//! communication shape) and cached inside the plan; ranks are compiled
//! independently and in parallel.

use crate::kernels;
use crate::plan::{GridSet, Plan, SupSet, ZTrim};
use crate::solve2d::{member_list, tree_links};
use ordering::levels::{level_sets, ChainPolicy, LevelSets};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Baseline inter-grid tags (`TAG + lev` stamped at compile time).
const TAG_ZRED: u64 = 9 << 40;
const TAG_ZBC: u64 = 10 << 40;

/// Which schedule family to compile. The proposed algorithm (CPU tree,
/// GPU, and the naive-allreduce ablation) shares `{baseline: false,
/// tree_comm: true}`; the flat-communication ablation drops the trees;
/// the baseline runs level-by-level passes with flat communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleKey {
    /// Level-by-level baseline traversal vs the proposed single pass.
    pub baseline: bool,
    /// Binary broadcast/reduction trees vs flat stars.
    pub tree_comm: bool,
}

/// Sentinel in [`BlockSched::dense_start`]: the block's rows are not one
/// contiguous run, use the scatter pool.
pub const SCATTERED: u32 = u32::MAX;

/// One local block of a column, with its addressing precompiled: the
/// symbolic block range resolved, and either a dense contiguous-run offset
/// or an index list baked into the pass's scatter pool at compile time.
/// For L passes the indices address the *target* `lsum(I)`; for U passes
/// they address the *source* `x(J)` — both are `rows[q] − sup_start`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockSched {
    /// The other supernode of the block (trigger row for L, source column
    /// for U).
    pub sup: u32,
    /// Row-position range `[lo, hi)` within `rows_below` of the panel.
    pub lo: u32,
    /// Row-position range end.
    pub hi: u32,
    /// Dense fast path: rows map to consecutive indices starting here;
    /// [`SCATTERED`] when the run is not contiguous.
    pub dense_start: u32,
    /// Offset of this block's `hi − lo` indices in [`PassSched::scatter`]
    /// (meaningful only when `dense_start == SCATTERED`).
    pub scatter_off: u32,
}

impl BlockSched {
    /// The kernel addressing of this block, borrowing the pass pool.
    #[inline]
    pub fn targets<'a>(&self, pool: &'a [u32]) -> kernels::Targets<'a> {
        if self.dense_start != SCATTERED {
            kernels::Targets::Dense(self.dense_start as usize)
        } else {
            let off = self.scatter_off as usize;
            kernels::Targets::Scatter(&pool[off..off + (self.hi - self.lo) as usize])
        }
    }
}

/// Compiled broadcast state of one locally known supernode column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColSched {
    /// Supernode index.
    pub sup: u32,
    /// Grid ranks to forward the column's solved vector to.
    pub children: Vec<u32>,
    /// Whether this rank roots the broadcast (diagonal owner).
    pub is_root: bool,
    /// Local blocks touched by this column, addressing precompiled.
    pub blocks: Vec<BlockSched>,
    /// Sum of block row counts (the GPU's fused column task size).
    pub total_rows: u32,
    /// Max supernode width over the block rows (GPU U task height), ≥ 1.
    pub maxw: u32,
}

/// Compiled reduction state of one trigger row this rank participates in.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowSched {
    /// Supernode index.
    pub sup: u32,
    /// Initial dependency count: local block updates + child partials.
    pub fmod0: u32,
    /// Reduction parent (grid rank); `None` at the diagonal owner.
    pub parent: Option<u32>,
    /// Reduction children (grid ranks) whose partials arrive here. Solvers
    /// use this to pre-create the per-source accumulator slots, so the
    /// steady-state message loop never allocates.
    pub children: Vec<u32>,
}

/// One compiled 2D solve pass (the unit both CPU and GPU interpret).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PassSched {
    /// Epoch stamped into message tags (unique per pass within a grid).
    pub epoch: u64,
    /// Lower (L) vs upper (U) triangle; selects work-queue order.
    pub lower: bool,
    /// Number of messages this rank must receive before the pass ends.
    pub expected: u32,
    /// Locally known columns, sorted by supernode.
    pub cols: Vec<ColSched>,
    /// Trigger rows this rank reduces, sorted by supernode.
    pub rows: Vec<RowSched>,
    /// Externally solved columns this rank roots, announced at pass
    /// start in this order (baseline U passes only).
    pub ext_roots: Vec<u32>,
    /// Scatter index pool shared by every non-dense [`BlockSched`] of the
    /// pass (see [`BlockSched::targets`]).
    pub scatter: Vec<u32>,
    /// Alternate level-set program (see [`crate::levelexec`]): indices
    /// into `rows` grouped by the factor-DAG level of their supernode.
    /// Within a level the firing direction is ascending supernode for L
    /// and descending for U — a linear extension of the *global*
    /// dependency order, which is what keeps cross-rank waits at a level
    /// barrier deadlock-free.
    pub level_order: Vec<u32>,
    /// Level boundaries in `level_order` (`n_levels + 1` entries).
    pub level_ptr: Vec<u32>,
}

impl PassSched {
    /// Column schedule of `sup`, if this rank knows the column.
    pub fn col(&self, sup: u32) -> Option<&ColSched> {
        self.cols
            .binary_search_by_key(&sup, |c| c.sup)
            .ok()
            .map(|i| &self.cols[i])
    }

    /// Index into `rows` of trigger row `sup`.
    pub fn row_index(&self, sup: u32) -> Option<usize> {
        self.rows.binary_search_by_key(&sup, |r| r.sup).ok()
    }

    /// The level-set program's levels, each a slice of indices into
    /// `rows` in firing order.
    pub fn levels(&self) -> impl Iterator<Item = &[u32]> {
        self.level_ptr
            .windows(2)
            .map(|w| &self.level_order[w[0] as usize..w[1] as usize])
    }
}

/// One pairwise inter-grid exchange of the baseline traversal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZExchange {
    /// Partner grid (z index within the z-communicator).
    pub peer: u32,
    /// Message tag (level-stamped at compile time).
    pub tag: u64,
    /// Whether this rank sends (vs receives) the packed buffer.
    pub send: bool,
    /// Supernodes packed into the buffer, in order.
    pub sups: Vec<u32>,
}

/// One baseline step: an optional 2D pass plus an optional z exchange.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveStep {
    /// The 2D pass of this step (absent on inactive grids/empty nodes).
    pub pass: Option<PassSched>,
    /// The pairwise reduce/broadcast following (L) or preceding (U) the
    /// next activation.
    pub exchange: Option<ZExchange>,
}

/// My role at one step of the sparse allreduce (paper Alg. 2). A `Some`
/// entry at index `l` means: exchange the packed `sups` with `peer`
/// (send in the reduce phase iff `to_smaller`, mirrored in broadcast).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZStep {
    /// Partner grid (z index).
    pub peer: u32,
    /// Whether my partial flows toward the smaller grid in the reduce.
    pub to_smaller: bool,
    /// Diagonally owned shared-ancestor supernodes, ascending. Under
    /// [`crate::plan::ZTrim::Live`] this is trimmed to the supernodes some
    /// grid of the step's sender subtree is live for; a step whose list
    /// compiles to empty is elided at run time (no message, no span).
    pub sups: Vec<u32>,
    /// Per-RHS doubles of the *untrimmed* (dense-layout) list — what this
    /// step would move without the trim. Drives the `comm.z.bytes_saved`
    /// counter and the bench's dense baseline. (Schema note: serialized
    /// schedules from before PR 9 lack this field and must be
    /// regenerated — the vendored serde stand-in has no `default`.)
    pub dense_doubles: u64,
}

/// One ancestor layout node of the naive per-node dense allreduce.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NaiveNode {
    /// Layout-node heap id.
    pub node: u32,
    /// Diagonally owned supernodes of the node, ascending (live-trimmed
    /// under [`crate::plan::ZTrim::Live`]).
    pub sups: Vec<u32>,
    /// Per-RHS doubles of the untrimmed list (see [`ZStep::dense_doubles`]).
    pub dense_doubles: u64,
}

/// The complete compiled program of one world rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankSchedule {
    /// L-phase steps, in execution order.
    pub l_steps: Vec<SolveStep>,
    /// U-phase steps, in execution order.
    pub u_steps: Vec<SolveStep>,
    /// Sparse-allreduce roles, index = step `l` (proposed algorithm).
    pub zsteps: Vec<Option<ZStep>>,
    /// Naive-allreduce pack lists, root-first (ablation variant).
    pub naive: Vec<NaiveNode>,
}

/// A compiled schedule: one [`RankSchedule`] per world rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The family this schedule was compiled for.
    pub key: ScheduleKey,
    /// Per-rank programs, indexed by world rank (`Plan::rank_of`).
    pub ranks: Vec<RankSchedule>,
}

/// Global level assignment of the factor's supernode dependency DAGs,
/// computed once per compile and shared by every rank. The levels must be
/// *global* (per-rank local edges are not enough): a rank parked at a
/// level barrier may transitively wait on rows other ranks fire, so every
/// rank's firing order has to be a linear extension of the same partial
/// order or the barriers could deadlock.
pub(crate) struct FactorLevels {
    /// L-solve levels (deps: `blocks_left`, topological order ascending).
    pub l: LevelSets,
    /// U-solve levels (deps: `blocks_below`, topological order descending).
    pub u: LevelSets,
}

impl FactorLevels {
    fn compute(plan: &Plan) -> FactorLevels {
        FactorLevels {
            l: factor_levels(plan, true),
            u: factor_levels(plan, false),
        }
    }
}

/// Level sets of one triangle's supernode DAG, with the chain-batching
/// width chosen by the cost model from the unbatched depth and the grid's
/// parallel width.
fn factor_levels(plan: &Plan, lower: bool) -> LevelSets {
    let sym = plan.fact.lu.sym();
    let n = sym.n_supernodes();
    let topo: Vec<u32> = if lower {
        (0..n as u32).collect()
    } else {
        (0..n as u32).rev().collect()
    };
    let mut deps = |v: u32, f: &mut dyn FnMut(u32)| {
        let edges = if lower {
            sym.blocks_left(v as usize)
        } else {
            sym.blocks_below(v as usize)
        };
        for &u in edges {
            f(u);
        }
    };
    let pure = level_sets(n, &topo, ChainPolicy::none(), &mut deps);
    let policy = ChainPolicy::auto(n, pure.n_levels, plan.px * plan.py);
    if policy.batch_width <= 1 {
        pure
    } else {
        level_sets(n, &topo, policy, &mut deps)
    }
}

/// Group a pass's trigger rows into its level program: indices into
/// `rows` bucketed by the global level of their supernode, keeping the
/// firing direction (ascending sups for L, descending for U) within each
/// level so chain-batched runs fire head-first.
fn level_program(rows: &[RowSched], level_of: &[u32], lower: bool) -> (Vec<u32>, Vec<u32>) {
    if rows.is_empty() {
        return (Vec::new(), vec![0]);
    }
    let mut order: Vec<u32> = (0..rows.len() as u32).collect();
    if !lower {
        order.reverse();
    }
    order.sort_by_key(|&i| level_of[rows[i as usize].sup as usize]);
    let lev = |i: u32| level_of[rows[i as usize].sup as usize];
    let mut ptr = vec![0u32];
    for w in 1..order.len() {
        if lev(order[w]) != lev(order[w - 1]) {
            ptr.push(w as u32);
        }
    }
    ptr.push(order.len() as u32);
    (order, ptr)
}

impl Schedule {
    /// Compile the schedule for every rank of `plan` (rayon-parallel).
    pub fn compile(plan: &Plan, key: ScheduleKey) -> Schedule {
        use rayon::prelude::*;
        let levels = FactorLevels::compute(plan);
        let ranks: Vec<RankSchedule> = (0..plan.nranks())
            .into_par_iter()
            .map(|r| compile_rank(plan, key, r, &levels))
            .collect();
        Schedule { key, ranks }
    }
}

fn compile_rank(plan: &Plan, key: ScheduleKey, rank: usize, levels: &FactorLevels) -> RankSchedule {
    let (x, y, z) = plan.coords(rank);
    let grid = &plan.grids[z];
    let d = plan.depth;

    let (l_steps, u_steps) = if key.baseline {
        compile_baseline_steps(plan, grid, x, y, z, levels)
    } else {
        // Under the live trim the passes are scoped to the grid's live
        // supernodes: dead replicated ancestors would only ever compute
        // provable zeros, and the trimmed allreduce no longer delivers
        // their `y`, so they must not be scheduled either. The scoping is
        // closed (live sets are upward-closed under L-blocks), so every
        // inner block/contributor filter is semantically unchanged.
        let live_supers: Vec<u32>;
        let (scope_sups, scope_set): (&[u32], &SupSet) = match plan.trim() {
            ZTrim::Live => {
                live_supers = grid
                    .supers
                    .iter()
                    .copied()
                    .filter(|&k| grid.live.contains(k as usize))
                    .collect();
                (&live_supers, &grid.live)
            }
            ZTrim::Dense => (&grid.supers, &grid.member),
        };
        let l = PassSched::compile_l(
            plan,
            scope_set,
            x,
            y,
            scope_sups,
            false,
            key.tree_comm,
            0,
            &levels.l,
        );
        let u = PassSched::compile_u(
            plan,
            scope_set,
            x,
            y,
            scope_sups,
            scope_set,
            &[],
            key.tree_comm,
            1,
            &levels.u,
        );
        (
            vec![SolveStep {
                pass: Some(l),
                exchange: None,
            }],
            vec![SolveStep {
                pass: Some(u),
                exchange: None,
            }],
        )
    };

    // The inter-grid roles are key-independent (the allreduce variants
    // are selected at run time) and cheap; compile them always.
    let zsteps = (0..d)
        .map(|l| {
            let m = z % (1 << (l + 1));
            if m == (1 << l) {
                let (sups, dense_doubles) = shared_sups(plan, grid, l, x, y, z);
                Some(ZStep {
                    peer: (z - (1 << l)) as u32,
                    to_smaller: true,
                    sups,
                    dense_doubles,
                })
            } else if m == 0 {
                let (sups, dense_doubles) = shared_sups(plan, grid, l, x, y, z + (1 << l));
                Some(ZStep {
                    peer: (z + (1 << l)) as u32,
                    to_smaller: false,
                    sups,
                    dense_doubles,
                })
            } else {
                None
            }
        })
        .collect();
    let sym = plan.fact.lu.sym();
    let naive = grid
        .path
        .iter()
        .take(d)
        .map(|&t| {
            let mut sups = Vec::new();
            let mut dense_doubles = 0u64;
            for k in plan.node_supers(t) {
                let ku = k as usize;
                if plan.owner_xy(ku) != (x, y) {
                    continue;
                }
                dense_doubles += sym.sup_width(ku) as u64;
                let keep = match plan.trim() {
                    ZTrim::Dense => true,
                    // Keep the supernode iff some grid replicating the
                    // node contributes a nonzero partial — the same
                    // predicate on every member of the node's
                    // subcommunicator, so the collective stays matched.
                    ZTrim::Live => {
                        let g0 = plan.min_z(t);
                        (g0..g0 + plan.n_grids_of(t)).any(|g| plan.grids[g].live.contains(ku))
                    }
                };
                if keep {
                    sups.push(k);
                }
            }
            NaiveNode {
                node: t as u32,
                sups,
                dense_doubles,
            }
        })
        .collect();

    RankSchedule {
        l_steps,
        u_steps,
        zsteps,
        naive,
    }
}

/// Supernodes grid `z` exchanges at sparse-allreduce step `l`: the path
/// nodes shared with the step-`l` partner (levels `0 .. depth − l − 1`)
/// restricted to diagonal owner `(x, y)`. Under [`ZTrim::Live`] the list
/// is further restricted to supernodes some grid of the step's *sender
/// subtree* `[zhi, zhi + 2^l)` is live for: exactly those can carry a
/// nonzero partial up in the reduce, and (by the need/live equivalence)
/// exactly those are consumed back down that subtree in the broadcast.
/// `zhi` is the larger-z partner, so the range — hence the list — is
/// identical on both partners. Returns the list plus the per-RHS doubles
/// of the untrimmed list (the dense baseline's payload).
fn shared_sups(
    plan: &Plan,
    grid: &GridSet,
    l: usize,
    x: usize,
    y: usize,
    zhi: usize,
) -> (Vec<u32>, u64) {
    let sym = plan.fact.lu.sym();
    let mut out = Vec::new();
    let mut dense_doubles = 0u64;
    for &t in grid.path.iter().take(plan.depth - l) {
        for k in plan.node_supers(t) {
            let ku = k as usize;
            if plan.owner_xy(ku) != (x, y) {
                continue;
            }
            dense_doubles += sym.sup_width(ku) as u64;
            let keep = match plan.trim() {
                ZTrim::Dense => true,
                ZTrim::Live => (zhi..zhi + (1 << l)).any(|g| plan.grids[g].live.contains(ku)),
            };
            if keep {
                out.push(k);
            }
        }
    }
    (out, dense_doubles)
}

/// The baseline's level-by-level step lists (ICS'19 traversal).
fn compile_baseline_steps(
    plan: &Plan,
    grid: &GridSet,
    x: usize,
    y: usize,
    z: usize,
    levels: &FactorLevels,
) -> (Vec<SolveStep>, Vec<SolveStep>) {
    let d = plan.depth;
    let nsup = plan.fact.lu.sym().n_supernodes();

    // L phase: leaves to root; partials pairwise-reduced toward the
    // smaller grid of each pair after every level.
    let mut l_steps = Vec::with_capacity(d + 1);
    for lev in (0..=d).rev() {
        let active = z.is_multiple_of(1 << (d - lev));
        let pass = if active {
            let cols = plan.node_supers(grid.path[lev]);
            (!cols.is_empty()).then(|| {
                PassSched::compile_l(
                    plan,
                    &grid.member,
                    x,
                    y,
                    &cols,
                    true,
                    false,
                    (d - lev) as u64,
                    &levels.l,
                )
            })
        } else {
            None
        };
        let exchange = (lev > 0)
            .then(|| {
                let step = d - lev;
                let sups: Vec<u32> = grid
                    .path
                    .iter()
                    .take(lev)
                    .flat_map(|&t| plan.node_supers(t))
                    .filter(|&i| i as usize % plan.px == x)
                    .collect();
                let m = z % (1 << (step + 1));
                if m == (1 << step) {
                    Some(ZExchange {
                        peer: (z - (1 << step)) as u32,
                        tag: TAG_ZRED + lev as u64,
                        send: true,
                        sups,
                    })
                } else if m == 0 {
                    Some(ZExchange {
                        peer: (z + (1 << step)) as u32,
                        tag: TAG_ZRED + lev as u64,
                        send: false,
                        sups,
                    })
                } else {
                    None
                }
            })
            .flatten();
        l_steps.push(SolveStep { pass, exchange });
    }

    // U phase: root to leaves; solved pieces pairwise-broadcast to the
    // grids activating at the next level.
    let mut u_steps = Vec::with_capacity(d + 1);
    for lev in 0..=d {
        let active = z.is_multiple_of(1 << (d - lev));
        let pass = if active {
            let rows = plan.node_supers(grid.path[lev]);
            let ext: Vec<u32> = grid
                .path
                .iter()
                .take(lev)
                .flat_map(|&t| plan.node_supers(t))
                .collect();
            (!rows.is_empty()).then(|| {
                let mut row_set = SupSet::new(nsup);
                for &k in &rows {
                    row_set.insert(k as usize);
                }
                PassSched::compile_u(
                    plan,
                    &grid.member,
                    x,
                    y,
                    &rows,
                    &row_set,
                    &ext,
                    false,
                    (d + 1 + lev) as u64,
                    &levels.u,
                )
            })
        } else {
            None
        };
        let exchange = (lev < d)
            .then(|| {
                let step = d - lev - 1;
                let sups: Vec<u32> = grid
                    .path
                    .iter()
                    .take(lev + 1)
                    .flat_map(|&t| plan.node_supers(t))
                    .filter(|&k| plan.owner_xy(k as usize) == (x, y))
                    .collect();
                let m = z % (1 << (step + 1));
                if m == 0 {
                    Some(ZExchange {
                        peer: (z + (1 << step)) as u32,
                        tag: TAG_ZBC + lev as u64,
                        send: true,
                        sups,
                    })
                } else if m == (1 << step) {
                    Some(ZExchange {
                        peer: (z - (1 << step)) as u32,
                        tag: TAG_ZBC + lev as u64,
                        send: false,
                        sups,
                    })
                } else {
                    None
                }
            })
            .flatten();
        u_steps.push(SolveStep { pass, exchange });
    }
    (l_steps, u_steps)
}

impl PassSched {
    /// Compile one L pass: per-column broadcast links + blocks for my
    /// owned columns, per-row reduction links + `fmod0` for my rows.
    /// `scope` is the supernode set the pass's block and contributor
    /// filters close over (grid membership, or the live subset under the
    /// z-exchange trim). `contrib_all` widens the row-contributor closure
    /// to every `blocks_left` entry (baseline: merged-in descendant
    /// partials also count).
    #[allow(clippy::too_many_arguments)]
    fn compile_l(
        plan: &Plan,
        scope: &SupSet,
        x: usize,
        y: usize,
        cols_in: &[u32],
        contrib_all: bool,
        tree_comm: bool,
        epoch: u64,
        levels: &LevelSets,
    ) -> PassSched {
        let sym = plan.fact.lu.sym();
        let (px, py) = (plan.px, plan.py);
        let mut cols = Vec::new();
        let mut scatter = Vec::new();
        let mut expected = 0u32;

        for &k in cols_in {
            let ku = k as usize;
            if ku % py != y {
                continue;
            }
            let members = member_list(
                ku % px,
                sym.blocks_below(ku)
                    .iter()
                    .filter(|&&i| scope.contains(i as usize))
                    .map(|&i| i as usize % px),
            );
            let Some(links) = tree_links(&members, x, tree_comm) else {
                continue;
            };
            let mut blocks = Vec::new();
            let mut total_rows = 0u32;
            let mut maxw = 1u32;
            for &i in sym.blocks_below(ku) {
                if i as usize % px == x && scope.contains(i as usize) {
                    let (lo, hi) = kernels::block_range(&plan.fact, ku, i as usize);
                    let (dense_start, scatter_off) = block_addr(
                        sym.rows_below(ku),
                        lo,
                        hi,
                        sym.sup_cols(i as usize).start,
                        &mut scatter,
                    );
                    blocks.push(BlockSched {
                        sup: i,
                        lo: lo as u32,
                        hi: hi as u32,
                        dense_start,
                        scatter_off,
                    });
                    total_rows += (hi - lo) as u32;
                    maxw = maxw.max(sym.sup_width(i as usize) as u32);
                }
            }
            if !links.is_root {
                expected += 1;
            }
            cols.push(ColSched {
                sup: k,
                children: links
                    .children
                    .iter()
                    .map(|&r| (r + px * y) as u32)
                    .collect(),
                is_root: links.is_root,
                blocks,
                total_rows,
                maxw,
            });
        }

        let rows = compile_rows(
            plan,
            &cols,
            cols_in,
            x,
            y,
            &mut expected,
            |iu| {
                sym.blocks_left(iu)
                    .iter()
                    .filter(|&&k| contrib_all || scope.contains(k as usize))
                    .map(|&k| k as usize % py)
                    .collect()
            },
            tree_comm,
        );

        let (level_order, level_ptr) = level_program(&rows, &levels.level_of, true);
        PassSched {
            epoch,
            lower: true,
            expected,
            cols,
            rows,
            ext_roots: Vec::new(),
            scatter,
            level_order,
            level_ptr,
        }
    }

    /// Compile one U pass. `scope` is the supernode set the usum
    /// contributor closure runs over (grid membership, or the live subset
    /// under the z-exchange trim), `rows_in` the supernodes solved here,
    /// `row_set` their membership set, `ext` the already-solved ancestor
    /// columns announced at pass start (baseline only).
    #[allow(clippy::too_many_arguments)]
    fn compile_u(
        plan: &Plan,
        scope: &SupSet,
        x: usize,
        y: usize,
        rows_in: &[u32],
        row_set: &SupSet,
        ext: &[u32],
        tree_comm: bool,
        epoch: u64,
        levels: &LevelSets,
    ) -> PassSched {
        let sym = plan.fact.lu.sym();
        let (px, py) = (plan.px, plan.py);
        let mut cols = Vec::new();
        let mut scatter = Vec::new();
        let mut ext_roots = Vec::new();
        let mut expected = 0u32;

        let push_col = |j: u32,
                        is_ext: bool,
                        cols: &mut Vec<ColSched>,
                        scatter: &mut Vec<u32>,
                        expected: &mut u32,
                        ext_roots: &mut Vec<u32>| {
            let ju = j as usize;
            if ju % py != y {
                return;
            }
            // Receivers of x(J): ranks owning U(K, J) with K solved here.
            let members = member_list(
                ju % px,
                sym.blocks_left(ju)
                    .iter()
                    .filter(|&&k| row_set.contains(k as usize))
                    .map(|&k| k as usize % px),
            );
            let Some(links) = tree_links(&members, x, tree_comm) else {
                return;
            };
            let mut blocks = Vec::new();
            let mut total_rows = 0u32;
            let mut maxw = 1u32;
            for &k in sym.blocks_left(ju) {
                if k as usize % px == x && row_set.contains(k as usize) {
                    let (qlo, qhi) = kernels::block_range(&plan.fact, k as usize, ju);
                    let (dense_start, scatter_off) = block_addr(
                        sym.rows_below(k as usize),
                        qlo,
                        qhi,
                        sym.sup_cols(ju).start,
                        scatter,
                    );
                    blocks.push(BlockSched {
                        sup: k,
                        lo: qlo as u32,
                        hi: qhi as u32,
                        dense_start,
                        scatter_off,
                    });
                    total_rows += (qhi - qlo) as u32;
                    maxw = maxw.max(sym.sup_width(k as usize) as u32);
                }
            }
            if !links.is_root {
                *expected += 1;
            }
            if is_ext && links.is_root {
                ext_roots.push(j);
            }
            cols.push(ColSched {
                sup: j,
                children: links
                    .children
                    .iter()
                    .map(|&r| (r + px * y) as u32)
                    .collect(),
                is_root: links.is_root,
                blocks,
                total_rows,
                maxw,
            });
        };
        for &j in rows_in {
            push_col(
                j,
                false,
                &mut cols,
                &mut scatter,
                &mut expected,
                &mut ext_roots,
            );
        }
        for &j in ext {
            push_col(
                j,
                true,
                &mut cols,
                &mut scatter,
                &mut expected,
                &mut ext_roots,
            );
        }
        cols.sort_by_key(|c| c.sup);

        let rows = compile_rows(
            plan,
            &cols,
            rows_in,
            x,
            y,
            &mut expected,
            |ku| {
                // usum reduction over process columns owning U(K, ·).
                sym.blocks_below(ku)
                    .iter()
                    .filter(|&&j| scope.contains(j as usize))
                    .map(|&j| j as usize % py)
                    .collect()
            },
            tree_comm,
        );

        let (level_order, level_ptr) = level_program(&rows, &levels.level_of, false);
        PassSched {
            epoch,
            lower: false,
            expected,
            cols,
            rows,
            ext_roots,
            scatter,
            level_order,
            level_ptr,
        }
    }
}

/// Precompile the addressing of row positions `[lo, hi)` relative to
/// supernode start `start`: a dense contiguous run becomes its start
/// offset; anything else gets its per-row indices appended to the pass
/// scatter pool. Returns `(dense_start, scatter_off)` for [`BlockSched`].
fn block_addr(rows: &[u32], lo: usize, hi: usize, start: usize, pool: &mut Vec<u32>) -> (u32, u32) {
    let first = rows[lo] as usize - start;
    if rows[hi - 1] as usize - rows[lo] as usize == hi - 1 - lo {
        (first as u32, 0)
    } else {
        let off = pool.len() as u32;
        pool.extend(rows[lo..hi].iter().map(|&q| q - start as u32));
        (SCATTERED, off)
    }
}

/// Shared row-side compilation: reduction links and `fmod0` counters for
/// every trigger row of `rows_in` this rank owns a piece of.
#[allow(clippy::too_many_arguments)]
fn compile_rows(
    plan: &Plan,
    cols: &[ColSched],
    rows_in: &[u32],
    x: usize,
    y: usize,
    expected: &mut u32,
    contributors: impl Fn(usize) -> Vec<usize>,
    tree_comm: bool,
) -> Vec<RowSched> {
    let (px, py) = (plan.px, plan.py);
    let mut local_pending: HashMap<u32, u32> = HashMap::new();
    for c in cols {
        for b in &c.blocks {
            *local_pending.entry(b.sup).or_insert(0) += 1;
        }
    }
    let mut rows = Vec::new();
    for &i in rows_in {
        let iu = i as usize;
        if iu % px != x {
            continue;
        }
        let members = member_list(iu % py, contributors(iu).into_iter());
        let Some(links) = tree_links(&members, y, tree_comm) else {
            continue;
        };
        let n_children = links.children.len() as u32;
        *expected += n_children;
        rows.push(RowSched {
            sup: i,
            fmod0: local_pending.get(&i).copied().unwrap_or(0) + n_children,
            parent: links.parent.map(|c| (x + px * c) as u32),
            children: links
                .children
                .iter()
                .map(|&c| (x + px * c) as u32)
                .collect(),
        });
    }
    rows
}

/// Cost hooks parameterizing the shared pass traversal: the CPU engine
/// advances its rank's serial clock per kernel; the GPU engine schedules
/// fused tasks on a bounded-lane executor and tracks per-row readiness.
/// All *structure* — work-queue order, `fmod` counting, receive loop,
/// external announcements — lives once in [`run_pass`].
pub trait PassEngine {
    /// Solve the diagonal block of trigger row `row`; return the solved
    /// vector (its availability time is engine-internal state). Shared
    /// ownership lets the interpreter forward it to broadcast children as
    /// a refcount bump, not a copy.
    fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]>;
    /// Record a solved vector (diagonal result or broadcast reception).
    fn store_solved(&mut self, sup: u32, v: &[f64]);
    /// Fetch a vector solved in an earlier pass (U external columns).
    fn solved(&self, sup: u32) -> Arc<[f64]>;
    /// Forward a solved vector to my broadcast children (zero-copy: the
    /// transport enqueues clones of the `Arc`).
    fn forward(&mut self, col: &ColSched, v: &Arc<[f64]>);
    /// Send my partial sum for `row` to its reduction `parent`.
    fn send_partial(&mut self, row: &RowSched, parent: u32);
    /// Apply my local blocks of `col` to the partial sums. `scatter` is
    /// the pass's shared scatter-index pool; resolve a block's targets
    /// with [`BlockSched::targets`].
    fn apply_column(&mut self, col: &ColSched, v: &[f64], scatter: &[u32]);
    /// Accumulate a received partial-sum payload into `row`. `src` is the
    /// sending grid rank (used for order-independent accumulation).
    fn add_partial(&mut self, row: &RowSched, src: u32, payload: &[f64]);
    /// Blocking epoch-matched receive.
    fn recv(&mut self, epoch: u64) -> RecvEvent;
    /// Observability hook: the interpreter recognised `ev` as a duplicated
    /// delivery and dropped it without touching any counter.
    fn on_duplicate_dropped(&mut self, _ev: &RecvEvent) {}
    /// Observability hook: a partial sum for `row` was folded in but the
    /// trigger row still waits on `outstanding` more contributions (an
    /// `fmod` stall — the row cannot fire yet).
    fn on_fmod_stall(&mut self, _row: &RowSched, _outstanding: u32) {}
    /// Observability hook (level executor only): the interpreter is parked
    /// at level barrier `level`, about to block for a message, because
    /// `row` still waits on `outstanding` contributions. Engines use this
    /// to attribute the next receive's wait time to the barrier.
    fn on_level_wait(&mut self, _level: u32, _row: &RowSched, _outstanding: u32) {}
}

/// One message delivered to a pass: a solved column vector (broadcast
/// tree) or a partial sum (reduction tree), with its origin rank so the
/// interpreter can detect duplicated deliveries.
#[derive(Clone, Debug)]
pub struct RecvEvent {
    /// True for a solved vector, false for a partial sum.
    pub vector: bool,
    /// Supernode the message concerns.
    pub sup: u32,
    /// Sending grid rank.
    pub src: u32,
    /// Message data — the transport's buffer, shared not copied.
    pub payload: Arc<[f64]>,
}

/// Caller-owned working state of [`run_pass_with`]: the `fmod` counters,
/// ready queue, and dedup set of one pass. Reused across passes (and
/// solves) so the pass interpreter itself performs no heap allocation —
/// the steady-state allocation audit brackets everything after
/// [`PassScratch::reset`].
#[derive(Default)]
pub struct PassScratch {
    pub(crate) fmod: Vec<u32>,
    pub(crate) work: Vec<u32>,
    pub(crate) seen: HashSet<(bool, u32, u32)>,
}

impl PassScratch {
    /// Fresh (empty) scratch; grows to a pass's size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the scratch for `pass` and load its initial state. All
    /// capacity growth happens here, before the audited steady-state
    /// region starts: `work` can hold every trigger row (each row enters
    /// the ready queue exactly once) and `seen` every expected logical
    /// message.
    pub(crate) fn reset(&mut self, pass: &PassSched) {
        self.fmod.clear();
        self.fmod.extend(pass.rows.iter().map(|r| r.fmod0));
        self.work.clear();
        self.work.reserve(pass.rows.len());
        self.work
            .extend(pass.rows.iter().filter(|r| r.fmod0 == 0).map(|r| r.sup));
        // `rows` is ascending; L pops ascending, U pops descending.
        if pass.lower {
            self.work.reverse();
        }
        self.seen.clear();
        self.seen.reserve(pass.expected as usize);
    }
}

/// Interpret one compiled 2D pass: the message-driven traversal shared
/// by the CPU (Alg. 3) and multi-GPU (Alg. 5) executors.
///
/// Duplicated deliveries (fault injection, or a retransmitting network)
/// are detected by `(kind, sup, src)` and dropped idempotently, so an
/// `fmod` counter is never decremented twice for one logical message.
///
/// This convenience form allocates throwaway scratch; the solvers thread
/// a reused [`PassScratch`] through [`run_pass_with`] instead.
pub fn run_pass<E: PassEngine>(engine: &mut E, pass: &PassSched) {
    let mut scratch = PassScratch::default();
    run_pass_impl(engine, pass, &mut scratch, true)
}

/// [`run_pass`] with caller-owned scratch, so repeated passes reuse the
/// same buffers and the interpreter allocates nothing.
pub fn run_pass_with<E: PassEngine>(engine: &mut E, pass: &PassSched, scratch: &mut PassScratch) {
    run_pass_impl(engine, pass, scratch, true)
}

/// `run_pass` with duplicate detection disabled. Exists only so tests can
/// prove the dedup matters: under duplicated deliveries this variant must
/// fail the end-of-pass validation (a mutation check).
#[doc(hidden)]
pub fn run_pass_no_dedup<E: PassEngine>(engine: &mut E, pass: &PassSched) {
    let mut scratch = PassScratch::default();
    run_pass_impl(engine, pass, &mut scratch, false)
}

fn run_pass_impl<E: PassEngine>(
    engine: &mut E,
    pass: &PassSched,
    scratch: &mut PassScratch,
    dedup: bool,
) {
    scratch.reset(pass);
    // Everything below is the steady-state message loop: under the audit
    // scope it must not touch the heap (asserted by tests/alloc_audit.rs).
    let _audit = crate::audit::pass_scope();
    let PassScratch { fmod, work, seen } = scratch;

    announce_ext_roots(engine, pass, fmod, work);

    let mut received = 0u32;
    loop {
        while let Some(s) = work.pop() {
            let idx = pass.row_index(s).expect("trigger row compiled");
            fire_row(engine, pass, idx, fmod, work);
        }
        if received >= pass.expected {
            break;
        }
        recv_and_dispatch(engine, pass, fmod, work, seen, &mut received, dedup);
    }
    if !work.is_empty() || fmod.iter().any(|&c| c != 0) {
        panic!(
            "pass exhausted its receive budget with unmet dependencies{}",
            pass_report(pass, fmod, received)
        );
    }
}

/// Announce externally solved columns this rank roots (baseline U passes).
pub(crate) fn announce_ext_roots<E: PassEngine>(
    engine: &mut E,
    pass: &PassSched,
    fmod: &mut [u32],
    work: &mut Vec<u32>,
) {
    for &j in &pass.ext_roots {
        let v = engine.solved(j);
        let col = pass.col(j).expect("ext root column compiled");
        engine.forward(col, &v);
        apply_and_complete(engine, pass, col, &v, fmod, work);
    }
}

/// Fire trigger row `idx`: solve + broadcast + local apply at the
/// diagonal owner, a partial-sum send everywhere else. Shared by the
/// tree-driven work queue and the level executor's precompiled order.
pub(crate) fn fire_row<E: PassEngine>(
    engine: &mut E,
    pass: &PassSched,
    idx: usize,
    fmod: &mut [u32],
    work: &mut Vec<u32>,
) {
    let row = &pass.rows[idx];
    match row.parent {
        None => {
            let v = engine.solve_diag(row);
            if let Some(col) = pass.col(row.sup) {
                engine.forward(col, &v);
                apply_and_complete(engine, pass, col, &v, fmod, work);
            }
            engine.store_solved(row.sup, &v);
        }
        Some(p) => engine.send_partial(row, p),
    }
}

/// Block for one epoch-matched message and dispatch it: duplicates are
/// dropped idempotently (without consuming receive budget), vectors are
/// forwarded/applied, partials folded into their trigger row. Shared by
/// both executors so their delivery semantics cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recv_and_dispatch<E: PassEngine>(
    engine: &mut E,
    pass: &PassSched,
    fmod: &mut [u32],
    work: &mut Vec<u32>,
    seen: &mut HashSet<(bool, u32, u32)>,
    received: &mut u32,
    dedup: bool,
) {
    // A stalled receive panics in the simulator's watchdog; append the
    // pass-level view (pending counters, tree positions) so the dump
    // says *what* this rank was still waiting for.
    let ev =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.recv(pass.epoch))) {
            Ok(ev) => ev,
            Err(cause) => {
                let inner = cause
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| cause.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "receive panicked".to_string());
                std::panic::resume_unwind(Box::new(format!(
                    "{inner}{}",
                    pass_report(pass, fmod, *received)
                )));
            }
        };
    if dedup && !seen.insert((ev.vector, ev.sup, ev.src)) {
        // Duplicate delivery: drop it without touching counters.
        engine.on_duplicate_dropped(&ev);
        return;
    }
    *received += 1;
    if ev.vector {
        if let Some(col) = pass.col(ev.sup) {
            engine.forward(col, &ev.payload);
            apply_and_complete(engine, pass, col, &ev.payload, fmod, work);
        }
        engine.store_solved(ev.sup, &ev.payload);
    } else {
        let idx = pass
            .row_index(ev.sup)
            .expect("partial targets a trigger row");
        if fmod[idx] == 0 {
            panic!(
                "excess partial sum for already-complete trigger row sup {} (src {}){}",
                ev.sup,
                ev.src,
                pass_report(pass, fmod, *received)
            );
        }
        engine.add_partial(&pass.rows[idx], ev.src, &ev.payload);
        fmod[idx] -= 1;
        if fmod[idx] == 0 {
            work.push(ev.sup);
        } else {
            engine.on_fmod_stall(&pass.rows[idx], fmod[idx]);
        }
    }
}

/// Per-pass diagnostic appended to stall/validation panics: which trigger
/// rows are still pending, their remaining counters, and their reduction
/// tree position.
pub(crate) fn pass_report(pass: &PassSched, fmod: &[u32], received: u32) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "pass diagnostics: epoch {:#x} ({}-solve), received {received}/{} expected",
        pass.epoch,
        if pass.lower { "L" } else { "U" },
        pass.expected,
    );
    let pending: Vec<(usize, &RowSched)> = pass
        .rows
        .iter()
        .enumerate()
        .filter(|&(i, _)| fmod[i] != 0)
        .collect();
    let _ = writeln!(s, "  pending trigger rows: {}", pending.len());
    for (i, row) in pending {
        let _ = writeln!(
            s,
            "    sup {:>6}: {}/{} contributions outstanding, tree position: {}",
            row.sup,
            fmod[i],
            row.fmod0,
            match row.parent {
                None => "reduction root (diagonal owner)".to_string(),
                Some(p) => format!("leaf/inner, parent grid rank {p}"),
            },
        );
    }
    s
}

/// A column's vector became available: apply its blocks and retire the
/// dependency from every trigger row it touches. Rows outside the pass
/// just accumulate (baseline ancestor rows).
pub(crate) fn apply_and_complete<E: PassEngine>(
    engine: &mut E,
    pass: &PassSched,
    col: &ColSched,
    v: &[f64],
    fmod: &mut [u32],
    work: &mut Vec<u32>,
) {
    engine.apply_column(col, v, &pass.scatter);
    for b in &col.blocks {
        if let Some(idx) = pass.row_index(b.sup) {
            fmod[idx] -= 1;
            if fmod[idx] == 0 {
                work.push(b.sup);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;
    use std::sync::Arc;

    fn plan(px: usize, py: usize, pz: usize) -> Plan {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        Plan::new(f, px, py, pz)
    }

    const KEYS: [ScheduleKey; 3] = [
        ScheduleKey {
            baseline: false,
            tree_comm: true,
        },
        ScheduleKey {
            baseline: false,
            tree_comm: false,
        },
        ScheduleKey {
            baseline: true,
            tree_comm: false,
        },
    ];

    #[test]
    fn compile_is_deterministic() {
        let p = plan(2, 3, 4);
        for key in KEYS {
            assert_eq!(Schedule::compile(&p, key), Schedule::compile(&p, key));
        }
    }

    /// Per grid and per pass epoch, the expected receive counts must
    /// equal the send counts implied by the tree links (otherwise a
    /// solve would deadlock or terminate early).
    #[test]
    fn expected_receives_match_sends() {
        let p = plan(2, 2, 4);
        for key in KEYS {
            let s = Schedule::compile(&p, key);
            for z in 0..p.pz {
                use std::collections::HashMap;
                // epoch -> (sum expected, sum sends)
                let mut per_epoch: HashMap<u64, (u64, u64)> = HashMap::new();
                for x in 0..p.px {
                    for y in 0..p.py {
                        let rs = &s.ranks[p.rank_of(x, y, z)];
                        for step in rs.l_steps.iter().chain(&rs.u_steps) {
                            let Some(pass) = &step.pass else { continue };
                            let e = per_epoch.entry(pass.epoch).or_default();
                            e.0 += pass.expected as u64;
                            for c in &pass.cols {
                                e.1 += c.children.len() as u64;
                            }
                            for r in &pass.rows {
                                if r.parent.is_some() {
                                    e.1 += 1;
                                }
                            }
                        }
                    }
                }
                for (epoch, (exp, sent)) in per_epoch {
                    assert_eq!(exp, sent, "key {key:?} grid {z} epoch {epoch}");
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_is_identity() {
        let p = plan(2, 2, 2);
        for key in KEYS {
            let s = Schedule::compile(&p, key);
            let js = serde_json::to_string(&s).unwrap();
            let back: Schedule = serde_json::from_str(&js).unwrap();
            assert_eq!(s, back);
        }
    }

    /// The plan-level cache compiles each key once and returns shared
    /// references thereafter.
    #[test]
    fn plan_cache_compiles_once_per_key() {
        let p = plan(2, 2, 2);
        assert_eq!(p.schedule_compiles(), 0);
        let key = KEYS[0];
        let a = p.schedule(key);
        let b = p.schedule(key);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.schedule_compiles(), 1);
        let _ = p.schedule(KEYS[2]);
        assert_eq!(p.schedule_compiles(), 2);
    }

    /// Baseline steps must pair every send with the partner's receive.
    #[test]
    fn baseline_exchanges_pair_up() {
        let p = plan(2, 2, 8);
        let s = Schedule::compile(
            &p,
            ScheduleKey {
                baseline: true,
                tree_comm: false,
            },
        );
        for x in 0..p.px {
            for y in 0..p.py {
                for z in 0..p.pz {
                    let rs = &s.ranks[p.rank_of(x, y, z)];
                    for (si, step) in rs.l_steps.iter().chain(&rs.u_steps).enumerate() {
                        let Some(xch) = &step.exchange else { continue };
                        let peer = &s.ranks[p.rank_of(x, y, xch.peer as usize)];
                        let mirror = peer
                            .l_steps
                            .iter()
                            .chain(&peer.u_steps)
                            .nth(si)
                            .and_then(|st| st.exchange.as_ref())
                            .expect("partner has a mirrored exchange");
                        assert_eq!(mirror.peer as usize, z);
                        assert_eq!(mirror.tag, xch.tag);
                        assert_ne!(mirror.send, xch.send);
                        assert_eq!(mirror.sups.len(), xch.sups.len());
                    }
                }
            }
        }
    }

    /// Script-driven engine for exercising `run_pass` without a cluster.
    struct MockEngine {
        script: Vec<RecvEvent>,
        next: usize,
        diag_solved: Vec<u32>,
        partials: Vec<(u32, u32)>,
        sent: Vec<u32>,
    }

    impl MockEngine {
        fn new(script: Vec<RecvEvent>) -> Self {
            MockEngine {
                script,
                next: 0,
                diag_solved: Vec::new(),
                partials: Vec::new(),
                sent: Vec::new(),
            }
        }
    }

    impl PassEngine for MockEngine {
        fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]> {
            self.diag_solved.push(row.sup);
            vec![0.0].into()
        }
        fn store_solved(&mut self, _sup: u32, _v: &[f64]) {}
        fn solved(&self, _sup: u32) -> Arc<[f64]> {
            vec![0.0].into()
        }
        fn forward(&mut self, _col: &ColSched, _v: &Arc<[f64]>) {}
        fn send_partial(&mut self, row: &RowSched, _parent: u32) {
            self.sent.push(row.sup);
        }
        fn apply_column(&mut self, _col: &ColSched, _v: &[f64], _scatter: &[u32]) {}
        fn add_partial(&mut self, row: &RowSched, src: u32, _payload: &[f64]) {
            self.partials.push((row.sup, src));
        }
        fn recv(&mut self, _epoch: u64) -> RecvEvent {
            let ev = self.script[self.next].clone();
            self.next += 1;
            ev
        }
    }

    /// A pass where a duplicated vector delivery precedes the one real
    /// partial sum. With dedup the duplicate is dropped and the pass
    /// completes; see the mutation check below for the broken variant.
    fn duplicated_delivery_pass() -> (PassSched, Vec<RecvEvent>) {
        let pass = PassSched {
            epoch: 0x7 << 48,
            lower: true,
            expected: 2,
            cols: vec![ColSched {
                sup: 7,
                children: vec![],
                is_root: false,
                blocks: vec![],
                total_rows: 0,
                maxw: 1,
            }],
            rows: vec![RowSched {
                sup: 5,
                fmod0: 1,
                parent: None,
                children: vec![],
            }],
            ext_roots: vec![],
            scatter: vec![],
            level_order: vec![0],
            level_ptr: vec![0, 1],
        };
        let vec_ev = RecvEvent {
            vector: true,
            sup: 7,
            src: 1,
            payload: vec![0.0].into(),
        };
        let script = vec![
            vec_ev.clone(),
            vec_ev, // duplicated delivery of the same vector
            RecvEvent {
                vector: false,
                sup: 5,
                src: 2,
                payload: vec![0.0].into(),
            },
        ];
        (pass, script)
    }

    /// Duplicate deliveries are dropped idempotently: the duplicate does
    /// not consume receive budget, and the real partial still lands.
    #[test]
    fn run_pass_dedup_survives_duplicated_delivery() {
        let (pass, script) = duplicated_delivery_pass();
        let mut eng = MockEngine::new(script);
        run_pass(&mut eng, &pass);
        assert_eq!(eng.next, 3, "all three deliveries consumed");
        assert_eq!(eng.partials, vec![(5, 2)]);
        assert_eq!(eng.diag_solved, vec![5]);
    }

    /// Mutation check: with dedup disabled, the duplicate eats the receive
    /// budget, the real partial is never consumed, and the end-of-pass
    /// validation must fire with a diagnostic dump — not a hang and not a
    /// silent wrong answer.
    #[test]
    fn run_pass_without_dedup_is_caught_by_validation() {
        let (pass, script) = duplicated_delivery_pass();
        let mut eng = MockEngine::new(script);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pass_no_dedup(&mut eng, &pass);
        }))
        .expect_err("broken dedup must be detected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unmet dependencies"), "got: {msg}");
        assert!(msg.contains("sup      5"), "dump must name the row: {msg}");
        assert!(msg.contains("1/1 contributions outstanding"), "got: {msg}");
    }

    /// A partial for a row whose counter already hit zero (e.g. a replayed
    /// message from a hostile network that slipped past dedup keys) is a
    /// hard error with diagnostics, not a u32 underflow.
    #[test]
    fn excess_partial_is_rejected_with_diagnostics() {
        let (pass, _) = duplicated_delivery_pass();
        // Two partials from *different* sources for a row expecting one.
        let script = vec![
            RecvEvent {
                vector: false,
                sup: 5,
                src: 2,
                payload: vec![0.0].into(),
            },
            RecvEvent {
                vector: false,
                sup: 5,
                src: 3,
                payload: vec![0.0].into(),
            },
        ];
        let mut eng = MockEngine::new(script);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_pass(&mut eng, &pass);
        }))
        .expect_err("excess partial must be detected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("excess partial"), "got: {msg}");
    }
}
