//! The 3D solve plan: process layout, grid membership, ownership maps.
//!
//! Terminology follows the paper's Fig. 1: the separator tree is cut at
//! depth `d = log2(Pz)` into `2^(d+1) − 1` *layout nodes* in heap order;
//! grid `z`'s *path* is the leaf layout node `z` plus all its ancestors,
//! and grid `z` owns every supernode of every node on its path (ancestors
//! replicated across grids). Supernode block `(I, K)` lives at process
//! `(I mod Px, K mod Py)` of each replicating grid.

use crate::schedule::{Schedule, ScheduleKey};
use lufactor::Factorized;
use ordering::nd::LayoutNode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Membership bitset over supernodes.
#[derive(Clone, Debug)]
pub struct SupSet {
    bits: Vec<u64>,
}

impl SupSet {
    /// Empty set over `n` supernodes.
    pub fn new(n: usize) -> Self {
        SupSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert supernode `k`.
    pub fn insert(&mut self, k: usize) {
        self.bits[k / 64] |= 1 << (k % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        self.bits[k / 64] >> (k % 64) & 1 == 1
    }
}

/// Per-grid supernode membership.
#[derive(Clone, Debug)]
pub struct GridSet {
    /// Grid index `z`.
    pub z: usize,
    /// Layout-node heap ids on this grid's path, root first (level 0..=d).
    pub path: Vec<usize>,
    /// All supernodes of this grid, ascending.
    pub supers: Vec<u32>,
    /// Membership bitset (over all supernodes).
    pub member: SupSet,
    /// Live-support bitset: members this grid can contribute a nonzero
    /// partial for. A supernode is live when its RHS originates here
    /// (`rhs_active`) or when a live column of this grid has an L-block
    /// into it; everything else packs provable zeros (DESIGN.md §15).
    pub live: SupSet,
}

/// Layout policy for the inter-grid (`z`) exchange payloads.
///
/// [`ZTrim::Live`] compiles per-round pack lists down to the supernodes
/// some participating grid is actually live for; [`ZTrim::Dense`] keeps
/// the fixed per-`(x, y)` ancestor layout (the pre-trim wire format,
/// preserved as the measurable baseline for the PR 9 bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ZTrim {
    /// Trimmed pack lists + presence bitmaps; empty rounds are elided.
    #[default]
    Live,
    /// Full replicated-ancestor layout every round (ablation baseline).
    Dense,
}

impl std::str::FromStr for ZTrim {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "live" => Ok(ZTrim::Live),
            "dense" => Ok(ZTrim::Dense),
            other => Err(format!("unknown z layout '{other}' (expected live|dense)")),
        }
    }
}

/// The full solve plan shared (read-only) by every rank thread.
pub struct Plan {
    /// Factorized matrix (ND + symbolic + numeric panels).
    pub fact: Arc<Factorized>,
    /// 2D grid extent `Px`.
    pub px: usize,
    /// 2D grid extent `Py`.
    pub py: usize,
    /// Number of 2D grids `Pz` (power of two).
    pub pz: usize,
    /// `log2(Pz)`.
    pub depth: usize,
    /// Layout nodes in heap order (`2^(d+1) − 1` of them).
    pub layout: Vec<LayoutNode>,
    /// Supernode → layout-node heap id.
    pub sup_node: Vec<u32>,
    /// Per-grid membership.
    pub grids: Vec<GridSet>,
    /// Inter-grid exchange layout policy.
    trim: ZTrim,
    /// Compiled communication schedules, one per algorithm family.
    schedules: Mutex<HashMap<ScheduleKey, Arc<Schedule>>>,
    /// Number of schedule compilations performed (cache misses).
    compile_count: AtomicUsize,
}

impl Plan {
    /// Build the plan for a `px × py × pz` layout over `fact`.
    ///
    /// Panics if `pz` exceeds the forced depth the factorization was
    /// analyzed with (`fact` must come from `lufactor::factorize(a, pz', …)`
    /// with `pz' ≥ pz`).
    pub fn new(fact: Arc<Factorized>, px: usize, py: usize, pz: usize) -> Self {
        Self::with_trim(fact, px, py, pz, ZTrim::Live)
    }

    /// Like [`Plan::new`] with an explicit inter-grid exchange layout
    /// policy ([`ZTrim::Dense`] reproduces the pre-trim dense wire format
    /// for ablation; liveness bitsets are computed either way).
    pub fn with_trim(fact: Arc<Factorized>, px: usize, py: usize, pz: usize, trim: ZTrim) -> Self {
        assert!(pz.is_power_of_two(), "Pz must be a power of two");
        assert!(px >= 1 && py >= 1);
        let depth = pz.trailing_zeros() as usize;
        let layout = fact.nd.tree.layout(depth);
        let sym = fact.lu.sym();
        let nsup = sym.n_supernodes();

        // Supernode → layout node: layout node column ranges partition
        // [0, n); supernodes never straddle them.
        let mut sup_node = vec![u32::MAX; nsup];
        for node in &layout {
            if node.cols.is_empty() {
                continue;
            }
            let k0 = sym.col_sup(node.cols.start);
            let k1 = sym.col_sup(node.cols.end - 1);
            for (k, owner) in sup_node.iter_mut().enumerate().take(k1 + 1).skip(k0) {
                debug_assert!(node.cols.contains(&sym.sup_cols(k).start));
                debug_assert!(node.cols.contains(&(sym.sup_cols(k).end - 1)));
                *owner = node.id as u32;
            }
        }
        debug_assert!(sup_node.iter().all(|&t| t != u32::MAX));

        // Per-grid membership is independent across grids; build in
        // parallel (rayon degrades gracefully to sequential on one core).
        use rayon::prelude::*;
        let grids: Vec<GridSet> = (0..pz)
            .into_par_iter()
            .map(|z| {
                // Path root..leaf in heap ids.
                let mut path = Vec::with_capacity(depth + 1);
                let mut t = (1 << depth) - 1 + z;
                loop {
                    path.push(t);
                    if t == 0 {
                        break;
                    }
                    t = (t - 1) / 2;
                }
                path.reverse();
                let mut member = SupSet::new(nsup);
                let mut supers = Vec::new();
                for (k, &t) in sup_node.iter().enumerate() {
                    if path.contains(&(t as usize)) {
                        member.insert(k);
                        supers.push(k as u32);
                    }
                }
                // Liveness: a member is live when its RHS originates on
                // this grid or a live column has an L-block into it. One
                // ascending sweep suffices — `blocks_below(k)` only names
                // supernodes greater than `k`.
                let min_z_of = |t: usize| {
                    let l = (t + 1).ilog2() as usize;
                    (t - ((1 << l) - 1)) << (depth - l)
                };
                let mut live = SupSet::new(nsup);
                let mut incoming = SupSet::new(nsup);
                for &k in &supers {
                    let ku = k as usize;
                    if min_z_of(sup_node[ku] as usize) == z || incoming.contains(ku) {
                        live.insert(ku);
                        for &i in sym.blocks_below(ku) {
                            incoming.insert(i as usize);
                        }
                    }
                }
                GridSet {
                    z,
                    path,
                    supers,
                    member,
                    live,
                }
            })
            .collect();

        Plan {
            fact,
            px,
            py,
            pz,
            depth,
            layout,
            sup_node,
            grids,
            trim,
            schedules: Mutex::new(HashMap::new()),
            compile_count: AtomicUsize::new(0),
        }
    }

    /// The inter-grid exchange layout policy this plan compiles under.
    pub fn trim(&self) -> ZTrim {
        self.trim
    }

    /// The compiled communication schedule for `key`, compiling and
    /// caching it on first use. Executors call this from their rank
    /// programs; `Solver3d` pre-warms the cache at planning time so
    /// solves perform zero schedule setup.
    pub fn schedule(&self, key: ScheduleKey) -> Arc<Schedule> {
        let mut cache = self.schedules.lock().unwrap();
        if let Some(s) = cache.get(&key) {
            return Arc::clone(s);
        }
        let s = Arc::new(Schedule::compile(self, key));
        cache.insert(key, Arc::clone(&s));
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        s
    }

    /// How many schedule compilations this plan has performed — the
    /// "compile once, solve many" telltale asserted by the tests.
    pub fn schedule_compiles(&self) -> usize {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// Total rank count.
    pub fn nranks(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// `(x, y, z)` coordinates of a world rank (x fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let x = rank % self.px;
        let y = (rank / self.px) % self.py;
        let z = rank / (self.px * self.py);
        (x, y, z)
    }

    /// World rank of coordinates `(x, y, z)`.
    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.px * (y + self.py * z)
    }

    /// Diagonal-owner process of supernode `k` within any 2D grid.
    pub fn owner_xy(&self, k: usize) -> (usize, usize) {
        (k % self.px, k % self.py)
    }

    /// Level (depth below root) of a layout heap id.
    pub fn node_level(&self, t: usize) -> usize {
        (t + 1).ilog2() as usize
    }

    /// Smallest grid index replicating layout node `t` — the paper's RHS
    /// owner convention.
    pub fn min_z(&self, t: usize) -> usize {
        let l = self.node_level(t);
        let first_in_level = (1 << l) - 1;
        (t - first_in_level) << (self.depth - l)
    }

    /// Number of grids replicating layout node `t`.
    pub fn n_grids_of(&self, t: usize) -> usize {
        1 << (self.depth - self.node_level(t))
    }

    /// Whether grid `z` supplies the real RHS for supernode `k` (Alg. 1
    /// lines 3–10: the smallest replicating grid keeps `b`, others zero it).
    pub fn rhs_active(&self, z: usize, k: usize) -> bool {
        self.min_z(self.sup_node[k] as usize) == z
    }

    /// Supernodes of layout node `t`, ascending.
    pub fn node_supers(&self, t: usize) -> Vec<u32> {
        let node = &self.layout[t];
        if node.cols.is_empty() {
            return Vec::new();
        }
        let sym = self.fact.lu.sym();
        let k0 = sym.col_sup(node.cols.start);
        let k1 = sym.col_sup(node.cols.end - 1);
        (k0 as u32..=k1 as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;

    fn plan(px: usize, py: usize, pz: usize) -> Plan {
        let a = gen::poisson2d_5pt(12, 12);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        Plan::new(f, px, py, pz)
    }

    #[test]
    fn coords_roundtrip() {
        let p = plan(2, 3, 4);
        for r in 0..p.nranks() {
            let (x, y, z) = p.coords(r);
            assert_eq!(p.rank_of(x, y, z), r);
        }
    }

    #[test]
    fn min_z_of_heap_nodes() {
        let p = plan(1, 1, 4);
        assert_eq!(p.min_z(0), 0); // root shared by all
        assert_eq!(p.min_z(1), 0); // left level-1 node: grids 0,1
        assert_eq!(p.min_z(2), 2); // right level-1 node: grids 2,3
        assert_eq!(p.min_z(3), 0);
        assert_eq!(p.min_z(4), 1);
        assert_eq!(p.min_z(5), 2);
        assert_eq!(p.min_z(6), 3);
        assert_eq!(p.n_grids_of(0), 4);
        assert_eq!(p.n_grids_of(2), 2);
        assert_eq!(p.n_grids_of(6), 1);
    }

    #[test]
    fn grid_paths_share_ancestors() {
        let p = plan(1, 1, 4);
        assert_eq!(p.grids[0].path, vec![0, 1, 3]);
        assert_eq!(p.grids[3].path, vec![0, 2, 6]);
        // Every grid contains all root supernodes.
        for k in p.node_supers(0) {
            for g in &p.grids {
                assert!(g.member.contains(k as usize));
            }
        }
        // Leaf supernodes belong to exactly one grid.
        for k in p.node_supers(3) {
            assert!(p.grids[0].member.contains(k as usize));
            assert!(!p.grids[1].member.contains(k as usize));
            assert!(!p.grids[2].member.contains(k as usize));
        }
    }

    #[test]
    fn rhs_active_exactly_once_per_supernode() {
        let p = plan(2, 2, 4);
        let nsup = p.fact.lu.sym().n_supernodes();
        for k in 0..nsup {
            let active: Vec<usize> = (0..4).filter(|&z| p.rhs_active(z, k)).collect();
            assert_eq!(active.len(), 1, "supernode {k} active in {active:?}");
            // The active grid must replicate the supernode.
            assert!(p.grids[active[0]].member.contains(k));
        }
    }

    #[test]
    fn grid_supers_cover_every_supernode() {
        let p = plan(1, 1, 8);
        let nsup = p.fact.lu.sym().n_supernodes();
        let mut covered = vec![false; nsup];
        for g in &p.grids {
            for &k in &g.supers {
                covered[k as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn grid_set_closed_under_blocks_below() {
        // L^z closure: every below-diagonal block of a member column has its
        // row supernode in the same grid (the paper's path-closure property).
        let p = plan(2, 2, 8);
        let sym = p.fact.lu.sym();
        for g in &p.grids {
            for &k in &g.supers {
                for &i in sym.blocks_below(k as usize) {
                    assert!(
                        g.member.contains(i as usize),
                        "grid {} column {} row-block {} outside grid",
                        g.z,
                        k,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn live_set_contains_rhs_active_and_is_upward_closed() {
        let p = plan(2, 2, 8);
        let sym = p.fact.lu.sym();
        for g in &p.grids {
            for &k in &g.supers {
                let ku = k as usize;
                // Every supernode is live on the grid supplying its RHS —
                // in particular every leaf column of this grid.
                if p.rhs_active(g.z, ku) {
                    assert!(g.live.contains(ku), "grid {} sup {} not live", g.z, ku);
                }
                // Live sets are upward-closed under L-blocks: a live
                // column's partials land in supernodes that are live too.
                if g.live.contains(ku) {
                    assert!(g.member.contains(ku));
                    for &i in sym.blocks_below(ku) {
                        assert!(
                            g.live.contains(i as usize),
                            "grid {} live col {} feeds dead row {}",
                            g.z,
                            ku,
                            i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dead_ancestors_exist_at_deep_pz() {
        // The point of the trim: at Pz = 8 some grid replicates an
        // ancestor supernode it can never contribute to. If this ever
        // fails the trim is vacuous and the PR 9 bench gate would too.
        // R-MAT's uneven separators leave deep grids dead for much of the
        // top separators; a PDE stencil or pure band couples every subtree
        // to its whole ancestor chain and trims nothing.
        let a = gen::rmat(9, 8, 7);
        let f = Arc::new(factorize(&a, 8, &SymbolicOptions::default()).unwrap());
        let p = Plan::new(f, 1, 1, 8);
        let dead = p
            .grids
            .iter()
            .flat_map(|g| g.supers.iter().map(move |&k| (g, k)))
            .filter(|(g, k)| !g.live.contains(*k as usize))
            .count();
        assert!(dead > 0, "no dead replicated supernodes at Pz=8");
    }

    #[test]
    fn trim_knob_round_trips_and_defaults_live() {
        let p = plan(2, 2, 2);
        assert_eq!(p.trim(), ZTrim::Live);
        assert_eq!("dense".parse::<ZTrim>().unwrap(), ZTrim::Dense);
        assert_eq!("live".parse::<ZTrim>().unwrap(), ZTrim::Live);
        assert!("sparse".parse::<ZTrim>().is_err());
        let a = gen::poisson2d_5pt(12, 12);
        let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
        let pd = Plan::with_trim(f, 2, 2, 2, ZTrim::Dense);
        assert_eq!(pd.trim(), ZTrim::Dense);
    }

    #[test]
    fn pz_one_single_grid_owns_everything() {
        let p = plan(3, 2, 1);
        assert_eq!(p.grids.len(), 1);
        assert_eq!(p.grids[0].supers.len(), p.fact.lu.sym().n_supernodes());
        for k in 0..p.fact.lu.sym().n_supernodes() {
            assert!(p.rhs_active(0, k));
        }
    }
}
