//! GPU execution models for the 2D solves (paper Alg. 4 and Alg. 5).
//!
//! No physical GPU exists in this environment (DESIGN.md §2); the paper's
//! GPU kernels are modelled in virtual time:
//!
//! * **Single-GPU solve** (Alg. 4, used when `Px = Py = 1`): one thread
//!   block per supernode column, sync-free spin-waiting on `fmod`. Modelled
//!   as a bounded-lane list schedule ([`simgrid::GpuExecutor`]): task `K`
//!   becomes ready when its dependencies finish, runs for the
//!   HBM-bandwidth-bound panel time, and pays a per-block overhead. The
//!   numerics are executed for real.
//! * **Multi-GPU solve** (Alg. 5): the same message-driven structure as the
//!   CPU Alg. 3 — literally the same [`run_pass`] traversal over the same
//!   compiled [`PassSched`], with GPU cost hooks — but communication uses
//!   GPU-initiated one-sided puts with NVLink intra-node vs Slingshot
//!   inter-node cost (the §4.2.2 bandwidth cliff), and computation runs on
//!   the bounded-lane executor at arbitrary virtual event times rather
//!   than on the rank's serial clock.
//!
//! Both paths interpret the plan's precompiled schedule: the single-GPU
//! solve walks the L pass's column schedules (whose block lists double as
//! the U dependencies, since `block_range(K, J)` is symmetric in use),
//! and the multi-GPU engine inherits tree links, `fmod0`, and expected
//! counts straight from the IR.
//!
//! The 3D driver pairs either kernel with the MPI-based sparse allreduce,
//! exactly as the paper does (Alg. 1 lines 13–19).

use crate::allreduce;
use crate::arena::SolveArena;
use crate::driver::{ExecutorKind, PhaseTimes};
use crate::kernels;
use crate::new3d::RankOutput;
use crate::plan::Plan;
use crate::schedule::{
    run_pass, ColSched, PassEngine, PassSched, PassScratch, RecvEvent, RowSched, ScheduleKey,
};
use crate::solve2d::Ledger;
use simgrid::{Category, EventKind, GpuExecutor, GpuModel, SpanDetail, Transport};
use std::collections::HashMap;
use std::sync::Arc;

const KIND_Y: u64 = 21 << 40;
const KIND_LSUM: u64 = 22 << 40;
const KIND_X: u64 = 23 << 40;
const KIND_USUM: u64 = 24 << 40;
const KIND_MASK: u64 = 0xff << 40;
const SUP_MASK: u64 = (1 << 40) - 1;
/// L pass = epoch 0, U pass = epoch 1 (see solve2d: ranks of a grid are
/// not synchronized between passes, so receives match on the epoch bits).
const EPOCH_MASK: u64 = !((1 << 48) - 1);

#[inline]
fn tag(epoch: u64, kind: u64, sup: u32) -> u64 {
    (epoch << 48) | kind | sup as u64
}

/// Run the proposed 3D SpTRSV with GPU 2D solves as the rank program of
/// `(x, y, z)`. Single-GPU kernels when `Px · Py = 1`, NVSHMEM-style
/// multi-GPU kernels otherwise.
///
/// `executor` selects how the multi-GPU passes interpret their schedule
/// (message-driven tree walk vs precompiled level sweep); the single-GPU
/// column sweep is already a static program, so the choice is a no-op
/// there.
#[allow(clippy::too_many_arguments)]
pub fn run_rank<T: Transport>(
    plan: &Plan,
    grid_comm: &T,
    zcomm: &T,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    use_naive_allreduce: bool,
    executor: ExecutorKind,
) -> RankOutput {
    let gpu = grid_comm
        .model()
        .gpu
        .clone()
        .expect("GPU solve requires a machine model with GPU parameters");
    let single = plan.px * plan.py == 1;
    let sched = plan.schedule(ScheduleKey {
        baseline: false,
        tree_comm: true,
    });
    let rs = &sched.ranks[plan.rank_of(x, y, z)];
    let l_pass = rs.l_steps[0].pass.as_ref().expect("compiled L pass");
    let u_pass = rs.u_steps[0].pass.as_ref().expect("compiled U pass");

    let t0 = grid_comm.now();
    let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut x_vals: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut arena = SolveArena::new();

    if single {
        single_gpu_l(
            plan,
            grid_comm,
            &gpu,
            l_pass,
            z,
            pb,
            nrhs,
            &mut y_vals,
            &mut arena,
        );
    } else {
        multi_gpu_pass(
            plan,
            grid_comm,
            &gpu,
            l_pass,
            z,
            pb,
            nrhs,
            None,
            &mut y_vals,
            executor,
        );
    }
    let t1 = grid_comm.now();

    // Inter-grid sparse allreduce runs over MPI on the host (paper: the
    // SparseAllReduce of Alg. 1 line 20 is implemented with MPI).
    if use_naive_allreduce {
        allreduce::naive_allreduce(plan, zcomm, &rs.naive, z, nrhs, &mut y_vals);
    } else {
        allreduce::sparse_allreduce(plan, zcomm, &rs.zsteps, nrhs, &mut y_vals);
    }
    let t2 = grid_comm.now();

    if single {
        single_gpu_u(
            plan,
            grid_comm,
            &gpu,
            l_pass,
            nrhs,
            &y_vals,
            &mut x_vals,
            &mut arena,
        );
    } else {
        multi_gpu_pass(
            plan,
            grid_comm,
            &gpu,
            u_pass,
            z,
            pb,
            nrhs,
            Some(&y_vals),
            &mut x_vals,
            executor,
        );
    }
    let t3 = grid_comm.now();

    let snap = grid_comm.time_snapshot();
    let x_pieces = x_vals
        .into_iter()
        .filter(|(k, _)| plan.owner_xy(*k as usize) == (x, y))
        .collect();

    RankOutput {
        phases: PhaseTimes {
            l_wall: t1 - t0,
            z_wall: t2 - t1,
            u_wall: t3 - t2,
            l_busy: t1 - t0,
            u_busy: t3 - t2,
            z_time: snap[Category::ZComm as usize],
            total: t3 - t0,
        },
        x_pieces,
    }
}

/// Single-GPU 2D L-solve (Alg. 4): the whole `L^z` on one device,
/// interpreting the compiled column schedules in ascending order.
#[allow(clippy::too_many_arguments)]
fn single_gpu_l<T: Transport>(
    plan: &Plan,
    comm: &T,
    gpu: &GpuModel,
    pass: &PassSched,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
    arena: &mut SolveArena,
) {
    let sym = plan.fact.lu.sym();
    let start = comm.now();
    let t0 = start + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    // Setup: prefill every map slot and size the arena so the audited
    // column sweep below never allocates.
    let mut lsum: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut row_ready: HashMap<u32, f64> = HashMap::new();
    let mut maxlen = 1;
    for col in &pass.cols {
        let w = sym.sup_width(col.sup as usize);
        maxlen = maxlen.max(w * nrhs);
        y_vals.entry(col.sup).or_insert_with(|| vec![0.0; w * nrhs]);
        row_ready.entry(col.sup).or_insert(t0);
        for b in &col.blocks {
            let wb = sym.sup_width(b.sup as usize);
            lsum.entry(b.sup).or_insert_with(|| vec![0.0; wb * nrhs]);
            row_ready.entry(b.sup).or_insert(t0);
        }
    }
    arena.ensure(2 * maxlen);

    let audit = crate::audit::pass_scope();
    for col in &pass.cols {
        let k = col.sup;
        let ku = k as usize;
        let w = sym.sup_width(ku);
        // Ready when every in-grid dependency task has finished.
        let ready = row_ready.get(&k).copied().unwrap_or(t0);
        // Numerics: diagonal solve + off-diagonal GEMVs of column K,
        // written straight into the prefilled y slot.
        let active = plan.rhs_active(z, ku);
        let len = w * nrhs;
        let (b_k, rhs) = arena.slices2(len, len);
        kernels::masked_rhs_into(&plan.fact, ku, pb, nrhs, active, b_k);
        let y_slot = y_vals.get_mut(&k).expect("y slot prefilled");
        kernels::diag_solve_l_into(
            &plan.fact,
            ku,
            b_k,
            lsum.get(&k).map(|v| &v[..]),
            nrhs,
            rhs,
            y_slot,
        );
        let y_k = &y_vals[&k];
        let mut dur = gpu.panel_op_time(w, w, nrhs);
        let panel = &plan.fact.lu.panel(ku).l_below;
        let r = sym.rows_below(ku).len();
        for b in &col.blocks {
            let wb = sym.sup_width(b.sup as usize);
            let acc = lsum.get_mut(&b.sup).expect("lsum slot prefilled");
            kernels::apply_l(
                panel,
                r,
                b.lo as usize,
                b.hi as usize,
                b.targets(&pass.scatter),
                y_k,
                w,
                acc,
                wb,
                nrhs,
            );
        }
        dur += gpu.panel_op_time(col.total_rows as usize, w, nrhs);
        let finish = ex.schedule(ready, dur);
        for b in &col.blocks {
            let e = row_ready.get_mut(&b.sup).expect("row_ready prefilled");
            if finish > *e {
                *e = finish;
            }
        }
    }
    drop(audit);
    let end = ex.last_finish();
    comm.account(end - comm.now(), Category::Flop);
    comm.advance_to(end);
    // One covering span per kernel: the whole pass runs on-device between
    // two host clock reads, so [start, end] keeps the per-rank spans tiling
    // the clock (the invariant the critical-path walk relies on).
    comm.trace_span(
        start,
        end,
        EventKind::Compute,
        Category::Flop,
        Some(SpanDetail::GpuPass {
            epoch: 0,
            tasks: pass.cols.len() as u64,
        }),
    );
    comm.metric_inc("pass.spans", 1);
}

/// Single-GPU 2D U-solve (Alg. 4 mirror), pull-model tasks. Reuses the L
/// pass's column schedules: the blocks of column `K` are exactly the
/// dependency columns `J` of the U task for `K` (`block_range(K, J)` is
/// the same symbolic range both triangles address).
#[allow(clippy::too_many_arguments)]
fn single_gpu_u<T: Transport>(
    plan: &Plan,
    comm: &T,
    gpu: &GpuModel,
    pass: &PassSched,
    nrhs: usize,
    y_vals: &HashMap<u32, Vec<f64>>,
    x_vals: &mut HashMap<u32, Vec<f64>>,
    arena: &mut SolveArena,
) {
    let sym = plan.fact.lu.sym();
    let start = comm.now();
    let t0 = start + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    // Setup: prefill every slot so the audited sweep never allocates.
    let mut finish: HashMap<u32, f64> = HashMap::with_capacity(pass.cols.len());
    let mut maxlen = 1;
    for col in &pass.cols {
        let w = sym.sup_width(col.sup as usize);
        maxlen = maxlen.max(w * nrhs);
        finish.insert(col.sup, t0);
        x_vals.entry(col.sup).or_insert_with(|| vec![0.0; w * nrhs]);
    }
    arena.ensure(2 * maxlen);

    let audit = crate::audit::pass_scope();
    for col in pass.cols.iter().rev() {
        let k = col.sup;
        let ku = k as usize;
        let w = sym.sup_width(ku);
        let mut ready = t0;
        let mut dur = gpu.panel_op_time(w, w, nrhs);
        let len = w * nrhs;
        let (usum, rhs) = arena.slices2(len, len);
        // The L pass's block list doubles as the U task's dependency
        // columns; the shared scatter pool indexes x(J) the same way it
        // indexed lsum(J) (both are offsets within supernode J).
        let panel = &plan.fact.lu.panel(ku).u_right;
        for b in &col.blocks {
            let wj = sym.sup_width(b.sup as usize);
            kernels::apply_u(
                panel,
                w,
                b.lo as usize,
                b.hi as usize,
                b.targets(&pass.scatter),
                &x_vals[&b.sup],
                wj,
                usum,
                nrhs,
            );
            dur += gpu.panel_op_time(w, (b.hi - b.lo) as usize, nrhs);
            ready = ready.max(finish[&b.sup]);
        }
        let y_k = y_vals
            .get(&k)
            .expect("allreduce delivered y before the U-solve");
        let x_slot = x_vals.get_mut(&k).expect("x slot prefilled");
        kernels::diag_solve_u_into(&plan.fact, ku, y_k, Some(&*usum), nrhs, rhs, x_slot);
        let f = ex.schedule(ready, dur);
        *finish.get_mut(&k).expect("finish slot prefilled") = f;
    }
    drop(audit);
    let end = ex.last_finish();
    comm.account(end - comm.now(), Category::Flop);
    comm.advance_to(end);
    comm.trace_span(
        start,
        end,
        EventKind::Compute,
        Category::Flop,
        Some(SpanDetail::GpuPass {
            epoch: 1,
            tasks: pass.cols.len() as u64,
        }),
    );
    comm.metric_inc("pass.spans", 1);
}

/// Run one compiled pass with the NVSHMEM-style multi-GPU engine
/// (Alg. 5) and settle the rank clock to the pass's last event.
#[allow(clippy::too_many_arguments)]
fn multi_gpu_pass<T: Transport>(
    plan: &Plan,
    comm: &T,
    gpu: &GpuModel,
    pass: &PassSched,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    vals_in: Option<&HashMap<u32, Vec<f64>>>,
    vals_out: &mut HashMap<u32, Vec<f64>>,
    executor: ExecutorKind,
) {
    let start = comm.now();
    let t0 = start + gpu.kernel_launch;
    let n_tasks = pass.cols.len() as u64;
    // Setup mirrors the CPU engine's: prebuild every ledger slot, payload
    // buffer, readiness entry, and FIFO route the steady-state loop will
    // touch, so the audited interpreter region never allocates.
    let sym = plan.fact.lu.sym();
    let mut sums = Ledger::default();
    let mut row_ready: HashMap<u32, f64> = HashMap::new();
    let mut diag_bufs: HashMap<u32, Arc<[f64]>> = HashMap::with_capacity(pass.rows.len());
    let mut partial_bufs: HashMap<u32, Arc<[f64]>> = HashMap::with_capacity(pass.rows.len());
    let mut arena = SolveArena::new();
    let mut maxlen = 1;
    for row in &pass.rows {
        let len = sym.sup_width(row.sup as usize) * nrhs;
        maxlen = maxlen.max(len);
        row_ready.entry(row.sup).or_insert(t0);
        match row.parent {
            None => {
                diag_bufs.insert(row.sup, vec![0.0; len].into());
            }
            Some(p) => {
                partial_bufs.insert(row.sup, vec![0.0; len].into());
                comm.warm_route(p as usize);
            }
        }
        for &c in &row.children {
            sums.accum(row.sup, Ledger::key_partial(c), len);
        }
    }
    for col in &pass.cols {
        let w = sym.sup_width(col.sup as usize);
        vals_out
            .entry(col.sup)
            .or_insert_with(|| vec![0.0; w * nrhs]);
        for b in &col.blocks {
            let blen = sym.sup_width(b.sup as usize) * nrhs;
            maxlen = maxlen.max(blen);
            sums.accum(b.sup, Ledger::key_local(col.sup), blen);
            row_ready.entry(b.sup).or_insert(t0);
        }
        for &c in &col.children {
            comm.warm_route(c as usize);
        }
    }
    arena.ensure(3 * maxlen);
    comm.metric_inc("pass.fmod_stalls", 0);
    let mut engine = GpuEngine {
        plan,
        comm,
        gpu,
        nrhs,
        z,
        lower: pass.lower,
        epoch: pass.epoch,
        me_world: comm.world_rank(comm.rank()),
        t0,
        ex: GpuExecutor::new(gpu, t0),
        sums,
        row_ready,
        last_event: t0,
        avail: t0,
        pb,
        vals_in,
        vals_out,
        arena,
        diag_bufs,
        partial_bufs,
    };
    match executor {
        ExecutorKind::Tree => run_pass(&mut engine, pass),
        ExecutorKind::Level => {
            // Pass-local scratch: GPU passes run at most twice per solve,
            // so there is no steady-state reuse to preserve here.
            let mut scratch = PassScratch::new();
            crate::levelexec::run_level_pass(&mut engine, pass, &mut scratch);
        }
    }
    let end = engine.last_event.max(engine.ex.last_finish());
    let busy = engine.ex.busy_time();
    comm.account(busy, Category::Flop);
    comm.account((end - comm.now() - busy).max(0.0), Category::XyComm);
    comm.advance_to(end);
    // Two covering spans mirroring the account() split: a compute part for
    // the executor's busy time, then a drain part for the wait on remote
    // puts. Together they tile [start, end] on this rank's clock.
    let mid = (start + busy).min(end);
    let detail = SpanDetail::GpuPass {
        epoch: pass.epoch,
        tasks: n_tasks,
    };
    comm.trace_span(start, mid, EventKind::Compute, Category::Flop, Some(detail));
    if end > mid {
        comm.trace_span(mid, end, EventKind::Recv, Category::XyComm, Some(detail));
    }
    comm.metric_inc("pass.spans", 1);
}

/// GPU cost hooks for [`run_pass`]: fused column tasks on the bounded-lane
/// executor, one-sided puts departing at the producing task's finish time,
/// per-row readiness tracked as virtual timestamps.
struct GpuEngine<'a, 'b, T: Transport> {
    plan: &'a Plan,
    comm: &'a T,
    gpu: &'a GpuModel,
    nrhs: usize,
    z: usize,
    lower: bool,
    epoch: u64,
    me_world: usize,
    t0: f64,
    ex: GpuExecutor,
    /// Partial sums (`lsum` in L, `usum` in U), pass-local, buffered per
    /// contribution source for order-independent folding.
    sums: Ledger,
    /// Earliest virtual time each row's dependencies are satisfied.
    row_ready: HashMap<u32, f64>,
    last_event: f64,
    /// Availability time of the vector most recently produced/received.
    avail: f64,
    /// Global permuted RHS (L pass only).
    pb: &'a [f64],
    /// `y` values from the allreduce (U pass only).
    vals_in: Option<&'b HashMap<u32, Vec<f64>>>,
    /// Solved vectors: `y_vals` (L) or `x_vals` (U).
    vals_out: &'b mut HashMap<u32, Vec<f64>>,
    /// Scratch for diagonal-solve temporaries, sized at pass setup.
    arena: SolveArena,
    /// Prebuilt diagonal-solve result buffers (rooted trigger rows).
    diag_bufs: HashMap<u32, Arc<[f64]>>,
    /// Prebuilt reduction payload buffers (non-root trigger rows).
    partial_bufs: HashMap<u32, Arc<[f64]>>,
}

impl<T: Transport> GpuEngine<'_, '_, T> {
    fn put(&self, depart: f64, dst: usize, t: u64, payload: &Arc<[f64]>) {
        let bytes = 8 * payload.len() + 64;
        let dst_world = self.comm.world_rank(dst);
        let (lat, wire) = self.gpu.put_cost(self.me_world, dst_world, bytes);
        self.comm
            .send_timed_shared(depart, lat + wire, dst, t, payload, Category::XyComm);
    }

    fn vec_kind(&self) -> u64 {
        if self.lower {
            KIND_Y
        } else {
            KIND_X
        }
    }

    fn sum_kind(&self) -> u64 {
        if self.lower {
            KIND_LSUM
        } else {
            KIND_USUM
        }
    }
}

impl<T: Transport> PassEngine for GpuEngine<'_, '_, T> {
    fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]> {
        let iu = row.sup as usize;
        let sym = self.plan.fact.lu.sym();
        let w = sym.sup_width(iu);
        let len = w * self.nrhs;
        let ready = self.row_ready.get(&row.sup).copied().unwrap_or(self.t0);
        // Prebuilt and still uniquely owned: the kernel writes straight
        // into the buffer the puts below will share by refcount.
        let mut out = self
            .diag_bufs
            .remove(&row.sup)
            .expect("diagonal buffer prebuilt for rooted row");
        let buf = Arc::get_mut(&mut out).expect("diagonal buffer still unique");
        if self.lower {
            // Diagonal thread block: y(I) from the masked RHS.
            let active = self.plan.rhs_active(self.z, iu);
            let (b_i, fold, rhs) = self.arena.slices3(len, len, len);
            kernels::masked_rhs_into(&self.plan.fact, iu, self.pb, self.nrhs, active, b_i);
            self.sums.fold_into(row.sup, fold);
            kernels::diag_solve_l_into(&self.plan.fact, iu, b_i, Some(fold), self.nrhs, rhs, buf);
        } else {
            let (fold, rhs) = self.arena.slices2(len, len);
            self.sums.fold_into(row.sup, fold);
            let y_k = self
                .vals_in
                .expect("U pass has y values")
                .get(&row.sup)
                .expect("y present at diagonal owner");
            kernels::diag_solve_u_into(&self.plan.fact, iu, y_k, Some(fold), self.nrhs, rhs, buf);
        }
        let f = self
            .ex
            .schedule(ready, self.gpu.panel_op_time(w, w, self.nrhs));
        self.avail = f;
        self.last_event = self.last_event.max(f);
        out
    }

    fn store_solved(&mut self, sup: u32, v: &[f64]) {
        match self.vals_out.get_mut(&sup) {
            Some(slot) => slot.copy_from_slice(v),
            None => {
                self.vals_out.insert(sup, v.to_vec());
            }
        }
    }

    fn solved(&self, _sup: u32) -> Arc<[f64]> {
        unreachable!("GPU passes have no external root columns")
    }

    fn forward(&mut self, col: &ColSched, v: &Arc<[f64]>) {
        let t = tag(self.epoch, self.vec_kind(), col.sup);
        for &child in &col.children {
            self.put(self.avail, child as usize, t, v);
        }
    }

    fn send_partial(&mut self, row: &RowSched, parent: u32) {
        let ready = self.row_ready.get(&row.sup).copied().unwrap_or(self.t0);
        let mut payload = self
            .partial_bufs
            .remove(&row.sup)
            .expect("partial buffer prebuilt for non-root row");
        self.sums.fold_into(
            row.sup,
            Arc::get_mut(&mut payload).expect("partial buffer still unique"),
        );
        let t = tag(self.epoch, self.sum_kind(), row.sup);
        self.put(ready, parent as usize, t, &payload);
        self.last_event = self.last_event.max(ready);
    }

    fn apply_column(&mut self, col: &ColSched, v: &[f64], scatter: &[u32]) {
        if col.blocks.is_empty() {
            return;
        }
        let sym = self.plan.fact.lu.sym();
        let ju = col.sup as usize;
        let wcol = sym.sup_width(ju);
        // Fused task: all my blocks of this column in one kernel.
        let dur = if self.lower {
            self.gpu
                .panel_op_time(col.total_rows as usize, wcol, self.nrhs)
        } else {
            self.gpu
                .panel_op_time(col.maxw as usize, col.total_rows as usize, self.nrhs)
        };
        let f = self.ex.schedule(self.avail, dur);
        for b in &col.blocks {
            let wb = sym.sup_width(b.sup as usize);
            let tg = b.targets(scatter);
            let acc = self
                .sums
                .accum(b.sup, Ledger::key_local(col.sup), wb * self.nrhs);
            if self.lower {
                let panel = &self.plan.fact.lu.panel(ju).l_below;
                let r = sym.rows_below(ju).len();
                kernels::apply_l(
                    panel,
                    r,
                    b.lo as usize,
                    b.hi as usize,
                    tg,
                    v,
                    wcol,
                    acc,
                    wb,
                    self.nrhs,
                );
            } else {
                let panel = &self.plan.fact.lu.panel(b.sup as usize).u_right;
                kernels::apply_u(
                    panel,
                    wb,
                    b.lo as usize,
                    b.hi as usize,
                    tg,
                    v,
                    wcol,
                    acc,
                    self.nrhs,
                );
            }
            let e = self.row_ready.get_mut(&b.sup).expect("row_ready prefilled");
            if f > *e {
                *e = f;
            }
        }
    }

    fn add_partial(&mut self, row: &RowSched, src: u32, payload: &[f64]) {
        self.sums.add(row.sup, Ledger::key_partial(src), payload);
        let e = self.row_ready.entry(row.sup).or_insert(self.t0);
        if self.avail > *e {
            *e = self.avail;
        }
    }

    fn on_duplicate_dropped(&mut self, _ev: &RecvEvent) {
        // GPU passes have no per-message receive span to flag; the drop
        // still counts in the metrics registry.
        self.comm.mark_last_dropped_duplicate();
    }

    fn on_fmod_stall(&mut self, _row: &RowSched, _outstanding: u32) {
        self.comm.metric_inc("pass.fmod_stalls", 1);
    }

    fn recv(&mut self, _epoch: u64) -> RecvEvent {
        let msg = self.comm.recv_raw_tag_masked(EPOCH_MASK, self.epoch << 48);
        // recv_raw bypasses the clock-charging path, so count the delivery
        // here to keep msgs.received comparable across CPU and GPU solvers.
        self.comm.metric_inc("msgs.received", 1);
        let sup = (msg.tag & SUP_MASK) as u32;
        let kind = msg.tag & KIND_MASK;
        self.avail = msg.arrival;
        self.last_event = self.last_event.max(msg.arrival);
        let is_vec = if kind == self.vec_kind() {
            true
        } else if kind == self.sum_kind() {
            false
        } else {
            unreachable!("unexpected kind in GPU pass");
        };
        RecvEvent {
            vector: is_vec,
            sup,
            src: msg.src as u32,
            payload: msg.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    fn check_gpu(a: &sparse::CsrMatrix, px: usize, py: usize, pz: usize, nrhs: usize) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let want = f.solve(&b, nrhs);
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs,
            algorithm: Algorithm::New3d,
            arch: Arch::Gpu,
            machine: MachineModel::perlmutter_gpu(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(
            diff < 1e-11,
            "gpu px={px} py={py} pz={pz} nrhs={nrhs}: diff {diff}"
        );
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn single_gpu_whole_matrix() {
        check_gpu(&gen::poisson2d_5pt(8, 8), 1, 1, 1, 1);
    }

    #[test]
    fn single_gpu_per_grid() {
        check_gpu(&gen::poisson2d_5pt(10, 10), 1, 1, 4, 1);
    }

    #[test]
    fn single_gpu_multi_rhs() {
        check_gpu(&gen::poisson2d_9pt(9, 9), 1, 1, 2, 5);
    }

    #[test]
    fn multi_gpu_px() {
        check_gpu(&gen::poisson2d_5pt(10, 10), 4, 1, 1, 1);
    }

    #[test]
    fn multi_gpu_px_pz() {
        check_gpu(&gen::poisson2d_9pt(12, 12), 2, 1, 4, 1);
    }

    #[test]
    fn multi_gpu_full_grid() {
        check_gpu(&gen::poisson2d_5pt(12, 12), 2, 2, 2, 2);
    }

    #[test]
    fn crusher_profile_single_gpu() {
        let a = gen::poisson2d_5pt(9, 9);
        let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), 1);
        let want = f.solve(&b, 1);
        let cfg = SolverConfig {
            px: 1,
            py: 1,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Gpu,
            machine: MachineModel::crusher_gpu(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        assert!(sparse::max_abs_diff(&out.x, &want) < 1e-11);
    }
}
