//! GPU execution models for the 2D solves (paper Alg. 4 and Alg. 5).
//!
//! No physical GPU exists in this environment (DESIGN.md §2); the paper's
//! GPU kernels are modelled in virtual time:
//!
//! * **Single-GPU solve** (Alg. 4, used when `Px = Py = 1`): one thread
//!   block per supernode column, sync-free spin-waiting on `fmod`. Modelled
//!   as a bounded-lane list schedule ([`simgrid::GpuExecutor`]): task `K`
//!   becomes ready when its dependencies finish, runs for the
//!   HBM-bandwidth-bound panel time, and pays a per-block overhead. The
//!   numerics are executed for real.
//! * **Multi-GPU solve** (Alg. 5): the same message-driven structure as the
//!   CPU Alg. 3 (binary broadcast/reduction trees, `fmod` counters, WAIT
//!   kernel), but communication uses GPU-initiated one-sided puts with
//!   NVLink intra-node vs Slingshot inter-node cost (the §4.2.2 bandwidth
//!   cliff), and computation runs on the bounded-lane executor at arbitrary
//!   virtual event times rather than on the rank's serial clock.
//!
//! The 3D driver pairs either kernel with the MPI-based sparse allreduce,
//! exactly as the paper does (Alg. 1 lines 13–19).

use crate::allreduce;
use crate::driver::PhaseTimes;
use crate::kernels;
use crate::new3d::RankOutput;
use crate::plan::Plan;
use crate::solve2d::{member_list, tree_links};
use simgrid::{Category, Comm, GpuExecutor, GpuModel};
use std::collections::HashMap;

const KIND_Y: u64 = 21 << 40;
const KIND_LSUM: u64 = 22 << 40;
const KIND_X: u64 = 23 << 40;
const KIND_USUM: u64 = 24 << 40;
const KIND_MASK: u64 = 0xff << 40;
const SUP_MASK: u64 = (1 << 40) - 1;
/// L pass = epoch 0, U pass = epoch 1 (see solve2d: ranks of a grid are
/// not synchronized between passes, so receives match on the epoch bits).
const EPOCH_MASK: u64 = !((1 << 48) - 1);

#[inline]
fn tag(epoch: u64, kind: u64, sup: u32) -> u64 {
    (epoch << 48) | kind | sup as u64
}

/// Run the proposed 3D SpTRSV with GPU 2D solves as the rank program of
/// `(x, y, z)`. Single-GPU kernels when `Px · Py = 1`, NVSHMEM-style
/// multi-GPU kernels otherwise.
#[allow(clippy::too_many_arguments)]
pub fn run_rank(
    plan: &Plan,
    grid_comm: &Comm,
    zcomm: &Comm,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    use_naive_allreduce: bool,
) -> RankOutput {
    let gpu = grid_comm
        .model()
        .gpu
        .clone()
        .expect("GPU solve requires a machine model with GPU parameters");
    let single = plan.px * plan.py == 1;

    let t0 = grid_comm.now();
    let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut x_vals: HashMap<u32, Vec<f64>> = HashMap::new();

    if single {
        single_gpu_l(plan, grid_comm, &gpu, z, pb, nrhs, &mut y_vals);
    } else {
        multi_gpu_l(plan, grid_comm, &gpu, x, y, z, pb, nrhs, &mut y_vals);
    }
    let t1 = grid_comm.now();

    // Inter-grid sparse allreduce runs over MPI on the host (paper: the
    // SparseAllReduce of Alg. 1 line 20 is implemented with MPI).
    if use_naive_allreduce {
        allreduce::naive_allreduce(plan, zcomm, x, y, z, nrhs, &mut y_vals);
    } else {
        allreduce::sparse_allreduce(plan, zcomm, x, y, z, nrhs, &mut y_vals);
    }
    let t2 = grid_comm.now();

    if single {
        single_gpu_u(plan, grid_comm, &gpu, z, nrhs, &y_vals, &mut x_vals);
    } else {
        multi_gpu_u(plan, grid_comm, &gpu, x, y, z, nrhs, &y_vals, &mut x_vals);
    }
    let t3 = grid_comm.now();

    let snap = grid_comm.time_snapshot();
    let x_pieces = x_vals
        .into_iter()
        .filter(|(k, _)| *k as usize % plan.px == x && *k as usize % plan.py == y)
        .collect();

    RankOutput {
        phases: PhaseTimes {
            l_wall: t1 - t0,
            z_wall: t2 - t1,
            u_wall: t3 - t2,
            l_busy: t1 - t0,
            u_busy: t3 - t2,
            z_time: snap[Category::ZComm as usize],
            total: t3 - t0,
        },
        x_pieces,
    }
}

/// Single-GPU 2D L-solve (Alg. 4): the whole `L^z` on one device.
fn single_gpu_l(
    plan: &Plan,
    comm: &Comm,
    gpu: &GpuModel,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let grid = &plan.grids[z];
    let sym = plan.fact.lu.sym();
    let t0 = comm.now() + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    let mut lsum: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut row_ready: HashMap<u32, f64> = HashMap::new();

    for &k in &grid.supers {
        let ku = k as usize;
        let w = sym.sup_width(ku);
        // Ready when every in-grid dependency task has finished.
        let ready = row_ready.remove(&k).unwrap_or(t0);
        // Numerics: diagonal solve + off-diagonal GEMVs of column K.
        let active = plan.rhs_active(z, ku);
        let b_k = kernels::masked_rhs(&plan.fact, ku, pb, nrhs, active);
        let (y_k, _) = kernels::diag_solve_l(&plan.fact, ku, &b_k, lsum.get(&k).map(|v| &v[..]), nrhs);
        let mut dur = gpu.panel_op_time(w, w, nrhs);
        let mut total_rows = 0usize;
        for &i in sym.blocks_below(ku) {
            debug_assert!(grid.member.contains(i as usize));
            let (lo, hi) = kernels::block_range(&plan.fact, ku, i as usize);
            let wi = sym.sup_width(i as usize);
            let acc = lsum.entry(i).or_insert_with(|| vec![0.0; wi * nrhs]);
            kernels::apply_l_block(&plan.fact, ku, i as usize, lo, hi, &y_k, acc, nrhs);
            total_rows += hi - lo;
        }
        dur += gpu.panel_op_time(total_rows, w, nrhs);
        let finish = ex.schedule(ready, dur);
        for &i in sym.blocks_below(ku) {
            let e = row_ready.entry(i).or_insert(t0);
            if finish > *e {
                *e = finish;
            }
        }
        y_vals.insert(k, y_k);
    }
    let end = ex.last_finish();
    comm.account(end - comm.now(), Category::Flop);
    comm.advance_to(end);
}

/// Single-GPU 2D U-solve (Alg. 4 mirror), pull-model tasks.
fn single_gpu_u(
    plan: &Plan,
    comm: &Comm,
    gpu: &GpuModel,
    z: usize,
    nrhs: usize,
    y_vals: &HashMap<u32, Vec<f64>>,
    x_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let grid = &plan.grids[z];
    let sym = plan.fact.lu.sym();
    let t0 = comm.now() + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    let mut finish: HashMap<u32, f64> = HashMap::new();

    for &k in grid.supers.iter().rev() {
        let ku = k as usize;
        let w = sym.sup_width(ku);
        let mut ready = t0;
        let mut dur = gpu.panel_op_time(w, w, nrhs);
        let mut usum = vec![0.0; w * nrhs];
        for &j in sym.blocks_below(ku) {
            let (qlo, qhi) = kernels::block_range(&plan.fact, ku, j as usize);
            kernels::apply_u_block(
                &plan.fact,
                ku,
                j as usize,
                qlo,
                qhi,
                &x_vals[&j],
                &mut usum,
                nrhs,
            );
            dur += gpu.panel_op_time(w, qhi - qlo, nrhs);
            ready = ready.max(finish[&j]);
        }
        let y_k = y_vals
            .get(&k)
            .expect("allreduce delivered y before the U-solve");
        let (x_k, _) = kernels::diag_solve_u(&plan.fact, ku, y_k, Some(&usum), nrhs);
        let f = ex.schedule(ready, dur);
        finish.insert(k, f);
        x_vals.insert(k, x_k);
    }
    let end = ex.last_finish();
    comm.account(end - comm.now(), Category::Flop);
    comm.advance_to(end);
}

/// Per-owned-column info for the multi-GPU passes.
struct GCol {
    children: Vec<usize>,
    blocks: Vec<(u32, u32, u32)>,
    /// Sum of block row counts (one fused GEMV task per column).
    total_rows: usize,
}

struct GRow {
    fmod: u32,
    parent: Option<usize>,
}

/// NVSHMEM-style multi-GPU 2D L-solve (Alg. 5) over the whole `L^z`.
#[allow(clippy::too_many_arguments)]
fn multi_gpu_l(
    plan: &Plan,
    comm: &Comm,
    gpu: &GpuModel,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let grid = &plan.grids[z];
    let sym = plan.fact.lu.sym();
    let (px, py) = (plan.px, plan.py);
    let me_world = comm.world_rank(comm.rank());

    // --- Setup (trees and fmod precomputed on the CPU, paper §3.4) ---
    let mut cols: HashMap<u32, GCol> = HashMap::new();
    let mut rows: HashMap<u32, GRow> = HashMap::new();
    let mut expected = 0usize;
    for &k in &grid.supers {
        let ku = k as usize;
        if ku % py != y {
            continue;
        }
        let members = member_list(
            ku % px,
            sym.blocks_below(ku)
                .iter()
                .filter(|&&i| grid.member.contains(i as usize))
                .map(|&i| i as usize % px),
        );
        let Some(links) = tree_links(&members, x, true) else {
            continue;
        };
        let mut blocks = Vec::new();
        let mut total_rows = 0usize;
        for &i in sym.blocks_below(ku) {
            if i as usize % px == x && grid.member.contains(i as usize) {
                let (lo, hi) = kernels::block_range(&plan.fact, ku, i as usize);
                blocks.push((i, lo as u32, hi as u32));
                total_rows += hi - lo;
            }
        }
        if !links.is_root {
            expected += 1;
        }
        cols.insert(
            k,
            GCol {
                children: links.children.iter().map(|&r| r + px * y).collect(),
                blocks,
                total_rows,
            },
        );
    }
    let mut local_pending: HashMap<u32, u32> = HashMap::new();
    for c in cols.values() {
        for &(i, _, _) in &c.blocks {
            *local_pending.entry(i).or_insert(0) += 1;
        }
    }
    for &i in &grid.supers {
        let iu = i as usize;
        if iu % px != x {
            continue;
        }
        let members = member_list(
            iu % py,
            sym.blocks_left(iu)
                .iter()
                .filter(|&&k| grid.member.contains(k as usize))
                .map(|&k| k as usize % py),
        );
        let Some(links) = tree_links(&members, y, true) else {
            continue;
        };
        expected += links.children.len();
        rows.insert(
            i,
            GRow {
                fmod: local_pending.get(&i).copied().unwrap_or(0) + links.children.len() as u32,
                parent: links.parent.map(|c| x + px * c),
            },
        );
    }

    // --- Event-driven solve ---
    let t0 = comm.now() + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    let mut lsum: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut row_ready: HashMap<u32, f64> = HashMap::new();
    let mut work: Vec<u32> = rows
        .iter()
        .filter(|(_, r)| r.fmod == 0)
        .map(|(&i, _)| i)
        .collect();
    work.sort_unstable();
    work.reverse();
    let mut received = 0usize;
    let mut last_event = t0;

    let put = |depart: f64, dst: usize, t: u64, payload: &[f64]| {
        let bytes = 8 * payload.len() + 64;
        let dst_world = comm.world_rank(dst);
        let (lat, wire) = gpu.put_cost(me_world, dst_world, bytes);
        comm.send_timed(depart, lat + wire, dst, t, payload, Category::XyComm);
    };

    loop {
        while let Some(i) = work.pop() {
            let iu = i as usize;
            let info = rows.get(&i).expect("trigger row");
            let ready = row_ready.get(&i).copied().unwrap_or(t0);
            match info.parent {
                None => {
                    // Diagonal thread block: y(I), then forward + local GEMV.
                    let w = sym.sup_width(iu);
                    let active = plan.rhs_active(z, iu);
                    let b_i = kernels::masked_rhs(&plan.fact, iu, pb, nrhs, active);
                    let (y_i, _) = kernels::diag_solve_l(
                        &plan.fact,
                        iu,
                        &b_i,
                        lsum.get(&i).map(|v| &v[..]),
                        nrhs,
                    );
                    let f = ex.schedule(ready, gpu.panel_op_time(w, w, nrhs));
                    handle_y_gpu(
                        plan, gpu, &cols, &mut rows, &mut lsum, &mut row_ready, &mut ex, &put,
                        i, &y_i, f, nrhs, &mut work,
                    );
                    last_event = last_event.max(f);
                    y_vals.insert(i, y_i);
                }
                Some(p) => {
                    let w = sym.sup_width(iu);
                    let zeros;
                    let payload = match lsum.get(&i) {
                        Some(v) => &v[..],
                        None => {
                            zeros = vec![0.0; w * nrhs];
                            &zeros[..]
                        }
                    };
                    put(ready, p, tag(0, KIND_LSUM, i), payload);
                    last_event = last_event.max(ready);
                }
            }
        }
        if received >= expected {
            break;
        }
        let msg = comm.recv_raw_tag_masked(EPOCH_MASK, 0);
        received += 1;
        let sup = (msg.tag & SUP_MASK) as u32;
        last_event = last_event.max(msg.arrival);
        match msg.tag & KIND_MASK {
            KIND_Y => {
                handle_y_gpu(
                    plan, gpu, &cols, &mut rows, &mut lsum, &mut row_ready, &mut ex, &put,
                    sup, &msg.payload, msg.arrival, nrhs, &mut work,
                );
                y_vals
                    .entry(sup)
                    .or_insert_with(|| msg.payload.to_vec());
            }
            KIND_LSUM => {
                let w = sym.sup_width(sup as usize);
                let acc = lsum.entry(sup).or_insert_with(|| vec![0.0; w * nrhs]);
                for (a, &v) in acc.iter_mut().zip(msg.payload.iter()) {
                    *a += v;
                }
                let e = row_ready.entry(sup).or_insert(t0);
                if msg.arrival > *e {
                    *e = msg.arrival;
                }
                let r = rows.get_mut(&sup).expect("lsum targets trigger row");
                r.fmod -= 1;
                if r.fmod == 0 {
                    work.push(sup);
                }
            }
            _ => unreachable!("unexpected kind in GPU L pass"),
        }
    }
    let end = last_event.max(ex.last_finish());
    comm.account(ex.busy_time(), Category::Flop);
    comm.account((end - comm.now() - ex.busy_time()).max(0.0), Category::XyComm);
    comm.advance_to(end);
}

/// `y(K)` available at `t_avail` on this GPU: forward along the tree
/// (one-sided puts), then run the fused column GEMV task.
#[allow(clippy::too_many_arguments)]
fn handle_y_gpu(
    plan: &Plan,
    gpu: &GpuModel,
    cols: &HashMap<u32, GCol>,
    rows: &mut HashMap<u32, GRow>,
    lsum: &mut HashMap<u32, Vec<f64>>,
    row_ready: &mut HashMap<u32, f64>,
    ex: &mut GpuExecutor,
    put: &impl Fn(f64, usize, u64, &[f64]),
    k: u32,
    y_k: &[f64],
    t_avail: f64,
    nrhs: usize,
    work: &mut Vec<u32>,
) {
    let Some(info) = cols.get(&k) else {
        return;
    };
    for &child in &info.children {
        put(t_avail, child, tag(0, KIND_Y, k), y_k);
    }
    if info.blocks.is_empty() {
        return;
    }
    let sym = plan.fact.lu.sym();
    let w = sym.sup_width(k as usize);
    let f = ex.schedule(t_avail, gpu.panel_op_time(info.total_rows, w, nrhs));
    for &(i, lo, hi) in &info.blocks {
        let wi = sym.sup_width(i as usize);
        let acc = lsum.entry(i).or_insert_with(|| vec![0.0; wi * nrhs]);
        kernels::apply_l_block(
            &plan.fact,
            k as usize,
            i as usize,
            lo as usize,
            hi as usize,
            y_k,
            acc,
            nrhs,
        );
        let e = row_ready.entry(i).or_insert(f);
        if f > *e {
            *e = f;
        }
        if let Some(r) = rows.get_mut(&i) {
            r.fmod -= 1;
            if r.fmod == 0 {
                work.push(i);
            }
        }
    }
}

/// NVSHMEM-style multi-GPU 2D U-solve (Alg. 5 mirror).
#[allow(clippy::too_many_arguments)]
fn multi_gpu_u(
    plan: &Plan,
    comm: &Comm,
    gpu: &GpuModel,
    x: usize,
    y: usize,
    z: usize,
    nrhs: usize,
    y_vals: &HashMap<u32, Vec<f64>>,
    x_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let grid = &plan.grids[z];
    let sym = plan.fact.lu.sym();
    let (px, py) = (plan.px, plan.py);
    let me_world = comm.world_rank(comm.rank());

    // --- Setup ---
    let mut cols: HashMap<u32, GCol> = HashMap::new();
    let mut rows: HashMap<u32, GRow> = HashMap::new();
    let mut expected = 0usize;
    for &j in &grid.supers {
        let ju = j as usize;
        if ju % py != y {
            continue;
        }
        let members = member_list(
            ju % px,
            sym.blocks_left(ju)
                .iter()
                .filter(|&&k| grid.member.contains(k as usize))
                .map(|&k| k as usize % px),
        );
        let Some(links) = tree_links(&members, x, true) else {
            continue;
        };
        let mut blocks = Vec::new();
        let mut total_rows = 0usize;
        for &k in sym.blocks_left(ju) {
            if k as usize % px == x && grid.member.contains(k as usize) {
                let (qlo, qhi) = kernels::block_range(&plan.fact, k as usize, ju);
                blocks.push((k, qlo as u32, qhi as u32));
                total_rows += qhi - qlo;
            }
        }
        if !links.is_root {
            expected += 1;
        }
        cols.insert(
            j,
            GCol {
                children: links.children.iter().map(|&r| r + px * y).collect(),
                blocks,
                total_rows,
            },
        );
    }
    let mut local_pending: HashMap<u32, u32> = HashMap::new();
    for c in cols.values() {
        for &(k, _, _) in &c.blocks {
            *local_pending.entry(k).or_insert(0) += 1;
        }
    }
    for &k in &grid.supers {
        let ku = k as usize;
        if ku % px != x {
            continue;
        }
        let members = member_list(
            ku % py,
            sym.blocks_below(ku)
                .iter()
                .filter(|&&j| grid.member.contains(j as usize))
                .map(|&j| j as usize % py),
        );
        let Some(links) = tree_links(&members, y, true) else {
            continue;
        };
        expected += links.children.len();
        rows.insert(
            k,
            GRow {
                fmod: local_pending.get(&k).copied().unwrap_or(0) + links.children.len() as u32,
                parent: links.parent.map(|c| x + px * c),
            },
        );
    }

    // --- Event-driven solve ---
    let t0 = comm.now() + gpu.kernel_launch;
    let mut ex = GpuExecutor::new(gpu, t0);
    let mut usum: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut row_ready: HashMap<u32, f64> = HashMap::new();
    let mut work: Vec<u32> = rows
        .iter()
        .filter(|(_, r)| r.fmod == 0)
        .map(|(&k, _)| k)
        .collect();
    work.sort_unstable();
    let mut received = 0usize;
    let mut last_event = t0;

    let put = |depart: f64, dst: usize, t: u64, payload: &[f64]| {
        let bytes = 8 * payload.len() + 64;
        let dst_world = comm.world_rank(dst);
        let (lat, wire) = gpu.put_cost(me_world, dst_world, bytes);
        comm.send_timed(depart, lat + wire, dst, t, payload, Category::XyComm);
    };

    loop {
        while let Some(k) = work.pop() {
            let ku = k as usize;
            let info = rows.get(&k).expect("trigger row");
            let ready = row_ready.get(&k).copied().unwrap_or(t0);
            match info.parent {
                None => {
                    let w = sym.sup_width(ku);
                    let y_k = y_vals.get(&k).expect("y present at diagonal owner");
                    let (x_k, _) = kernels::diag_solve_u(
                        &plan.fact,
                        ku,
                        y_k,
                        usum.get(&k).map(|v| &v[..]),
                        nrhs,
                    );
                    let f = ex.schedule(ready, gpu.panel_op_time(w, w, nrhs));
                    handle_x_gpu(
                        plan, gpu, &cols, &mut rows, &mut usum, &mut row_ready, &mut ex, &put,
                        k, &x_k, f, nrhs, &mut work,
                    );
                    last_event = last_event.max(f);
                    x_vals.insert(k, x_k);
                }
                Some(p) => {
                    let w = sym.sup_width(ku);
                    let zeros;
                    let payload = match usum.get(&k) {
                        Some(v) => &v[..],
                        None => {
                            zeros = vec![0.0; w * nrhs];
                            &zeros[..]
                        }
                    };
                    put(ready, p, tag(1, KIND_USUM, k), payload);
                    last_event = last_event.max(ready);
                }
            }
        }
        if received >= expected {
            break;
        }
        let msg = comm.recv_raw_tag_masked(EPOCH_MASK, 1 << 48);
        received += 1;
        let sup = (msg.tag & SUP_MASK) as u32;
        last_event = last_event.max(msg.arrival);
        match msg.tag & KIND_MASK {
            KIND_X => {
                handle_x_gpu(
                    plan, gpu, &cols, &mut rows, &mut usum, &mut row_ready, &mut ex, &put,
                    sup, &msg.payload, msg.arrival, nrhs, &mut work,
                );
                x_vals.entry(sup).or_insert_with(|| msg.payload.to_vec());
            }
            KIND_USUM => {
                let w = sym.sup_width(sup as usize);
                let acc = usum.entry(sup).or_insert_with(|| vec![0.0; w * nrhs]);
                for (a, &v) in acc.iter_mut().zip(msg.payload.iter()) {
                    *a += v;
                }
                let e = row_ready.entry(sup).or_insert(t0);
                if msg.arrival > *e {
                    *e = msg.arrival;
                }
                let r = rows.get_mut(&sup).expect("usum targets trigger row");
                r.fmod -= 1;
                if r.fmod == 0 {
                    work.push(sup);
                }
            }
            _ => unreachable!("unexpected kind in GPU U pass"),
        }
    }
    let end = last_event.max(ex.last_finish());
    comm.account(ex.busy_time(), Category::Flop);
    comm.account((end - comm.now() - ex.busy_time()).max(0.0), Category::XyComm);
    comm.advance_to(end);
}

/// `x(J)` available at `t_avail`: forward along the tree, fused GEMV task.
#[allow(clippy::too_many_arguments)]
fn handle_x_gpu(
    plan: &Plan,
    gpu: &GpuModel,
    cols: &HashMap<u32, GCol>,
    rows: &mut HashMap<u32, GRow>,
    usum: &mut HashMap<u32, Vec<f64>>,
    row_ready: &mut HashMap<u32, f64>,
    ex: &mut GpuExecutor,
    put: &impl Fn(f64, usize, u64, &[f64]),
    j: u32,
    x_j: &[f64],
    t_avail: f64,
    nrhs: usize,
    work: &mut Vec<u32>,
) {
    let Some(info) = cols.get(&j) else {
        return;
    };
    for &child in &info.children {
        put(t_avail, child, tag(1, KIND_X, j), x_j);
    }
    if info.blocks.is_empty() {
        return;
    }
    let sym = plan.fact.lu.sym();
    // Fused task: all my U(K, J) GEMVs for this column.
    let mut maxw = 1usize;
    for &(k, _, _) in &info.blocks {
        maxw = maxw.max(sym.sup_width(k as usize));
    }
    let f = ex.schedule(t_avail, gpu.panel_op_time(maxw, info.total_rows, nrhs));
    for &(k, qlo, qhi) in &info.blocks {
        let w = sym.sup_width(k as usize);
        let acc = usum.entry(k).or_insert_with(|| vec![0.0; w * nrhs]);
        kernels::apply_u_block(
            &plan.fact,
            k as usize,
            j as usize,
            qlo as usize,
            qhi as usize,
            x_j,
            acc,
            nrhs,
        );
        let e = row_ready.entry(k).or_insert(f);
        if f > *e {
            *e = f;
        }
        let r = rows.get_mut(&k).expect("U blocks target trigger rows");
        r.fmod -= 1;
        if r.fmod == 0 {
            work.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    fn check_gpu(a: &sparse::CsrMatrix, px: usize, py: usize, pz: usize, nrhs: usize) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let want = f.solve(&b, nrhs);
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs,
            algorithm: Algorithm::New3d,
            arch: Arch::Gpu,
            machine: MachineModel::perlmutter_gpu(),
            chaos_seed: 0,
        };
        let out = solve_distributed(&f, &b, &cfg);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(
            diff < 1e-11,
            "gpu px={px} py={py} pz={pz} nrhs={nrhs}: diff {diff}"
        );
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn single_gpu_whole_matrix() {
        check_gpu(&gen::poisson2d_5pt(8, 8), 1, 1, 1, 1);
    }

    #[test]
    fn single_gpu_per_grid() {
        check_gpu(&gen::poisson2d_5pt(10, 10), 1, 1, 4, 1);
    }

    #[test]
    fn single_gpu_multi_rhs() {
        check_gpu(&gen::poisson2d_9pt(9, 9), 1, 1, 2, 5);
    }

    #[test]
    fn multi_gpu_px() {
        check_gpu(&gen::poisson2d_5pt(10, 10), 4, 1, 1, 1);
    }

    #[test]
    fn multi_gpu_px_pz() {
        check_gpu(&gen::poisson2d_9pt(12, 12), 2, 1, 4, 1);
    }

    #[test]
    fn multi_gpu_full_grid() {
        check_gpu(&gen::poisson2d_5pt(12, 12), 2, 2, 2, 2);
    }

    #[test]
    fn crusher_profile_single_gpu() {
        let a = gen::poisson2d_5pt(9, 9);
        let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), 1);
        let want = f.solve(&b, 1);
        let cfg = SolverConfig {
            px: 1,
            py: 1,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Gpu,
            machine: MachineModel::crusher_gpu(),
            chaos_seed: 0,
        };
        let out = solve_distributed(&f, &b, &cfg);
        assert!(sparse::max_abs_diff(&out.x, &want) < 1e-11);
    }
}
