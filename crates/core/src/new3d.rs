//! The proposed 3D SpTRSV (paper Algorithm 1, CPU path).
//!
//! Each grid treats its leaf-path submatrix as one 2D block-cyclic matrix:
//! one masked 2D L-solve (replicated-node RHS entries zeroed on all but the
//! smallest replicating grid), one sparse allreduce of the partial ancestor
//! solutions, one 2D U-solve. Exactly one inter-grid synchronization, in
//! contrast to the baseline's `O(log Pz)`.
//!
//! The rank program is a thin interpreter over the plan's compiled
//! schedule ([`crate::schedule`]): all tree links, counters, and pack
//! lists were resolved at plan time, so repeated solves touch none of it.

use crate::allreduce::{naive_allreduce, sparse_allreduce};
use crate::driver::{ExecutorKind, PhaseTimes};
use crate::plan::Plan;
use crate::schedule::{RankSchedule, ScheduleKey};
use crate::solve2d::{l_solve_pass, u_solve_pass, Ctx, SolveState};
use simgrid::{Category, Transport};

/// Per-rank output of a distributed solve.
pub struct RankOutput {
    /// Phase timing breakdown for this rank.
    pub phases: PhaseTimes,
    /// Diagonally owned solution pieces `(supernode, w × nrhs col-major)`.
    pub x_pieces: Vec<(u32, Vec<f64>)>,
}

/// Rank outputs cross a genuine address-space boundary under the
/// process-per-rank backend; the pieces travel as `f64` bit patterns so
/// the assembled solution stays bit-identical to the in-process backends.
impl simgrid::wire::WirePack for RankOutput {
    fn pack(&self, out: &mut Vec<u8>) {
        self.phases.pack(out);
        self.x_pieces.pack(out);
    }
    fn unpack(r: &mut simgrid::wire::WireReader<'_>) -> Result<Self, simgrid::wire::WireError> {
        Ok(RankOutput {
            phases: PhaseTimes::unpack(r)?,
            x_pieces: Vec::unpack(r)?,
        })
    }
}

/// Snapshot helper: `(now, flop + xy_busy, z_time)`.
fn snap<T: Transport>(comm: &T) -> (f64, f64, f64) {
    let t = comm.time_snapshot();
    (
        comm.now(),
        t[Category::Flop as usize] + t[Category::XyComm as usize],
        t[Category::ZComm as usize],
    )
}

/// Run the proposed 3D SpTRSV as the rank program of world rank
/// `world.rank()`. `grid_comm` must rank processes as `x + px·y`; `zcomm`
/// ranks the `Pz` grids at fixed `(x, y)` by `z`.
#[allow(clippy::too_many_arguments)]
pub fn run_rank<T: Transport>(
    plan: &Plan,
    grid_comm: &T,
    zcomm: &T,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    tree_comm: bool,
    use_naive_allreduce: bool,
    executor: ExecutorKind,
) -> RankOutput {
    let grid = &plan.grids[z];
    let sched = plan.schedule(ScheduleKey {
        baseline: false,
        tree_comm,
    });
    let rs: &RankSchedule = &sched.ranks[plan.rank_of(x, y, z)];
    let ctx = Ctx {
        plan,
        grid,
        comm: grid_comm,
        x,
        y,
        nrhs,
        pb,
        executor,
    };
    let mut state = SolveState::default();

    let (t0, b0, z0) = snap(grid_comm);
    for step in &rs.l_steps {
        if let Some(pass) = &step.pass {
            l_solve_pass(&ctx, pass, &mut state);
        }
    }
    let (t1, b1, _) = snap(grid_comm);

    // Inter-grid synchronization: the only one in the algorithm.
    if use_naive_allreduce {
        naive_allreduce(plan, zcomm, &rs.naive, z, nrhs, &mut state.y_vals);
    } else {
        sparse_allreduce(plan, zcomm, &rs.zsteps, nrhs, &mut state.y_vals);
    }
    // Grids re-synchronize here implicitly through the reduce/broadcast
    // pattern; advance to the communicator's view of now.
    let (t2, b2, _z2) = snap(grid_comm);

    for step in &rs.u_steps {
        if let Some(pass) = &step.pass {
            u_solve_pass(&ctx, pass, &mut state);
        }
    }
    let (t3, b3, z3) = snap(grid_comm);

    let x_pieces = state
        .x_vals
        .iter()
        .filter(|(&k, _)| plan.owner_xy(k as usize) == (x, y))
        .map(|(&k, v)| (k, v.clone()))
        .collect();

    RankOutput {
        phases: PhaseTimes {
            l_wall: t1 - t0,
            z_wall: t2 - t1,
            u_wall: t3 - t2,
            l_busy: b1 - b0,
            u_busy: b3 - b2,
            z_time: z3 - z0,
            total: t3 - t0,
        },
        x_pieces,
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    fn check(a: &sparse::CsrMatrix, px: usize, py: usize, pz: usize, nrhs: usize) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let want = f.solve(&b, nrhs);
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(
            diff < 1e-11,
            "px={px} py={py} pz={pz} nrhs={nrhs}: diff {diff}"
        );
    }

    #[test]
    fn pz1_reduces_to_2d_solver() {
        check(&gen::poisson2d_5pt(9, 9), 2, 2, 1, 1);
    }

    #[test]
    fn single_rank() {
        check(&gen::poisson2d_5pt(7, 7), 1, 1, 1, 1);
    }

    #[test]
    fn pure_z_layout() {
        check(&gen::poisson2d_5pt(10, 10), 1, 1, 4, 1);
    }

    #[test]
    fn full_3d_layout() {
        check(&gen::poisson2d_9pt(12, 12), 2, 3, 4, 1);
    }

    #[test]
    fn multi_rhs() {
        check(&gen::poisson2d_9pt(10, 10), 2, 2, 2, 5);
    }

    #[test]
    fn deep_z() {
        check(&gen::poisson2d_5pt(16, 16), 1, 2, 8, 1);
    }

    #[test]
    fn kkt_matrix_3d() {
        check(&gen::kkt3d(3, 3, 3), 2, 2, 2, 2);
    }

    #[test]
    fn wide_grid() {
        check(&gen::poisson2d_5pt(12, 12), 4, 1, 2, 1);
    }

    #[test]
    fn tall_grid() {
        check(&gen::poisson2d_5pt(12, 12), 1, 4, 2, 1);
    }
}
