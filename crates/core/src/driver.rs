//! Top-level driver: run a distributed SpTRSV on a cluster backend and
//! gather the solution plus the paper's timing breakdown.
//!
//! The rank program is generic over the [`Transport`]; the driver picks
//! the backend: the virtual-time simulator (timing predictions, fault
//! injection, tracing), the real shared-memory transport (actual
//! threads, wall-clock timing), or the process-per-rank socket transport
//! (one OS process per rank, wire-framed messages, wall-clock timing).

use crate::new3d::RankOutput;
use crate::plan::Plan;
use crate::schedule::ScheduleKey;
use lufactor::Factorized;
use simgrid::{ClusterOptions, MachineModel, RankStats, Transport};
use std::sync::Arc;

/// Which 3D SpTRSV algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The proposed algorithm (paper Alg. 1): masked 2D solves + sparse
    /// allreduce + binary communication trees.
    New3d,
    /// The proposed algorithm with flat intra-grid communication (ablation
    /// of the communication trees, `NEW3DSOLVETREECOMM` unset).
    New3dFlat,
    /// The proposed algorithm with the naive per-node dense allreduce
    /// (ablation of the sparse allreduce scheme).
    New3dNaiveAllreduce,
    /// The ICS'19 baseline: level-by-level with `O(log Pz)` inter-grid
    /// synchronizations and flat intra-grid communication.
    Baseline3d,
}

/// Communication backend carrying the solve's messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The virtual-time simulator (`simgrid`): predicted makespans under
    /// an α–β machine model, with fault injection and span tracing.
    #[default]
    Sim,
    /// The real shared-memory transport (`comm_native`): one OS thread
    /// per rank, real messages, wall-clock timing. No machine model is
    /// applied; fault injection and tracing are unavailable (sim-private).
    Native,
    /// The process-per-rank socket transport (`comm_proc`): one OS
    /// process per rank over Unix-domain sockets, every message crossing
    /// the address-space boundary as a wire frame. Wall-clock timing;
    /// fault injection and tracing are unavailable (sim-private).
    Proc,
}

impl Backend {
    /// All valid `--backend` spellings, for error messages and help text.
    pub const NAMES: &'static str = "sim | native | proc";
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            "proc" => Ok(Backend::Proc),
            other => Err(format!(
                "unknown backend '{other}': valid backends are {}",
                Backend::NAMES
            )),
        }
    }
}

/// Intra-grid execution engine interpreting the compiled passes
/// (DESIGN.md §12). Both engines run the same [`crate::schedule::Schedule`]
/// and produce bit-identical solutions; they differ in *when* rows fire,
/// hence in the predicted/measured timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecutorKind {
    /// Message-driven elimination-tree walk: rows fire reactively as
    /// their dependency counters drain (paper Alg. 3).
    #[default]
    Tree,
    /// Level-set engine: rows fire in the precompiled dependency-level
    /// program with chain batching ([`crate::levelexec`]). On the
    /// single-GPU column sweep (`Px = Py = 1`) the column order is already
    /// a level linearization, so the selection is a no-op there.
    Level,
}

impl std::str::FromStr for ExecutorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" => Ok(ExecutorKind::Tree),
            "level" => Ok(ExecutorKind::Level),
            other => Err(format!("unknown executor '{other}' (expected tree|level)")),
        }
    }
}

/// Execution architecture for the intra-grid solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// CPU ranks (Alg. 3).
    Cpu,
    /// One GPU per rank: single-GPU kernels when `Px = Py = 1` (Alg. 4),
    /// NVSHMEM-style one-sided multi-GPU kernels otherwise (Alg. 5).
    Gpu,
}

/// Full configuration of one distributed solve.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// 2D grid rows.
    pub px: usize,
    /// 2D grid columns.
    pub py: usize,
    /// Number of 2D grids (power of two).
    pub pz: usize,
    /// Right-hand sides.
    pub nrhs: usize,
    /// Algorithm variant.
    pub algorithm: Algorithm,
    /// CPU or GPU execution.
    pub arch: Arch,
    /// Machine cost model.
    pub machine: MachineModel,
    /// Nonzero: chaotic any-source message selection (failure injection).
    /// Sim backend only.
    pub chaos_seed: u64,
    /// Fault-injection plan for the simulated network (inert by default).
    /// Sim backend only.
    pub fault: simgrid::FaultPlan,
    /// Communication backend (simulator by default).
    pub backend: Backend,
    /// Intra-grid execution engine (tree walk by default).
    pub executor: ExecutorKind,
}

/// Per-rank phase timing, in seconds of the backend's clock: simulated
/// seconds under [`Backend::Sim`], measured wall-clock seconds under
/// [`Backend::Native`] and [`Backend::Proc`].
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseTimes {
    /// Wall time of the L-solve phase.
    pub l_wall: f64,
    /// Wall time of the inter-grid synchronization phase (proposed
    /// algorithm only; the baseline interleaves it into `l/u_wall`).
    pub z_wall: f64,
    /// Wall time of the U-solve phase.
    pub u_wall: f64,
    /// Busy (FP + intra-grid comm) time during the L phase — the paper's
    /// load-balance quantity with Z-comm excluded (Fig. 7/8).
    pub l_busy: f64,
    /// Busy time during the U phase.
    pub u_busy: f64,
    /// Total inter-grid communication time (Z-Comm of Fig. 5/6).
    pub z_time: f64,
    /// Total solve wall time on this rank.
    pub total: f64,
}

impl simgrid::wire::WirePack for PhaseTimes {
    fn pack(&self, out: &mut Vec<u8>) {
        for v in [
            self.l_wall,
            self.z_wall,
            self.u_wall,
            self.l_busy,
            self.u_busy,
            self.z_time,
            self.total,
        ] {
            simgrid::wire::put_f64(out, v);
        }
    }
    fn unpack(r: &mut simgrid::wire::WireReader<'_>) -> Result<Self, simgrid::wire::WireError> {
        Ok(PhaseTimes {
            l_wall: r.f64()?,
            z_wall: r.f64()?,
            u_wall: r.f64()?,
            l_busy: r.f64()?,
            u_busy: r.f64()?,
            z_time: r.f64()?,
            total: r.f64()?,
        })
    }
}

/// Result of a distributed solve.
pub struct SolveOutcome {
    /// Gathered solution in the *original* ordering (`n × nrhs` col-major).
    pub x: Vec<f64>,
    /// Per-rank phase times.
    pub phases: Vec<PhaseTimes>,
    /// Per-rank simulator statistics (category times, bytes, messages).
    pub stats: Vec<RankStats>,
    /// Wall time of the whole solve (max rank clock): simulated seconds
    /// under [`Backend::Sim`], real seconds under [`Backend::Native`]
    /// and [`Backend::Proc`].
    pub makespan: f64,
    /// Maximum discrepancy between replicated ancestor solutions computed
    /// by different grids (a correctness telltale; ~1e-12 expected).
    pub replication_disagreement: f64,
    /// Per-rank event timelines (only with [`solve_traced`]).
    pub traces: Vec<Vec<simgrid::TraceEvent>>,
    /// Per-rank flight-recorder contents: the most recent spans of every
    /// rank at the end of the solve, oldest first (always recorded on both
    /// backends, bounded by the recorder capacity).
    pub flight: Vec<Vec<simgrid::TraceEvent>>,
    /// Counters and histograms merged across all ranks (always recorded).
    pub metrics: simgrid::Metrics,
}

/// A planned solver: the 3D layout, grid membership, and subcommunicator
/// structure are computed once and reused across solves — the paper's
/// "setup once, solve many right-hand sides" usage (preconditioner
/// application, multi-load-case campaigns).
pub struct Solver3d {
    plan: Arc<Plan>,
    cfg: SolverConfig,
}

impl Solver3d {
    /// Plan a solver for the given factorization and configuration. The
    /// communication schedule is compiled here, so subsequent [`solve`]
    /// calls perform zero schedule setup.
    ///
    /// [`solve`]: Solver3d::solve
    pub fn new(fact: Arc<Factorized>, cfg: SolverConfig) -> Self {
        let plan = Arc::new(Plan::new(fact, cfg.px, cfg.py, cfg.pz));
        plan.schedule(schedule_key(&cfg));
        Solver3d { plan, cfg }
    }

    /// The underlying plan (for analysis, e.g. `sptrsv::analysis`).
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// The configuration this solver was planned for.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Solve `A x = b` for `nrhs` column-major RHSs in the original
    /// ordering (`nrhs` may differ from the planned `cfg.nrhs`).
    pub fn solve(&self, b: &[f64], nrhs: usize) -> SolveOutcome {
        let mut cfg = self.cfg.clone();
        cfg.nrhs = nrhs;
        solve_planned(&self.plan, b, &cfg)
    }
}

/// Run one distributed SpTRSV over the virtual cluster.
///
/// `b` is the right-hand side in the *original* ordering (`n × nrhs`
/// col-major); the returned solution is in the original ordering too.
/// Plans the 3D layout on every call — use [`Solver3d`] to amortize the
/// planning over many solves.
pub fn solve_distributed(fact: &Arc<Factorized>, b: &[f64], cfg: &SolverConfig) -> SolveOutcome {
    let plan = Arc::new(Plan::new(fact.clone(), cfg.px, cfg.py, cfg.pz));
    solve_planned(&plan, b, cfg)
}

/// Run one distributed SpTRSV with a prebuilt plan.
pub fn solve_planned(plan: &Arc<Plan>, b: &[f64], cfg: &SolverConfig) -> SolveOutcome {
    solve_traced(plan, b, cfg, false)
}

/// The schedule family a configuration executes from.
fn schedule_key(cfg: &SolverConfig) -> ScheduleKey {
    match (cfg.algorithm, cfg.arch) {
        (Algorithm::Baseline3d, _) => ScheduleKey {
            baseline: true,
            tree_comm: false,
        },
        (Algorithm::New3dFlat, Arch::Cpu) => ScheduleKey {
            baseline: false,
            tree_comm: false,
        },
        // The proposed algorithm; GPU paths always use trees.
        _ => ScheduleKey {
            baseline: false,
            tree_comm: true,
        },
    }
}

/// One rank of the distributed solve, on any [`Transport`] backend:
/// build the grid and z subcommunicators, then dispatch to the algorithm
/// variant's executor.
fn rank_program<T: Transport>(
    plan: &Plan,
    algorithm: Algorithm,
    arch: Arch,
    executor: ExecutorKind,
    pb: &[f64],
    nrhs: usize,
    world: T,
) -> RankOutput {
    let (x, y, z) = plan.coords(world.rank());
    let grid_comm = world.split(z, x + plan.px * y);
    let zcomm = world.split(x + plan.px * y, z);
    match (algorithm, arch) {
        (Algorithm::Baseline3d, Arch::Cpu) => {
            crate::baseline3d::run_rank(plan, &grid_comm, &zcomm, x, y, z, pb, nrhs, executor)
        }
        (Algorithm::Baseline3d, Arch::Gpu) => {
            panic!("the baseline 3D algorithm has no GPU implementation (paper §3.4)")
        }
        (alg, Arch::Cpu) => crate::new3d::run_rank(
            plan,
            &grid_comm,
            &zcomm,
            x,
            y,
            z,
            pb,
            nrhs,
            alg != Algorithm::New3dFlat,
            alg == Algorithm::New3dNaiveAllreduce,
            executor,
        ),
        (alg, Arch::Gpu) => crate::gpusolve::run_rank(
            plan,
            &grid_comm,
            &zcomm,
            x,
            y,
            z,
            pb,
            nrhs,
            alg == Algorithm::New3dNaiveAllreduce,
            executor,
        ),
    }
}

/// Like [`solve_planned`], optionally recording per-rank event timelines
/// (`SolveOutcome::traces`; render with [`simgrid::render_timeline`]).
/// Tracing is sim-private: `trace = true` requires [`Backend::Sim`].
pub fn solve_traced(plan: &Arc<Plan>, b: &[f64], cfg: &SolverConfig, trace: bool) -> SolveOutcome {
    let fact = &plan.fact;
    let n = fact.lu.n();
    let nrhs = cfg.nrhs;
    assert_eq!(b.len(), n * nrhs, "rhs size mismatch");
    assert_eq!(
        (cfg.px, cfg.py, cfg.pz),
        (plan.px, plan.py, plan.pz),
        "configuration does not match the plan"
    );

    // Warm the schedule cache outside the rank programs (no-op when the
    // solver was planned ahead — the "compile once, solve many" path).
    plan.schedule(schedule_key(cfg));

    // Permute the RHS once (setup, untimed).
    let mut pb = vec![0.0; n * nrhs];
    for r in 0..nrhs {
        for i in 0..n {
            pb[r * n + i] = b[r * n + fact.nd.perm[i]];
        }
    }
    let pb = Arc::new(pb);

    let algorithm = cfg.algorithm;
    let arch = cfg.arch;
    let executor = cfg.executor;
    // Opt-in stall forensics: when set, a stall watchdog drains every
    // rank's flight recorder into a Perfetto trace at this path before
    // panicking (both backends).
    let flight_dump = std::env::var_os("SPTRSV_FLIGHT_DUMP").map(std::path::PathBuf::from);
    let report = match cfg.backend {
        Backend::Sim => {
            let opts = ClusterOptions {
                chaos_seed: cfg.chaos_seed,
                trace,
                fault: cfg.fault.clone(),
                flight_dump_path: flight_dump,
                ..ClusterOptions::default()
            };
            let plan2 = Arc::clone(plan);
            let pb2 = Arc::clone(&pb);
            simgrid::run(plan.nranks(), cfg.machine.clone(), &opts, move |world| {
                rank_program(&plan2, algorithm, arch, executor, &pb2, nrhs, world)
            })
        }
        Backend::Native => {
            assert!(
                cfg.fault.is_inert() && cfg.chaos_seed == 0,
                "fault injection is sim-private: run faults on Backend::Sim"
            );
            assert!(!trace, "span tracing is sim-private: trace on Backend::Sim");
            let opts = comm_native::NativeOptions {
                flight_dump_path: flight_dump,
                ..comm_native::NativeOptions::default()
            };
            let plan2 = Arc::clone(plan);
            let pb2 = Arc::clone(&pb);
            comm_native::run(plan.nranks(), cfg.machine.clone(), &opts, move |world| {
                rank_program(&plan2, algorithm, arch, executor, &pb2, nrhs, world)
            })
        }
        Backend::Proc => {
            assert!(
                cfg.fault.is_inert() && cfg.chaos_seed == 0,
                "fault injection is sim-private: run faults on Backend::Sim"
            );
            assert!(!trace, "span tracing is sim-private: trace on Backend::Sim");
            let opts = comm_proc::ProcOptions {
                flight_dump_path: flight_dump,
                ..comm_proc::ProcOptions::default()
            };
            let plan2 = Arc::clone(plan);
            let pb2 = Arc::clone(&pb);
            // The rank programs run in forked children; the plan, the
            // permuted RHS, and the compiled schedule (warmed above) are
            // inherited copy-on-write, and each rank's `RankOutput`
            // returns over the wire via its `WirePack` encoding.
            comm_proc::run(plan.nranks(), cfg.machine.clone(), &opts, move |world| {
                rank_program(&plan2, algorithm, arch, executor, &pb2, nrhs, world)
            })
        }
    };

    // Assemble the permuted solution from the diagonal pieces. Smaller z
    // written last so replicated values deterministically come from the
    // smallest grid; track the max disagreement between replicas.
    let sym = fact.lu.sym();
    let mut xp = vec![f64::NAN; n * nrhs];
    let mut disagreement: f64 = 0.0;
    let mut indexed: Vec<(usize, &RankOutput)> = report.results.iter().enumerate().collect();
    indexed.sort_by_key(|&(rank, _)| std::cmp::Reverse(rank));
    for (_, out) in indexed {
        for (k, piece) in &out.x_pieces {
            let cols = sym.sup_cols(*k as usize);
            let w = cols.len();
            for r in 0..nrhs {
                for j in 0..w {
                    let dst = &mut xp[r * n + cols.start + j];
                    let v = piece[r * w + j];
                    if !dst.is_nan() {
                        disagreement = disagreement.max((*dst - v).abs());
                    }
                    *dst = v;
                }
            }
        }
    }
    assert!(
        xp.iter().all(|v| !v.is_nan()),
        "solution incomplete: some supernodes never solved"
    );

    // Un-permute.
    let mut x = vec![0.0; n * nrhs];
    for r in 0..nrhs {
        for i in 0..n {
            x[r * n + fact.nd.perm[i]] = xp[r * n + i];
        }
    }

    SolveOutcome {
        x,
        phases: report.results.iter().map(|o| o.phases).collect(),
        stats: report.stats,
        makespan: report.makespan,
        replication_disagreement: disagreement,
        traces: report.traces,
        flight: report.flight,
        metrics: report.metrics,
    }
}

impl SolveOutcome {
    /// `(min, mean, max)` over ranks of an extracted phase quantity.
    pub fn min_mean_max(&self, f: impl Fn(&PhaseTimes) -> f64) -> (f64, f64, f64) {
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for p in &self.phases {
            let v = f(p);
            mn = mn.min(v);
            mx = mx.max(v);
            sum += v;
        }
        (mn, sum / self.phases.len() as f64, mx)
    }

    /// Mean over ranks of an extracted phase quantity.
    pub fn mean(&self, f: impl Fn(&PhaseTimes) -> f64) -> f64 {
        self.phases.iter().map(&f).sum::<f64>() / self.phases.len() as f64
    }

    /// Measured critical path of this solve. Meaningful only when the run
    /// was traced ([`solve_traced`] with `trace = true`); returns an
    /// all-zero path otherwise.
    pub fn critical_path(&self) -> crate::analysis::CriticalPath {
        crate::analysis::critical_path(&self.traces, self.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;

    /// The tentpole guarantee: planning compiles the schedule exactly
    /// once, and repeated solves perform zero additional setup while
    /// producing identical results.
    #[test]
    fn repeated_solves_compile_schedule_once() {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, 4, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), 2);
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 4,
            nrhs: 2,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Backend::Sim,
            executor: Default::default(),
        };
        let solver = Solver3d::new(Arc::clone(&f), cfg);
        assert_eq!(solver.plan().schedule_compiles(), 1);
        let first = solver.solve(&b, 2);
        let second = solver.solve(&b, 2);
        assert_eq!(
            solver.plan().schedule_compiles(),
            1,
            "solves must not recompile the schedule"
        );
        assert_eq!(first.x, second.x);
        assert_eq!(first.makespan, second.makespan);
    }
}
