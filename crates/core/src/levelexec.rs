//! The level-set execution engine.
//!
//! [`run_level_pass`] interprets the same compiled [`PassSched`] as the
//! message-driven tree walk ([`crate::schedule::run_pass_with`]), but
//! fires trigger rows in the pass's precompiled level program
//! ([`PassSched::level_order`] / [`PassSched::level_ptr`]) instead of a
//! reactive ready queue: sweep the levels in order, and before firing
//! each row, block on the transport until the row's remaining
//! contributions have arrived. Because the levels are computed on the
//! factor's *global* dependency DAG and the within-level order is a
//! linear extension of it, a parked rank can only ever wait on rows that
//! other ranks fire strictly earlier in their own programs (or on
//! same-supernode reduction partials, which flow down a tree) — so the
//! barriers cannot deadlock, even under adversarial message reordering.
//!
//! Everything message-shaped is shared with the tree executor
//! (`recv_and_dispatch`, `fire_row`, the duplicate-delivery dedup and
//! excess-partial validation), so the two engines cannot drift apart
//! semantically; and because every contribution still lands in the same
//! order-independent ledger slots, the solution bits are identical to the
//! tree engine's no matter which engine ran (asserted by
//! `tests/executor_conformance.rs`).
//!
//! The engine reuses the caller's [`PassScratch`] and performs no heap
//! allocation after [`PassScratch::reset`] — the steady-state audit
//! (`tests/alloc_audit.rs`) brackets this loop exactly like the tree
//! walk. The `work` queue the shared helpers push completed rows into is
//! ignored here (the firing order is precompiled); its capacity is
//! reserved up front, so the pushes never allocate.

use crate::schedule::{
    announce_ext_roots, fire_row, pass_report, recv_and_dispatch, PassEngine, PassSched,
    PassScratch,
};

/// Interpret one compiled 2D pass with the level-set engine.
pub fn run_level_pass<E: PassEngine>(engine: &mut E, pass: &PassSched, scratch: &mut PassScratch) {
    scratch.reset(pass);
    // Steady-state region: no heap allocation past this point.
    let _audit = crate::audit::pass_scope();
    let PassScratch { fmod, work, seen } = scratch;

    announce_ext_roots(engine, pass, fmod, work);

    let mut received = 0u32;
    for (lev, rows) in pass.levels().enumerate() {
        for &ri in rows {
            let idx = ri as usize;
            while fmod[idx] > 0 {
                engine.on_level_wait(lev as u32, &pass.rows[idx], fmod[idx]);
                recv_and_dispatch(engine, pass, fmod, work, seen, &mut received, true);
            }
            fire_row(engine, pass, idx, fmod, work);
        }
    }
    // All rows fired; drain the remaining receive budget — this rank may
    // still owe broadcast forwards to its tree children.
    while received < pass.expected {
        recv_and_dispatch(engine, pass, fmod, work, seen, &mut received, true);
    }
    if fmod.iter().any(|&c| c != 0) {
        panic!(
            "level pass exhausted its receive budget with unmet dependencies{}",
            pass_report(pass, fmod, received)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ColSched, RecvEvent, RowSched};
    use std::sync::Arc;

    /// Script-driven engine mirroring the schedule-module mock, plus
    /// level-wait observation.
    struct MockEngine {
        script: Vec<RecvEvent>,
        next: usize,
        fired: Vec<u32>,
        waits: Vec<(u32, u32)>,
    }

    impl MockEngine {
        fn new(script: Vec<RecvEvent>) -> Self {
            MockEngine {
                script,
                next: 0,
                fired: Vec::new(),
                waits: Vec::new(),
            }
        }
    }

    impl PassEngine for MockEngine {
        fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]> {
            self.fired.push(row.sup);
            vec![0.0].into()
        }
        fn store_solved(&mut self, _sup: u32, _v: &[f64]) {}
        fn solved(&self, _sup: u32) -> Arc<[f64]> {
            vec![0.0].into()
        }
        fn forward(&mut self, _col: &ColSched, _v: &Arc<[f64]>) {}
        fn send_partial(&mut self, row: &RowSched, _parent: u32) {
            self.fired.push(row.sup);
        }
        fn apply_column(&mut self, _col: &ColSched, _v: &[f64], _scatter: &[u32]) {}
        fn add_partial(&mut self, _row: &RowSched, _src: u32, _payload: &[f64]) {}
        fn recv(&mut self, _epoch: u64) -> RecvEvent {
            let ev = self.script[self.next].clone();
            self.next += 1;
            ev
        }
        fn on_level_wait(&mut self, level: u32, row: &RowSched, _outstanding: u32) {
            self.waits.push((level, row.sup));
        }
    }

    /// Two rows in two levels; the second row waits at its barrier for a
    /// partial, and the wait is attributed to the right level and row.
    #[test]
    fn fires_in_level_order_and_attributes_barrier_waits() {
        let pass = PassSched {
            epoch: 0x3 << 48,
            lower: true,
            expected: 1,
            cols: vec![],
            rows: vec![
                RowSched {
                    sup: 2,
                    fmod0: 0,
                    parent: None,
                    children: vec![],
                },
                RowSched {
                    sup: 9,
                    fmod0: 1,
                    parent: Some(3),
                    children: vec![1],
                },
            ],
            ext_roots: vec![],
            scatter: vec![],
            level_order: vec![0, 1],
            level_ptr: vec![0, 1, 2],
        };
        let script = vec![RecvEvent {
            vector: false,
            sup: 9,
            src: 1,
            payload: vec![0.0].into(),
        }];
        let mut eng = MockEngine::new(script);
        let mut scratch = PassScratch::new();
        run_level_pass(&mut eng, &pass, &mut scratch);
        assert_eq!(eng.fired, vec![2, 9], "precompiled firing order");
        assert_eq!(eng.waits, vec![(1, 9)], "barrier wait at level 1, row 9");
        assert_eq!(eng.next, 1, "the one expected message was consumed");
    }

    /// Duplicated deliveries are dropped without consuming receive budget,
    /// exactly as in the tree executor (shared dispatch path).
    #[test]
    fn duplicate_deliveries_are_idempotent() {
        let pass = PassSched {
            epoch: 0x4 << 48,
            lower: true,
            expected: 2,
            cols: vec![],
            rows: vec![RowSched {
                sup: 5,
                fmod0: 2,
                parent: Some(2),
                children: vec![1, 4],
            }],
            ext_roots: vec![],
            scatter: vec![],
            level_order: vec![0],
            level_ptr: vec![0, 1],
        };
        let dup = RecvEvent {
            vector: false,
            sup: 5,
            src: 1,
            payload: vec![0.0].into(),
        };
        let script = vec![
            dup.clone(),
            dup, // replayed delivery of the same partial
            RecvEvent {
                vector: false,
                sup: 5,
                src: 4,
                payload: vec![0.0].into(),
            },
        ];
        let mut eng = MockEngine::new(script);
        let mut scratch = PassScratch::new();
        run_level_pass(&mut eng, &pass, &mut scratch);
        // The replay is dropped without consuming budget; the second
        // child's partial still lands and the row fires once.
        assert_eq!(eng.fired, vec![5]);
        assert_eq!(eng.next, 3, "all three deliveries consumed");
    }
}
