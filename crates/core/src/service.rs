//! Batched multi-RHS serving front door (DESIGN.md §13).
//!
//! The paper's throughput story is amortization: compile the communication
//! schedule once, then push many right-hand sides through it. The
//! register-blocked kernels earn their 3.1–6.0x only at `nrhs >= 4`
//! (BENCH_pr4), but real serving traffic arrives as many *small*
//! independent requests. [`SolverService`] closes that gap: it accepts
//! single- or few-RHS solve requests against a cached [`Solver3d`] plan,
//! coalesces them under a batching policy (max batch width `B`, max wait
//! window `W`) into one `nrhs = k` solve, and demuxes the result columns
//! back to the requesters.
//!
//! The demux guarantee is *bit-identity*: column `r` of an `nrhs = k`
//! solve is bit-for-bit the solution of a standalone `nrhs = 1` solve of
//! that column (the register-blocked kernels compute every column with
//! the same operation order at any width — property-tested in PR 4 and
//! enforced end-to-end by `tests/service_conformance.rs`). Batching is
//! therefore invisible to callers except in latency.
//!
//! Production shape:
//!
//! * **Bounded queue with backpressure** — at most
//!   [`ServiceConfig::queue_capacity`] requests are open at once (queued,
//!   solving, or completed-but-uncollected). A full queue either blocks
//!   the submitter or rejects the request ([`QueueFullPolicy`]).
//! * **Batching policy** — a batch is dispatched when the queued width
//!   reaches `max_batch`, when the oldest queued request has waited
//!   `max_wait`, or when a shutdown drain flushes the remainder.
//! * **Graceful shutdown** — [`SolverService::shutdown`] stops intake,
//!   drains every queued request through the solver, and joins the
//!   dispatcher; outstanding tickets stay collectable.
//! * **Allocation-free steady state** — request slots, the queue ring,
//!   and the batch RHS buffer are preallocated at start; the mux/demux
//!   copies run inside [`crate::audit::pass_scope`] regions so
//!   `tests/alloc_audit.rs` can prove a warm service never allocates on
//!   the batch path.
//! * **Metrics and spans** — queue depth, batch width, and wait-time
//!   histograms plus flush-reason counters land in the same
//!   [`simgrid::Metrics`] registry as the solver series (catalog in
//!   `simgrid::metrics`), and every dispatched batch records a wall-clock
//!   [`simgrid::TraceEvent`] span retrievable via
//!   [`SolverService::batch_trace`].
//! * **Live observability** (DESIGN.md §14) — per-request latency is
//!   decomposed into queue-wait → batch-form → solve → demux log2
//!   histograms; [`SolverService::serve_metrics`] exposes the whole
//!   registry over HTTP in OpenMetrics text (a dependency-free
//!   `std::net` listener, one scrape per connection);
//!   [`SolverService::dump_flight_recorder`] drains the last batch's
//!   always-on flight recorder into a Perfetto trace and
//!   [`SolverService::span_profile`] accumulates a lifetime
//!   [`SpanProfile`] across batches.

use crate::analysis::{span_profile, SpanProfile};
use crate::audit;
use crate::driver::Solver3d;
use parking_lot::{Condvar, Mutex};
use simgrid::{
    latency_buckets, Category, EventKind, Metrics, TraceEvent, DEPTH_BUCKETS, N_CATEGORIES,
    WAIT_BUCKETS, WIDTH_BUCKETS,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When a batch is cut: width `B` reached, window `W` expired, or the
/// shutdown drain flushing the remainder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlushReason {
    Width,
    Window,
    Drain,
}

/// What [`SolverService::submit`] does when the queue is at capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueFullPolicy {
    /// Block the submitting thread until a slot frees (a collected ticket
    /// or a shutdown releases it).
    #[default]
    Block,
    /// Fail fast with [`SubmitError::QueueFull`]; the caller sheds load.
    Reject,
}

impl std::str::FromStr for QueueFullPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(QueueFullPolicy::Block),
            "reject" => Ok(QueueFullPolicy::Reject),
            other => Err(format!(
                "unknown backpressure policy '{other}' (expected block|reject)"
            )),
        }
    }
}

/// Batching policy of the serving front door.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Maximum RHS columns per dispatched batch (`B >= 1`). `B = 1`
    /// disables coalescing — every request solves alone.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch is flushed (`W`). Zero flushes whatever is queued as soon as
    /// the dispatcher sees it.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// Full configuration of a [`SolverService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Batching policy (width cutoff and wait window).
    pub batch: BatchPolicy,
    /// Maximum requests open at once: queued, in the solving batch, or
    /// completed but not yet collected. This is the backpressure bound.
    pub queue_capacity: usize,
    /// Maximum `nrhs` of a single request (slot buffers are sized for
    /// it). Must not exceed `batch.max_batch`.
    pub max_request_width: usize,
    /// Behavior when the queue is at capacity.
    pub on_full: QueueFullPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch: BatchPolicy::default(),
            queue_capacity: 64,
            max_request_width: 4,
            on_full: QueueFullPolicy::default(),
        }
    }
}

/// Why a submit failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity and the policy is [`QueueFullPolicy::Reject`].
    QueueFull,
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue at capacity"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate serving statistics (a cheap snapshot; see
/// [`SolverService::metrics`] for the full registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests refused by a full queue under the reject policy.
    pub rejected: u64,
    /// Batched solves dispatched.
    pub batches: u64,
    /// Total bytes sent by batch solves, per [`Category`].
    pub bytes_sent: [u64; N_CATEGORIES],
    /// Total messages sent by batch solves, per [`Category`].
    pub msgs_sent: [u64; N_CATEGORIES],
}

/// Lifecycle of a request slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    Free,
    Queued,
    Solving,
    Done,
}

/// One preallocated request slot: RHS in, solution out.
struct Slot {
    state: SlotState,
    /// Bumped on every reuse so a stale [`Ticket`] can never observe a
    /// later occupant's result.
    gen: u64,
    width: usize,
    /// Ticket dropped uncollected: free the slot at completion instead of
    /// parking it in `Done` forever.
    abandoned: bool,
    enqueued: Instant,
    b: Vec<f64>,
    x: Vec<f64>,
}

struct State {
    slots: Vec<Slot>,
    /// Free slot ids (stack, preallocated to capacity).
    free: Vec<usize>,
    /// FIFO of queued slot ids (ring, preallocated to capacity).
    queue: VecDeque<usize>,
    /// Sum of widths of the queued requests.
    queued_width: usize,
    closing: bool,
    metrics: Metrics,
    bytes_sent: [u64; N_CATEGORIES],
    msgs_sent: [u64; N_CATEGORIES],
    requests: u64,
    rejected: u64,
    batches: u64,
    /// One wall-clock span per dispatched batch (mux start → demux end,
    /// seconds since service start).
    batch_spans: Vec<TraceEvent>,
    /// Flight-recorder contents of the most recent batch solve, per rank
    /// (oldest span first) — always captured, bounded by the recorder
    /// capacity, drained by [`SolverService::dump_flight_recorder`].
    last_flight: Vec<Vec<TraceEvent>>,
    /// Lifetime span profile: every batch's per-rank timelines folded in
    /// ([`SpanProfile::merge_from`], so `makespan` accumulates solve time).
    profile: SpanProfile,
}

struct Shared {
    st: Mutex<State>,
    /// Dispatcher waits here for work (or a deadline).
    not_empty: Condvar,
    /// Blocking submitters wait here for a free slot.
    not_full: Condvar,
    /// Ticket holders wait here for completion.
    done: Condvar,
}

/// The batched serving front door over a planned [`Solver3d`].
///
/// ```
/// use sptrsv::service::{ServiceConfig, SolverService};
/// # use sptrsv::{Algorithm, Arch, Solver3d, SolverConfig};
/// # use std::sync::Arc;
/// # let a = sparse::gen::poisson2d_9pt(8, 8);
/// # let f = Arc::new(lufactor::factorize(&a, 2, &Default::default()).unwrap());
/// # let cfg = SolverConfig {
/// #     px: 1, py: 1, pz: 2, nrhs: 1,
/// #     algorithm: Algorithm::New3d, arch: Arch::Cpu,
/// #     machine: simgrid::MachineModel::cori_haswell(),
/// #     chaos_seed: 0, fault: Default::default(),
/// #     backend: Default::default(), executor: Default::default(),
/// # };
/// let service = SolverService::start(Solver3d::new(f, cfg), ServiceConfig::default());
/// let b = sparse::gen::standard_rhs(64, 1);
/// let ticket = service.submit(&b, 1).unwrap();
/// let x = ticket.wait();
/// assert_eq!(x.len(), 64);
/// service.shutdown();
/// ```
pub struct SolverService {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    n: usize,
    cfg: ServiceConfig,
    epoch: Instant,
    /// `px * py` of the served plan: lets the Perfetto export group the
    /// flight-recorder ranks into one process per 2D grid.
    ranks_per_grid: usize,
}

/// Claim on one submitted request. Collect the solution with
/// [`Ticket::wait`]/[`Ticket::wait_into`]; each ticket yields its result
/// exactly once (collection consumes the ticket and frees the slot).
/// Dropping an uncollected ticket abandons the request — it still solves
/// (or drains), but the slot is reclaimed instead of parked.
pub struct Ticket {
    shared: Arc<Shared>,
    slot: usize,
    gen: u64,
    n: usize,
    width: usize,
    collected: bool,
}

impl SolverService {
    /// Start serving on `solver`'s cached plan. The dispatcher thread and
    /// every request slot are created here; steady-state serving performs
    /// no further setup.
    pub fn start(solver: Solver3d, cfg: ServiceConfig) -> Self {
        assert!(cfg.batch.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        assert!(
            (1..=cfg.batch.max_batch).contains(&cfg.max_request_width),
            "max_request_width must be in 1..=max_batch \
             (a wider request could never be dispatched)"
        );
        let n = solver.plan().fact.lu.n();
        let cap = cfg.queue_capacity;
        let w = cfg.max_request_width;
        let epoch = Instant::now();
        let mut metrics = Metrics::new();
        // Pre-create every series so steady-state increments never insert
        // a map node (BTreeMap insertion allocates).
        metrics.touch_counter("service.requests");
        metrics.touch_counter("service.rejected");
        metrics.touch_counter("service.blocked");
        metrics.touch_counter("service.batches");
        metrics.touch_counter("service.flush.width");
        metrics.touch_counter("service.flush.window");
        metrics.touch_counter("service.flush.drain");
        metrics.touch_histogram("service.batch_width", WIDTH_BUCKETS);
        metrics.touch_histogram("service.queue_depth", DEPTH_BUCKETS);
        metrics.touch_histogram("service.wait_seconds", WAIT_BUCKETS);
        // Per-request latency decomposition (log2 buckets, 1 µs .. 8 s):
        // enqueue → dispatch → batch formed → solved → demuxed.
        metrics.touch_histogram("service.queue_wait_seconds", latency_buckets());
        metrics.touch_histogram("service.batch_form_seconds", latency_buckets());
        metrics.touch_histogram("service.solve_seconds", latency_buckets());
        metrics.touch_histogram("service.demux_seconds", latency_buckets());
        let st = State {
            slots: (0..cap)
                .map(|_| Slot {
                    state: SlotState::Free,
                    gen: 0,
                    width: 0,
                    abandoned: false,
                    enqueued: epoch,
                    b: vec![0.0; n * w],
                    x: vec![0.0; n * w],
                })
                .collect(),
            free: (0..cap).rev().collect(),
            queue: VecDeque::with_capacity(cap),
            queued_width: 0,
            closing: false,
            metrics,
            bytes_sent: [0; N_CATEGORIES],
            msgs_sent: [0; N_CATEGORIES],
            requests: 0,
            rejected: 0,
            batches: 0,
            batch_spans: Vec::new(),
            last_flight: Vec::new(),
            profile: SpanProfile {
                makespan: 0.0,
                nranks: 0,
                entries: Vec::new(),
            },
        };
        let shared = Arc::new(Shared {
            st: Mutex::new(st),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            done: Condvar::new(),
        });
        let ranks_per_grid = solver.config().px * solver.config().py;
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let policy = cfg.batch;
            std::thread::Builder::new()
                .name("sptrsv-service".into())
                .spawn(move || dispatcher_loop(shared, solver, n, policy, epoch))
                .expect("spawn service dispatcher")
        };
        SolverService {
            shared,
            dispatcher: Some(dispatcher),
            n,
            cfg,
            epoch,
            ranks_per_grid,
        }
    }

    /// Matrix dimension served (request RHS length is `n() * width`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration this service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Submit one solve request: `rhs` is `n × width` column-major in the
    /// original ordering, `1 <= width <= max_request_width`. Returns a
    /// [`Ticket`] redeemable for the `n × width` solution.
    pub fn submit(&self, rhs: &[f64], width: usize) -> Result<Ticket, SubmitError> {
        assert!(
            width >= 1 && width <= self.cfg.max_request_width,
            "request width {width} outside 1..={}",
            self.cfg.max_request_width
        );
        assert_eq!(rhs.len(), self.n * width, "rhs size mismatch");
        let mut st = self.shared.st.lock();
        loop {
            if st.closing {
                return Err(SubmitError::ShuttingDown);
            }
            if let Some(sid) = st.free.pop() {
                let depth = st.queue.len() as f64 + 1.0;
                st.requests += 1;
                st.metrics.inc("service.requests", 1);
                st.metrics
                    .observe("service.queue_depth", DEPTH_BUCKETS, depth);
                let slot = &mut st.slots[sid];
                slot.gen += 1;
                let gen = slot.gen;
                slot.width = width;
                slot.abandoned = false;
                slot.enqueued = Instant::now();
                slot.state = SlotState::Queued;
                {
                    // Steady-state intake is a bounded memcpy into a
                    // preallocated slot — auditable like the solve passes.
                    let _scope = audit::pass_scope();
                    slot.b[..rhs.len()].copy_from_slice(rhs);
                }
                st.queue.push_back(sid);
                st.queued_width += width;
                drop(st);
                self.shared.not_empty.notify_all();
                return Ok(Ticket {
                    shared: Arc::clone(&self.shared),
                    slot: sid,
                    gen,
                    n: self.n,
                    width,
                    collected: false,
                });
            }
            match self.cfg.on_full {
                QueueFullPolicy::Reject => {
                    st.rejected += 1;
                    st.metrics.inc("service.rejected", 1);
                    return Err(SubmitError::QueueFull);
                }
                QueueFullPolicy::Block => {
                    st.metrics.inc("service.blocked", 1);
                    self.shared.not_full.wait(&mut st);
                }
            }
        }
    }

    /// Convenience: submit and wait (honoring the backpressure policy).
    pub fn solve(&self, rhs: &[f64], width: usize) -> Result<Vec<f64>, SubmitError> {
        Ok(self.submit(rhs, width)?.wait())
    }

    /// Snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.st.lock();
        ServiceStats {
            requests: st.requests,
            rejected: st.rejected,
            batches: st.batches,
            bytes_sent: st.bytes_sent,
            msgs_sent: st.msgs_sent,
        }
    }

    /// Snapshot of the merged metrics registry: the `service.*` series
    /// plus every solver/transport series accumulated across batch solves
    /// (catalog in `simgrid::metrics`).
    pub fn metrics(&self) -> Metrics {
        self.shared.st.lock().metrics.clone()
    }

    /// Wall-clock spans of the dispatched batches (seconds since service
    /// start; one [`EventKind::Compute`] span per batch, mux → demux).
    pub fn batch_trace(&self) -> Vec<TraceEvent> {
        self.shared.st.lock().batch_spans.clone()
    }

    /// Seconds since the service started (the clock [`batch_trace`]
    /// spans are stamped on).
    ///
    /// [`batch_trace`]: SolverService::batch_trace
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Drain the most recent batch's flight recorder into a Perfetto
    /// trace (JSON string, loadable in `ui.perfetto.dev`): the last spans
    /// of every rank, captured without tracing being enabled. Empty
    /// timelines (`"traceEvents": []`) before the first batch completes.
    pub fn dump_flight_recorder(&self) -> String {
        let st = self.shared.st.lock();
        simgrid::export_perfetto(&st.last_flight, self.ranks_per_grid)
    }

    /// Snapshot of the lifetime span profile: every dispatched batch's
    /// per-rank flight timelines folded into per-(pass, kind, level)
    /// self times (`makespan` is the accumulated in-solver time). Render
    /// with [`SpanProfile::to_table`], `to_json`, or `to_collapsed`.
    pub fn span_profile(&self) -> SpanProfile {
        self.shared.st.lock().profile.clone()
    }

    /// Start a dependency-free HTTP listener exposing
    /// [`metrics`][SolverService::metrics] in OpenMetrics text at every
    /// path. `addr` is a `std::net` bind address (`"127.0.0.1:0"` picks a
    /// free port — read it back with [`MetricsServer::local_addr`]). One
    /// scrape per connection (`Connection: close`); the listener thread
    /// holds only the shared state, so it outlives neither the service
    /// nor a [`MetricsServer::shutdown`].
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sptrsv-metrics".into())
            .spawn(move || {
                use std::io::{Read, Write};
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut sock) = conn else { continue };
                    // Read the request line + headers (tolerantly: a
                    // slow or malformed client only stalls this scrape).
                    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut req = Vec::with_capacity(512);
                    let mut buf = [0u8; 512];
                    loop {
                        match sock.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(k) => req.extend_from_slice(&buf[..k]),
                        }
                        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
                            break;
                        }
                    }
                    let body = shared.st.lock().metrics.to_openmetrics();
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\n\
                         Content-Type: application/openmetrics-text; \
                         version=1.0.0; charset=utf-8\r\n\
                         Content-Length: {}\r\n\
                         Connection: close\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let _ = sock.write_all(resp.as_bytes());
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// Stop intake, drain every queued request through the solver, and
    /// join the dispatcher. Blocked submitters are woken with
    /// [`SubmitError::ShuttingDown`]; outstanding tickets remain
    /// collectable after shutdown.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut st = self.shared.st.lock();
            st.closing = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(h) = self.dispatcher.take() {
            h.join().expect("service dispatcher panicked");
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Handle on a running metrics listener (see
/// [`SolverService::serve_metrics`]). Dropping it stops the listener.
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves the port when started on `:0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting scrapes and join the listener thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if let Some(h) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop; the next iteration sees `stop`.
            let _ = std::net::TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl Ticket {
    /// Width (`nrhs`) of this request.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Block until the request's batch completes and return the
    /// `n × width` column-major solution.
    pub fn wait(self) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.width];
        self.wait_into(&mut out);
        out
    }

    /// Allocation-free collection: block until the batch completes and
    /// copy the solution into `out` (`n × width`, column-major).
    pub fn wait_into(mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n * self.width, "output size mismatch");
        let mut st = self.shared.st.lock();
        while !(st.slots[self.slot].gen == self.gen && st.slots[self.slot].state == SlotState::Done)
        {
            self.shared.done.wait(&mut st);
        }
        {
            let _scope = audit::pass_scope();
            out.copy_from_slice(&st.slots[self.slot].x[..out.len()]);
        }
        st.slots[self.slot].state = SlotState::Free;
        st.free.push(self.slot);
        drop(st);
        self.collected = true;
        self.shared.not_full.notify_all();
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.collected {
            return;
        }
        let mut st = self.shared.st.lock();
        let slot = &mut st.slots[self.slot];
        if slot.gen != self.gen {
            return; // already recycled
        }
        match slot.state {
            SlotState::Done => {
                slot.state = SlotState::Free;
                st.free.push(self.slot);
                drop(st);
                self.shared.not_full.notify_all();
            }
            // Still queued or solving: the dispatcher frees it at demux.
            _ => slot.abandoned = true,
        }
    }
}

/// The dispatcher: wait for a flush condition, assemble the batch, solve
/// unlocked, demux, repeat; drain on shutdown.
fn dispatcher_loop(
    shared: Arc<Shared>,
    solver: Solver3d,
    n: usize,
    policy: BatchPolicy,
    epoch: Instant,
) {
    // The only two buffers of the batch path, sized once.
    let mut batch_b = vec![0.0f64; n * policy.max_batch];
    let mut batch_ids: Vec<usize> = Vec::with_capacity(policy.max_batch);
    loop {
        let mut st = shared.st.lock();
        // Phase 1: wait for a flush condition.
        let reason = loop {
            if st.queue.is_empty() {
                if st.closing {
                    drop(st);
                    shared.done.notify_all();
                    return;
                }
                shared.not_empty.wait(&mut st);
                continue;
            }
            if st.queued_width >= policy.max_batch {
                break FlushReason::Width;
            }
            if st.closing {
                break FlushReason::Drain;
            }
            let oldest = st.slots[*st.queue.front().expect("non-empty queue")].enqueued;
            let deadline = oldest + policy.max_wait;
            let now = Instant::now();
            if now >= deadline {
                break FlushReason::Window;
            }
            // Re-evaluates on wake-up either way (new request, closing,
            // or the deadline itself).
            shared.not_empty.wait_for(&mut st, deadline - now);
        };

        // Phase 2: cut the batch. FIFO order; stop at the first queued
        // request that no longer fits so requests are never reordered.
        batch_ids.clear();
        let mut width = 0usize;
        while let Some(&sid) = st.queue.front() {
            let w = st.slots[sid].width;
            if width + w > policy.max_batch {
                break;
            }
            st.queue.pop_front();
            st.queued_width -= w;
            st.slots[sid].state = SlotState::Solving;
            batch_ids.push(sid);
            width += w;
        }
        debug_assert!(!batch_ids.is_empty(), "flush with an empty batch");
        let dispatch = Instant::now();
        for &sid in &batch_ids {
            let waited = dispatch
                .duration_since(st.slots[sid].enqueued)
                .as_secs_f64();
            st.metrics
                .observe("service.wait_seconds", WAIT_BUCKETS, waited);
            st.metrics
                .observe("service.queue_wait_seconds", latency_buckets(), waited);
        }
        st.batches += 1;
        st.metrics.inc("service.batches", 1);
        st.metrics
            .observe("service.batch_width", WIDTH_BUCKETS, width as f64);
        st.metrics.inc(
            match reason {
                FlushReason::Width => "service.flush.width",
                FlushReason::Window => "service.flush.window",
                FlushReason::Drain => "service.flush.drain",
            },
            1,
        );
        {
            // Mux: gather request columns into the batch RHS
            // (allocation-audited, pure memcpy).
            let _scope = audit::pass_scope();
            let mut col = 0usize;
            for &sid in &batch_ids {
                let w = st.slots[sid].width;
                batch_b[col * n..(col + w) * n].copy_from_slice(&st.slots[sid].b[..w * n]);
                col += w;
            }
        }
        st.metrics.observe(
            "service.batch_form_seconds",
            latency_buckets(),
            dispatch.elapsed().as_secs_f64(),
        );
        drop(st);

        // Phase 3: one batched solve on the cached plan, lock released so
        // submitters keep queueing the next batch.
        let solve_t0 = Instant::now();
        let out = solver.solve(&batch_b[..width * n], width);
        let solve_secs = solve_t0.elapsed().as_secs_f64();

        // Phase 4: demux result columns and complete the requests.
        let mut st = shared.st.lock();
        let demux_t0 = Instant::now();
        {
            let _scope = audit::pass_scope();
            let mut col = 0usize;
            for &sid in &batch_ids {
                let w = st.slots[sid].width;
                st.slots[sid].x[..w * n].copy_from_slice(&out.x[col * n..(col + w) * n]);
                col += w;
            }
        }
        st.metrics
            .observe("service.solve_seconds", latency_buckets(), solve_secs);
        st.metrics.observe(
            "service.demux_seconds",
            latency_buckets(),
            demux_t0.elapsed().as_secs_f64(),
        );
        for &sid in &batch_ids {
            let slot = &mut st.slots[sid];
            if slot.abandoned {
                slot.state = SlotState::Free;
                st.free.push(sid);
            } else {
                slot.state = SlotState::Done;
            }
        }
        for s in &out.stats {
            for c in 0..N_CATEGORIES {
                st.bytes_sent[c] += s.bytes_sent[c];
                st.msgs_sent[c] += s.msgs_sent[c];
            }
        }
        st.metrics.merge_from(&out.metrics);
        // Fold the batch's per-rank timelines into the lifetime profile
        // and keep the raw flight for on-demand Perfetto dumps. This runs
        // outside the audited scopes: profile folding is bounded by the
        // recorder capacity, not the request rate.
        st.profile
            .merge_from(&span_profile(&out.flight, out.makespan));
        st.last_flight = out.flight;
        st.batch_spans.push(TraceEvent {
            t0: dispatch.duration_since(epoch).as_secs_f64(),
            t1: epoch.elapsed().as_secs_f64(),
            kind: EventKind::Compute,
            category: Category::Other,
            msg: None,
            detail: None,
        });
        drop(st);
        shared.done.notify_all();
        shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn fixture() -> (Solver3d, Vec<f64>, Vec<f64>, usize) {
        let a = gen::poisson2d_9pt(12, 12);
        let n = a.nrows();
        let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        // 8 reference columns to draw request RHSs from. The reference is
        // a standalone width-1 *distributed* solve per column — the exact
        // bits a batched solve must reproduce (the sequential `f.solve`
        // only agrees to rounding).
        let b = gen::standard_rhs(n, 8);
        let solver = Solver3d::new(f, cfg);
        let mut want = vec![0.0; 8 * n];
        for r in 0..8 {
            let out = solver.solve(&b[r * n..(r + 1) * n], 1);
            want[r * n..(r + 1) * n].copy_from_slice(&out.x);
        }
        (solver, b, want, n)
    }

    fn service(solver: Solver3d, cfg: ServiceConfig) -> SolverService {
        SolverService::start(solver, cfg)
    }

    /// A burst wider than `B` is cut at the max-width boundary: no batch
    /// exceeds `B` columns, and at least one flush is width-triggered.
    #[test]
    fn max_width_cutoff_bounds_every_batch() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_secs(10),
                },
                queue_capacity: 16,
                max_request_width: 1,
                on_full: QueueFullPolicy::Block,
            },
        );
        let tickets: Vec<Ticket> = (0..8)
            .map(|r| svc.submit(&b[r * n..(r + 1) * n], 1).unwrap())
            .collect();
        for (r, t) in tickets.into_iter().enumerate() {
            let x = t.wait();
            assert_eq!(
                x,
                &want[r * n..(r + 1) * n],
                "request {r}: batched column differs from reference"
            );
        }
        let m = svc.metrics();
        let widths = m.histogram("service.batch_width").expect("width histogram");
        // WIDTH_BUCKETS = [1, 2, 4, 8, 16, 32]: nothing above the ≤4 bucket.
        assert_eq!(
            widths.bucket_counts()[3..].iter().sum::<u64>(),
            0,
            "a batch exceeded max_batch = 4: {:?}",
            widths.bucket_counts()
        );
        assert!(
            m.counter("service.flush.width") >= 1,
            "an 8-wide burst against B = 4 must width-flush at least once"
        );
        assert!(m.counter("service.batches") >= 2);
        svc.shutdown();
    }

    /// A lone request never reaches `B`; the wait window expires and
    /// flushes the partial batch.
    #[test]
    fn window_expiry_flushes_partial_batch() {
        let (solver, b, want, n) = fixture();
        let window = Duration::from_millis(50);
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 8,
                    max_wait: window,
                },
                queue_capacity: 16,
                max_request_width: 1,
                on_full: QueueFullPolicy::Block,
            },
        );
        let t0 = Instant::now();
        let x = svc.solve(&b[..n], 1).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(x, &want[..n]);
        assert!(
            elapsed >= window - Duration::from_millis(5),
            "partial batch flushed before the window expired ({elapsed:?})"
        );
        let m = svc.metrics();
        assert_eq!(m.counter("service.flush.window"), 1);
        assert_eq!(m.counter("service.flush.width"), 0);
        svc.shutdown();
    }

    /// Reject mode: with every slot occupied, the next submit fails fast
    /// with `QueueFull` and is counted.
    #[test]
    fn full_queue_rejects_when_policy_is_reject() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_secs(10),
                },
                queue_capacity: 2,
                max_request_width: 1,
                on_full: QueueFullPolicy::Reject,
            },
        );
        // Slots free only when tickets are collected, so the third submit
        // must be rejected regardless of dispatcher timing.
        let t0 = svc.submit(&b[..n], 1).unwrap();
        let t1 = svc.submit(&b[n..2 * n], 1).unwrap();
        assert_eq!(
            svc.submit(&b[2 * n..3 * n], 1).err(),
            Some(SubmitError::QueueFull)
        );
        assert_eq!(svc.stats().rejected, 1);
        svc.shutdown(); // drains the two queued requests
        assert_eq!(t0.wait(), &want[..n]);
        assert_eq!(t1.wait(), &want[n..2 * n]);
    }

    /// Block mode: a submit against a full queue parks until a collected
    /// ticket frees a slot, then succeeds.
    #[test]
    fn full_queue_blocks_until_a_slot_frees() {
        let (solver, b, want, n) = fixture();
        let svc = Arc::new(service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                },
                queue_capacity: 1,
                max_request_width: 1,
                on_full: QueueFullPolicy::Block,
            },
        ));
        let first = svc.submit(&b[..n], 1).unwrap();
        // The single slot stays occupied until `first` is collected, so
        // this submit must block.
        let unblocked = Arc::new(AtomicBool::new(false));
        let second = {
            let svc = Arc::clone(&svc);
            let b1 = b[n..2 * n].to_vec();
            let unblocked = Arc::clone(&unblocked);
            std::thread::spawn(move || {
                let t = svc.submit(&b1, 1).unwrap();
                unblocked.store(true, Ordering::SeqCst);
                t.wait()
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !unblocked.load(Ordering::SeqCst),
            "submit returned while the queue was still full"
        );
        assert_eq!(first.wait(), &want[..n]); // frees the slot
        assert_eq!(second.join().unwrap(), &want[n..2 * n]);
        assert!(unblocked.load(Ordering::SeqCst));
        assert!(svc.metrics().counter("service.blocked") >= 1);
    }

    /// Shutdown drains queued requests: every ticket yields its own
    /// correct result exactly once, nothing is lost or duplicated.
    #[test]
    fn shutdown_drains_without_losing_or_duplicating() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 3,
                    max_wait: Duration::from_secs(10),
                },
                queue_capacity: 16,
                max_request_width: 2,
                on_full: QueueFullPolicy::Block,
            },
        );
        // Mixed widths: 1, 2, 1, 2, 1 (7 columns over 5 requests); the
        // 10 s window guarantees they are still queued at shutdown.
        let widths = [1usize, 2, 1, 2, 1];
        let mut tickets = Vec::new();
        let mut col = 0usize;
        for &w in &widths {
            tickets.push((col, svc.submit(&b[col * n..(col + w) * n], w).unwrap()));
            col += w;
        }
        svc.shutdown();
        for (c, t) in tickets {
            let w = t.width();
            assert_eq!(
                t.wait(),
                &want[c * n..(c + w) * n],
                "drained request at column {c} has the wrong solution"
            );
        }
    }

    /// After shutdown, intake is closed.
    #[test]
    fn submit_after_shutdown_is_rejected() {
        let (solver, b, _, n) = fixture();
        let mut svc = service(solver, ServiceConfig::default());
        svc.shutdown_in_place();
        assert_eq!(
            svc.submit(&b[..n], 1).err(),
            Some(SubmitError::ShuttingDown)
        );
    }

    /// Dropping a ticket uncollected neither wedges the service nor leaks
    /// its slot: capacity recovers and later requests still serve.
    #[test]
    fn abandoned_tickets_release_their_slots() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait: Duration::from_millis(1),
                },
                queue_capacity: 2,
                max_request_width: 1,
                on_full: QueueFullPolicy::Reject,
            },
        );
        for r in 0..4 {
            drop(svc.submit(&b[r % 2 * n..(r % 2 + 1) * n], 1).unwrap());
            // Give the drop a moment to either abandon or free the slot.
            std::thread::sleep(Duration::from_millis(20));
        }
        // All four slots came back; a fresh request still round-trips.
        let x = svc.solve(&b[..n], 1).unwrap();
        assert_eq!(x, &want[..n]);
        svc.shutdown();
    }

    /// Ticket errors surface as values, not hangs: a rejected submit does
    /// not consume a slot.
    #[test]
    fn rejects_do_not_consume_capacity() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_secs(10),
                },
                queue_capacity: 1,
                max_request_width: 1,
                on_full: QueueFullPolicy::Reject,
            },
        );
        let t = svc.submit(&b[..n], 1).unwrap();
        for _ in 0..3 {
            assert_eq!(
                svc.submit(&b[n..2 * n], 1).err(),
                Some(SubmitError::QueueFull)
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.rejected, 3);
        svc.shutdown();
        assert_eq!(t.wait(), &want[..n]);
    }

    /// The observability plane is live after one batch: the four latency
    /// histograms have observations, the flight recorder dumps a Perfetto
    /// trace with spans, and the lifetime profile accounts for the
    /// accumulated solve time.
    #[test]
    fn latency_histograms_flight_and_profile_are_live() {
        let (solver, b, want, n) = fixture();
        let svc = service(
            solver,
            ServiceConfig {
                batch: BatchPolicy {
                    max_batch: 2,
                    max_wait: Duration::from_millis(1),
                },
                queue_capacity: 8,
                max_request_width: 1,
                on_full: QueueFullPolicy::Block,
            },
        );
        // Before any batch: empty but well-formed.
        assert!(svc.dump_flight_recorder().contains("\"traceEvents\""));
        for r in 0..4 {
            assert_eq!(
                svc.solve(&b[r * n..(r + 1) * n], 1).unwrap(),
                &want[r * n..(r + 1) * n]
            );
        }
        let m = svc.metrics();
        for series in [
            "service.queue_wait_seconds",
            "service.batch_form_seconds",
            "service.solve_seconds",
            "service.demux_seconds",
        ] {
            let h = m
                .histogram(series)
                .unwrap_or_else(|| panic!("missing {series}"));
            assert!(h.count() >= 1, "{series} never observed");
            assert!(h.percentile(0.99) >= h.percentile(0.5));
        }
        // The flight dump has real spans from the last batch solve.
        let dump = svc.dump_flight_recorder();
        let v: serde_json::Value = serde_json::from_str(&dump).expect("flight dump parses");
        let Some(serde_json::Value::Array(evs)) = v.get("traceEvents") else {
            panic!("no traceEvents array");
        };
        assert!(
            evs.iter()
                .any(|e| e.get("ph") == Some(&serde_json::Value::Str("X".into()))),
            "flight dump has no duration spans"
        );
        // Lifetime profile: exhaustive over the accumulated makespan.
        let p = svc.span_profile();
        assert!(p.makespan > 0.0);
        assert!(p.nranks >= 1);
        assert!((p.total_seconds() - p.makespan).abs() <= 1e-9 * p.makespan.max(1.0));
        assert!(!p.to_collapsed().is_empty());
        svc.shutdown();
    }

    /// The metrics endpoint serves the registry as OpenMetrics text over
    /// plain HTTP, one scrape per connection, and shuts down cleanly.
    #[test]
    fn metrics_endpoint_serves_openmetrics() {
        use std::io::{Read, Write};
        let (solver, b, _, n) = fixture();
        let svc = service(solver, ServiceConfig::default());
        svc.solve(&b[..n], 1).unwrap();
        let server = svc
            .serve_metrics("127.0.0.1:0")
            .expect("bind metrics listener");
        let scrape = || {
            let mut sock = std::net::TcpStream::connect(server.local_addr()).unwrap();
            sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            sock.read_to_string(&mut resp).unwrap();
            resp
        };
        for _ in 0..2 {
            let resp = scrape();
            assert!(
                resp.starts_with("HTTP/1.1 200 OK\r\n"),
                "bad status: {resp}"
            );
            assert!(resp.contains("application/openmetrics-text"));
            let body = resp.split("\r\n\r\n").nth(1).expect("no body");
            assert!(body.contains("service_requests_total 1"));
            assert!(body.contains("# TYPE service_queue_wait_seconds histogram"));
            assert!(body.ends_with("# EOF\n"));
        }
        server.shutdown();
        svc.shutdown();
    }
}
