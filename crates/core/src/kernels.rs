//! Numeric block kernels shared by the CPU and GPU solve paths.
//!
//! All solvers — sequential, CPU message-driven, GPU-modelled — perform the
//! same real arithmetic through these helpers; only the *time accounting*
//! differs between paths.
//!
//! Two tiers live here:
//!
//! * the top-level kernels are the hot-path versions: they take precompiled
//!   scatter index lists (or a dense contiguous-run fast path) from the
//!   schedule IR, register-block the inner loops over `nrhs` (4/2/1-wide),
//!   and write into caller-provided scratch — no per-call allocation and no
//!   per-element `rows[q] - istart` recomputation;
//! * [`reference`] keeps the original scalar loops. They are the
//!   bit-for-bit ground truth the blocked kernels are property-tested
//!   against, and the "before" side of the micro-kernel benchmarks.
//!
//! Bit-identity between the tiers is load-bearing: the chaos-conformance
//! suite asserts bitwise-equal solutions, so the blocked kernels must
//! preserve the reference accumulation order *per right-hand side* (`j`
//! ascending then `q` ascending for L, `q` ascending then `i` ascending for
//! U) and its skip-on-zero semantics. Register blocking only interleaves
//! *independent* rhs streams, which leaves each stream's order intact.

use lufactor::Factorized;

/// Locate the row-position range `[lo, hi)` of row-supernode `i` within
/// `rows_below(k)` of column-supernode `k`.
pub fn block_range(fact: &Factorized, k: usize, i: usize) -> (usize, usize) {
    let sym = fact.lu.sym();
    let rows = sym.rows_below(k);
    let icols = sym.sup_cols(i);
    let lo = rows.partition_point(|&r| (r as usize) < icols.start);
    let hi = rows.partition_point(|&r| (r as usize) < icols.end);
    (lo, hi)
}

/// Precompiled addressing for one off-diagonal block: either the row run
/// is contiguous (`Dense(start)` — a straight axpy at that offset), or the
/// per-row target/source indices were baked into the schedule IR's scatter
/// pool at compile time.
#[derive(Clone, Copy, Debug)]
pub enum Targets<'a> {
    /// Rows `[lo, hi)` map to consecutive indices starting here.
    Dense(usize),
    /// One precomputed `rows[q] - sup_start` index per row position.
    Scatter(&'a [u32]),
}

/// `lsum(I) += L(I, K) · y(K)` for the block at row positions `[lo, hi)` of
/// the `r × w` col-major panel `l_below` of supernode `K`. `y_k` is
/// `w × nrhs` col-major; `lsum_i` is `wi × nrhs` col-major; `tg` gives the
/// precompiled target indices into each `lsum_i` column. Returns the flop
/// count.
#[allow(clippy::too_many_arguments)]
pub fn apply_l(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y_k: &[f64],
    w: usize,
    lsum_i: &mut [f64],
    wi: usize,
    nrhs: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence was just checked at runtime.
        return unsafe { apply_l_avx(panel, r, lo, hi, tg, y_k, w, lsum_i, wi, nrhs) };
    }
    apply_l_generic(panel, r, lo, hi, tg, y_k, w, lsum_i, wi, nrhs)
}

/// AVX-compiled clone of [`apply_l_generic`]. Plain 256-bit mul-then-add
/// — `fma` is deliberately NOT enabled, so every element performs the
/// exact same two IEEE roundings as the scalar reference and the result
/// stays bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn apply_l_avx(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y_k: &[f64],
    w: usize,
    lsum_i: &mut [f64],
    wi: usize,
    nrhs: usize,
) -> usize {
    apply_l_generic(panel, r, lo, hi, tg, y_k, w, lsum_i, wi, nrhs)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn apply_l_generic(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y_k: &[f64],
    w: usize,
    lsum_i: &mut [f64],
    wi: usize,
    nrhs: usize,
) -> usize {
    debug_assert_eq!(y_k.len(), w * nrhs);
    debug_assert_eq!(lsum_i.len(), wi * nrhs);
    let mut ycols = y_k.chunks_exact(w);
    let mut lcols = lsum_i.chunks_exact_mut(wi);
    let mut left = nrhs;
    while left >= 4 {
        let y: [&[f64]; 4] = std::array::from_fn(|_| ycols.next().unwrap());
        let l: [&mut [f64]; 4] = std::array::from_fn(|_| lcols.next().unwrap());
        apply_l_x4(panel, r, lo, hi, tg, y, l);
        left -= 4;
    }
    while left >= 2 {
        let y: [&[f64]; 2] = std::array::from_fn(|_| ycols.next().unwrap());
        let l: [&mut [f64]; 2] = std::array::from_fn(|_| lcols.next().unwrap());
        apply_l_x2(panel, r, lo, hi, tg, y, l);
        left -= 2;
    }
    if left == 1 {
        apply_l_x1(
            panel,
            r,
            lo,
            hi,
            tg,
            ycols.next().unwrap(),
            lcols.next().unwrap(),
        );
    }
    2 * (hi - lo) * w * nrhs
}

#[inline(always)]
fn apply_l_x4(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y: [&[f64]; 4],
    l: [&mut [f64]; 4],
) {
    let len = hi - lo;
    let [l0, l1, l2, l3] = l;
    for j in 0..y[0].len() {
        let v = [y[0][j], y[1][j], y[2][j], y[3][j]];
        if v.contains(&0.0) {
            // Preserve the reference skip-on-zero per stream: fall back to
            // one scalar sweep per still-active rhs.
            let ls = [&mut *l0, &mut *l1, &mut *l2, &mut *l3];
            for (s, li) in ls.into_iter().enumerate() {
                if v[s] != 0.0 {
                    axpy_one(panel, r, lo, hi, tg, j, v[s], li);
                }
            }
            continue;
        }
        let col = &panel[j * r + lo..j * r + hi];
        match tg {
            Targets::Dense(start) => {
                let (d0, d1) = (&mut l0[start..start + len], &mut l1[start..start + len]);
                let (d2, d3) = (&mut l2[start..start + len], &mut l3[start..start + len]);
                for q in 0..len {
                    let c = col[q];
                    d0[q] += c * v[0];
                    d1[q] += c * v[1];
                    d2[q] += c * v[2];
                    d3[q] += c * v[3];
                }
            }
            Targets::Scatter(ix) => {
                for (q, &t) in ix.iter().enumerate() {
                    let c = col[q];
                    let t = t as usize;
                    l0[t] += c * v[0];
                    l1[t] += c * v[1];
                    l2[t] += c * v[2];
                    l3[t] += c * v[3];
                }
            }
        }
    }
}

#[inline(always)]
fn apply_l_x2(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y: [&[f64]; 2],
    l: [&mut [f64]; 2],
) {
    let len = hi - lo;
    let [l0, l1] = l;
    for j in 0..y[0].len() {
        let v = [y[0][j], y[1][j]];
        if v[0] == 0.0 || v[1] == 0.0 {
            if v[0] != 0.0 {
                axpy_one(panel, r, lo, hi, tg, j, v[0], l0);
            }
            if v[1] != 0.0 {
                axpy_one(panel, r, lo, hi, tg, j, v[1], l1);
            }
            continue;
        }
        let col = &panel[j * r + lo..j * r + hi];
        match tg {
            Targets::Dense(start) => {
                let (d0, d1) = (&mut l0[start..start + len], &mut l1[start..start + len]);
                for q in 0..len {
                    let c = col[q];
                    d0[q] += c * v[0];
                    d1[q] += c * v[1];
                }
            }
            Targets::Scatter(ix) => {
                for (q, &t) in ix.iter().enumerate() {
                    let c = col[q];
                    l0[t as usize] += c * v[0];
                    l1[t as usize] += c * v[1];
                }
            }
        }
    }
}

#[inline(always)]
fn apply_l_x1(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    y: &[f64],
    l: &mut [f64],
) {
    for (j, &yv) in y.iter().enumerate() {
        if yv != 0.0 {
            axpy_one(panel, r, lo, hi, tg, j, yv, l);
        }
    }
}

/// One `lsum += col_j · yv` sweep over rows `[lo, hi)` of panel column `j`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn axpy_one(
    panel: &[f64],
    r: usize,
    lo: usize,
    hi: usize,
    tg: Targets,
    j: usize,
    yv: f64,
    l: &mut [f64],
) {
    let col = &panel[j * r + lo..j * r + hi];
    match tg {
        Targets::Dense(start) => {
            let dst = &mut l[start..start + col.len()];
            for (d, &c) in dst.iter_mut().zip(col) {
                *d += c * yv;
            }
        }
        Targets::Scatter(ix) => {
            for (&t, &c) in ix.iter().zip(col) {
                l[t as usize] += c * yv;
            }
        }
    }
}

/// `usum(K) += U(K, J) · x(J)` for the block at column positions `[qlo,
/// qhi)` of the `w × r` col-major panel `u_right` of supernode `K`. `x_j`
/// is `wj × nrhs` col-major; `usum_k` is `w × nrhs` col-major; `tg` gives
/// the precompiled *source* indices into each `x_j` column. Returns the
/// flop count.
#[allow(clippy::too_many_arguments)]
pub fn apply_u(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x_j: &[f64],
    wj: usize,
    usum_k: &mut [f64],
    nrhs: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence was just checked at runtime.
        return unsafe { apply_u_avx(panel, w, qlo, qhi, tg, x_j, wj, usum_k, nrhs) };
    }
    apply_u_generic(panel, w, qlo, qhi, tg, x_j, wj, usum_k, nrhs)
}

/// AVX-compiled clone of [`apply_u_generic`]; see [`apply_l_avx`] for why
/// `fma` stays off.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn apply_u_avx(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x_j: &[f64],
    wj: usize,
    usum_k: &mut [f64],
    nrhs: usize,
) -> usize {
    apply_u_generic(panel, w, qlo, qhi, tg, x_j, wj, usum_k, nrhs)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn apply_u_generic(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x_j: &[f64],
    wj: usize,
    usum_k: &mut [f64],
    nrhs: usize,
) -> usize {
    debug_assert_eq!(x_j.len(), wj * nrhs);
    debug_assert_eq!(usum_k.len(), w * nrhs);
    let mut xcols = x_j.chunks_exact(wj);
    let mut ucols = usum_k.chunks_exact_mut(w);
    let mut left = nrhs;
    while left >= 4 {
        let x: [&[f64]; 4] = std::array::from_fn(|_| xcols.next().unwrap());
        let u: [&mut [f64]; 4] = std::array::from_fn(|_| ucols.next().unwrap());
        apply_u_x4(panel, w, qlo, qhi, tg, x, u);
        left -= 4;
    }
    while left >= 2 {
        let x: [&[f64]; 2] = std::array::from_fn(|_| xcols.next().unwrap());
        let u: [&mut [f64]; 2] = std::array::from_fn(|_| ucols.next().unwrap());
        apply_u_x2(panel, w, qlo, qhi, tg, x, u);
        left -= 2;
    }
    if left == 1 {
        apply_u_x1(
            panel,
            w,
            qlo,
            qhi,
            tg,
            xcols.next().unwrap(),
            ucols.next().unwrap(),
        );
    }
    2 * (qhi - qlo) * w * nrhs
}

#[inline(always)]
fn src_index(tg: Targets, q: usize, qlo: usize) -> usize {
    match tg {
        Targets::Dense(start) => start + (q - qlo),
        Targets::Scatter(ix) => ix[q - qlo] as usize,
    }
}

#[inline(always)]
fn apply_u_x4(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x: [&[f64]; 4],
    u: [&mut [f64]; 4],
) {
    let [u0, u1, u2, u3] = u;
    // Pin every accumulator to length `w` once so the fused loops below are
    // provably in-bounds (and vectorizable) without per-element checks.
    let (u0, u1, u2, u3) = (&mut u0[..w], &mut u1[..w], &mut u2[..w], &mut u3[..w]);
    let mut q = qlo;
    while q < qhi {
        // Group adjacent panel columns so one accumulator
        // read-modify-write sweep serves four (or two) columns. The
        // per-element adds stay in q-ascending order —
        // `(((u + a·va) + b·vb) + c·vc) + d·vd` — so the result is
        // bit-identical to the one-column loop.
        if q + 3 < qhi {
            let sv: [usize; 4] = std::array::from_fn(|t| src_index(tg, q + t, qlo));
            let va = [x[0][sv[0]], x[1][sv[0]], x[2][sv[0]], x[3][sv[0]]];
            let vb = [x[0][sv[1]], x[1][sv[1]], x[2][sv[1]], x[3][sv[1]]];
            let vc = [x[0][sv[2]], x[1][sv[2]], x[2][sv[2]], x[3][sv[2]]];
            let vd = [x[0][sv[3]], x[1][sv[3]], x[2][sv[3]], x[3][sv[3]]];
            let nz = |v: &[f64; 4]| v.iter().all(|&xv| xv != 0.0);
            if nz(&va) && nz(&vb) && nz(&vc) && nz(&vd) {
                let ca = &panel[q * w..(q + 1) * w];
                let cb = &panel[(q + 1) * w..(q + 2) * w];
                let cc = &panel[(q + 2) * w..(q + 3) * w];
                let cd = &panel[(q + 3) * w..(q + 4) * w];
                for i in 0..w {
                    let (a, b, c, d) = (ca[i], cb[i], cc[i], cd[i]);
                    u0[i] = (((u0[i] + a * va[0]) + b * vb[0]) + c * vc[0]) + d * vd[0];
                    u1[i] = (((u1[i] + a * va[1]) + b * vb[1]) + c * vc[1]) + d * vd[1];
                    u2[i] = (((u2[i] + a * va[2]) + b * vb[2]) + c * vc[2]) + d * vd[2];
                    u3[i] = (((u3[i] + a * va[3]) + b * vb[3]) + c * vc[3]) + d * vd[3];
                }
                q += 4;
                continue;
            }
        }
        if q + 1 < qhi {
            let sa = src_index(tg, q, qlo);
            let sb = src_index(tg, q + 1, qlo);
            let va = [x[0][sa], x[1][sa], x[2][sa], x[3][sa]];
            let vb = [x[0][sb], x[1][sb], x[2][sb], x[3][sb]];
            if va.iter().chain(&vb).all(|&xv| xv != 0.0) {
                let ca = &panel[q * w..(q + 1) * w];
                let cb = &panel[(q + 1) * w..(q + 2) * w];
                for i in 0..w {
                    let (a, b) = (ca[i], cb[i]);
                    u0[i] = (u0[i] + a * va[0]) + b * vb[0];
                    u1[i] = (u1[i] + a * va[1]) + b * vb[1];
                    u2[i] = (u2[i] + a * va[2]) + b * vb[2];
                    u3[i] = (u3[i] + a * va[3]) + b * vb[3];
                }
                q += 2;
                continue;
            }
        }
        let s = src_index(tg, q, qlo);
        let v = [x[0][s], x[1][s], x[2][s], x[3][s]];
        let col = &panel[q * w..(q + 1) * w];
        if v.iter().all(|&xv| xv != 0.0) {
            for i in 0..w {
                let c = col[i];
                u0[i] += c * v[0];
                u1[i] += c * v[1];
                u2[i] += c * v[2];
                u3[i] += c * v[3];
            }
        } else {
            let us = [&mut *u0, &mut *u1, &mut *u2, &mut *u3];
            for (t, uk) in us.into_iter().enumerate() {
                if v[t] != 0.0 {
                    for (d, &c) in uk.iter_mut().zip(col) {
                        *d += c * v[t];
                    }
                }
            }
        }
        q += 1;
    }
}

#[inline(always)]
fn apply_u_x2(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x: [&[f64]; 2],
    u: [&mut [f64]; 2],
) {
    let [u0, u1] = u;
    let (u0, u1) = (&mut u0[..w], &mut u1[..w]);
    for q in qlo..qhi {
        let s = src_index(tg, q, qlo);
        let v = [x[0][s], x[1][s]];
        let col = &panel[q * w..(q + 1) * w];
        if v[0] == 0.0 || v[1] == 0.0 {
            if v[0] != 0.0 {
                for (d, &c) in u0.iter_mut().zip(col) {
                    *d += c * v[0];
                }
            }
            if v[1] != 0.0 {
                for (d, &c) in u1.iter_mut().zip(col) {
                    *d += c * v[1];
                }
            }
            continue;
        }
        for i in 0..w {
            let c = col[i];
            u0[i] += c * v[0];
            u1[i] += c * v[1];
        }
    }
}

#[inline(always)]
fn apply_u_x1(
    panel: &[f64],
    w: usize,
    qlo: usize,
    qhi: usize,
    tg: Targets,
    x: &[f64],
    u: &mut [f64],
) {
    for q in qlo..qhi {
        let xv = x[src_index(tg, q, qlo)];
        if xv == 0.0 {
            continue;
        }
        let col = &panel[q * w..(q + 1) * w];
        for (d, &c) in u.iter_mut().zip(col) {
            *d += c * xv;
        }
    }
}

/// `y(K) = L(K,K)⁻¹ · (b(K) − lsum(K))` — the diagonal solve of Eq. (1)
/// with the precomputed inverse, writing into caller-provided scratch.
/// `rhs_scratch` and `out` are both `w × nrhs`; returns the flop count.
///
/// Same arithmetic (per-rhs GEMV with the skip-on-zero of
/// [`sparse::dense::gemv`]) as [`reference::diag_solve_l`] — bit-identical
/// results, zero allocations.
pub fn diag_solve_l_into(
    fact: &Factorized,
    k: usize,
    b_k: &[f64],
    lsum_k: Option<&[f64]>,
    nrhs: usize,
    rhs_scratch: &mut [f64],
    out: &mut [f64],
) -> usize {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let p = fact.lu.panel(k);
    diag_solve_into(&p.dinv_l, w, b_k, lsum_k, nrhs, rhs_scratch, out)
}

/// `x(K) = U(K,K)⁻¹ · (y(K) − usum(K))` — the diagonal solve of Eq. (2),
/// writing into caller-provided scratch. See [`diag_solve_l_into`].
pub fn diag_solve_u_into(
    fact: &Factorized,
    k: usize,
    y_k: &[f64],
    usum_k: Option<&[f64]>,
    nrhs: usize,
    rhs_scratch: &mut [f64],
    out: &mut [f64],
) -> usize {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let p = fact.lu.panel(k);
    diag_solve_into(&p.dinv_u, w, y_k, usum_k, nrhs, rhs_scratch, out)
}

fn diag_solve_into(
    dinv: &[f64],
    w: usize,
    b_k: &[f64],
    sub: Option<&[f64]>,
    nrhs: usize,
    rhs_scratch: &mut [f64],
    out: &mut [f64],
) -> usize {
    let rhs = &mut rhs_scratch[..w * nrhs];
    let out = &mut out[..w * nrhs];
    rhs.copy_from_slice(b_k);
    if let Some(s) = sub {
        for (a, &v) in rhs.iter_mut().zip(s) {
            *a -= v;
        }
    }
    out.fill(0.0);
    for r in 0..nrhs {
        sparse::dense::gemv(
            1.0,
            dinv,
            w,
            w,
            &rhs[r * w..(r + 1) * w],
            &mut out[r * w..(r + 1) * w],
        );
    }
    2 * w * w * nrhs
}

/// Write the (masked) RHS subvector of supernode `k` from the global
/// permuted RHS `pb` (`n × nrhs` col-major) into `out`: `b(K)` if `active`,
/// zeros otherwise (Alg. 1 lines 3–10).
pub fn masked_rhs_into(
    fact: &Factorized,
    k: usize,
    pb: &[f64],
    nrhs: usize,
    active: bool,
    out: &mut [f64],
) {
    let sym = fact.lu.sym();
    let n = sym.n();
    let cols = sym.sup_cols(k);
    let w = cols.len();
    let out = &mut out[..w * nrhs];
    if active {
        for r in 0..nrhs {
            out[r * w..(r + 1) * w].copy_from_slice(&pb[r * n + cols.start..r * n + cols.end]);
        }
    } else {
        out.fill(0.0);
    }
}

/// The original scalar kernels, kept verbatim as the bit-for-bit ground
/// truth for the blocked hot-path kernels above (proptested against them)
/// and as the "before" side of the micro-kernel benchmarks. These allocate
/// per call and recompute scatter indices per element — do not use them on
/// the solve hot path.
pub mod reference {
    use super::Factorized;

    /// Raw-slice scalar form of [`apply_l_block`]: per-rhs, per-column
    /// scalar loops recomputing `rows[q] - istart` on every element.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_l(
        panel: &[f64],
        r: usize,
        rows: &[u32],
        istart: usize,
        lo: usize,
        hi: usize,
        y_k: &[f64],
        w: usize,
        lsum_i: &mut [f64],
        wi: usize,
        nrhs: usize,
    ) -> usize {
        for rhs in 0..nrhs {
            let yk = &y_k[rhs * w..(rhs + 1) * w];
            let li = &mut lsum_i[rhs * wi..(rhs + 1) * wi];
            for (j, &yv) in yk.iter().enumerate() {
                if yv == 0.0 {
                    continue;
                }
                let col = &panel[j * r..(j + 1) * r];
                for q in lo..hi {
                    li[rows[q] as usize - istart] += col[q] * yv;
                }
            }
        }
        2 * (hi - lo) * w * nrhs
    }

    /// Raw-slice scalar form of [`apply_u_block`].
    #[allow(clippy::too_many_arguments)]
    pub fn apply_u(
        panel: &[f64],
        w: usize,
        rows: &[u32],
        jstart: usize,
        qlo: usize,
        qhi: usize,
        x_j: &[f64],
        wj: usize,
        usum_k: &mut [f64],
        nrhs: usize,
    ) -> usize {
        for rhs in 0..nrhs {
            let xj = &x_j[rhs * wj..(rhs + 1) * wj];
            let uk = &mut usum_k[rhs * w..(rhs + 1) * w];
            for q in qlo..qhi {
                let xv = xj[rows[q] as usize - jstart];
                if xv == 0.0 {
                    continue;
                }
                let col = &panel[q * w..(q + 1) * w];
                for i in 0..w {
                    uk[i] += col[i] * xv;
                }
            }
        }
        2 * (qhi - qlo) * w * nrhs
    }

    /// `lsum(I) += L(I, K) · y(K)` for the block at row positions
    /// `[lo, hi)` of column-supernode `k`. `y_k` is `w_k × nrhs` col-major;
    /// `lsum_i` is `w_i × nrhs` col-major. Returns the flop count.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_l_block(
        fact: &Factorized,
        k: usize,
        i: usize,
        lo: usize,
        hi: usize,
        y_k: &[f64],
        lsum_i: &mut [f64],
        nrhs: usize,
    ) -> usize {
        let sym = fact.lu.sym();
        let w = sym.sup_width(k);
        let wi = sym.sup_width(i);
        let istart = sym.sup_cols(i).start;
        let rows = sym.rows_below(k);
        let r = rows.len();
        let panel = &fact.lu.panel(k).l_below;
        debug_assert_eq!(y_k.len(), w * nrhs);
        debug_assert_eq!(lsum_i.len(), wi * nrhs);
        apply_l(panel, r, rows, istart, lo, hi, y_k, w, lsum_i, wi, nrhs)
    }

    /// `usum(K) += U(K, J) · x(J)` for the block at column positions
    /// `[qlo, qhi)` of row-supernode `k`. `x_j` is `w_j × nrhs` col-major;
    /// `usum_k` is `w_k × nrhs` col-major. Returns the flop count.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_u_block(
        fact: &Factorized,
        k: usize,
        j: usize,
        qlo: usize,
        qhi: usize,
        x_j: &[f64],
        usum_k: &mut [f64],
        nrhs: usize,
    ) -> usize {
        let sym = fact.lu.sym();
        let w = sym.sup_width(k);
        let wj = sym.sup_width(j);
        let jstart = sym.sup_cols(j).start;
        let rows = sym.rows_below(k);
        let panel = &fact.lu.panel(k).u_right;
        debug_assert_eq!(x_j.len(), wj * nrhs);
        debug_assert_eq!(usum_k.len(), w * nrhs);
        apply_u(panel, w, rows, jstart, qlo, qhi, x_j, wj, usum_k, nrhs)
    }

    /// `y(K) = L(K,K)⁻¹ · (b(K) − lsum(K))` — allocating form of the
    /// diagonal solve of Eq. (1). Returns `(y, flops)`.
    pub fn diag_solve_l(
        fact: &Factorized,
        k: usize,
        b_k: &[f64],
        lsum_k: Option<&[f64]>,
        nrhs: usize,
    ) -> (Vec<f64>, usize) {
        let sym = fact.lu.sym();
        let w = sym.sup_width(k);
        let mut rhs = vec![0.0; w * nrhs];
        let mut y = vec![0.0; w * nrhs];
        let flops = super::diag_solve_l_into(fact, k, b_k, lsum_k, nrhs, &mut rhs, &mut y);
        (y, flops)
    }

    /// `x(K) = U(K,K)⁻¹ · (y(K) − usum(K))` — allocating form of the
    /// diagonal solve of Eq. (2). Returns `(x, flops)`.
    pub fn diag_solve_u(
        fact: &Factorized,
        k: usize,
        y_k: &[f64],
        usum_k: Option<&[f64]>,
        nrhs: usize,
    ) -> (Vec<f64>, usize) {
        let sym = fact.lu.sym();
        let w = sym.sup_width(k);
        let mut rhs = vec![0.0; w * nrhs];
        let mut x = vec![0.0; w * nrhs];
        let flops = super::diag_solve_u_into(fact, k, y_k, usum_k, nrhs, &mut rhs, &mut x);
        (x, flops)
    }

    /// Allocating form of [`super::masked_rhs_into`].
    pub fn masked_rhs(
        fact: &Factorized,
        k: usize,
        pb: &[f64],
        nrhs: usize,
        active: bool,
    ) -> Vec<f64> {
        let sym = fact.lu.sym();
        let w = sym.sup_cols(k).len();
        let mut b = vec![0.0; w * nrhs];
        super::masked_rhs_into(fact, k, pb, nrhs, active, &mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{apply_l_block, apply_u_block, diag_solve_l, diag_solve_u, masked_rhs};
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;
    use std::sync::Arc;

    fn small_fact() -> Arc<Factorized> {
        Arc::new(factorize(&gen::poisson2d_5pt(6, 6), 1, &SymbolicOptions::default()).unwrap())
    }

    /// Block-wise L-solve via the kernels must equal the reference solve.
    #[test]
    fn blockwise_l_solve_matches_reference() {
        let f = small_fact();
        let sym = f.lu.sym();
        let n = sym.n();
        let nrhs = 2;
        let pb = gen::standard_rhs(n, nrhs);

        // Reference.
        let mut want = pb.clone();
        f.lu.solve_l(&mut want, nrhs);

        // Kernel-based: supernode order with lsum accumulation.
        let nsup = sym.n_supernodes();
        let mut lsum: Vec<Vec<f64>> = (0..nsup)
            .map(|k| vec![0.0; sym.sup_width(k) * nrhs])
            .collect();
        let mut y: Vec<Vec<f64>> = Vec::with_capacity(nsup);
        for k in 0..nsup {
            let b_k = masked_rhs(&f, k, &pb, nrhs, true);
            let (yk, _) = diag_solve_l(&f, k, &b_k, Some(&lsum[k]), nrhs);
            for &i in sym.blocks_below(k) {
                let (lo, hi) = block_range(&f, k, i as usize);
                let mut li = std::mem::take(&mut lsum[i as usize]);
                apply_l_block(&f, k, i as usize, lo, hi, &yk, &mut li, nrhs);
                lsum[i as usize] = li;
            }
            y.push(yk);
        }
        for (k, yk) in y.iter().enumerate().take(nsup) {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            for r in 0..nrhs {
                for j in 0..w {
                    let got = yk[r * w + j];
                    let exp = want[r * n + cols.start + j];
                    assert!((got - exp).abs() < 1e-12, "y mismatch at sup {k}");
                }
            }
        }
    }

    /// Block-wise U-solve via the kernels must equal the reference solve.
    #[test]
    fn blockwise_u_solve_matches_reference() {
        let f = small_fact();
        let sym = f.lu.sym();
        let n = sym.n();
        let nrhs = 1;
        let mut y = gen::standard_rhs(n, nrhs);
        let mut want = y.clone();
        f.lu.solve_u(&mut want, nrhs);

        let nsup = sym.n_supernodes();
        let mut x: Vec<Vec<f64>> = vec![Vec::new(); nsup];
        for k in (0..nsup).rev() {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            let mut usum = vec![0.0; w * nrhs];
            for &j in sym.blocks_below(k) {
                let (qlo, qhi) = block_range(&f, k, j as usize);
                apply_u_block(&f, k, j as usize, qlo, qhi, &x[j as usize], &mut usum, nrhs);
            }
            let y_k: Vec<f64> = (0..nrhs)
                .flat_map(|r| y[r * n + cols.start..r * n + cols.end].to_vec())
                .collect();
            let (xk, _) = diag_solve_u(&f, k, &y_k, Some(&usum), nrhs);
            x[k] = xk;
        }
        let _ = &mut y;
        for (k, xk) in x.iter().enumerate().take(nsup) {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            for j in 0..w {
                assert!((xk[j] - want[cols.start + j]).abs() < 1e-12);
            }
        }
    }

    /// The blocked kernels are bit-identical to the scalar reference on
    /// every block of a real factorization, for a spread of `nrhs`.
    #[test]
    fn blocked_kernels_match_reference_bitwise() {
        let f = small_fact();
        let sym = f.lu.sym();
        for nrhs in [1usize, 2, 3, 4, 7, 8] {
            for k in 0..sym.n_supernodes() {
                let w = sym.sup_width(k);
                let rows = sym.rows_below(k);
                let r = rows.len();
                let y_k: Vec<f64> = (0..w * nrhs).map(|i| ((i * 7 + k) as f64).sin()).collect();
                for &i in sym.blocks_below(k) {
                    let i = i as usize;
                    let (lo, hi) = block_range(&f, k, i);
                    let wi = sym.sup_width(i);
                    let istart = sym.sup_cols(i).start;
                    let scatter: Vec<u32> =
                        rows[lo..hi].iter().map(|&q| q - istart as u32).collect();
                    let mut want = vec![0.1; wi * nrhs];
                    let mut got = want.clone();
                    apply_l_block(&f, k, i, lo, hi, &y_k, &mut want, nrhs);
                    apply_l(
                        &f.lu.panel(k).l_below,
                        r,
                        lo,
                        hi,
                        Targets::Scatter(&scatter),
                        &y_k,
                        w,
                        &mut got,
                        wi,
                        nrhs,
                    );
                    assert!(
                        want.iter()
                            .zip(&got)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "apply_l blocked != reference at k={k} i={i} nrhs={nrhs}"
                    );

                    let x_j: Vec<f64> =
                        (0..wi * nrhs).map(|t| ((t * 3 + i) as f64).cos()).collect();
                    let mut want_u = vec![0.2; w * nrhs];
                    let mut got_u = want_u.clone();
                    apply_u_block(&f, k, i, lo, hi, &x_j, &mut want_u, nrhs);
                    apply_u(
                        &f.lu.panel(k).u_right,
                        w,
                        lo,
                        hi,
                        Targets::Scatter(&scatter),
                        &x_j,
                        wi,
                        &mut got_u,
                        nrhs,
                    );
                    assert!(
                        want_u
                            .iter()
                            .zip(&got_u)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "apply_u blocked != reference at k={k} j={i} nrhs={nrhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_rhs_zeroes_inactive() {
        let f = small_fact();
        let pb = gen::standard_rhs(f.lu.n(), 1);
        let b0 = masked_rhs(&f, 0, &pb, 1, false);
        assert!(b0.iter().all(|&v| v == 0.0));
        let b1 = masked_rhs(&f, 0, &pb, 1, true);
        assert!(b1.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn block_range_locates_rows() {
        let f = small_fact();
        let sym = f.lu.sym();
        for k in 0..sym.n_supernodes() {
            for &i in sym.blocks_below(k) {
                let (lo, hi) = block_range(&f, k, i as usize);
                assert!(lo < hi, "block must be nonempty");
                let rows = sym.rows_below(k);
                let icols = sym.sup_cols(i as usize);
                for &row in &rows[lo..hi] {
                    assert!(icols.contains(&(row as usize)));
                }
            }
        }
    }
}
