//! Numeric block kernels shared by the CPU and GPU solve paths.
//!
//! All solvers — sequential, CPU message-driven, GPU-modelled — perform the
//! same real arithmetic through these helpers; only the *time accounting*
//! differs between paths.

use lufactor::Factorized;

/// Locate the row-position range `[lo, hi)` of row-supernode `i` within
/// `rows_below(k)` of column-supernode `k`.
pub fn block_range(fact: &Factorized, k: usize, i: usize) -> (usize, usize) {
    let sym = fact.lu.sym();
    let rows = sym.rows_below(k);
    let icols = sym.sup_cols(i);
    let lo = rows.partition_point(|&r| (r as usize) < icols.start);
    let hi = rows.partition_point(|&r| (r as usize) < icols.end);
    (lo, hi)
}

/// `lsum(I) += L(I, K) · y(K)` for the block at row positions `[lo, hi)` of
/// column-supernode `k`. `y_k` is `w_k × nrhs` col-major; `lsum_i` is
/// `w_i × nrhs` col-major. Returns the flop count.
#[allow(clippy::too_many_arguments)]
pub fn apply_l_block(
    fact: &Factorized,
    k: usize,
    i: usize,
    lo: usize,
    hi: usize,
    y_k: &[f64],
    lsum_i: &mut [f64],
    nrhs: usize,
) -> usize {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let wi = sym.sup_width(i);
    let istart = sym.sup_cols(i).start;
    let rows = sym.rows_below(k);
    let r = rows.len();
    let panel = &fact.lu.panel(k).l_below;
    debug_assert_eq!(y_k.len(), w * nrhs);
    debug_assert_eq!(lsum_i.len(), wi * nrhs);
    for rhs in 0..nrhs {
        let yk = &y_k[rhs * w..(rhs + 1) * w];
        let li = &mut lsum_i[rhs * wi..(rhs + 1) * wi];
        for (j, &yv) in yk.iter().enumerate() {
            if yv == 0.0 {
                continue;
            }
            let col = &panel[j * r..(j + 1) * r];
            for q in lo..hi {
                li[rows[q] as usize - istart] += col[q] * yv;
            }
        }
    }
    2 * (hi - lo) * w * nrhs
}

/// `usum(K) += U(K, J) · x(J)` for the block at column positions `[qlo,
/// qhi)` of row-supernode `k`. `x_j` is `w_j × nrhs` col-major; `usum_k` is
/// `w_k × nrhs` col-major. Returns the flop count.
#[allow(clippy::too_many_arguments)]
pub fn apply_u_block(
    fact: &Factorized,
    k: usize,
    j: usize,
    qlo: usize,
    qhi: usize,
    x_j: &[f64],
    usum_k: &mut [f64],
    nrhs: usize,
) -> usize {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let wj = sym.sup_width(j);
    let jstart = sym.sup_cols(j).start;
    let rows = sym.rows_below(k);
    let panel = &fact.lu.panel(k).u_right;
    debug_assert_eq!(x_j.len(), wj * nrhs);
    debug_assert_eq!(usum_k.len(), w * nrhs);
    for rhs in 0..nrhs {
        let xj = &x_j[rhs * wj..(rhs + 1) * wj];
        let uk = &mut usum_k[rhs * w..(rhs + 1) * w];
        for q in qlo..qhi {
            let xv = xj[rows[q] as usize - jstart];
            if xv == 0.0 {
                continue;
            }
            let col = &panel[q * w..(q + 1) * w];
            for i in 0..w {
                uk[i] += col[i] * xv;
            }
        }
    }
    2 * (qhi - qlo) * w * nrhs
}

/// `y(K) = L(K,K)⁻¹ · (b(K) − lsum(K))` — the diagonal solve of Eq. (1),
/// with the precomputed inverse. Returns `(y, flops)`.
pub fn diag_solve_l(
    fact: &Factorized,
    k: usize,
    b_k: &[f64],
    lsum_k: Option<&[f64]>,
    nrhs: usize,
) -> (Vec<f64>, usize) {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let p = fact.lu.panel(k);
    let mut rhs = b_k.to_vec();
    if let Some(ls) = lsum_k {
        for (a, &s) in rhs.iter_mut().zip(ls) {
            *a -= s;
        }
    }
    let mut y = vec![0.0; w * nrhs];
    for r in 0..nrhs {
        sparse::dense::gemv(
            1.0,
            &p.dinv_l,
            w,
            w,
            &rhs[r * w..(r + 1) * w],
            &mut y[r * w..(r + 1) * w],
        );
    }
    (y, 2 * w * w * nrhs)
}

/// `x(K) = U(K,K)⁻¹ · (y(K) − usum(K))` — the diagonal solve of Eq. (2).
/// Returns `(x, flops)`.
pub fn diag_solve_u(
    fact: &Factorized,
    k: usize,
    y_k: &[f64],
    usum_k: Option<&[f64]>,
    nrhs: usize,
) -> (Vec<f64>, usize) {
    let sym = fact.lu.sym();
    let w = sym.sup_width(k);
    let p = fact.lu.panel(k);
    let mut rhs = y_k.to_vec();
    if let Some(us) = usum_k {
        for (a, &s) in rhs.iter_mut().zip(us) {
            *a -= s;
        }
    }
    let mut x = vec![0.0; w * nrhs];
    for r in 0..nrhs {
        sparse::dense::gemv(
            1.0,
            &p.dinv_u,
            w,
            w,
            &rhs[r * w..(r + 1) * w],
            &mut x[r * w..(r + 1) * w],
        );
    }
    (x, 2 * w * w * nrhs)
}

/// Extract the (masked) RHS subvector of supernode `k` from the global
/// permuted RHS `pb` (`n × nrhs` col-major): `b(K)` if `active`, zeros
/// otherwise (Alg. 1 lines 3–10).
pub fn masked_rhs(fact: &Factorized, k: usize, pb: &[f64], nrhs: usize, active: bool) -> Vec<f64> {
    let sym = fact.lu.sym();
    let n = sym.n();
    let cols = sym.sup_cols(k);
    let w = cols.len();
    let mut b = vec![0.0; w * nrhs];
    if active {
        for r in 0..nrhs {
            b[r * w..(r + 1) * w].copy_from_slice(&pb[r * n + cols.start..r * n + cols.end]);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;
    use std::sync::Arc;

    fn small_fact() -> Arc<Factorized> {
        Arc::new(factorize(&gen::poisson2d_5pt(6, 6), 1, &SymbolicOptions::default()).unwrap())
    }

    /// Block-wise L-solve via the kernels must equal the reference solve.
    #[test]
    fn blockwise_l_solve_matches_reference() {
        let f = small_fact();
        let sym = f.lu.sym();
        let n = sym.n();
        let nrhs = 2;
        let pb = gen::standard_rhs(n, nrhs);

        // Reference.
        let mut want = pb.clone();
        f.lu.solve_l(&mut want, nrhs);

        // Kernel-based: supernode order with lsum accumulation.
        let nsup = sym.n_supernodes();
        let mut lsum: Vec<Vec<f64>> = (0..nsup)
            .map(|k| vec![0.0; sym.sup_width(k) * nrhs])
            .collect();
        let mut y: Vec<Vec<f64>> = Vec::with_capacity(nsup);
        for k in 0..nsup {
            let b_k = masked_rhs(&f, k, &pb, nrhs, true);
            let (yk, _) = diag_solve_l(&f, k, &b_k, Some(&lsum[k]), nrhs);
            for &i in sym.blocks_below(k) {
                let (lo, hi) = block_range(&f, k, i as usize);
                let mut li = std::mem::take(&mut lsum[i as usize]);
                apply_l_block(&f, k, i as usize, lo, hi, &yk, &mut li, nrhs);
                lsum[i as usize] = li;
            }
            y.push(yk);
        }
        for (k, yk) in y.iter().enumerate().take(nsup) {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            for r in 0..nrhs {
                for j in 0..w {
                    let got = yk[r * w + j];
                    let exp = want[r * n + cols.start + j];
                    assert!((got - exp).abs() < 1e-12, "y mismatch at sup {k}");
                }
            }
        }
    }

    /// Block-wise U-solve via the kernels must equal the reference solve.
    #[test]
    fn blockwise_u_solve_matches_reference() {
        let f = small_fact();
        let sym = f.lu.sym();
        let n = sym.n();
        let nrhs = 1;
        let mut y = gen::standard_rhs(n, nrhs);
        let mut want = y.clone();
        f.lu.solve_u(&mut want, nrhs);

        let nsup = sym.n_supernodes();
        let mut x: Vec<Vec<f64>> = vec![Vec::new(); nsup];
        for k in (0..nsup).rev() {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            let mut usum = vec![0.0; w * nrhs];
            for &j in sym.blocks_below(k) {
                let (qlo, qhi) = block_range(&f, k, j as usize);
                apply_u_block(&f, k, j as usize, qlo, qhi, &x[j as usize], &mut usum, nrhs);
            }
            let y_k: Vec<f64> = (0..nrhs)
                .flat_map(|r| y[r * n + cols.start..r * n + cols.end].to_vec())
                .collect();
            let (xk, _) = diag_solve_u(&f, k, &y_k, Some(&usum), nrhs);
            x[k] = xk;
        }
        let _ = &mut y;
        for (k, xk) in x.iter().enumerate().take(nsup) {
            let cols = sym.sup_cols(k);
            let w = cols.len();
            for j in 0..w {
                assert!((xk[j] - want[cols.start + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn masked_rhs_zeroes_inactive() {
        let f = small_fact();
        let pb = gen::standard_rhs(f.lu.n(), 1);
        let b0 = masked_rhs(&f, 0, &pb, 1, false);
        assert!(b0.iter().all(|&v| v == 0.0));
        let b1 = masked_rhs(&f, 0, &pb, 1, true);
        assert!(b1.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn block_range_locates_rows() {
        let f = small_fact();
        let sym = f.lu.sym();
        for k in 0..sym.n_supernodes() {
            for &i in sym.blocks_below(k) {
                let (lo, hi) = block_range(&f, k, i as usize);
                assert!(lo < hi, "block must be nonempty");
                let rows = sym.rows_below(k);
                let icols = sym.sup_cols(i as usize);
                for &row in &rows[lo..hi] {
                    assert!(icols.contains(&(row as usize)));
                }
            }
        }
    }
}
