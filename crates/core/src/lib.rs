//! The paper's contribution: 3D communication-avoiding SpTRSV with unified
//! communication optimization strategies.
//!
//! Process layout (`Px × Py × Pz`): `Pz` 2D grids, each owning the
//! submatrix of one leaf of the top `log2(Pz)` levels of the separator tree
//! plus all replicated ancestors (Fig. 1 of the paper). Supernode block
//! `(I, K)` lives at process `(I mod Px, K mod Py)` of each replicating
//! grid — the same position in every grid, which is what makes the
//! inter-grid exchanges rank-aligned.
//!
//! Algorithms implemented:
//!
//! * [`solve2d`] — message-driven 2D L-/U-solves with per-column binary
//!   broadcast trees and per-row binary reduction trees (paper Alg. 3,
//!   generalized to `Px × Py`), plus the flat-communication variant the
//!   baseline 3D algorithm uses.
//! * [`levelexec`] — the alternate level-set execution engine: fires the
//!   same compiled passes in precompiled dependency-level order instead
//!   of a reactive work queue (selected with
//!   [`SolverConfig::executor`], DESIGN.md §12).
//! * [`allreduce`] — the sparse inter-grid allreduce (paper Alg. 2).
//! * [`new3d`] — the proposed 3D SpTRSV (paper Alg. 1): one masked 2D
//!   L-solve, one sparse allreduce, one 2D U-solve.
//! * [`baseline3d`] — the ICS'19 baseline: level-by-level tree traversal
//!   with `O(log Pz)` inter-grid synchronizations and idle grids.
//! * [`gpusolve`] — the GPU execution models: single-GPU sync-free solve
//!   (paper Alg. 4) and the NVSHMEM-style multi-GPU solve (paper Alg. 5).
//!
//! The driver ([`solve_distributed`]) runs any of these on the `simgrid`
//! virtual cluster and returns the gathered solution plus the paper's
//! timing breakdown (L-solve / U-solve / Z-comm, per rank).
//!
//! On top of the driver, [`service`] is the batched serving front door:
//! a [`SolverService`] coalesces many small independent solve requests
//! into one `nrhs > 1` solve on a cached plan and demuxes per-request
//! result columns, bit-identically to solving each request alone
//! (DESIGN.md §13).

pub mod allreduce;
pub mod analysis;
pub mod arena;
pub mod audit;
pub mod baseline3d;
pub mod driver;
pub mod gpusolve;
pub mod kernels;
pub mod levelexec;
pub mod new3d;
pub mod plan;
pub mod schedule;
pub mod service;
pub mod solve2d;

pub use analysis::{
    critical_path, span_profile, BlockingEdge, CriticalPath, ProfileEntry, SpanProfile,
};
pub use driver::{
    solve_distributed, solve_planned, solve_traced, Algorithm, Arch, Backend, ExecutorKind,
    PhaseTimes, SolveOutcome, Solver3d, SolverConfig,
};
pub use plan::{GridSet, Plan, ZTrim};
pub use service::{
    BatchPolicy, MetricsServer, QueueFullPolicy, ServiceConfig, ServiceStats, SolverService,
    SubmitError, Ticket,
};

#[cfg(test)]
mod tests {
    use super::*;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    #[test]
    fn end_to_end_new3d_matches_reference() {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, 4, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 4,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let want = f.solve(&b, 1);
        assert!(sparse::max_abs_diff(&out.x, &want) < 1e-12);
        assert!(sparse::rel_residual_inf(&a, &out.x, &b, 1) < 1e-10);
    }
}
