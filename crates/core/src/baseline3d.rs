//! The baseline CA 3D SpTRSV (Sao/Vuduc/Li, ICS'19) the paper improves on.
//!
//! Level-by-level bottom-up traversal of the elimination (separator) tree:
//! at each level the active grids run a 2D solve of just that tree node's
//! supernodes (with *flat* intra-grid communication — the baseline cannot
//! integrate the communication trees, paper §3.3 Remark), compute the
//! off-diagonal GEMV contributions into the replicated ancestor rows, and
//! pairwise-reduce those partials toward the smallest grid sharing the
//! parent. Grids drop out as the traversal ascends — the idle-grid load
//! imbalance of the paper's Fig. 8 — and `O(log Pz)` inter-grid
//! synchronizations are paid per triangle. The U phase mirrors this
//! top-down with pairwise broadcasts of the solved ancestor pieces.
//!
//! The per-level activation tests, pass specs, pack lists, and partners
//! all come precompiled in the plan's schedule (`l_steps`/`u_steps` with
//! their [`ZExchange`]s); the rank program just walks the step list.

use crate::driver::{ExecutorKind, PhaseTimes};
use crate::new3d::RankOutput;
use crate::plan::Plan;
use crate::schedule::{ScheduleKey, ZExchange};
use crate::solve2d::{l_solve_pass, u_solve_pass, Ctx, Ledger, SolveState};
use simgrid::{Category, SpanDetail, Transport};

/// Pack per-rank partial `lsum` rows `I` (ancestor supernodes with
/// `I mod Px == x`) into `buf` (cleared first) in the presence-bitmap
/// wire format (DESIGN.md §15): which rows a rank actually accumulated is
/// only known at run time, so a `ceil(len/64)`-word bitmap leads and rows
/// the rank never touched ship no bytes at all (the pre-PR9 format
/// zero-filled them). Folds through the state's arena and reuses the
/// caller's hoisted buffer, so steady-state exchanges stop allocating per
/// level.
fn pack_lsums_into(
    plan: &Plan,
    sups: &[u32],
    state: &mut SolveState,
    nrhs: usize,
    buf: &mut Vec<f64>,
) {
    let sym = plan.fact.lu.sym();
    buf.clear();
    let nwords = sups.len().div_ceil(64);
    buf.resize(nwords, 0.0);
    for (i, &su) in sups.iter().enumerate() {
        if !state.lsum.has(su) {
            continue;
        }
        let w = sym.sup_width(su as usize) * nrhs;
        let tmp = state.arena.slice(w);
        state.lsum.fold_into(su, tmp);
        buf[i / 64] = f64::from_bits(buf[i / 64].to_bits() | 1 << (i % 64));
        buf.extend_from_slice(tmp);
    }
}

fn unpack_add_lsums(
    plan: &Plan,
    sups: &[u32],
    tag: u64,
    buf: &[f64],
    lsum: &mut Ledger,
    nrhs: usize,
) {
    // Layout validation lives in the unpacker: a malformed bitmap or
    // wrong-length buffer means sender and receiver disagree on the
    // exchange's sup list — corrupt the diagnosis, not the solution.
    crate::allreduce::unpack_present_with(plan, sups, buf, nrhs, "z-exchange lsum", |i, v| {
        lsum.add(i, Ledger::key_exchange(tag), v);
    });
}

/// Pairwise reduce of the ancestor partial sums toward the smaller grid
/// of each pair (precompiled direction and pack list).
fn exchange_lsums<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    xch: &ZExchange,
    nrhs: usize,
    state: &mut SolveState,
    buf: &mut Vec<f64>,
) {
    zcomm.set_span_detail(Some(SpanDetail::ZExchange {
        level: (xch.tag & 0xffff) as u32,
        reduce: true,
    }));
    if xch.send {
        pack_lsums_into(plan, &xch.sups, state, nrhs, buf);
        let sym = plan.fact.lu.sym();
        let dense: u64 = xch
            .sups
            .iter()
            .map(|&i| sym.sup_width(i as usize) as u64)
            .sum();
        crate::allreduce::note_sent(zcomm, dense, nrhs, buf.len());
        zcomm.send(xch.peer as usize, xch.tag, buf, Category::ZComm);
    } else {
        let msg = zcomm.recv(Some(xch.peer as usize), Some(xch.tag), Category::ZComm);
        unpack_add_lsums(
            plan,
            &xch.sups,
            xch.tag,
            &msg.payload,
            &mut state.lsum,
            nrhs,
        );
    }
    zcomm.set_span_detail(None);
}

/// Pairwise broadcast of all solved pieces to the newly activated grids.
fn exchange_solved<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    xch: &ZExchange,
    nrhs: usize,
    state: &mut SolveState,
    buf: &mut Vec<f64>,
) {
    let sym = plan.fact.lu.sym();
    zcomm.set_span_detail(Some(SpanDetail::ZExchange {
        level: (xch.tag & 0xffff) as u32,
        reduce: false,
    }));
    if xch.send {
        buf.clear();
        for &k in &xch.sups {
            buf.extend_from_slice(
                state
                    .x_vals
                    .get(&k)
                    .expect("active grid solved its ancestors"),
            );
        }
        // Solved pieces stay dense: the sender just solved every listed
        // ancestor, so presence is static and a bitmap would only add
        // bytes. `bytes_saved` stays at zero for this exchange.
        let dense: u64 = xch
            .sups
            .iter()
            .map(|&k| sym.sup_width(k as usize) as u64)
            .sum();
        crate::allreduce::note_sent(zcomm, dense, nrhs, buf.len());
        zcomm.send(xch.peer as usize, xch.tag, buf, Category::ZComm);
    } else {
        let msg = zcomm.recv(Some(xch.peer as usize), Some(xch.tag), Category::ZComm);
        let mut off = 0;
        for &k in &xch.sups {
            let w = sym.sup_width(k as usize) * nrhs;
            match state.x_vals.get_mut(&k) {
                Some(slot) if slot.len() == w => slot.copy_from_slice(&msg.payload[off..off + w]),
                _ => {
                    state.x_vals.insert(k, msg.payload[off..off + w].to_vec());
                }
            }
            off += w;
        }
        debug_assert_eq!(off, msg.payload.len());
    }
    zcomm.set_span_detail(None);
}

/// Run the baseline 3D SpTRSV as the rank program of `(x, y, z)`.
#[allow(clippy::too_many_arguments)]
pub fn run_rank<T: Transport>(
    plan: &Plan,
    grid_comm: &T,
    zcomm: &T,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
    executor: ExecutorKind,
) -> RankOutput {
    let grid = &plan.grids[z];
    let sched = plan.schedule(ScheduleKey {
        baseline: true,
        tree_comm: false,
    });
    let rs = &sched.ranks[plan.rank_of(x, y, z)];
    let ctx = Ctx {
        plan,
        grid,
        comm: grid_comm,
        x,
        y,
        nrhs,
        pb,
        executor,
    };
    let mut state = SolveState::default();
    // One hoisted pack buffer for every inter-grid exchange of this solve.
    let mut zbuf: Vec<f64> = Vec::new();

    let snapshot = |c: &T| {
        let t = c.time_snapshot();
        (
            c.now(),
            t[Category::Flop as usize] + t[Category::XyComm as usize],
            t[Category::ZComm as usize],
        )
    };
    let (t0, b0, z0) = snapshot(grid_comm);

    // ---------------- L phase: leaves to root ----------------
    for step in &rs.l_steps {
        if let Some(pass) = &step.pass {
            l_solve_pass(&ctx, pass, &mut state);
        }
        if let Some(xch) = &step.exchange {
            exchange_lsums(plan, zcomm, xch, nrhs, &mut state, &mut zbuf);
        }
    }
    let (t1, b1, _) = snapshot(grid_comm);

    // ---------------- U phase: root to leaves ----------------
    for step in &rs.u_steps {
        if let Some(pass) = &step.pass {
            u_solve_pass(&ctx, pass, &mut state);
        }
        if let Some(xch) = &step.exchange {
            exchange_solved(plan, zcomm, xch, nrhs, &mut state, &mut zbuf);
        }
    }
    let (t2, b2, z2) = snapshot(grid_comm);

    let x_pieces = state
        .x_vals
        .iter()
        .filter(|(&k, _)| plan.owner_xy(k as usize) == (x, y))
        .map(|(&k, v)| (k, v.clone()))
        .collect();

    RankOutput {
        phases: PhaseTimes {
            l_wall: t1 - t0,
            z_wall: 0.0,
            u_wall: t2 - t1,
            l_busy: b1 - b0,
            u_busy: b2 - b1,
            z_time: z2 - z0,
            total: t2 - t0,
        },
        x_pieces,
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    fn check(a: &sparse::CsrMatrix, px: usize, py: usize, pz: usize, nrhs: usize) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let want = f.solve(&b, nrhs);
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs,
            algorithm: Algorithm::Baseline3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(
            diff < 1e-11,
            "baseline px={px} py={py} pz={pz} nrhs={nrhs}: diff {diff}"
        );
    }

    #[test]
    fn baseline_pz1_is_flat_2d() {
        check(&gen::poisson2d_5pt(9, 9), 2, 2, 1, 1);
    }

    #[test]
    fn baseline_pure_z() {
        check(&gen::poisson2d_5pt(10, 10), 1, 1, 4, 1);
    }

    #[test]
    fn baseline_full_3d() {
        check(&gen::poisson2d_9pt(12, 12), 2, 3, 4, 1);
    }

    #[test]
    fn baseline_multi_rhs() {
        check(&gen::poisson2d_9pt(10, 10), 2, 2, 2, 3);
    }

    #[test]
    fn baseline_deep_z() {
        check(&gen::poisson2d_5pt(16, 16), 2, 1, 8, 1);
    }

    #[test]
    fn baseline_3d_pde() {
        check(&gen::poisson3d_7pt(4, 4, 4), 2, 2, 4, 1);
    }
}
