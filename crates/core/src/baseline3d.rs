//! The baseline CA 3D SpTRSV (Sao/Vuduc/Li, ICS'19) the paper improves on.
//!
//! Level-by-level bottom-up traversal of the elimination (separator) tree:
//! at each level the active grids run a 2D solve of just that tree node's
//! supernodes (with *flat* intra-grid communication — the baseline cannot
//! integrate the communication trees, paper §3.3 Remark), compute the
//! off-diagonal GEMV contributions into the replicated ancestor rows, and
//! pairwise-reduce those partials toward the smallest grid sharing the
//! parent. Grids drop out as the traversal ascends — the idle-grid load
//! imbalance of the paper's Fig. 8 — and `O(log Pz)` inter-grid
//! synchronizations are paid per triangle. The U phase mirrors this
//! top-down with pairwise broadcasts of the solved ancestor pieces.

use crate::new3d::RankOutput;
use crate::driver::PhaseTimes;
use crate::plan::{Plan, SupSet};
use crate::solve2d::{l_solve_pass, u_solve_pass, Ctx, LPassSpec, SolveState, UPassSpec};
use simgrid::{Category, Comm};
use std::collections::HashMap;

const TAG_ZRED: u64 = 9 << 40;
const TAG_ZBC: u64 = 10 << 40;

/// Pack per-rank partial `lsum` rows `I` (ancestor supernodes with
/// `I mod Px == x`) into one buffer. Zeros for rows this rank never touched.
fn pack_lsums(
    plan: &Plan,
    sups: &[u32],
    lsum: &HashMap<u32, Vec<f64>>,
    nrhs: usize,
) -> Vec<f64> {
    let sym = plan.fact.lu.sym();
    let mut buf = Vec::new();
    for &i in sups {
        let w = sym.sup_width(i as usize) * nrhs;
        match lsum.get(&i) {
            Some(v) => buf.extend_from_slice(v),
            None => buf.extend(std::iter::repeat(0.0).take(w)),
        }
    }
    buf
}

fn unpack_add_lsums(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    lsum: &mut HashMap<u32, Vec<f64>>,
    nrhs: usize,
) {
    let sym = plan.fact.lu.sym();
    let mut off = 0;
    for &i in sups {
        let w = sym.sup_width(i as usize) * nrhs;
        let acc = lsum.entry(i).or_insert_with(|| vec![0.0; w]);
        for (a, &v) in acc.iter_mut().zip(&buf[off..off + w]) {
            *a += v;
        }
        off += w;
    }
    debug_assert_eq!(off, buf.len());
}

/// Run the baseline 3D SpTRSV as the rank program of `(x, y, z)`.
pub fn run_rank(
    plan: &Plan,
    grid_comm: &Comm,
    zcomm: &Comm,
    x: usize,
    y: usize,
    z: usize,
    pb: &[f64],
    nrhs: usize,
) -> RankOutput {
    let grid = &plan.grids[z];
    let d = plan.depth;
    let sym = plan.fact.lu.sym();
    let nsup = sym.n_supernodes();
    let ctx = Ctx {
        plan,
        grid,
        comm: grid_comm,
        x,
        y,
        nrhs,
        pb,
    };
    let mut state = SolveState::default();

    let snapshot = |c: &Comm| {
        let t = c.time_snapshot();
        (
            c.now(),
            t[Category::Flop as usize] + t[Category::XyComm as usize],
            t[Category::ZComm as usize],
        )
    };
    let (t0, b0, z0) = snapshot(grid_comm);

    // ---------------- L phase: leaves to root ----------------
    for lev in (0..=d).rev() {
        let active = z % (1 << (d - lev)) == 0;
        if active {
            let cols = plan.node_supers(grid.path[lev]);
            if !cols.is_empty() {
                l_solve_pass(
                    &ctx,
                    &LPassSpec {
                        cols: &cols,
                        contrib_all: true,
                        tree_comm: false,
                        epoch: (d - lev) as u64,
                    },
                    &mut state,
                );
            }
        }
        if lev > 0 {
            // Pairwise reduce of the ancestor partial sums toward the
            // smaller grid of each pair.
            let step = d - lev;
            let ancestors: Vec<u32> = grid
                .path
                .iter()
                .take(lev)
                .flat_map(|&t| plan.node_supers(t))
                .filter(|&i| i as usize % plan.px == x)
                .collect();
            if z % (1 << (step + 1)) == (1 << step) {
                let buf = pack_lsums(plan, &ancestors, &state.lsum, nrhs);
                zcomm.send(z - (1 << step), TAG_ZRED + lev as u64, &buf, Category::ZComm);
            } else if z % (1 << (step + 1)) == 0 {
                let msg = zcomm.recv(
                    Some(z + (1 << step)),
                    Some(TAG_ZRED + lev as u64),
                    Category::ZComm,
                );
                unpack_add_lsums(plan, &ancestors, &msg.payload, &mut state.lsum, nrhs);
            }
        }
    }
    let (t1, b1, _) = snapshot(grid_comm);

    // ---------------- U phase: root to leaves ----------------
    for lev in 0..=d {
        let active = z % (1 << (d - lev)) == 0;
        if active {
            let rows = plan.node_supers(grid.path[lev]);
            let ext: Vec<u32> = grid
                .path
                .iter()
                .take(lev)
                .flat_map(|&t| plan.node_supers(t))
                .collect();
            if !rows.is_empty() {
                let mut row_set = SupSet::new(nsup);
                for &k in &rows {
                    row_set.insert(k as usize);
                }
                u_solve_pass(
                    &ctx,
                    &UPassSpec {
                        rows: &rows,
                        row_set: &row_set,
                        ext_cols: &ext,
                        tree_comm: false,
                        epoch: (d + 1 + lev) as u64,
                    },
                    &mut state,
                );
            }
        }
        if lev < d {
            // Pairwise broadcast of all solved pieces (levels 0..=lev) to
            // the newly activated grids.
            let step = d - lev - 1;
            let solved: Vec<u32> = grid
                .path
                .iter()
                .take(lev + 1)
                .flat_map(|&t| plan.node_supers(t))
                .filter(|&k| k as usize % plan.px == x && k as usize % plan.py == y)
                .collect();
            if z % (1 << (step + 1)) == 0 {
                let mut buf = Vec::new();
                for &k in &solved {
                    buf.extend_from_slice(
                        state
                            .x_vals
                            .get(&k)
                            .expect("active grid solved its ancestors"),
                    );
                }
                zcomm.send(z + (1 << step), TAG_ZBC + lev as u64, &buf, Category::ZComm);
            } else if z % (1 << (step + 1)) == (1 << step) {
                let msg = zcomm.recv(
                    Some(z - (1 << step)),
                    Some(TAG_ZBC + lev as u64),
                    Category::ZComm,
                );
                let mut off = 0;
                for &k in &solved {
                    let w = sym.sup_width(k as usize) * nrhs;
                    state.x_vals.insert(k, msg.payload[off..off + w].to_vec());
                    off += w;
                }
                debug_assert_eq!(off, msg.payload.len());
            }
        }
    }
    let (t2, b2, z2) = snapshot(grid_comm);

    let x_pieces = state
        .x_vals
        .iter()
        .filter(|(&k, _)| k as usize % plan.px == x && k as usize % plan.py == y)
        .map(|(&k, v)| (k, v.clone()))
        .collect();

    RankOutput {
        phases: PhaseTimes {
            l_wall: t1 - t0,
            z_wall: 0.0,
            u_wall: t2 - t1,
            l_busy: b1 - b0,
            u_busy: b2 - b1,
            z_time: z2 - z0,
            total: t2 - t0,
        },
        x_pieces,
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::MachineModel;
    use sparse::gen;
    use std::sync::Arc;

    fn check(a: &sparse::CsrMatrix, px: usize, py: usize, pz: usize, nrhs: usize) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let want = f.solve(&b, nrhs);
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs,
            algorithm: Algorithm::Baseline3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
        };
        let out = solve_distributed(&f, &b, &cfg);
        let diff = sparse::max_abs_diff(&out.x, &want);
        assert!(
            diff < 1e-11,
            "baseline px={px} py={py} pz={pz} nrhs={nrhs}: diff {diff}"
        );
    }

    #[test]
    fn baseline_pz1_is_flat_2d() {
        check(&gen::poisson2d_5pt(9, 9), 2, 2, 1, 1);
    }

    #[test]
    fn baseline_pure_z() {
        check(&gen::poisson2d_5pt(10, 10), 1, 1, 4, 1);
    }

    #[test]
    fn baseline_full_3d() {
        check(&gen::poisson2d_9pt(12, 12), 2, 3, 4, 1);
    }

    #[test]
    fn baseline_multi_rhs() {
        check(&gen::poisson2d_9pt(10, 10), 2, 2, 2, 3);
    }

    #[test]
    fn baseline_deep_z() {
        check(&gen::poisson2d_5pt(16, 16), 2, 1, 8, 1);
    }

    #[test]
    fn baseline_3d_pde() {
        check(&gen::poisson3d_7pt(4, 4, 4), 2, 2, 4, 1);
    }
}
