//! Steady-state allocation audit hooks.
//!
//! The pass interpreter ([`crate::schedule::run_pass_with`]) and the
//! single-GPU column sweeps are designed to be allocation-free: every
//! buffer they touch — ledger accumulators, diagonal-solve scratch, send
//! payloads, the interpreter's own queues — is sized during per-pass
//! setup. This module lets a test binary *prove* that: the hot regions
//! mark themselves with [`pass_scope`], and a counting `#[global_allocator]`
//! installed by the test (see `tests/alloc_audit.rs`) calls [`on_alloc`]
//! on every heap allocation, which counts only while the current thread is
//! inside a scope.
//!
//! Outside the audit test this is two thread-local `Cell` reads per pass —
//! effectively free, and allocation-safe to call from inside a global
//! allocator (const-initialized TLS, no lazy allocation).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static IN_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// Total allocations observed inside audit scopes, across all threads.
static SCOPED_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// RAII marker: the current thread is in a steady-state region. Nested
/// scopes are tolerated (the outermost wins).
pub struct PassScope {
    prev: bool,
}

/// Enter the steady-state region on this thread.
pub fn pass_scope() -> PassScope {
    let prev = IN_SCOPE.with(|f| f.replace(true));
    PassScope { prev }
}

impl Drop for PassScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_SCOPE.with(|f| f.set(prev));
    }
}

/// Record one heap allocation; counted only if this thread is inside a
/// [`pass_scope`]. Called by the audit test's global allocator — must not
/// allocate (it would recurse).
#[inline]
pub fn on_alloc() {
    // `try_with`: TLS may be gone during thread teardown; allocations
    // there are outside any scope by definition.
    let scoped = IN_SCOPE.try_with(|f| f.get()).unwrap_or(false);
    if scoped {
        SCOPED_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drain the cross-thread scoped-allocation counter (returns the count
/// since the previous call and resets it to zero).
pub fn take_scoped_allocs() -> u64 {
    SCOPED_ALLOCS.swap(0, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_gates_counting() {
        let _ = take_scoped_allocs();
        on_alloc();
        assert_eq!(take_scoped_allocs(), 0, "outside scope: not counted");
        {
            let _s = pass_scope();
            on_alloc();
            on_alloc();
        }
        on_alloc();
        assert_eq!(take_scoped_allocs(), 2, "only in-scope events count");
    }

    #[test]
    fn scopes_nest() {
        let _ = take_scoped_allocs();
        let outer = pass_scope();
        {
            let _inner = pass_scope();
            on_alloc();
        }
        // Still inside the outer scope after the inner one drops.
        on_alloc();
        drop(outer);
        on_alloc();
        assert_eq!(take_scoped_allocs(), 2);
    }
}
