//! Per-rank scratch arena for the solve hot path.
//!
//! One flat `f64` buffer, sized once during pass setup and handed out as
//! zeroed slices from offset 0 on every use — a bump allocator that resets
//! per operation. The solvers use it for diagonal-solve temporaries
//! (masked RHS, folded partial sums, GEMV scratch) so the steady-state
//! loop never allocates; the zeroing replaces the `vec![0.0; ..]` the old
//! code paid *plus* its allocation.

/// A reusable scratch buffer handing out zeroed `f64` slices.
#[derive(Default)]
pub struct SolveArena {
    buf: Vec<f64>,
}

impl SolveArena {
    /// Empty arena; size it with [`ensure`](Self::ensure) during setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the backing buffer to at least `n` doubles. Call during pass
    /// setup, before the audited steady-state region.
    pub fn ensure(&mut self, n: usize) {
        if self.buf.len() < n {
            self.buf.resize(n, 0.0);
        }
    }

    /// A zeroed slice of `n` doubles (grows if undersized — sized setup
    /// keeps this allocation-free).
    pub fn slice(&mut self, n: usize) -> &mut [f64] {
        self.ensure(n);
        let s = &mut self.buf[..n];
        s.fill(0.0);
        s
    }

    /// Two disjoint zeroed slices of `a` and `b` doubles.
    pub fn slices2(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        self.ensure(a + b);
        let (sa, rest) = self.buf.split_at_mut(a);
        let (sb, _) = rest.split_at_mut(b);
        sa.fill(0.0);
        sb.fill(0.0);
        (sa, sb)
    }

    /// Three disjoint zeroed slices of `a`, `b`, and `c` doubles.
    #[allow(clippy::type_complexity)]
    pub fn slices3(
        &mut self,
        a: usize,
        b: usize,
        c: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64]) {
        self.ensure(a + b + c);
        let (sa, rest) = self.buf.split_at_mut(a);
        let (sb, rest) = rest.split_at_mut(b);
        let (sc, _) = rest.split_at_mut(c);
        sa.fill(0.0);
        sb.fill(0.0);
        sc.fill(0.0);
        (sa, sb, sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_zeroed_and_disjoint() {
        let mut a = SolveArena::new();
        a.ensure(8);
        let (x, y) = a.slices2(3, 5);
        x.fill(1.0);
        y.fill(2.0);
        assert_eq!(x.len(), 3);
        assert_eq!(y.len(), 5);
        let s = a.slice(4);
        assert!(s.iter().all(|&v| v == 0.0), "handed-out slices are zeroed");
    }

    #[test]
    fn undersized_arena_still_works() {
        let mut a = SolveArena::new();
        let s = a.slice(16);
        assert_eq!(s.len(), 16);
    }
}
