//! Message-driven 2D L- and U-solves (paper Alg. 3, generalized `Px × Py`).
//!
//! Within one 2D grid, supernode block `(I, K)` lives at process
//! `(I mod Px, K mod Py)`. The L-solve needs, per supernode column `K`, a
//! *broadcast* of `y(K)` from the diagonal owner down the process column,
//! and per supernode row `I`, a *reduction* of the partial sums `lsum(I)`
//! across the process row to the diagonal owner. Both run over binary
//! communication trees (`tree_comm = true`, the Liu et al. CSC'18
//! optimization the proposed algorithm integrates) or flat star
//! communication (`tree_comm = false`, what the baseline 3D algorithm is
//! limited to). The U-solve mirrors this with `x(J)` broadcasts down
//! process columns and `usum(K)` reductions across process rows.
//!
//! The engine is *pass-based* so both 3D algorithms can reuse it:
//!
//! * the proposed algorithm runs **one** pass per triangle over the whole
//!   grid matrix `L^z`/`U^z`;
//! * the baseline algorithm runs one pass per elimination-tree level, with
//!   persistent `lsum` carry-over and externally-known ancestor solutions.
//!
//! Every rank executes a blocking any-source receive loop until its
//! precomputed expected message count is met — exactly the structure of
//! the paper's Algorithm 3 (`fmod`/`bmod` dependency counters included).

use crate::kernels;
use crate::plan::{GridSet, Plan, SupSet};
use simgrid::{Category, Comm};
use std::collections::HashMap;

/// Message kinds, encoded in tag bits 40..47. Bits 48+ carry the pass
/// *epoch*: ranks of one grid are not synchronized between passes, so a
/// neighbour already in the next pass may deliver early — the any-source
/// receive matches on the epoch and leaves such messages queued.
const KIND_Y: u64 = 1 << 40;
const KIND_LSUM: u64 = 2 << 40;
const KIND_X: u64 = 3 << 40;
const KIND_USUM: u64 = 4 << 40;
const KIND_MASK: u64 = 0xff << 40;
const SUP_MASK: u64 = (1 << 40) - 1;
/// Mask selecting the epoch bits.
pub const EPOCH_MASK: u64 = !((1 << 48) - 1);

#[inline]
fn tag(epoch: u64, kind: u64, sup: u32) -> u64 {
    (epoch << 48) | kind | sup as u64
}

/// My links within a (binary or star) tree whose member list has the root
/// first.
#[derive(Clone, Debug, Default)]
pub struct TreeLinks {
    /// Members I forward received payloads to.
    pub children: Vec<usize>,
    /// Member I send my contribution to (`None` at the root).
    pub parent: Option<usize>,
    /// Whether I am the root.
    pub is_root: bool,
}

/// Minimum member count for which a binary tree beats the flat star: below
/// this, tree depth adds pure latency to the solve's dependency chains, so
/// — like SuperLU_DIST's degree-adaptive trees — small groups stay flat.
pub const TREE_THRESHOLD: usize = 6;

/// Compute my links in the tree over `members` (root at index 0; the rest
/// sorted and duplicate-free). Returns `None` when `me` is not a member.
/// `binary = false` builds the flat star the baseline uses; `binary = true`
/// uses a binary heap shape once the group exceeds [`TREE_THRESHOLD`].
pub fn tree_links(members: &[usize], me: usize, binary: bool) -> Option<TreeLinks> {
    let pos = members.iter().position(|&m| m == me)?;
    if binary && members.len() > TREE_THRESHOLD {
        let mut children = Vec::new();
        for c in [2 * pos + 1, 2 * pos + 2] {
            if c < members.len() {
                children.push(members[c]);
            }
        }
        let parent = if pos == 0 {
            None
        } else {
            Some(members[(pos - 1) / 2])
        };
        Some(TreeLinks {
            children,
            parent,
            is_root: pos == 0,
        })
    } else if pos == 0 {
        Some(TreeLinks {
            children: members[1..].to_vec(),
            parent: None,
            is_root: true,
        })
    } else {
        Some(TreeLinks {
            children: Vec::new(),
            parent: Some(members[0]),
            is_root: false,
        })
    }
}

/// Build the member list `[root, others...]`, deduplicated, others sorted.
pub fn member_list(root: usize, others: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = others.filter(|&m| m != root).collect();
    v.sort_unstable();
    v.dedup();
    let mut out = Vec::with_capacity(v.len() + 1);
    out.push(root);
    out.extend(v);
    out
}

/// Persistent per-grid solve state carried across passes.
#[derive(Default)]
pub struct SolveState {
    /// Partial row sums `lsum(I)` (L phase), `w_I × nrhs` col-major.
    pub lsum: HashMap<u32, Vec<f64>>,
    /// Solved `y(K)` at diagonal owners (and broadcast recipients).
    pub y_vals: HashMap<u32, Vec<f64>>,
    /// Solved `x(K)` at diagonal owners.
    pub x_vals: HashMap<u32, Vec<f64>>,
}

/// Context shared by the pass functions of one rank.
pub struct Ctx<'a> {
    /// The global plan.
    pub plan: &'a Plan,
    /// My grid's membership.
    pub grid: &'a GridSet,
    /// Intra-grid communicator, rank = `x + px · y`.
    pub comm: &'a Comm,
    /// My process row.
    pub x: usize,
    /// My process column.
    pub y: usize,
    /// Number of right-hand sides.
    pub nrhs: usize,
    /// Global permuted RHS (`n × nrhs` col-major), read-only.
    pub pb: &'a [f64],
}

impl Ctx<'_> {
    #[inline]
    fn grid_rank(&self, x: usize, y: usize) -> usize {
        x + self.plan.px * y
    }

    #[inline]
    fn flop_time(&self, flops: usize) -> f64 {
        flops as f64 / self.comm.model().flop_rate
    }
}

/// Specification of one L-solve pass.
pub struct LPassSpec<'a> {
    /// Supernodes solved in this pass (ascending).
    pub cols: &'a [u32],
    /// Contributor closure for row reductions: `false` restricts to blocks
    /// whose column supernode is in this grid (proposed algorithm); `true`
    /// counts every `blocks_left` entry (baseline: descendant partials
    /// merged in from other grids also contribute).
    pub contrib_all: bool,
    /// Binary communication trees vs flat star.
    pub tree_comm: bool,
    /// Pass epoch (unique per pass within a grid, consistent across its
    /// ranks); stamped into the message tags.
    pub epoch: u64,
}

/// Per-owned-column broadcast info.
struct ColInfo {
    /// Grid ranks to forward the column's vector to.
    children: Vec<usize>,
    /// Local blocks `(row_sup, lo, hi)` of this column.
    blocks: Vec<(u32, u32, u32)>,
}

/// Per-trigger-row reduction info.
struct RowInfo {
    /// Remaining local updates + pending child contributions.
    fmod: u32,
    /// Reduction parent (grid rank), `None` at the root (diagonal owner).
    parent: Option<usize>,
}

/// Run one message-driven 2D L-solve pass. Partial sums for rows outside
/// `spec.cols` persist in `state.lsum` for later passes; solved `y(K)` land
/// in `state.y_vals`.
pub fn l_solve_pass(ctx: &Ctx, spec: &LPassSpec, state: &mut SolveState) {
    let plan = ctx.plan;
    let sym = plan.fact.lu.sym();
    let (px, py) = (plan.px, plan.py);
    let (x, y) = (ctx.x, ctx.y);
    let nrhs = ctx.nrhs;

    // --- Setup: trees and counters (precomputed, untimed — see paper) ---
    let mut cols: HashMap<u32, ColInfo> = HashMap::new();
    let mut rows: HashMap<u32, RowInfo> = HashMap::new();
    let mut expected: usize = 0;

    for &k in spec.cols {
        let ku = k as usize;
        if ku % py != y {
            continue;
        }
        let members = member_list(
            ku % px,
            sym.blocks_below(ku)
                .iter()
                .filter(|&&i| ctx.grid.member.contains(i as usize))
                .map(|&i| i as usize % px),
        );
        let Some(links) = tree_links(&members, x, spec.tree_comm) else {
            continue;
        };
        let mut blocks = Vec::new();
        for &i in sym.blocks_below(ku) {
            if i as usize % px == x && ctx.grid.member.contains(i as usize) {
                let (lo, hi) = kernels::block_range(&plan.fact, ku, i as usize);
                blocks.push((i, lo as u32, hi as u32));
            }
        }
        if !links.is_root {
            expected += 1;
        }
        cols.insert(
            k,
            ColInfo {
                children: links.children.iter().map(|&r| ctx.grid_rank(r, y)).collect(),
                blocks,
            },
        );
    }

    // Local pending update counts per row (from my owned columns).
    let mut local_pending: HashMap<u32, u32> = HashMap::new();
    for info in cols.values() {
        for &(i, _, _) in &info.blocks {
            *local_pending.entry(i).or_insert(0) += 1;
        }
    }

    for &i in spec.cols {
        let iu = i as usize;
        if iu % px != x {
            continue;
        }
        let members = member_list(
            iu % py,
            sym.blocks_left(iu)
                .iter()
                .filter(|&&k| spec.contrib_all || ctx.grid.member.contains(k as usize))
                .map(|&k| k as usize % py),
        );
        let Some(links) = tree_links(&members, y, spec.tree_comm) else {
            continue;
        };
        let n_children = links.children.len() as u32;
        expected += n_children as usize;
        rows.insert(
            i,
            RowInfo {
                fmod: local_pending.get(&i).copied().unwrap_or(0) + n_children,
                parent: links.parent.map(|c| ctx.grid_rank(x, c)),
            },
        );
    }

    // --- Solve loop (timed) ---
    let mut work: Vec<u32> = rows
        .iter()
        .filter(|(_, info)| info.fmod == 0)
        .map(|(&i, _)| i)
        .collect();
    work.sort_unstable();
    work.reverse(); // pop from the front of the ordering
    let mut received = 0usize;

    loop {
        while let Some(i) = work.pop() {
            complete_l_row(ctx, &cols, &mut rows, state, spec.epoch, i, &mut work);
        }
        if received >= expected {
            break;
        }
        let msg = ctx
            .comm
            .recv_tag_masked(EPOCH_MASK, spec.epoch << 48, Category::XyComm);
        received += 1;
        let sup = (msg.tag & SUP_MASK) as u32;
        match msg.tag & KIND_MASK {
            KIND_Y => {
                apply_y(ctx, &cols, &mut rows, state, spec.epoch, sup, &msg.payload, &mut work);
                state
                    .y_vals
                    .entry(sup)
                    .or_insert_with(|| msg.payload.to_vec());
            }
            KIND_LSUM => {
                let w = sym.sup_width(sup as usize);
                let acc = state
                    .lsum
                    .entry(sup)
                    .or_insert_with(|| vec![0.0; w * nrhs]);
                for (a, &v) in acc.iter_mut().zip(msg.payload.iter()) {
                    *a += v;
                }
                let info = rows.get_mut(&sup).expect("lsum targets a trigger row");
                info.fmod -= 1;
                if info.fmod == 0 {
                    work.push(sup);
                }
            }
            _ => unreachable!("unexpected message kind in L pass"),
        }
    }
    debug_assert!(work.is_empty());
}

/// A trigger row's dependencies are met: diagonal owners solve and
/// broadcast; other reduction members forward their partial upward.
#[allow(clippy::too_many_arguments)]
fn complete_l_row(
    ctx: &Ctx,
    cols: &HashMap<u32, ColInfo>,
    rows: &mut HashMap<u32, RowInfo>,
    state: &mut SolveState,
    epoch: u64,
    i: u32,
    work: &mut Vec<u32>,
) {
    let plan = ctx.plan;
    let sym = plan.fact.lu.sym();
    let iu = i as usize;
    let parent = rows.get(&i).expect("trigger row").parent;
    match parent {
        None => {
            // Diagonal owner: y(I) = L(I,I)⁻¹ (b(I) − lsum(I)), Eq. (1).
            let active = plan.rhs_active(ctx.grid.z, iu);
            let b_i = kernels::masked_rhs(&plan.fact, iu, ctx.pb, ctx.nrhs, active);
            let (y_i, fl) = kernels::diag_solve_l(
                &plan.fact,
                iu,
                &b_i,
                state.lsum.get(&i).map(|v| &v[..]),
                ctx.nrhs,
            );
            ctx.comm.compute(ctx.flop_time(fl), Category::Flop);
            apply_y(ctx, cols, rows, state, epoch, i, &y_i, work);
            state.y_vals.insert(i, y_i);
        }
        Some(p) => {
            let w = sym.sup_width(iu);
            let zeros;
            let payload = match state.lsum.get(&i) {
                Some(v) => &v[..],
                None => {
                    zeros = vec![0.0; w * ctx.nrhs];
                    &zeros[..]
                }
            };
            ctx.comm
                .send(p, tag(epoch, KIND_LSUM, i), payload, Category::XyComm);
        }
    }
}

/// `y(K)` became available locally: forward along the broadcast tree and
/// apply my local GEMVs for column K, possibly completing further rows.
#[allow(clippy::too_many_arguments)]
fn apply_y(
    ctx: &Ctx,
    cols: &HashMap<u32, ColInfo>,
    rows: &mut HashMap<u32, RowInfo>,
    state: &mut SolveState,
    epoch: u64,
    k: u32,
    y_k: &[f64],
    work: &mut Vec<u32>,
) {
    let Some(info) = cols.get(&k) else {
        return;
    };
    for &child in &info.children {
        ctx.comm
            .send(child, tag(epoch, KIND_Y, k), y_k, Category::XyComm);
    }
    let sym = ctx.plan.fact.lu.sym();
    for &(i, lo, hi) in &info.blocks {
        let wi = sym.sup_width(i as usize);
        let acc = state
            .lsum
            .entry(i)
            .or_insert_with(|| vec![0.0; wi * ctx.nrhs]);
        let fl = kernels::apply_l_block(
            &ctx.plan.fact,
            k as usize,
            i as usize,
            lo as usize,
            hi as usize,
            y_k,
            acc,
            ctx.nrhs,
        );
        ctx.comm.compute(ctx.flop_time(fl), Category::Flop);
        if let Some(rinfo) = rows.get_mut(&i) {
            rinfo.fmod -= 1;
            if rinfo.fmod == 0 {
                work.push(i);
            }
        }
        // Rows outside this pass just accumulate (baseline ancestors).
    }
}

/// Specification of one U-solve pass.
pub struct UPassSpec<'a> {
    /// Supernodes whose `x` is solved in this pass (ascending).
    pub rows: &'a [u32],
    /// Membership set equal to `rows`.
    pub row_set: &'a SupSet,
    /// Already-solved supernodes whose `x` is broadcast at pass start
    /// (baseline: ancestors above the current node; empty for the proposed
    /// algorithm's single pass).
    pub ext_cols: &'a [u32],
    /// Binary communication trees vs flat star.
    pub tree_comm: bool,
    /// Pass epoch (see [`LPassSpec::epoch`]).
    pub epoch: u64,
}

/// Per-announced-column x-broadcast info (U phase).
struct UColInfo {
    children: Vec<usize>,
    /// Local U blocks `(row_sup, qlo, qhi)` depending on this column.
    blocks: Vec<(u32, u32, u32)>,
    /// Whether I am the broadcast root (diagonal owner of the column).
    is_root: bool,
}

/// Run one message-driven 2D U-solve pass. Solved `x(K)` land in
/// `state.x_vals`; `state.y_vals` must hold `y(K)` for every row solved
/// here at its diagonal owner.
pub fn u_solve_pass(ctx: &Ctx, spec: &UPassSpec, state: &mut SolveState) {
    let plan = ctx.plan;
    let sym = plan.fact.lu.sym();
    let (px, py) = (plan.px, plan.py);
    let (x, y) = (ctx.x, ctx.y);
    let nrhs = ctx.nrhs;

    // --- Setup ---
    let mut cols: HashMap<u32, UColInfo> = HashMap::new();
    let mut rows: HashMap<u32, RowInfo> = HashMap::new();
    let mut expected: usize = 0;

    let setup_col = |j: u32, cols: &mut HashMap<u32, UColInfo>, expected: &mut usize| {
        let ju = j as usize;
        if ju % py != y {
            return;
        }
        // Receivers of x(J): ranks owning U(K, J) with K solved this pass.
        let members = member_list(
            ju % px,
            sym.blocks_left(ju)
                .iter()
                .filter(|&&k| spec.row_set.contains(k as usize))
                .map(|&k| k as usize % px),
        );
        let Some(links) = tree_links(&members, x, spec.tree_comm) else {
            return;
        };
        let mut blocks = Vec::new();
        for &k in sym.blocks_left(ju) {
            if k as usize % px == x && spec.row_set.contains(k as usize) {
                let (qlo, qhi) = kernels::block_range(&plan.fact, k as usize, ju);
                blocks.push((k, qlo as u32, qhi as u32));
            }
        }
        if !links.is_root {
            *expected += 1;
        }
        cols.insert(
            j,
            UColInfo {
                children: links.children.iter().map(|&r| ctx.grid_rank(r, y)).collect(),
                blocks,
                is_root: links.is_root,
            },
        );
    };
    for &j in spec.rows {
        setup_col(j, &mut cols, &mut expected);
    }
    for &j in spec.ext_cols {
        setup_col(j, &mut cols, &mut expected);
    }

    let mut local_pending: HashMap<u32, u32> = HashMap::new();
    for info in cols.values() {
        for &(k, _, _) in &info.blocks {
            *local_pending.entry(k).or_insert(0) += 1;
        }
    }

    for &k in spec.rows {
        let ku = k as usize;
        if ku % px != x {
            continue;
        }
        // usum reduction over process columns owning U(K, ·) blocks.
        let members = member_list(
            ku % py,
            sym.blocks_below(ku)
                .iter()
                .filter(|&&j| ctx.grid.member.contains(j as usize))
                .map(|&j| j as usize % py),
        );
        let Some(links) = tree_links(&members, y, spec.tree_comm) else {
            continue;
        };
        let n_children = links.children.len() as u32;
        expected += n_children as usize;
        rows.insert(
            k,
            RowInfo {
                fmod: local_pending.get(&k).copied().unwrap_or(0) + n_children,
                parent: links.parent.map(|c| ctx.grid_rank(x, c)),
            },
        );
    }

    // --- Solve loop ---
    let mut usum: HashMap<u32, Vec<f64>> = HashMap::new();
    let mut work: Vec<u32> = rows
        .iter()
        .filter(|(_, info)| info.fmod == 0)
        .map(|(&k, _)| k)
        .collect();
    work.sort_unstable(); // pop() takes the highest supernode first
    let mut received = 0usize;

    // Announce externally known columns I own as diagonal root.
    let ext_to_announce: Vec<u32> = spec
        .ext_cols
        .iter()
        .copied()
        .filter(|&j| {
            cols.get(&j).map_or(false, |c| c.is_root)
        })
        .collect();
    for j in ext_to_announce {
        let x_j = state
            .x_vals
            .get(&j)
            .expect("external column solved in an earlier pass")
            .clone();
        apply_x(ctx, &cols, &mut rows, &mut usum, spec.epoch, j, &x_j, &mut work);
    }

    loop {
        while let Some(k) = work.pop() {
            complete_u_row(ctx, &cols, &mut rows, state, &mut usum, spec.epoch, k, &mut work);
        }
        if received >= expected {
            break;
        }
        let msg = ctx
            .comm
            .recv_tag_masked(EPOCH_MASK, spec.epoch << 48, Category::XyComm);
        received += 1;
        let sup = (msg.tag & SUP_MASK) as u32;
        match msg.tag & KIND_MASK {
            KIND_X => {
                apply_x(ctx, &cols, &mut rows, &mut usum, spec.epoch, sup, &msg.payload, &mut work);
                state
                    .x_vals
                    .entry(sup)
                    .or_insert_with(|| msg.payload.to_vec());
            }
            KIND_USUM => {
                let w = sym.sup_width(sup as usize);
                let acc = usum.entry(sup).or_insert_with(|| vec![0.0; w * nrhs]);
                for (a, &v) in acc.iter_mut().zip(msg.payload.iter()) {
                    *a += v;
                }
                let info = rows.get_mut(&sup).expect("usum targets a trigger row");
                info.fmod -= 1;
                if info.fmod == 0 {
                    work.push(sup);
                }
            }
            _ => unreachable!("unexpected message kind in U pass"),
        }
    }
    debug_assert!(work.is_empty());
}

/// A U-phase trigger row's dependencies are met.
#[allow(clippy::too_many_arguments)]
fn complete_u_row(
    ctx: &Ctx,
    cols: &HashMap<u32, UColInfo>,
    rows: &mut HashMap<u32, RowInfo>,
    state: &mut SolveState,
    usum: &mut HashMap<u32, Vec<f64>>,
    epoch: u64,
    k: u32,
    work: &mut Vec<u32>,
) {
    let plan = ctx.plan;
    let sym = plan.fact.lu.sym();
    let ku = k as usize;
    let parent = rows.get(&k).expect("trigger row").parent;
    match parent {
        None => {
            // Diagonal owner: x(K) = U(K,K)⁻¹ (y(K) − usum(K)), Eq. (2).
            let y_k = state
                .y_vals
                .get(&k)
                .expect("y(K) available at diagonal owner before U-solve");
            let (x_k, fl) =
                kernels::diag_solve_u(&plan.fact, ku, y_k, usum.get(&k).map(|v| &v[..]), ctx.nrhs);
            ctx.comm.compute(ctx.flop_time(fl), Category::Flop);
            apply_x(ctx, cols, rows, usum, epoch, k, &x_k, work);
            state.x_vals.insert(k, x_k);
        }
        Some(p) => {
            let w = sym.sup_width(ku);
            let zeros;
            let payload = match usum.get(&k) {
                Some(v) => &v[..],
                None => {
                    zeros = vec![0.0; w * ctx.nrhs];
                    &zeros[..]
                }
            };
            ctx.comm
                .send(p, tag(epoch, KIND_USUM, k), payload, Category::XyComm);
        }
    }
}

/// `x(J)` became available locally: forward along the broadcast tree and
/// apply my local U-block GEMVs.
#[allow(clippy::too_many_arguments)]
fn apply_x(
    ctx: &Ctx,
    cols: &HashMap<u32, UColInfo>,
    rows: &mut HashMap<u32, RowInfo>,
    usum: &mut HashMap<u32, Vec<f64>>,
    epoch: u64,
    j: u32,
    x_j: &[f64],
    work: &mut Vec<u32>,
) {
    let Some(info) = cols.get(&j) else {
        return;
    };
    for &child in &info.children {
        ctx.comm
            .send(child, tag(epoch, KIND_X, j), x_j, Category::XyComm);
    }
    let sym = ctx.plan.fact.lu.sym();
    for &(k, qlo, qhi) in &info.blocks {
        let w = sym.sup_width(k as usize);
        let acc = usum.entry(k).or_insert_with(|| vec![0.0; w * ctx.nrhs]);
        let fl = kernels::apply_u_block(
            &ctx.plan.fact,
            k as usize,
            j as usize,
            qlo as usize,
            qhi as usize,
            x_j,
            acc,
            ctx.nrhs,
        );
        ctx.comm.compute(ctx.flop_time(fl), Category::Flop);
        let rinfo = rows.get_mut(&k).expect("U blocks only target trigger rows");
        rinfo.fmod -= 1;
        if rinfo.fmod == 0 {
            work.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_list_dedups_and_roots_first() {
        let m = member_list(3, [5, 1, 3, 5, 1].into_iter());
        assert_eq!(m, vec![3, 1, 5]);
    }

    #[test]
    fn star_tree_links() {
        let members = vec![2, 0, 5, 7];
        let root = tree_links(&members, 2, false).unwrap();
        assert!(root.is_root);
        assert_eq!(root.children, vec![0, 5, 7]);
        let leaf = tree_links(&members, 5, false).unwrap();
        assert_eq!(leaf.parent, Some(2));
        assert!(leaf.children.is_empty());
        assert!(tree_links(&members, 9, false).is_none());
    }

    #[test]
    fn binary_tree_links_heap_shape() {
        // Above the threshold: genuine binary heap.
        let members: Vec<usize> = (0..10).collect();
        let root = tree_links(&members, 0, true).unwrap();
        assert_eq!(root.children, vec![1, 2]);
        let mid = tree_links(&members, 1, true).unwrap();
        assert_eq!(mid.parent, Some(0));
        assert_eq!(mid.children, vec![3, 4]);
        let leaf = tree_links(&members, 9, true).unwrap();
        assert_eq!(leaf.parent, Some(4));
        assert!(leaf.children.is_empty());
    }

    #[test]
    fn small_groups_stay_flat_even_in_tree_mode() {
        // At or below TREE_THRESHOLD the degree-adaptive logic keeps a star.
        let members: Vec<usize> = (0..TREE_THRESHOLD).collect();
        let root = tree_links(&members, 0, true).unwrap();
        assert_eq!(root.children.len(), TREE_THRESHOLD - 1);
    }

    /// Every member must appear exactly once as a child across the tree
    /// (i.e. the tree is spanning), for both shapes.
    #[test]
    fn trees_are_spanning() {
        for binary in [false, true] {
            let members: Vec<usize> = (0..13).map(|i| i * 2).collect();
            let mut child_count = std::collections::HashMap::new();
            for &m in &members {
                let links = tree_links(&members, m, binary).unwrap();
                for c in links.children {
                    *child_count.entry(c).or_insert(0) += 1;
                }
            }
            for &m in &members[1..] {
                assert_eq!(child_count.get(&m), Some(&1), "binary={binary}");
            }
            assert!(!child_count.contains_key(&members[0]));
        }
    }
}
