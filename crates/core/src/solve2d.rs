//! Message-driven 2D L- and U-solves (paper Alg. 3, generalized `Px × Py`).
//!
//! Within one 2D grid, supernode block `(I, K)` lives at process
//! `(I mod Px, K mod Py)`. The L-solve needs, per supernode column `K`, a
//! *broadcast* of `y(K)` from the diagonal owner down the process column,
//! and per supernode row `I`, a *reduction* of the partial sums `lsum(I)`
//! across the process row to the diagonal owner. Both run over binary
//! communication trees (`tree_comm = true`, the Liu et al. CSC'18
//! optimization the proposed algorithm integrates) or flat star
//! communication (`tree_comm = false`, what the baseline 3D algorithm is
//! limited to). The U-solve mirrors this with `x(J)` broadcasts down
//! process columns and `usum(K)` reductions across process rows.
//!
//! The tree links, dependency counters, and expected message counts are
//! *not* built here: they come precompiled in a [`PassSched`] from the
//! plan's schedule IR (see [`crate::schedule`]). This module contributes
//! only the CPU cost hooks — serial per-kernel clock advancement and
//! epoch-tagged two-sided messaging — plugged into the shared
//! [`crate::schedule::run_pass`] traversal that the GPU executor reuses
//! with its own hooks.
//!
//! Every rank executes a blocking any-source receive loop until its
//! precompiled expected message count is met — exactly the structure of
//! the paper's Algorithm 3 (`fmod`/`bmod` dependency counters included).

use crate::arena::SolveArena;
use crate::driver::ExecutorKind;
use crate::kernels;
use crate::plan::{GridSet, Plan};
use crate::schedule::{
    run_pass_with, ColSched, PassEngine, PassSched, PassScratch, RecvEvent, RowSched,
};
use simgrid::{Category, SpanDetail, Transport, TreeRole};
use std::collections::HashMap;
use std::sync::Arc;

/// Order-independent partial-sum accumulator.
///
/// Floating-point addition is not associative, so accumulating incoming
/// contributions in arrival order makes the solve's bits depend on the
/// message schedule. The ledger instead buffers each contribution under a
/// stable source key and folds them in ascending key order on demand —
/// the folded sum is bit-identical under *any* delivery order the network
/// (or the fault injector) produces.
#[derive(Default)]
pub struct Ledger {
    rows: HashMap<u32, Vec<(u64, Vec<f64>)>>,
}

impl Ledger {
    /// Key of a local column contribution (`sup < 2^32` keeps these below
    /// every partial/exchange key).
    #[inline]
    pub fn key_local(col_sup: u32) -> u64 {
        col_sup as u64
    }

    /// Key of a reduction-tree partial sent by grid rank `src`.
    #[inline]
    pub fn key_partial(src: u32) -> u64 {
        (1 << 32) | src as u64
    }

    /// Key of a baseline z-exchange contribution carried under `tag`.
    #[inline]
    pub fn key_exchange(tag: u64) -> u64 {
        (2 << 32) | (tag & 0xffff)
    }

    /// The contribution buffer for `(sup, key)`, zero-initialized at `len`.
    /// Entries are kept sorted by key, so a prewarmed `(sup, key)` pair
    /// (see the engine setup) resolves to a binary-search hit with no
    /// allocation on the solve hot path.
    pub fn accum(&mut self, sup: u32, key: u64, len: usize) -> &mut Vec<f64> {
        let entries = self.rows.entry(sup).or_default();
        let pos = match entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(p) => p,
            Err(p) => {
                entries.insert(p, (key, vec![0.0; len]));
                p
            }
        };
        &mut entries[pos].1
    }

    /// Add `payload` into the `(sup, key)` contribution elementwise.
    pub fn add(&mut self, sup: u32, key: u64, payload: &[f64]) {
        let acc = self.accum(sup, key, payload.len());
        for (a, &v) in acc.iter_mut().zip(payload.iter()) {
            *a += v;
        }
    }

    /// Fold the contributions of `sup` into `out` in ascending key order
    /// (the entries are maintained sorted). `out` is zero-filled first, so
    /// a `sup` with no contributions folds to zeros — the same payload the
    /// old allocating path produced for an untouched row. Allocation-free.
    pub fn fold_into(&self, sup: u32, out: &mut [f64]) {
        out.fill(0.0);
        if let Some(entries) = self.rows.get(&sup) {
            for (_, e) in entries {
                for (o, &v) in out.iter_mut().zip(e.iter()) {
                    *o += v;
                }
            }
        }
    }

    /// Whether any contribution has been accumulated for `sup` this solve
    /// — the runtime presence test behind the baseline z-exchange's
    /// bitmap packing (DESIGN.md §15): untouched rows ship no bytes.
    #[inline]
    pub fn has(&self, sup: u32) -> bool {
        self.rows.get(&sup).is_some_and(|e| !e.is_empty())
    }

    /// Fold the contributions of `sup` in ascending key order; `None`
    /// when nothing has been accumulated. Allocating convenience form of
    /// [`Ledger::fold_into`] for the cold paths (inter-grid exchanges).
    pub fn fold(&self, sup: u32) -> Option<Vec<f64>> {
        let entries = self.rows.get(&sup)?;
        let mut out = vec![0.0; entries.first()?.1.len()];
        self.fold_into(sup, &mut out);
        Some(out)
    }
}

/// Message kinds, encoded in tag bits 40..47. Bits 48+ carry the pass
/// *epoch*: ranks of one grid are not synchronized between passes, so a
/// neighbour already in the next pass may deliver early — the any-source
/// receive matches on the epoch and leaves such messages queued.
const KIND_Y: u64 = 1 << 40;
const KIND_LSUM: u64 = 2 << 40;
const KIND_X: u64 = 3 << 40;
const KIND_USUM: u64 = 4 << 40;
const KIND_MASK: u64 = 0xff << 40;
const SUP_MASK: u64 = (1 << 40) - 1;
/// Mask selecting the epoch bits.
pub const EPOCH_MASK: u64 = !((1 << 48) - 1);

#[inline]
fn tag(epoch: u64, kind: u64, sup: u32) -> u64 {
    (epoch << 48) | kind | sup as u64
}

/// My links within a (binary or star) tree whose member list has the root
/// first.
#[derive(Clone, Debug, Default)]
pub struct TreeLinks {
    /// Members I forward received payloads to.
    pub children: Vec<usize>,
    /// Member I send my contribution to (`None` at the root).
    pub parent: Option<usize>,
    /// Whether I am the root.
    pub is_root: bool,
}

/// Minimum member count for which a binary tree beats the flat star: below
/// this, tree depth adds pure latency to the solve's dependency chains, so
/// — like SuperLU_DIST's degree-adaptive trees — small groups stay flat.
pub const TREE_THRESHOLD: usize = 6;

/// Compute my links in the tree over `members` (root at index 0; the rest
/// sorted and duplicate-free). Returns `None` when `me` is not a member.
/// `binary = false` builds the flat star the baseline uses; `binary = true`
/// uses a binary heap shape once the group exceeds [`TREE_THRESHOLD`].
pub fn tree_links(members: &[usize], me: usize, binary: bool) -> Option<TreeLinks> {
    let pos = members.iter().position(|&m| m == me)?;
    if binary && members.len() > TREE_THRESHOLD {
        let mut children = Vec::new();
        for c in [2 * pos + 1, 2 * pos + 2] {
            if c < members.len() {
                children.push(members[c]);
            }
        }
        let parent = if pos == 0 {
            None
        } else {
            Some(members[(pos - 1) / 2])
        };
        Some(TreeLinks {
            children,
            parent,
            is_root: pos == 0,
        })
    } else if pos == 0 {
        Some(TreeLinks {
            children: members[1..].to_vec(),
            parent: None,
            is_root: true,
        })
    } else {
        Some(TreeLinks {
            children: Vec::new(),
            parent: Some(members[0]),
            is_root: false,
        })
    }
}

/// Build the member list `[root, others...]`, deduplicated, others sorted.
pub fn member_list(root: usize, others: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = others.filter(|&m| m != root).collect();
    v.sort_unstable();
    v.dedup();
    let mut out = Vec::with_capacity(v.len() + 1);
    out.push(root);
    out.extend(v);
    out
}

/// Persistent per-grid solve state carried across passes.
#[derive(Default)]
pub struct SolveState {
    /// Partial row sums `lsum(I)` (L phase), `w_I × nrhs` col-major,
    /// buffered per contribution source for order-independent folding.
    pub lsum: Ledger,
    /// Solved `y(K)` at diagonal owners (and broadcast recipients).
    pub y_vals: HashMap<u32, Vec<f64>>,
    /// Solved `x(K)` at diagonal owners.
    pub x_vals: HashMap<u32, Vec<f64>>,
    /// Scratch arena for diagonal-solve temporaries, sized at pass setup.
    pub arena: SolveArena,
    /// Pass-interpreter working state, reused across passes.
    pub scratch: PassScratch,
}

/// Context shared by the pass functions of one rank. Generic over the
/// [`Transport`] backend carrying the messages.
pub struct Ctx<'a, T: Transport> {
    /// The global plan.
    pub plan: &'a Plan,
    /// My grid's membership.
    pub grid: &'a GridSet,
    /// Intra-grid communicator, rank = `x + px · y`.
    pub comm: &'a T,
    /// My process row.
    pub x: usize,
    /// My process column.
    pub y: usize,
    /// Number of right-hand sides.
    pub nrhs: usize,
    /// Global permuted RHS (`n × nrhs` col-major), read-only.
    pub pb: &'a [f64],
    /// Which execution engine interprets the compiled passes.
    pub executor: ExecutorKind,
}

impl<T: Transport> Ctx<'_, T> {
    #[inline]
    fn flop_time(&self, flops: usize) -> f64 {
        flops as f64 / self.comm.model().flop_rate
    }
}

/// Run one compiled 2D L-solve pass. Partial sums for rows outside the
/// pass persist in `state.lsum` for later passes (baseline ancestors);
/// solved `y(K)` land in `state.y_vals`.
pub fn l_solve_pass<T: Transport>(ctx: &Ctx<T>, pass: &PassSched, state: &mut SolveState) {
    debug_assert!(pass.lower);
    solve_pass(ctx, pass, state, true);
}

/// Run one compiled 2D U-solve pass. Solved `x(K)` land in
/// `state.x_vals`; `state.y_vals` must hold `y(K)` for every row solved
/// here at its diagonal owner.
pub fn u_solve_pass<T: Transport>(ctx: &Ctx<T>, pass: &PassSched, state: &mut SolveState) {
    debug_assert!(!pass.lower);
    solve_pass(ctx, pass, state, false);
}

fn solve_pass<T: Transport>(ctx: &Ctx<T>, pass: &PassSched, state: &mut SolveState, lower: bool) {
    // The interpreter scratch lives in `state` so repeated passes reuse
    // it, but the engine needs `&mut state` too — take it for the pass.
    let executor = ctx.executor;
    let mut scratch = std::mem::take(&mut state.scratch);
    let mut engine = CpuEngine::new(ctx, pass, state, lower);
    match executor {
        ExecutorKind::Tree => run_pass_with(&mut engine, pass, &mut scratch),
        ExecutorKind::Level => crate::levelexec::run_level_pass(&mut engine, pass, &mut scratch),
    }
    engine.finish();
    state.scratch = scratch;
}

/// CPU cost hooks for [`crate::schedule::run_pass`]: every kernel advances
/// this rank's serial clock; messages are epoch-tagged two-sided sends.
///
/// Construction ([`CpuEngine::new`]) is the per-pass *setup* phase: it
/// pre-creates every buffer the steady-state loop will touch — ledger
/// accumulator slots, solved-value slots, `Arc` send payloads, FIFO
/// routes, metric names, arena capacity — so the loop itself (bracketed by
/// [`crate::audit::pass_scope`] inside the interpreter) never allocates.
struct CpuEngine<'a, 'b, T: Transport> {
    ctx: &'b Ctx<'a, T>,
    state: &'b mut SolveState,
    /// U-phase partial sums (per-pass lifetime, unlike `state.lsum`).
    usum: Ledger,
    lower: bool,
    epoch: u64,
    /// Monotone per-pass operation index, stamped onto trace spans.
    step: u32,
    /// Prebuilt diagonal-solve result buffers, one per rooted trigger row.
    /// Unique (refcount 1) until the row fires; the transport then shares
    /// them with broadcast children as refcount bumps.
    diag_bufs: HashMap<u32, Arc<[f64]>>,
    /// Prebuilt reduction payload buffers, one per non-root trigger row.
    partial_bufs: HashMap<u32, Arc<[f64]>>,
    /// Shared snapshots of externally solved columns this rank announces.
    ext_bufs: HashMap<u32, Arc<[f64]>>,
    /// Pending level-barrier attribution `(level, sup)`: set when the
    /// level-set executor parks at a barrier, consumed by the next
    /// blocking receive so its trace span reads as barrier wait time.
    barrier: Option<(u32, u32)>,
}

impl<'a, 'b, T: Transport> CpuEngine<'a, 'b, T> {
    fn new(ctx: &'b Ctx<'a, T>, pass: &PassSched, state: &'b mut SolveState, lower: bool) -> Self {
        let sym = ctx.plan.fact.lu.sym();
        let nrhs = ctx.nrhs;
        let mut usum = Ledger::default();
        let mut diag_bufs: HashMap<u32, Arc<[f64]>> = HashMap::with_capacity(pass.rows.len());
        let mut partial_bufs: HashMap<u32, Arc<[f64]>> = HashMap::with_capacity(pass.rows.len());
        let mut ext_bufs: HashMap<u32, Arc<[f64]>> = HashMap::with_capacity(pass.ext_roots.len());
        let mut maxlen = 1;
        {
            let sums = if lower { &mut state.lsum } else { &mut usum };
            for row in &pass.rows {
                let len = sym.sup_width(row.sup as usize) * nrhs;
                maxlen = maxlen.max(len);
                match row.parent {
                    None => {
                        diag_bufs.insert(row.sup, vec![0.0; len].into());
                    }
                    Some(p) => {
                        partial_bufs.insert(row.sup, vec![0.0; len].into());
                        ctx.comm.warm_route(p as usize);
                    }
                }
                // One accumulator slot per reduction child's partial.
                for &c in &row.children {
                    sums.accum(row.sup, Ledger::key_partial(c), len);
                }
            }
            for col in &pass.cols {
                // One accumulator slot per local block update.
                for b in &col.blocks {
                    let blen = sym.sup_width(b.sup as usize) * nrhs;
                    maxlen = maxlen.max(blen);
                    sums.accum(b.sup, Ledger::key_local(col.sup), blen);
                }
                for &c in &col.children {
                    ctx.comm.warm_route(c as usize);
                }
            }
        }
        // Pre-size the solved-value slots so `store_solved` is a plain
        // copy. `or_insert` keeps values already present from earlier
        // passes (baseline ancestors, externally solved columns).
        let vals = if lower {
            &mut state.y_vals
        } else {
            &mut state.x_vals
        };
        for col in &pass.cols {
            let len = sym.sup_width(col.sup as usize) * nrhs;
            vals.entry(col.sup).or_insert_with(|| vec![0.0; len]);
        }
        for &j in &pass.ext_roots {
            let v = state
                .x_vals
                .get(&j)
                .expect("external column solved in an earlier pass");
            ext_bufs.insert(j, Arc::from(&v[..]));
        }
        state.arena.ensure(3 * maxlen);
        ctx.comm.metric_inc("pass.fmod_stalls", 0);
        ctx.comm.metric_inc("pass.level_barrier_waits", 0);
        CpuEngine {
            ctx,
            state,
            usum,
            lower,
            epoch: pass.epoch,
            step: 0,
            diag_bufs,
            partial_bufs,
            ext_bufs,
            barrier: None,
        }
    }

    /// The partial-sum accumulator of the current triangle.
    fn sums(&mut self) -> &mut Ledger {
        if self.lower {
            &mut self.state.lsum
        } else {
            &mut self.usum
        }
    }

    fn vec_kind(&self) -> u64 {
        if self.lower {
            KIND_Y
        } else {
            KIND_X
        }
    }

    fn sum_kind(&self) -> u64 {
        if self.lower {
            KIND_LSUM
        } else {
            KIND_USUM
        }
    }

    /// Stamp subsequent trace spans with this operation's semantics and
    /// advance the per-pass step counter.
    fn begin_op(&mut self, sup: u32, role: TreeRole) {
        self.ctx.comm.set_span_detail(Some(SpanDetail::Pass {
            epoch: self.epoch,
            step: self.step,
            sup,
            role,
        }));
        self.step += 1;
    }

    /// Clear the span annotation and flush per-pass metrics. Called after
    /// `run_pass` returns.
    fn finish(&self) {
        self.ctx.comm.set_span_detail(None);
        self.ctx.comm.metric_inc("pass.spans", self.step as u64);
    }
}

impl<T: Transport> PassEngine for CpuEngine<'_, '_, T> {
    fn solve_diag(&mut self, row: &RowSched) -> Arc<[f64]> {
        self.begin_op(row.sup, TreeRole::Diag);
        let plan = self.ctx.plan;
        let iu = row.sup as usize;
        let len = plan.fact.lu.sym().sup_width(iu) * self.ctx.nrhs;
        // The result buffer was prebuilt in setup and is still uniquely
        // owned, so the kernel writes straight into the send payload.
        let mut out = self
            .diag_bufs
            .remove(&row.sup)
            .expect("diagonal buffer prebuilt for rooted row");
        let buf = Arc::get_mut(&mut out).expect("diagonal buffer still unique");
        let fl = if self.lower {
            // y(I) = L(I,I)⁻¹ (b(I) − lsum(I)), Eq. (1).
            let active = plan.rhs_active(self.ctx.grid.z, iu);
            let state = &mut *self.state;
            let (b_i, fold, rhs) = state.arena.slices3(len, len, len);
            kernels::masked_rhs_into(&plan.fact, iu, self.ctx.pb, self.ctx.nrhs, active, b_i);
            state.lsum.fold_into(row.sup, fold);
            kernels::diag_solve_l_into(&plan.fact, iu, b_i, Some(fold), self.ctx.nrhs, rhs, buf)
        } else {
            // x(K) = U(K,K)⁻¹ (y(K) − usum(K)), Eq. (2).
            let state = &mut *self.state;
            let (fold, rhs) = state.arena.slices2(len, len);
            self.usum.fold_into(row.sup, fold);
            let y_k = state
                .y_vals
                .get(&row.sup)
                .expect("y(K) available at diagonal owner before U-solve");
            kernels::diag_solve_u_into(&plan.fact, iu, y_k, Some(fold), self.ctx.nrhs, rhs, buf)
        };
        self.ctx
            .comm
            .compute(self.ctx.flop_time(fl), Category::Flop);
        out
    }

    fn store_solved(&mut self, sup: u32, v: &[f64]) {
        let vals = if self.lower {
            &mut self.state.y_vals
        } else {
            &mut self.state.x_vals
        };
        // Setup pre-sized every slot this pass stores, so this is a plain
        // copy. Re-stores (baseline re-broadcasts) write identical bits.
        match vals.get_mut(&sup) {
            Some(slot) => slot.copy_from_slice(v),
            None => {
                vals.insert(sup, v.to_vec());
            }
        }
    }

    fn solved(&self, sup: u32) -> Arc<[f64]> {
        self.ext_bufs
            .get(&sup)
            .cloned()
            .expect("external column snapshot prebuilt")
    }

    fn forward(&mut self, col: &ColSched, v: &Arc<[f64]>) {
        if col.children.is_empty() {
            return;
        }
        self.begin_op(col.sup, TreeRole::Bcast);
        let t = tag(self.epoch, self.vec_kind(), col.sup);
        for &child in &col.children {
            self.ctx
                .comm
                .send_shared(child as usize, t, v, Category::XyComm);
        }
    }

    fn send_partial(&mut self, row: &RowSched, parent: u32) {
        self.begin_op(row.sup, TreeRole::Reduce);
        let t = tag(self.epoch, self.sum_kind(), row.sup);
        // Fold straight into the prebuilt payload buffer (unique until
        // this send, which shares it with the transport by refcount).
        let mut payload = self
            .partial_bufs
            .remove(&row.sup)
            .expect("partial buffer prebuilt for non-root row");
        {
            let buf = Arc::get_mut(&mut payload).expect("partial buffer still unique");
            let sums = if self.lower {
                &self.state.lsum
            } else {
                &self.usum
            };
            sums.fold_into(row.sup, buf);
        }
        self.ctx
            .comm
            .send_shared(parent as usize, t, &payload, Category::XyComm);
    }

    fn apply_column(&mut self, col: &ColSched, v: &[f64], scatter: &[u32]) {
        self.begin_op(col.sup, TreeRole::Apply);
        let plan = self.ctx.plan;
        let sym = plan.fact.lu.sym();
        let nrhs = self.ctx.nrhs;
        let lower = self.lower;
        let ju = col.sup as usize;
        let wcol = sym.sup_width(ju);
        for b in &col.blocks {
            let wb = sym.sup_width(b.sup as usize);
            let tg = b.targets(scatter);
            let sums = if lower {
                &mut self.state.lsum
            } else {
                &mut self.usum
            };
            let acc = sums.accum(b.sup, Ledger::key_local(col.sup), wb * nrhs);
            let fl = if lower {
                let panel = &plan.fact.lu.panel(ju).l_below;
                let r = sym.rows_below(ju).len();
                kernels::apply_l(
                    panel,
                    r,
                    b.lo as usize,
                    b.hi as usize,
                    tg,
                    v,
                    wcol,
                    acc,
                    wb,
                    nrhs,
                )
            } else {
                let panel = &plan.fact.lu.panel(b.sup as usize).u_right;
                kernels::apply_u(
                    panel,
                    wb,
                    b.lo as usize,
                    b.hi as usize,
                    tg,
                    v,
                    wcol,
                    acc,
                    nrhs,
                )
            };
            self.ctx
                .comm
                .compute(self.ctx.flop_time(fl), Category::Flop);
        }
    }

    fn add_partial(&mut self, row: &RowSched, src: u32, payload: &[f64]) {
        self.sums().add(row.sup, Ledger::key_partial(src), payload);
    }

    fn recv(&mut self, epoch: u64) -> RecvEvent {
        // Clear any stale operation stamp: the blocking receive's own
        // semantics are only known once the tag is decoded.
        self.ctx.comm.set_span_detail(None);
        let msg = self
            .ctx
            .comm
            .recv_tag_masked(EPOCH_MASK, epoch << 48, Category::XyComm);
        let sup = (msg.tag & SUP_MASK) as u32;
        let kind = msg.tag & KIND_MASK;
        let vector = if kind == self.vec_kind() {
            true
        } else if kind == self.sum_kind() {
            false
        } else {
            unreachable!("unexpected message kind in 2D pass");
        };
        // A receive entered while parked at a level barrier is that
        // barrier's wait — attribute the span to the barrier instead of
        // the delivered message, so the critical-path report can sum the
        // level engine's synchronization cost.
        match self.barrier.take() {
            Some((level, waiting)) => self.ctx.comm.annotate_last(SpanDetail::LevelBarrier {
                epoch: self.epoch,
                level,
                sup: waiting,
            }),
            None => self.ctx.comm.annotate_last(SpanDetail::Pass {
                epoch: self.epoch,
                step: self.step,
                sup,
                role: if vector {
                    TreeRole::Bcast
                } else {
                    TreeRole::Reduce
                },
            }),
        }
        self.step += 1;
        RecvEvent {
            vector,
            sup,
            src: msg.src as u32,
            payload: msg.payload,
        }
    }

    fn on_duplicate_dropped(&mut self, _ev: &RecvEvent) {
        self.ctx.comm.mark_last_dropped_duplicate();
    }

    fn on_fmod_stall(&mut self, _row: &RowSched, _outstanding: u32) {
        self.ctx.comm.metric_inc("pass.fmod_stalls", 1);
    }

    fn on_level_wait(&mut self, level: u32, row: &RowSched, _outstanding: u32) {
        self.barrier = Some((level, row.sup));
        self.ctx.comm.metric_inc("pass.level_barrier_waits", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the ledger: sums whose value depends on the
    /// addition order when accumulated naively must fold bit-identically
    /// for every insertion (arrival) order.
    #[test]
    fn ledger_fold_is_order_independent() {
        let contributions = [
            (Ledger::key_partial(3), vec![0.1, 0.2]),
            (Ledger::key_local(7), vec![1e16, -1.0]),
            (Ledger::key_partial(1), vec![-1e16, 0.5]),
            (Ledger::key_exchange(0x9042), vec![1.0, 1e-8]),
        ];
        let fold_in = |order: &[usize]| {
            let mut l = Ledger::default();
            for &i in order {
                l.add(5, contributions[i].0, &contributions[i].1);
            }
            l.fold(5).unwrap()
        };
        let want = fold_in(&[0, 1, 2, 3]);
        for perm in [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1], [0, 2, 1, 3]] {
            assert_eq!(want, fold_in(&perm), "fold depends on arrival order");
        }
        assert!(Ledger::default().fold(5).is_none());
    }

    #[test]
    fn ledger_keys_never_collide_across_kinds() {
        assert!(Ledger::key_local(u32::MAX) < Ledger::key_partial(0));
        assert!(Ledger::key_partial(u32::MAX) < Ledger::key_exchange(0));
    }

    #[test]
    fn member_list_dedups_and_roots_first() {
        let m = member_list(3, [5, 1, 3, 5, 1].into_iter());
        assert_eq!(m, vec![3, 1, 5]);
    }

    #[test]
    fn star_tree_links() {
        let members = vec![2, 0, 5, 7];
        let root = tree_links(&members, 2, false).unwrap();
        assert!(root.is_root);
        assert_eq!(root.children, vec![0, 5, 7]);
        let leaf = tree_links(&members, 5, false).unwrap();
        assert_eq!(leaf.parent, Some(2));
        assert!(leaf.children.is_empty());
        assert!(tree_links(&members, 9, false).is_none());
    }

    #[test]
    fn binary_tree_links_heap_shape() {
        // Above the threshold: genuine binary heap.
        let members: Vec<usize> = (0..10).collect();
        let root = tree_links(&members, 0, true).unwrap();
        assert_eq!(root.children, vec![1, 2]);
        let mid = tree_links(&members, 1, true).unwrap();
        assert_eq!(mid.parent, Some(0));
        assert_eq!(mid.children, vec![3, 4]);
        let leaf = tree_links(&members, 9, true).unwrap();
        assert_eq!(leaf.parent, Some(4));
        assert!(leaf.children.is_empty());
    }

    #[test]
    fn small_groups_stay_flat_even_in_tree_mode() {
        // At or below TREE_THRESHOLD the degree-adaptive logic keeps a star.
        let members: Vec<usize> = (0..TREE_THRESHOLD).collect();
        let root = tree_links(&members, 0, true).unwrap();
        assert_eq!(root.children.len(), TREE_THRESHOLD - 1);
    }

    /// Every member must appear exactly once as a child across the tree
    /// (i.e. the tree is spanning), for both shapes.
    #[test]
    fn trees_are_spanning() {
        for binary in [false, true] {
            let members: Vec<usize> = (0..13).map(|i| i * 2).collect();
            let mut child_count = std::collections::HashMap::new();
            for &m in &members {
                let links = tree_links(&members, m, binary).unwrap();
                for c in links.children {
                    *child_count.entry(c).or_insert(0) += 1;
                }
            }
            for &m in &members[1..] {
                assert_eq!(child_count.get(&m), Some(&1), "binary={binary}");
            }
            assert!(!child_count.contains_key(&members[0]));
        }
    }
}
