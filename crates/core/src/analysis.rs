//! Performance analysis: communication-volume prediction and critical-path
//! lower bounds.
//!
//! The papers behind this work lean on analytic models — the ICS'19 CA
//! analysis (quoted in §2.2: 3D layouts cut the per-process communication
//! volume from `O(n/√P)` to `O(n/√(P·Pz))` for PDE matrices) and the
//! critical-path studies of [12, 13]. This module computes both quantities
//! *exactly* from a [`Plan`], so they can be checked against the simulated
//! measurements (see the tests and the ablation benches).

use crate::plan::Plan;
use crate::schedule::ScheduleKey;

/// Exact per-category communication volumes of one solve of the proposed
/// 3D algorithm (L + U triangles), in payload bytes (headers excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommVolume {
    /// Intra-grid bytes: broadcasts + reductions, summed over all grids.
    pub xy_bytes: u64,
    /// Intra-grid message count.
    pub xy_msgs: u64,
    /// Inter-grid bytes of the sparse allreduce (reduce + broadcast).
    pub z_bytes: u64,
    /// Inter-grid message count.
    pub z_msgs: u64,
}

/// Predict the communication of the proposed 3D SpTRSV exactly, by
/// walking the same compiled schedule the executors interpret: every
/// broadcast child link and reduction parent link is one intra-grid
/// message, every non-idle sparse-allreduce role is one inter-grid
/// message per phase. Volumes are independent of tree shape (trees only
/// re-route whole payloads — every non-root member still receives each
/// vector exactly once), so the prediction matches both the tree and
/// flat variants.
pub fn predict_new3d_volume(plan: &Plan, nrhs: usize) -> CommVolume {
    let sym = plan.fact.lu.sym();
    let sched = plan.schedule(ScheduleKey {
        baseline: false,
        tree_comm: true,
    });
    let mut v = CommVolume::default();
    let payload = |k: u32| (8 * sym.sup_width(k as usize) * nrhs) as u64;

    for rs in &sched.ranks {
        for step in rs.l_steps.iter().chain(&rs.u_steps) {
            let Some(pass) = &step.pass else { continue };
            for c in &pass.cols {
                v.xy_msgs += c.children.len() as u64;
                v.xy_bytes += c.children.len() as u64 * payload(c.sup);
            }
            for r in &pass.rows {
                if r.parent.is_some() {
                    v.xy_msgs += 1;
                    v.xy_bytes += payload(r.sup);
                }
            }
        }
        // Sparse allreduce: each participating rank sends exactly one
        // packed message per step — in the reduce phase if its partial
        // flows toward the smaller grid, else in the mirrored broadcast.
        for zs in rs.zsteps.iter().flatten() {
            v.z_msgs += 1;
            v.z_bytes += zs.sups.iter().map(|&k| payload(k)).sum::<u64>();
        }
    }
    v
}

/// Critical-path lower bound (seconds) for the proposed 3D solve on the
/// CPU path: the longest dependency chain through the supernode DAG of any
/// grid, counting the diagonal solve and fused column GEMV per supernode
/// plus at least one network hop between distinctly-owned supernodes.
/// Every simulated run must take at least this long.
pub fn critical_path_lower_bound(plan: &Plan, nrhs: usize) -> f64 {
    let sym = plan.fact.lu.sym();
    let model = &plan.machine_for_analysis();
    let hop = model.latency_intra; // cheapest possible hop
    let mut worst: f64 = 0.0;
    for grid in &plan.grids {
        // Longest path in one triangle; U mirrors L, so double it.
        let mut dist: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut maxd: f64 = 0.0;
        for &k in &grid.supers {
            let ku = k as usize;
            let w = sym.sup_width(ku);
            let mut start: f64 = 0.0;
            for &i in sym.blocks_left(ku) {
                if !grid.member.contains(i as usize) {
                    continue;
                }
                let mut d = dist.get(&i).copied().unwrap_or(0.0);
                if plan.owner_xy(i as usize) != plan.owner_xy(ku) {
                    d += hop;
                }
                start = start.max(d);
            }
            let cost = model.cpu_panel_op_time(w, w, nrhs);
            let end = start + cost;
            dist.insert(k, end);
            maxd = maxd.max(end);
        }
        worst = worst.max(2.0 * maxd);
    }
    worst
}

/// Memory statistics of a plan: the CA replication overhead (paper §2.2:
/// "manageable memory overheads").
#[derive(Clone, Copy, Debug)]
pub struct MemoryStats {
    /// Factor bytes if stored once (2D layout).
    pub base_bytes: u64,
    /// Factor bytes summed over all grids (with ancestor replication).
    pub replicated_bytes: u64,
}

impl MemoryStats {
    /// Replication factor `replicated / base` (1.0 for `Pz = 1`).
    pub fn replication_factor(&self) -> f64 {
        self.replicated_bytes as f64 / self.base_bytes as f64
    }
}

/// Compute the memory replication of a plan.
pub fn memory_stats(plan: &Plan) -> MemoryStats {
    let sym = plan.fact.lu.sym();
    let sup_bytes = |k: usize| {
        let w = sym.sup_width(k);
        let r = sym.rows_below(k).len();
        (8 * (w * w + 2 * r * w)) as u64
    };
    let base: u64 = (0..sym.n_supernodes()).map(sup_bytes).sum();
    let mut repl = 0u64;
    for grid in &plan.grids {
        for &k in &grid.supers {
            repl += sup_bytes(k as usize);
        }
    }
    MemoryStats {
        base_bytes: base,
        replicated_bytes: repl,
    }
}

impl Plan {
    /// A machine model for analytic bounds (Cori Haswell, the paper's CPU
    /// testbed). Analysis functions use only its compute/latency fields.
    pub fn machine_for_analysis(&self) -> simgrid::MachineModel {
        simgrid::MachineModel::cori_haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::{Category, MachineModel};
    use sparse::gen;
    use std::sync::Arc;

    fn plan_for(
        a: &sparse::CsrMatrix,
        px: usize,
        py: usize,
        pz: usize,
    ) -> (Arc<lufactor::Factorized>, Plan) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let p = Plan::new(Arc::clone(&f), px, py, pz);
        (f, p)
    }

    /// The volume prediction must match the simulator's byte counters
    /// exactly (payload bytes; the simulator adds a 64-byte header per
    /// message).
    #[test]
    fn predicted_volume_matches_measured() {
        let a = gen::poisson2d_9pt(14, 14);
        let (f, plan) = plan_for(&a, 2, 3, 4);
        let pred = predict_new3d_volume(&plan, 1);
        let b = gen::standard_rhs(a.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 3,
            pz: 4,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let xy_msgs: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent[Category::XyComm as usize])
            .sum();
        let xy_bytes: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes_sent[Category::XyComm as usize])
            .sum();
        let z_msgs: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent[Category::ZComm as usize])
            .sum();
        let z_bytes: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes_sent[Category::ZComm as usize])
            .sum();
        assert_eq!(pred.xy_msgs, xy_msgs, "intra-grid message count");
        assert_eq!(
            pred.xy_bytes,
            xy_bytes - 64 * xy_msgs,
            "intra-grid payload bytes"
        );
        assert_eq!(pred.z_msgs, z_msgs, "inter-grid message count");
        assert_eq!(
            pred.z_bytes,
            z_bytes - 64 * z_msgs,
            "inter-grid payload bytes"
        );
    }

    /// Tree and flat variants move the same volume (only hop counts differ
    /// in *forwarded* copies, which the prediction includes identically).
    #[test]
    fn volume_is_tree_shape_independent() {
        let a = gen::poisson2d_9pt(16, 16);
        let (f, _plan) = plan_for(&a, 3, 3, 2);
        let b = gen::standard_rhs(a.nrows(), 1);
        let mk = |alg| SolverConfig {
            px: 3,
            py: 3,
            pz: 2,
            nrhs: 1,
            algorithm: alg,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
        };
        let t = solve_distributed(&f, &b, &mk(Algorithm::New3d));
        let fl = solve_distributed(&f, &b, &mk(Algorithm::New3dFlat));
        let bytes = |o: &crate::driver::SolveOutcome| {
            o.stats
                .iter()
                .map(|s| s.bytes_sent[Category::XyComm as usize])
                .sum::<u64>()
        };
        // With member sets at or below the tree threshold the schedules
        // coincide exactly; in general trees only re-route, so totals match.
        assert_eq!(bytes(&t), bytes(&fl));
    }

    /// The ICS'19 communication-avoiding claim (paper §2.2): for a 2D PDE
    /// matrix at fixed P, the per-process intra-grid volume shrinks as Pz
    /// grows.
    #[test]
    fn ca_volume_reduction_with_pz() {
        let a = gen::poisson2d_9pt(24, 24);
        let f = Arc::new(factorize(&a, 16, &SymbolicOptions::default()).unwrap());
        // P = 16 ranks total in all layouts.
        let v1 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 4, 4, 1), 1);
        let v4 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 2, 2, 4), 1);
        let v16 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 1, 1, 16), 1);
        assert!(
            v4.xy_bytes < v1.xy_bytes,
            "Pz=4 must cut intra-grid volume: {} vs {}",
            v4.xy_bytes,
            v1.xy_bytes
        );
        assert!(v16.xy_bytes < v4.xy_bytes);
    }

    /// Simulated makespans can never beat the critical-path lower bound.
    #[test]
    fn makespan_respects_critical_path() {
        let a = gen::poisson2d_9pt(12, 12);
        let (f, plan) = plan_for(&a, 2, 2, 2);
        let bound = critical_path_lower_bound(&plan, 1);
        assert!(bound > 0.0);
        let b = gen::standard_rhs(a.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        assert!(
            out.makespan >= bound * 0.999,
            "makespan {} below lower bound {bound}",
            out.makespan
        );
    }

    /// Memory replication stays manageable (paper: "manageable memory
    /// overheads") and equals 1 for Pz = 1.
    #[test]
    fn replication_factor_is_manageable() {
        let a = gen::poisson2d_9pt(20, 20);
        let f = Arc::new(factorize(&a, 8, &SymbolicOptions::default()).unwrap());
        let m1 = memory_stats(&Plan::new(Arc::clone(&f), 2, 2, 1));
        assert!((m1.replication_factor() - 1.0).abs() < 1e-12);
        let m8 = memory_stats(&Plan::new(Arc::clone(&f), 1, 1, 8));
        let r = m8.replication_factor();
        assert!(r > 1.0, "ancestors are replicated");
        assert!(r < 8.0, "far below full replication, got {r}");
    }
}
