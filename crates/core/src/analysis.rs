//! Performance analysis: communication-volume prediction and critical-path
//! lower bounds.
//!
//! The papers behind this work lean on analytic models — the ICS'19 CA
//! analysis (quoted in §2.2: 3D layouts cut the per-process communication
//! volume from `O(n/√P)` to `O(n/√(P·Pz))` for PDE matrices) and the
//! critical-path studies of [12, 13]. This module computes both quantities
//! *exactly* from a [`Plan`], so they can be checked against the simulated
//! measurements (see the tests and the ablation benches).

use crate::plan::Plan;
use crate::schedule::ScheduleKey;
use simgrid::{span_name, EventKind, SpanDetail, TraceEvent, CATEGORIES, N_CATEGORIES};
use std::collections::{BTreeMap, HashMap};

/// Exact per-category communication volumes of one solve of the proposed
/// 3D algorithm (L + U triangles), in payload bytes (headers excluded).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommVolume {
    /// Intra-grid bytes: broadcasts + reductions, summed over all grids.
    pub xy_bytes: u64,
    /// Intra-grid message count.
    pub xy_msgs: u64,
    /// Inter-grid bytes of the sparse allreduce (reduce + broadcast).
    pub z_bytes: u64,
    /// Inter-grid message count.
    pub z_msgs: u64,
}

/// Predict the communication of the proposed 3D SpTRSV exactly, by
/// walking the same compiled schedule the executors interpret: every
/// broadcast child link and reduction parent link is one intra-grid
/// message, every non-idle sparse-allreduce role is one inter-grid
/// message per phase. Volumes are independent of tree shape (trees only
/// re-route whole payloads — every non-root member still receives each
/// vector exactly once), so the prediction matches both the tree and
/// flat variants.
pub fn predict_new3d_volume(plan: &Plan, nrhs: usize) -> CommVolume {
    let sym = plan.fact.lu.sym();
    let sched = plan.schedule(ScheduleKey {
        baseline: false,
        tree_comm: true,
    });
    let mut v = CommVolume::default();
    let payload = |k: u32| (8 * sym.sup_width(k as usize) * nrhs) as u64;

    for rs in &sched.ranks {
        for step in rs.l_steps.iter().chain(&rs.u_steps) {
            let Some(pass) = &step.pass else { continue };
            for c in &pass.cols {
                v.xy_msgs += c.children.len() as u64;
                v.xy_bytes += c.children.len() as u64 * payload(c.sup);
            }
            for r in &pass.rows {
                if r.parent.is_some() {
                    v.xy_msgs += 1;
                    v.xy_bytes += payload(r.sup);
                }
            }
        }
        // Sparse allreduce: each participating rank sends exactly one
        // packed message per step — in the reduce phase if its partial
        // flows toward the smaller grid, else in the mirrored broadcast.
        // Steps whose trimmed pack list compiled to empty are elided by
        // the executor (no message), and each non-empty payload carries
        // its presence-bitmap words; presizing guarantees every listed
        // bit is set, so the payload width is exact at compile time.
        for zs in rs.zsteps.iter().flatten() {
            if zs.sups.is_empty() {
                continue;
            }
            v.z_msgs += 1;
            v.z_bytes += 8 * crate::allreduce::payload_doubles(plan, &zs.sups, nrhs);
        }
    }
    v
}

/// Critical-path lower bound (seconds) for the proposed 3D solve on the
/// CPU path: the longest dependency chain through the supernode DAG of any
/// grid, counting the diagonal solve and fused column GEMV per supernode
/// plus at least one network hop between distinctly-owned supernodes.
/// Every simulated run must take at least this long.
pub fn critical_path_lower_bound(plan: &Plan, nrhs: usize) -> f64 {
    let sym = plan.fact.lu.sym();
    let model = &plan.machine_for_analysis();
    let hop = model.latency_intra; // cheapest possible hop
    let mut worst: f64 = 0.0;
    for grid in &plan.grids {
        // Longest path in one triangle; U mirrors L, so double it.
        let mut dist: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut maxd: f64 = 0.0;
        for &k in &grid.supers {
            let ku = k as usize;
            let w = sym.sup_width(ku);
            let mut start: f64 = 0.0;
            for &i in sym.blocks_left(ku) {
                if !grid.member.contains(i as usize) {
                    continue;
                }
                let mut d = dist.get(&i).copied().unwrap_or(0.0);
                if plan.owner_xy(i as usize) != plan.owner_xy(ku) {
                    d += hop;
                }
                start = start.max(d);
            }
            let cost = model.cpu_panel_op_time(w, w, nrhs);
            let end = start + cost;
            dist.insert(k, end);
            maxd = maxd.max(end);
        }
        worst = worst.max(2.0 * maxd);
    }
    worst
}

/// Memory statistics of a plan: the CA replication overhead (paper §2.2:
/// "manageable memory overheads").
#[derive(Clone, Copy, Debug)]
pub struct MemoryStats {
    /// Factor bytes if stored once (2D layout).
    pub base_bytes: u64,
    /// Factor bytes summed over all grids (with ancestor replication).
    pub replicated_bytes: u64,
}

impl MemoryStats {
    /// Replication factor `replicated / base` (1.0 for `Pz = 1`).
    pub fn replication_factor(&self) -> f64 {
        self.replicated_bytes as f64 / self.base_bytes as f64
    }
}

/// Compute the memory replication of a plan.
pub fn memory_stats(plan: &Plan) -> MemoryStats {
    let sym = plan.fact.lu.sym();
    let sup_bytes = |k: usize| {
        let w = sym.sup_width(k);
        let r = sym.rows_below(k).len();
        (8 * (w * w + 2 * r * w)) as u64
    };
    let base: u64 = (0..sym.n_supernodes()).map(sup_bytes).sum();
    let mut repl = 0u64;
    for grid in &plan.grids {
        for &k in &grid.supers {
            repl += sup_bytes(k as usize);
        }
    }
    MemoryStats {
        base_bytes: base,
        replicated_bytes: repl,
    }
}

/// One cross-rank dependency on the measured critical path: a receive
/// that stalled waiting for a message, traced back to its send.
#[derive(Clone, Copy, Debug)]
pub struct BlockingEdge {
    /// World rank that sent the blocking message.
    pub src: usize,
    /// World rank whose receive stalled on it.
    pub dst: usize,
    /// On-wire message size (payload + envelope), bytes.
    pub bytes: usize,
    /// Message tag (solver encoding, see `solve2d`/`allreduce`).
    pub tag: u64,
    /// How long the receiver sat idle before the message arrived.
    pub stall: f64,
    /// Wire segment charged to the path: arrival minus send departure.
    pub wire: f64,
    /// Virtual arrival time of the message.
    pub arrival: f64,
    /// Solver semantics of the blocked receive span, if annotated.
    pub detail: Option<SpanDetail>,
}

/// The measured critical path of one traced solve: the backward walk from
/// the last span to time zero, alternating rank-local segments and
/// cross-rank message edges.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Makespan of the traced run (max final clock over ranks).
    pub makespan: f64,
    /// Total path length. Because per-rank spans tile each rank's clock
    /// (see `simgrid::trace`), this telescopes to exactly the makespan.
    pub length: f64,
    /// Path time attributed to each [`simgrid::Category`], indexed as
    /// [`CATEGORIES`]. Wire segments are charged to the sending span's
    /// category.
    pub by_category: [f64; N_CATEGORIES],
    /// Total wire time (send departure to arrival) along the path.
    pub wire_time: f64,
    /// Untraced path time: gaps between spans and the initial ramp.
    pub idle: f64,
    /// Number of spans the path visits.
    pub spans: usize,
    /// Stall time of path edges whose blocked receive was a level-set
    /// executor barrier ([`SpanDetail::LevelBarrier`]): how much of the
    /// path the level engine spent parked waiting for a row's remaining
    /// dependencies. Zero under the tree executor.
    pub level_barrier_wait: f64,
    /// Stall time of path edges whose blocked receive was an inter-grid
    /// `z`-exchange round ([`SpanDetail::Allreduce`], [`SpanDetail::ZExchangeTrim`],
    /// [`SpanDetail::NaiveAllreduce`], or [`SpanDetail::ZExchange`]): how
    /// much of the measured critical path the exchange between grids is
    /// responsible for. This is the quantity the live-support trim
    /// (DESIGN.md §15) attacks at large `Pz`.
    pub z_exchange_wait: f64,
    /// Every cross-rank edge on the path, sorted by stall descending.
    pub edges: Vec<BlockingEdge>,
}

/// Walk the span DAG backward from the makespan and measure the critical
/// path. `traces` is [`RunReport::traces`][simgrid::RunReport] indexed by
/// world rank; spans per rank must be time-ordered (the simulator records
/// them that way). Receives are linked to their sends by message sequence
/// id, so the walk hops ranks exactly where a receive actually stalled.
pub fn critical_path(traces: &[Vec<TraceEvent>], makespan: f64) -> CriticalPath {
    let mut cp = CriticalPath {
        makespan,
        length: 0.0,
        by_category: [0.0; N_CATEGORIES],
        wire_time: 0.0,
        idle: 0.0,
        spans: 0,
        level_barrier_wait: 0.0,
        z_exchange_wait: 0.0,
        edges: Vec::new(),
    };

    // Sends indexed by sequence id. Setup-phase messages share seq 0 and
    // are never traced, so every recorded seq is unique.
    let mut send_at: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut total_spans = 0usize;
    for (r, tl) in traces.iter().enumerate() {
        total_spans += tl.len();
        for (i, e) in tl.iter().enumerate() {
            if e.kind == EventKind::Send {
                if let Some(m) = &e.msg {
                    if m.seq != 0 {
                        send_at.insert(m.seq, (r, i));
                    }
                }
            }
        }
    }

    // Start at the globally latest span end.
    let Some((mut rank, mut pos)) = traces
        .iter()
        .enumerate()
        .filter_map(|(r, tl)| tl.last().map(|e| (r, tl.len() - 1, e.t1)))
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|(r, i, _)| (r, i))
    else {
        return cp; // untraced run: all zeros
    };
    let mut t_hi = traces[rank][pos].t1;
    cp.idle += (makespan - t_hi).max(0.0);

    // Each step strictly lowers t_hi toward 0; fuel bounds a malformed
    // trace (overlapping spans) instead of hanging.
    let mut fuel = total_spans + send_at.len() + 8;
    loop {
        fuel -= 1;
        if fuel == 0 {
            debug_assert!(false, "critical-path walk did not converge");
            break;
        }
        let e = &traces[rank][pos];
        cp.spans += 1;

        // A receive that stalled (arrival after the span began) hops the
        // path to the sending rank.
        if e.kind == EventKind::Recv {
            if let Some(m) = &e.msg {
                if m.arrival > e.t0 {
                    if let Some(&(sr, si)) = send_at.get(&m.seq) {
                        let send = &traces[sr][si];
                        let arr = m.arrival.clamp(e.t0, t_hi.max(e.t0));
                        cp.by_category[e.category as usize] += t_hi - arr;
                        let wire = arr - send.t1;
                        cp.wire_time += wire;
                        cp.by_category[send.category as usize] += wire;
                        let stall = (m.arrival - e.t0).max(0.0);
                        if matches!(e.detail, Some(SpanDetail::LevelBarrier { .. })) {
                            cp.level_barrier_wait += stall;
                        }
                        if matches!(
                            e.detail,
                            Some(
                                SpanDetail::Allreduce { .. }
                                    | SpanDetail::ZExchangeTrim { .. }
                                    | SpanDetail::NaiveAllreduce { .. }
                                    | SpanDetail::ZExchange { .. }
                            )
                        ) {
                            cp.z_exchange_wait += stall;
                        }
                        cp.edges.push(BlockingEdge {
                            src: sr,
                            dst: rank,
                            bytes: m.bytes,
                            tag: m.tag,
                            stall,
                            wire,
                            arrival: m.arrival,
                            detail: e.detail,
                        });
                        rank = sr;
                        pos = si;
                        t_hi = send.t1;
                        continue;
                    }
                }
            }
        }

        // Rank-local segment down to the span's start.
        cp.by_category[e.category as usize] += t_hi - e.t0;
        if pos == 0 {
            cp.idle += e.t0.max(0.0); // ramp before the first span
            break;
        }
        let prev = &traces[rank][pos - 1];
        cp.idle += (e.t0 - prev.t1).max(0.0);
        pos -= 1;
        t_hi = prev.t1.min(e.t0);
    }

    cp.length = cp.by_category.iter().sum::<f64>() + cp.idle;
    cp.edges.sort_by(|a, b| b.stall.total_cmp(&a.stall));
    cp
}

impl CriticalPath {
    /// Human-readable composition report with the top-`k` blocking edges.
    pub fn report(&self, k: usize) -> String {
        let mut out = format!(
            "critical path: {:.3e} s over {} spans, {} cross-rank edges (makespan {:.3e} s)\n",
            self.length,
            self.spans,
            self.edges.len(),
            self.makespan
        );
        let pct = |t: f64| {
            if self.length > 0.0 {
                100.0 * t / self.length
            } else {
                0.0
            }
        };
        out.push_str("  composition:");
        for (i, c) in CATEGORIES.iter().enumerate() {
            let t = self.by_category[i];
            if t > 0.0 {
                out.push_str(&format!("  {} {:.1}%", c.label(), pct(t)));
            }
        }
        out.push_str(&format!(
            "  wire {:.1}%  idle {:.1}%\n",
            pct(self.wire_time),
            pct(self.idle)
        ));
        if self.level_barrier_wait > 0.0 {
            out.push_str(&format!(
                "  level-barrier wait: {:.3e} s ({:.1}%)\n",
                self.level_barrier_wait,
                pct(self.level_barrier_wait)
            ));
        }
        if self.z_exchange_wait > 0.0 {
            out.push_str(&format!(
                "  z-exchange wait: {:.3e} s ({:.1}%)\n",
                self.z_exchange_wait,
                pct(self.z_exchange_wait)
            ));
        }
        if !self.edges.is_empty() {
            out.push_str(&format!(
                "  top blocking edges (of {}):\n",
                self.edges.len()
            ));
            for e in self.edges.iter().take(k) {
                let what = match e.detail {
                    Some(d) => span_name(&TraceEvent {
                        detail: Some(d),
                        ..TraceEvent::compute(0.0, 0.0, simgrid::Category::Other)
                    }),
                    None => format!("tag {:#x}", e.tag),
                };
                out.push_str(&format!(
                    "    rank {} -> {}: stall {:.3e} s, wire {:.3e} s, {} B, {}\n",
                    e.src, e.dst, e.stall, e.wire, e.bytes, what
                ));
            }
        }
        out
    }

    /// Machine-readable snapshot (stable key order, plain JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"makespan\": {:?},\n", self.makespan));
        out.push_str(&format!("  \"length\": {:?},\n", self.length));
        out.push_str("  \"by_category\": {");
        for (i, c) in CATEGORIES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {:?}", c.label(), self.by_category[i]));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"wire_time\": {:?},\n", self.wire_time));
        out.push_str(&format!("  \"idle\": {:?},\n", self.idle));
        out.push_str(&format!("  \"spans\": {},\n", self.spans));
        out.push_str(&format!(
            "  \"level_barrier_wait\": {:?},\n",
            self.level_barrier_wait
        ));
        out.push_str(&format!(
            "  \"z_exchange_wait\": {:?},\n",
            self.z_exchange_wait
        ));
        out.push_str("  \"edges\": [");
        for (i, e) in self.edges.iter().take(32).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"src\": {}, \"dst\": {}, \"bytes\": {}, \"tag\": {}, \
                 \"stall\": {:?}, \"wire\": {:?}, \"arrival\": {:?}}}",
                e.src, e.dst, e.bytes, e.tag, e.stall, e.wire, e.arrival
            ));
        }
        if !self.edges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// One row of a span self-time profile: all the time the cluster spent in
/// spans of the same `(pass, kind, level)` class, averaged over ranks so
/// the `self_seconds` column of a profile sums to the makespan.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Coarse phase: `"pass e{epoch}"` for 2D schedule passes (and GPU
    /// passes and level barriers of the same epoch), `"z-allreduce"`,
    /// `"z-exchange"`, `"idle"`, or `"untagged"`.
    pub pass: String,
    /// Operation class within the pass: `"diag compute"`, `"bcast send"`,
    /// `"reduce recv"`, `"gpu compute"`, `"lsum send"`, ...
    pub kind: String,
    /// Bounded depth detail — the allreduce round or z-exchange /
    /// level-barrier level. `-1` where a per-step breakdown would explode
    /// cardinality (ordinary pass steps key on role instead).
    pub level: i64,
    /// Self time in seconds, averaged over ranks.
    pub self_seconds: f64,
    /// Spans folded into this row, summed over ranks (not averaged).
    pub spans: u64,
}

/// A span-aggregation profile of one traced solve (or, after
/// [`merge_from`][SpanProfile::merge_from], of a sequence of solves):
/// where the time went, by pass and operation class.
///
/// Built from the same per-rank timelines the critical-path walk uses.
/// Because spans tile each rank's clock (see `simgrid::trace`), folding
/// inter-span gaps and the tail into an explicit `idle` row makes the
/// profile *exhaustive*: `self_seconds` sums to exactly the makespan.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanProfile {
    /// Makespan the profile accounts for (sums across merges).
    pub makespan: f64,
    /// Ranks the profile averaged over.
    pub nranks: usize,
    /// Profile rows in deterministic key order.
    pub entries: Vec<ProfileEntry>,
}

/// Fold per-rank span timelines into a [`SpanProfile`]. `traces` is
/// indexed by world rank with time-ordered spans per rank (both the
/// tracer and the flight recorder record them that way); `makespan` is
/// the run's final clock, used to pad every rank with a trailing `idle`
/// row so the profile is exhaustive.
pub fn span_profile(traces: &[Vec<TraceEvent>], makespan: f64) -> SpanProfile {
    let nranks = traces.len().max(1);
    let mut acc: BTreeMap<(String, String, i64), (f64, u64)> = BTreeMap::new();
    for tl in traces {
        let mut cursor = 0.0f64;
        let mut idle = 0.0f64;
        for e in tl {
            idle += (e.t0 - cursor).max(0.0);
            cursor = cursor.max(e.t1);
            let dt = (e.t1 - e.t0).max(0.0);
            let verb = match e.kind {
                EventKind::Compute => "compute",
                EventKind::Send => "send",
                EventKind::Recv => "recv",
            };
            let (pass, kind, level) = match e.detail {
                Some(SpanDetail::Pass { epoch, role, .. }) => (
                    format!("pass e{epoch}"),
                    format!("{} {verb}", role.label()),
                    -1i64,
                ),
                Some(SpanDetail::Allreduce { round, role }) => (
                    "z-allreduce".to_string(),
                    format!("{} {verb}", role.label()),
                    round as i64,
                ),
                Some(SpanDetail::ZExchangeTrim { round, role, .. }) => (
                    "z-allreduce".to_string(),
                    format!("{} {verb} (trim)", role.label()),
                    round as i64,
                ),
                Some(SpanDetail::NaiveAllreduce { .. }) => {
                    ("z-allreduce".to_string(), format!("naive {verb}"), -1)
                }
                Some(SpanDetail::ZExchange { level, reduce }) => (
                    "z-exchange".to_string(),
                    format!("{} {verb}", if reduce { "lsum" } else { "x" }),
                    level as i64,
                ),
                Some(SpanDetail::GpuPass { epoch, .. }) => {
                    (format!("pass e{epoch}"), format!("gpu {verb}"), -1)
                }
                Some(SpanDetail::LevelBarrier { epoch, level, .. }) => (
                    format!("pass e{epoch}"),
                    format!("level-barrier {verb}"),
                    level as i64,
                ),
                None => ("untagged".to_string(), verb.to_string(), -1),
            };
            let slot = acc.entry((pass, kind, level)).or_insert((0.0, 0));
            slot.0 += dt;
            slot.1 += 1;
        }
        idle += (makespan - cursor).max(0.0);
        if idle > 0.0 {
            let slot = acc
                .entry(("idle".to_string(), "idle".to_string(), -1))
                .or_insert((0.0, 0));
            slot.0 += idle;
            slot.1 += 1;
        }
    }
    let entries = acc
        .into_iter()
        .map(|((pass, kind, level), (t, n))| ProfileEntry {
            pass,
            kind,
            level,
            self_seconds: t / nranks as f64,
            spans: n,
        })
        .collect();
    SpanProfile {
        makespan,
        nranks,
        entries,
    }
}

impl SpanProfile {
    /// Sum of all rows — equals the makespan up to float rounding.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.self_seconds).sum()
    }

    /// Fold another profile into this one: makespans add (sequential
    /// solves), rows merge by `(pass, kind, level)` key. Used by the
    /// serving layer to accumulate a lifetime profile across batches.
    pub fn merge_from(&mut self, other: &SpanProfile) {
        self.makespan += other.makespan;
        self.nranks = self.nranks.max(other.nranks);
        for oe in &other.entries {
            match self
                .entries
                .iter_mut()
                .find(|e| e.pass == oe.pass && e.kind == oe.kind && e.level == oe.level)
            {
                Some(e) => {
                    e.self_seconds += oe.self_seconds;
                    e.spans += oe.spans;
                }
                None => self.entries.push(oe.clone()),
            }
        }
        self.entries
            .sort_by(|a, b| (&a.pass, &a.kind, a.level).cmp(&(&b.pass, &b.kind, b.level)));
    }

    /// Human-readable table of the top-`k` rows by self time.
    pub fn to_table(&self, k: usize) -> String {
        let mut rows: Vec<&ProfileEntry> = self.entries.iter().collect();
        rows.sort_by(|a, b| b.self_seconds.total_cmp(&a.self_seconds));
        let mut out = format!(
            "span profile: {:.3e} s over {} ranks, {} rows\n\
             {:>12}  {:>6}  {:>8}  row\n",
            self.makespan,
            self.nranks,
            self.entries.len(),
            "self (s)",
            "%",
            "spans"
        );
        let pct = |t: f64| {
            if self.makespan > 0.0 {
                100.0 * t / self.makespan
            } else {
                0.0
            }
        };
        for e in rows.iter().take(k) {
            let lvl = if e.level >= 0 {
                format!(" L{}", e.level)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:>12.3e}  {:>5.1}%  {:>8}  {};{}{}\n",
                e.self_seconds,
                pct(e.self_seconds),
                e.spans,
                e.pass,
                e.kind,
                lvl
            ));
        }
        out
    }

    /// Machine-readable snapshot (stable key order, plain JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"makespan\": {:?},\n", self.makespan));
        out.push_str(&format!("  \"nranks\": {},\n", self.nranks));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"pass\": {:?}, \"kind\": {:?}, \"level\": {}, \
                 \"self_seconds\": {:?}, \"spans\": {}}}",
                e.pass, e.kind, e.level, e.self_seconds, e.spans
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Collapsed-stack form, one `frame;frame[;frame] nanos` line per row
    /// — feed to `inferno-flamegraph` or `flamegraph.pl` directly. Values
    /// are integer nanoseconds of (rank-averaged) self time, so the stack
    /// sums to the makespan within per-row rounding (< 1 ns each).
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let ns = (e.self_seconds * 1e9).round() as u64;
            if ns == 0 {
                continue;
            }
            if e.level >= 0 {
                out.push_str(&format!("{};{};L{} {}\n", e.pass, e.kind, e.level, ns));
            } else {
                out.push_str(&format!("{};{} {}\n", e.pass, e.kind, ns));
            }
        }
        out
    }
}

impl Plan {
    /// A machine model for analytic bounds (Cori Haswell, the paper's CPU
    /// testbed). Analysis functions use only its compute/latency fields.
    pub fn machine_for_analysis(&self) -> simgrid::MachineModel {
        simgrid::MachineModel::cori_haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{solve_distributed, Algorithm, Arch, SolverConfig};
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::{Category, MachineModel};
    use sparse::gen;
    use std::sync::Arc;

    fn plan_for(
        a: &sparse::CsrMatrix,
        px: usize,
        py: usize,
        pz: usize,
    ) -> (Arc<lufactor::Factorized>, Plan) {
        let f = Arc::new(factorize(a, pz, &SymbolicOptions::default()).unwrap());
        let p = Plan::new(Arc::clone(&f), px, py, pz);
        (f, p)
    }

    /// The volume prediction must match the simulator's byte counters
    /// exactly (payload bytes; the simulator adds a 64-byte header per
    /// message).
    #[test]
    fn predicted_volume_matches_measured() {
        let a = gen::poisson2d_9pt(14, 14);
        let (f, plan) = plan_for(&a, 2, 3, 4);
        let pred = predict_new3d_volume(&plan, 1);
        let b = gen::standard_rhs(a.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 3,
            pz: 4,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        let xy_msgs: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent[Category::XyComm as usize])
            .sum();
        let xy_bytes: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes_sent[Category::XyComm as usize])
            .sum();
        let z_msgs: u64 = out
            .stats
            .iter()
            .map(|s| s.msgs_sent[Category::ZComm as usize])
            .sum();
        let z_bytes: u64 = out
            .stats
            .iter()
            .map(|s| s.bytes_sent[Category::ZComm as usize])
            .sum();
        assert_eq!(pred.xy_msgs, xy_msgs, "intra-grid message count");
        assert_eq!(
            pred.xy_bytes,
            xy_bytes - 64 * xy_msgs,
            "intra-grid payload bytes"
        );
        assert_eq!(pred.z_msgs, z_msgs, "inter-grid message count");
        assert_eq!(
            pred.z_bytes,
            z_bytes - 64 * z_msgs,
            "inter-grid payload bytes"
        );
    }

    /// Tree and flat variants move the same volume (only hop counts differ
    /// in *forwarded* copies, which the prediction includes identically).
    #[test]
    fn volume_is_tree_shape_independent() {
        let a = gen::poisson2d_9pt(16, 16);
        let (f, _plan) = plan_for(&a, 3, 3, 2);
        let b = gen::standard_rhs(a.nrows(), 1);
        let mk = |alg| SolverConfig {
            px: 3,
            py: 3,
            pz: 2,
            nrhs: 1,
            algorithm: alg,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let t = solve_distributed(&f, &b, &mk(Algorithm::New3d));
        let fl = solve_distributed(&f, &b, &mk(Algorithm::New3dFlat));
        let bytes = |o: &crate::driver::SolveOutcome| {
            o.stats
                .iter()
                .map(|s| s.bytes_sent[Category::XyComm as usize])
                .sum::<u64>()
        };
        // With member sets at or below the tree threshold the schedules
        // coincide exactly; in general trees only re-route, so totals match.
        assert_eq!(bytes(&t), bytes(&fl));
    }

    /// The ICS'19 communication-avoiding claim (paper §2.2): for a 2D PDE
    /// matrix at fixed P, the per-process intra-grid volume shrinks as Pz
    /// grows.
    #[test]
    fn ca_volume_reduction_with_pz() {
        let a = gen::poisson2d_9pt(24, 24);
        let f = Arc::new(factorize(&a, 16, &SymbolicOptions::default()).unwrap());
        // P = 16 ranks total in all layouts.
        let v1 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 4, 4, 1), 1);
        let v4 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 2, 2, 4), 1);
        let v16 = predict_new3d_volume(&Plan::new(Arc::clone(&f), 1, 1, 16), 1);
        assert!(
            v4.xy_bytes < v1.xy_bytes,
            "Pz=4 must cut intra-grid volume: {} vs {}",
            v4.xy_bytes,
            v1.xy_bytes
        );
        assert!(v16.xy_bytes < v4.xy_bytes);
    }

    /// Simulated makespans can never beat the critical-path lower bound.
    #[test]
    fn makespan_respects_critical_path() {
        let a = gen::poisson2d_9pt(12, 12);
        let (f, plan) = plan_for(&a, 2, 2, 2);
        let bound = critical_path_lower_bound(&plan, 1);
        assert!(bound > 0.0);
        let b = gen::standard_rhs(a.nrows(), 1);
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz: 2,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: Default::default(),
            executor: Default::default(),
        };
        let out = solve_distributed(&f, &b, &cfg);
        assert!(
            out.makespan >= bound * 0.999,
            "makespan {} below lower bound {bound}",
            out.makespan
        );
    }

    /// Memory replication stays manageable (paper: "manageable memory
    /// overheads") and equals 1 for Pz = 1.
    #[test]
    fn replication_factor_is_manageable() {
        let a = gen::poisson2d_9pt(20, 20);
        let f = Arc::new(factorize(&a, 8, &SymbolicOptions::default()).unwrap());
        let m1 = memory_stats(&Plan::new(Arc::clone(&f), 2, 2, 1));
        assert!((m1.replication_factor() - 1.0).abs() < 1e-12);
        let m8 = memory_stats(&Plan::new(Arc::clone(&f), 1, 1, 8));
        let r = m8.replication_factor();
        assert!(r > 1.0, "ancestors are replicated");
        assert!(r < 8.0, "far below full replication, got {r}");
    }

    /// The span profile is exhaustive: explicit idle rows pad every rank
    /// to the makespan, so self times sum to it exactly — and the
    /// collapsed-stack export preserves the total within rounding.
    #[test]
    fn span_profile_is_exhaustive() {
        use simgrid::TreeRole;
        // Two ranks. Rank 0: diag compute [0,1], bcast send [1,1.5], then
        // idle to makespan 4. Rank 1: ramp [0,0.5], bcast recv [0.5,2],
        // allreduce send [2,3.5], idle tail [3.5,4].
        let mk = |t0: f64, t1: f64, kind, detail| {
            let mut e = TraceEvent::compute(t0, t1, simgrid::Category::Flop);
            e.kind = kind;
            e.detail = detail;
            e
        };
        let traces = vec![
            vec![
                mk(
                    0.0,
                    1.0,
                    EventKind::Compute,
                    Some(SpanDetail::Pass {
                        epoch: 0,
                        step: 0,
                        sup: 3,
                        role: TreeRole::Diag,
                    }),
                ),
                mk(
                    1.0,
                    1.5,
                    EventKind::Send,
                    Some(SpanDetail::Pass {
                        epoch: 0,
                        step: 1,
                        sup: 3,
                        role: TreeRole::Bcast,
                    }),
                ),
            ],
            vec![
                mk(
                    0.5,
                    2.0,
                    EventKind::Recv,
                    Some(SpanDetail::Pass {
                        epoch: 0,
                        step: 0,
                        sup: 3,
                        role: TreeRole::Bcast,
                    }),
                ),
                mk(
                    2.0,
                    3.5,
                    EventKind::Send,
                    Some(SpanDetail::Allreduce {
                        round: 1,
                        role: TreeRole::Reduce,
                    }),
                ),
            ],
        ];
        let p = span_profile(&traces, 4.0);
        assert_eq!(p.nranks, 2);
        assert!((p.total_seconds() - 4.0).abs() < 1e-12);
        let row = |pass: &str, kind: &str| {
            p.entries
                .iter()
                .find(|e| e.pass == pass && e.kind == kind)
                .unwrap_or_else(|| panic!("missing row {pass};{kind}"))
        };
        assert_eq!(row("pass e0", "diag compute").self_seconds, 0.5);
        assert_eq!(row("z-allreduce", "reduce send").level, 1);
        // idle = rank0 (4 - 1.5) + rank1 (0.5 ramp + 0.5 tail), averaged.
        assert!((row("idle", "idle").self_seconds - 1.75).abs() < 1e-12);
        // Collapsed stack round-trips the total in integer nanoseconds.
        let total_ns: u64 = p
            .to_collapsed()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total_ns, 4_000_000_000);
        // Merging doubles every row and the makespan.
        let mut m = p.clone();
        m.merge_from(&p);
        assert!((m.total_seconds() - 8.0).abs() < 1e-12);
        assert_eq!(m.makespan, 8.0);
        assert_eq!(m.entries.len(), p.entries.len());
        // JSON and table render without panicking and mention the rows.
        assert!(p.to_json().contains("\"pass\": \"z-allreduce\""));
        assert!(p.to_table(10).contains("diag compute"));
    }
}
