//! Sparse inter-grid allreduce of the partial ancestor solutions
//! (paper Algorithm 2).
//!
//! After the masked 2D L-solves, each grid `z` holds *partial* `y(K)` for
//! every replicated ancestor supernode `K` (complete values for its own
//! leaf). Summing the partials over the replicating grids yields the true
//! `y` everywhere. The paper's scheme does this with `O(log Pz)` pairwise
//! packed messages per rank: a binomial *sparse reduce* toward the smallest
//! replicating grid followed by a binomial *sparse broadcast* back — each
//! rank `(x, y, z)` exchanging only with `(x, y, z ± 2^l)` and packing only
//! the supernode pieces it owns diagonally (the 2D layout of `y` matches
//! `L`, so partners pack identical supernode lists).
//!
//! The partner and pack list of every step come precompiled in the plan's
//! schedule IR ([`crate::schedule::ZStep`]); this module only packs,
//! sends, and unpacks.
//!
//! The naive alternative the paper compares against — one `MPI_Allreduce`
//! per elimination-tree node — is provided as [`naive_allreduce`] for the
//! ablation benchmark.

use crate::plan::Plan;
use crate::schedule::{NaiveNode, ZStep};
use simgrid::{Category, SpanDetail, Transport, TreeRole};
use std::collections::HashMap;

const TAG_R: u64 = 7 << 40;
const TAG_B: u64 = 8 << 40;

/// Pack the listed supernode pieces into `buf` (cleared first). The caller
/// hoists `buf` across rounds, so after the first round packing reuses the
/// buffer's capacity instead of allocating per message.
fn pack_into(
    plan: &Plan,
    sups: &[u32],
    vals: &HashMap<u32, Vec<f64>>,
    nrhs: usize,
    buf: &mut Vec<f64>,
) {
    let sym = plan.fact.lu.sym();
    buf.clear();
    for &k in sups {
        let w = sym.sup_width(k as usize) * nrhs;
        match vals.get(&k) {
            Some(v) => buf.extend_from_slice(v),
            None => buf.extend(std::iter::repeat_n(0.0, w)),
        }
    }
}

/// Defensive pack-layout validation on receipt: the received buffer must
/// be exactly as wide as the local sup list implies, or sender and
/// receiver compiled different pack lists for this step — fail loudly
/// with a layout diagnostic instead of silently mis-assigning values.
fn check_layout(plan: &Plan, sups: &[u32], buf: &[f64], nrhs: usize, what: &str) {
    let sym = plan.fact.lu.sym();
    let want: usize = sups.iter().map(|&k| sym.sup_width(k as usize) * nrhs).sum();
    assert_eq!(
        buf.len(),
        want,
        "sparse-allreduce {what} layout mismatch: got {} doubles, want {} \
         ({} sups, nrhs {nrhs}, first sups {:?})",
        buf.len(),
        want,
        sups.len(),
        &sups[..sups.len().min(8)],
    );
}

fn unpack_add(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    vals: &mut HashMap<u32, Vec<f64>>,
    nrhs: usize,
) {
    check_layout(plan, sups, buf, nrhs, "reduce pack");
    let sym = plan.fact.lu.sym();
    let mut off = 0;
    for &k in sups {
        let w = sym.sup_width(k as usize) * nrhs;
        let entry = vals.entry(k).or_insert_with(|| vec![0.0; w]);
        for (a, &v) in entry.iter_mut().zip(&buf[off..off + w]) {
            *a += v;
        }
        off += w;
    }
}

fn unpack_set(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    vals: &mut HashMap<u32, Vec<f64>>,
    nrhs: usize,
) {
    check_layout(plan, sups, buf, nrhs, "broadcast pack");
    let sym = plan.fact.lu.sym();
    let mut off = 0;
    for &k in sups {
        let w = sym.sup_width(k as usize) * nrhs;
        // Overwrite in place when the slot exists (it usually does: the
        // 2D pass pre-sized it), allocating only for brand-new entries.
        match vals.get_mut(&k) {
            Some(slot) if slot.len() == w => slot.copy_from_slice(&buf[off..off + w]),
            _ => {
                vals.insert(k, buf[off..off + w].to_vec());
            }
        }
        off += w;
    }
}

/// Run the sparse allreduce over `y_vals` from my compiled step roles
/// (`zsteps[l]` is my role at step `l`, `None` when I sit out). `zcomm`
/// is the communicator over the `Pz` grids at fixed `(x, y)`, ranked by
/// `z`. On return, every diagonal owner holds the fully reduced `y(K)`
/// for all its (replicated) supernodes.
pub fn sparse_allreduce<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    zsteps: &[Option<ZStep>],
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    // One pack buffer for the whole allreduce: every round reuses its
    // capacity after the first (the rounds only shrink the pack lists).
    let mut buf: Vec<f64> = Vec::new();
    // Sparse reduce: leaf to root, partial sums flow toward smaller z.
    for (l, step) in zsteps.iter().enumerate() {
        let Some(step) = step else { continue };
        zcomm.set_span_detail(Some(SpanDetail::Allreduce {
            round: l as u32,
            role: TreeRole::Reduce,
        }));
        if step.to_smaller {
            pack_into(plan, &step.sups, y_vals, nrhs, &mut buf);
            zcomm.send(step.peer as usize, TAG_R + l as u64, &buf, Category::ZComm);
        } else {
            let msg = zcomm.recv(
                Some(step.peer as usize),
                Some(TAG_R + l as u64),
                Category::ZComm,
            );
            unpack_add(plan, &step.sups, &msg.payload, y_vals, nrhs);
        }
    }
    // Sparse broadcast: root to leaf, roles mirrored.
    for (l, step) in zsteps.iter().enumerate().rev() {
        let Some(step) = step else { continue };
        zcomm.set_span_detail(Some(SpanDetail::Allreduce {
            round: l as u32,
            role: TreeRole::Bcast,
        }));
        if step.to_smaller {
            let msg = zcomm.recv(
                Some(step.peer as usize),
                Some(TAG_B + l as u64),
                Category::ZComm,
            );
            unpack_set(plan, &step.sups, &msg.payload, y_vals, nrhs);
        } else {
            pack_into(plan, &step.sups, y_vals, nrhs, &mut buf);
            zcomm.send(step.peer as usize, TAG_B + l as u64, &buf, Category::ZComm);
        }
    }
    zcomm.set_span_detail(None);
}

/// The straightforward alternative (paper §3.2): one dense `MPI_Allreduce`
/// over the replicating grids for every ancestor layout node (pack lists
/// precompiled root-first in `naive`). Used by the ablation bench to show
/// why the sparse scheme wins.
pub fn naive_allreduce<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    naive: &[NaiveNode],
    z: usize,
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    // All grids of a subtree call in the same order (root first).
    let mut buf: Vec<f64> = Vec::new();
    for nn in naive {
        pack_into(plan, &nn.sups, y_vals, nrhs, &mut buf);
        // Subcommunicator of the grids replicating the node.
        let sub = zcomm.split(nn.node as usize, z);
        debug_assert_eq!(sub.size(), plan.n_grids_of(nn.node as usize));
        sub.set_span_detail(Some(SpanDetail::NaiveAllreduce { node: nn.node }));
        sub.allreduce_sum(&mut buf, Category::ZComm);
        unpack_set(plan, &nn.sups, &buf, y_vals, nrhs);
    }
    zcomm.set_span_detail(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use crate::schedule::ScheduleKey;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::{Category, ClusterOptions, MachineModel};
    use sparse::gen;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Run just the sparse allreduce over synthetic per-grid partials and
    /// compare every diagonal owner's result against the dense sum.
    fn allreduce_only(pz: usize, naive: bool) {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), 2, 2, pz));
        let sched = plan.schedule(ScheduleKey {
            baseline: false,
            tree_comm: true,
        });
        let nrhs = 2;
        let plan2 = Arc::clone(&plan);
        let rep = simgrid::run(
            plan.nranks(),
            MachineModel::cori_haswell(),
            &ClusterOptions::default(),
            move |world| {
                let plan = &plan2;
                let (x, y, z) = plan.coords(world.rank());
                let rs = &sched.ranks[plan.rank_of(x, y, z)];
                let _grid = world.split(z, x + plan.px * y);
                let zcomm = world.split(x + plan.px * y, z);
                // Synthetic partials: supernode k contributes (k + z·1000)
                // per entry on its replicating grids.
                let sym = plan.fact.lu.sym();
                let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
                for &k in &plan.grids[z].supers {
                    let ku = k as usize;
                    if ku % plan.px == x && ku % plan.py == y {
                        let w = sym.sup_width(ku) * nrhs;
                        y_vals.insert(k, vec![k as f64 + z as f64 * 1000.0; w]);
                    }
                }
                if naive {
                    naive_allreduce(plan, &zcomm, &rs.naive, z, nrhs, &mut y_vals);
                } else {
                    sparse_allreduce(plan, &zcomm, &rs.zsteps, nrhs, &mut y_vals);
                }
                (z, y_vals)
            },
        );
        // Expected: sum over replicating grids of (k + z·1000).
        let sym = plan.fact.lu.sym();
        for (z, y_vals) in rep.results {
            for (&k, v) in &y_vals {
                let node = plan.sup_node[k as usize] as usize;
                let zs: Vec<usize> = (0..pz)
                    .filter(|&g| plan.grids[g].path.contains(&node))
                    .collect();
                assert!(zs.contains(&z));
                let want: f64 = zs.iter().map(|&g| k as f64 + g as f64 * 1000.0).sum();
                let w = sym.sup_width(k as usize) * nrhs;
                assert_eq!(v.len(), w);
                for &x in v {
                    assert_eq!(x, want, "sup {k} grid {z}");
                }
            }
        }
    }

    #[test]
    fn sparse_allreduce_sums_partials_pz2() {
        allreduce_only(2, false);
    }

    #[test]
    fn sparse_allreduce_sums_partials_pz8() {
        allreduce_only(8, false);
    }

    #[test]
    fn naive_allreduce_agrees() {
        allreduce_only(4, true);
    }

    /// The sparse allreduce must use exactly 2·log2(Pz) message rounds per
    /// diagonal rank column and far less volume than the naive scheme.
    #[test]
    fn sparse_beats_naive_in_volume() {
        let a = gen::poisson2d_9pt(16, 16);
        let pz = 8;
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), 1, 1, pz));
        let nrhs = 1;
        let vol = |naive: bool| {
            let plan2 = Arc::clone(&plan);
            let sched = plan.schedule(ScheduleKey {
                baseline: false,
                tree_comm: true,
            });
            let rep = simgrid::run(
                pz,
                MachineModel::cori_haswell(),
                &ClusterOptions::default(),
                move |world| {
                    let plan = &plan2;
                    let z = world.rank();
                    let rs = &sched.ranks[plan.rank_of(0, 0, z)];
                    let _grid = world.split(z, 0);
                    let zcomm = world.split(0, z);
                    let sym = plan.fact.lu.sym();
                    let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
                    for &k in &plan.grids[z].supers {
                        let w = sym.sup_width(k as usize) * nrhs;
                        y_vals.insert(k, vec![1.0; w]);
                    }
                    if naive {
                        naive_allreduce(plan, &zcomm, &rs.naive, z, nrhs, &mut y_vals);
                    } else {
                        sparse_allreduce(plan, &zcomm, &rs.zsteps, nrhs, &mut y_vals);
                    }
                },
            );
            (
                rep.total_msgs(Category::ZComm),
                rep.total_bytes(Category::ZComm),
            )
        };
        let (sm, sb) = vol(false);
        let (nm, nb) = vol(true);
        assert!(sm < nm, "sparse {sm} msgs vs naive {nm}");
        assert!(sb <= nb, "sparse {sb} bytes vs naive {nb}");
    }
}
