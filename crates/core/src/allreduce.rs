//! Sparse inter-grid allreduce of the partial ancestor solutions
//! (paper Algorithm 2), with compile-time live-support trimming.
//!
//! After the masked 2D L-solves, each grid `z` holds *partial* `y(K)` for
//! every replicated ancestor supernode `K` (complete values for its own
//! leaf). Summing the partials over the replicating grids yields the true
//! `y` everywhere. The paper's scheme does this with `O(log Pz)` pairwise
//! packed messages per rank: a binomial *sparse reduce* toward the smallest
//! replicating grid followed by a binomial *sparse broadcast* back — each
//! rank `(x, y, z)` exchanging only with `(x, y, z ± 2^l)` and packing only
//! the supernode pieces it owns diagonally (the 2D layout of `y` matches
//! `L`, so partners pack identical supernode lists).
//!
//! The partner and pack list of every step come precompiled in the plan's
//! schedule IR ([`crate::schedule::ZStep`]). Under [`ZTrim::Live`] those
//! lists are already trimmed to the supernodes the step's sender subtree
//! can contribute a nonzero partial for, and a step whose list compiled to
//! empty is *elided* here — no message, no span. Liveness on this path is
//! fully static (presizing below gives every listed supernode a slot), so
//! the trimmed list alone determines the exact payload width — no presence
//! bitmap on the wire — and `check_layout` validates it on receipt. The
//! presence-bitmap wire format (DESIGN.md §15) lives in
//! [`pack_present_into`]/[`unpack_add_present`] for the residual case where
//! liveness is runtime-dependent: the baseline's lsum exchange, whose
//! occupancy depends on which partials the ledger actually accumulated.
//!
//! The naive alternative the paper compares against — one `MPI_Allreduce`
//! per elimination-tree node — is provided as [`naive_allreduce`] for the
//! ablation benchmark, over the same (live-trimmed) node lists.

use crate::plan::{Plan, ZTrim};
use crate::schedule::{NaiveNode, ZStep};
use simgrid::{Category, SpanDetail, Transport, TreeRole};
use std::collections::HashMap;

const TAG_R: u64 = 7 << 40;
const TAG_B: u64 = 8 << 40;

/// Doubles on the wire for one packed step list: the listed supernode
/// widths, nothing else. Exact — presizing guarantees every listed slot
/// exists, so the payload width is a compile-time constant `analysis.rs`
/// uses for the volume prediction.
pub(crate) fn payload_doubles(plan: &Plan, sups: &[u32], nrhs: usize) -> u64 {
    let sym = plan.fact.lu.sym();
    sups.iter()
        .map(|&k| (sym.sup_width(k as usize) * nrhs) as u64)
        .sum()
}

/// Pack the listed supernode pieces into `buf` (cleared first), in list
/// order. Under the trimmed layout every listed supernode has a pre-sized
/// slot; the zero-fill arm only fires for dense-layout lists that carry
/// supernodes this rank never computed a partial for (the pre-trim wire
/// bytes the live layout deletes). The caller hoists `buf` across rounds
/// and pre-reserves it, so the audited packing below never allocates.
fn pack_into(
    plan: &Plan,
    sups: &[u32],
    vals: &HashMap<u32, Vec<f64>>,
    nrhs: usize,
    buf: &mut Vec<f64>,
) {
    let _audit = crate::audit::pass_scope();
    let sym = plan.fact.lu.sym();
    buf.clear();
    for &k in sups {
        match vals.get(&k) {
            Some(v) => buf.extend_from_slice(v),
            None => buf.extend(std::iter::repeat_n(0.0, sym.sup_width(k as usize) * nrhs)),
        }
    }
}

/// Defensive pack-layout validation on receipt: the received buffer must
/// be exactly as wide as the local (trimmed) sup list implies, or sender
/// and receiver compiled different pack lists for this step — fail loudly
/// with a layout diagnostic instead of silently mis-assigning values.
fn check_layout(plan: &Plan, sups: &[u32], buf: &[f64], nrhs: usize, what: &str) {
    let sym = plan.fact.lu.sym();
    let want: usize = sups.iter().map(|&k| sym.sup_width(k as usize) * nrhs).sum();
    assert_eq!(
        buf.len(),
        want,
        "sparse-allreduce {what} layout mismatch: got {} doubles, want {} \
         ({} sups, nrhs {nrhs}, first sups {:?})",
        buf.len(),
        want,
        sups.len(),
        &sups[..sups.len().min(8)],
    );
}

fn unpack_add(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    vals: &mut HashMap<u32, Vec<f64>>,
    nrhs: usize,
) {
    let _audit = crate::audit::pass_scope();
    check_layout(plan, sups, buf, nrhs, "reduce pack");
    let sym = plan.fact.lu.sym();
    let mut off = 0;
    for &k in sups {
        let w = sym.sup_width(k as usize) * nrhs;
        let entry = vals.entry(k).or_insert_with(|| vec![0.0; w]);
        for (a, &v) in entry.iter_mut().zip(&buf[off..off + w]) {
            *a += v;
        }
        off += w;
    }
}

fn unpack_set(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    vals: &mut HashMap<u32, Vec<f64>>,
    nrhs: usize,
) {
    let _audit = crate::audit::pass_scope();
    check_layout(plan, sups, buf, nrhs, "broadcast pack");
    let sym = plan.fact.lu.sym();
    let mut off = 0;
    for &k in sups {
        let w = sym.sup_width(k as usize) * nrhs;
        // Overwrite in place: the slot was pre-sized before the exchange
        // (or by the 2D pass), so this never allocates mid-solve.
        match vals.get_mut(&k) {
            Some(slot) if slot.len() == w => slot.copy_from_slice(&buf[off..off + w]),
            _ => {
                vals.insert(k, buf[off..off + w].to_vec());
            }
        }
        off += w;
    }
}

#[inline]
pub(crate) fn bit_set(words: &[f64], i: usize) -> bool {
    words[i / 64].to_bits() >> (i % 64) & 1 == 1
}

/// Presence-bitmap packing (DESIGN.md §15) for exchanges whose liveness is
/// *runtime*-dependent — the baseline's lsum exchange, where a rank only
/// holds partials the ledger actually accumulated this solve. The payload
/// is a `ceil(len/64)`-word presence bitmap (u64 bit patterns carried as
/// f64), then the values of each *present* supernode in list order; absent
/// supernodes ship no bytes at all. `piece(k)` yields the supernode's
/// values when the rank holds them this solve. `buf` is cleared first; the
/// caller hoists and pre-reserves it.
///
/// Reference packer for the format's round-trip test; the baseline's
/// `pack_lsums_into` inlines the same layout because its pieces are folded
/// through a bump arena the closure signature cannot borrow from.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn pack_present_with<'a>(
    sups: &[u32],
    mut piece: impl FnMut(u32) -> Option<&'a [f64]>,
    buf: &mut Vec<f64>,
) {
    let _audit = crate::audit::pass_scope();
    buf.clear();
    let nwords = sups.len().div_ceil(64);
    buf.resize(nwords, 0.0);
    for (i, &k) in sups.iter().enumerate() {
        if let Some(v) = piece(k) {
            buf[i / 64] = f64::from_bits(buf[i / 64].to_bits() | 1 << (i % 64));
            buf.extend_from_slice(v);
        }
    }
}

/// Validate a presence-bitmap payload against the local list: the bitmap
/// must address only listed supernodes and the buffer must be exactly as
/// wide as the set bits imply. Returns the bitmap word count.
pub(crate) fn check_present_layout(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    nrhs: usize,
    what: &str,
) -> usize {
    let sym = plan.fact.lu.sym();
    let nwords = sups.len().div_ceil(64);
    assert!(
        buf.len() >= nwords,
        "{what}: {} doubles cannot hold the {nwords}-word presence bitmap \
         of a {}-sup list",
        buf.len(),
        sups.len(),
    );
    let tail = sups.len() % 64;
    if tail != 0 {
        let stray = buf[nwords - 1].to_bits() >> tail;
        assert_eq!(
            stray,
            0,
            "{what}: {} stray presence bits past the {}-sup list",
            stray.count_ones(),
            sups.len(),
        );
    }
    let want: usize = nwords
        + sups
            .iter()
            .enumerate()
            .filter(|&(i, _)| bit_set(buf, i))
            .map(|(_, &k)| sym.sup_width(k as usize) * nrhs)
            .sum::<usize>();
    assert_eq!(
        buf.len(),
        want,
        "{what} layout mismatch: got {} doubles, want {} ({} sups, \
         nrhs {nrhs}, first sups {:?})",
        buf.len(),
        want,
        sups.len(),
        &sups[..sups.len().min(8)],
    );
    nwords
}

/// Unpack a presence-bitmap payload, handing each *present* supernode's
/// values to `add`; absent supernodes are untouched. Not an audited
/// region: `add` may land in a per-solve ledger whose cold first touch of
/// a `(sup, key)` pair allocates by design.
pub(crate) fn unpack_present_with(
    plan: &Plan,
    sups: &[u32],
    buf: &[f64],
    nrhs: usize,
    what: &str,
    mut add: impl FnMut(u32, &[f64]),
) {
    let nwords = check_present_layout(plan, sups, buf, nrhs, what);
    let sym = plan.fact.lu.sym();
    let mut off = nwords;
    for (i, &k) in sups.iter().enumerate() {
        if !bit_set(buf, i) {
            continue;
        }
        let w = sym.sup_width(k as usize) * nrhs;
        add(k, &buf[off..off + w]);
        off += w;
    }
}

/// Sender-side wire accounting: actual bytes shipped plus the bytes the
/// trim removed relative to the dense layout of the same step.
pub(crate) fn note_sent<T: Transport>(
    zcomm: &T,
    dense_doubles: u64,
    nrhs: usize,
    sent_doubles: usize,
) {
    zcomm.metric_inc("comm.z.bytes", 8 * sent_doubles as u64);
    zcomm.metric_inc(
        "comm.z.bytes_saved",
        8 * (dense_doubles * nrhs as u64).saturating_sub(sent_doubles as u64),
    );
}

/// Run the sparse allreduce over `y_vals` from my compiled step roles
/// (`zsteps[l]` is my role at step `l`, `None` when I sit out). `zcomm`
/// is the communicator over the `Pz` grids at fixed `(x, y)`, ranked by
/// `z`. On return, every diagonal owner holds the fully reduced `y(K)`
/// for all supernodes its grid is live for (under [`ZTrim::Dense`], for
/// all its replicated supernodes).
pub fn sparse_allreduce<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    zsteps: &[Option<ZStep>],
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let sym = plan.fact.lu.sym();
    // Presize, outside the audited regions: every listed supernode gets a
    // slot and the hoisted pack buffer is reserved to the widest step, so
    // the audited pack/unpack compute never allocates — already on the
    // first solve. Touch the counters here too (alloc-free `inc` later,
    // and the trim is visible in a scrape even when it saves nothing).
    let mut max_doubles = 0usize;
    for step in zsteps.iter().flatten() {
        let mut doubles = 0usize;
        for &k in &step.sups {
            let w = sym.sup_width(k as usize) * nrhs;
            doubles += w;
            y_vals.entry(k).or_insert_with(|| vec![0.0; w]);
        }
        max_doubles = max_doubles.max(doubles);
    }
    zcomm.metric_inc("comm.z.bytes", 0);
    zcomm.metric_inc("comm.z.bytes_saved", 0);
    let mut buf: Vec<f64> = Vec::with_capacity(max_doubles);

    let detail = |l: usize, role: TreeRole, step: &ZStep| match plan.trim() {
        ZTrim::Live => SpanDetail::ZExchangeTrim {
            round: l as u32,
            role,
            saved_doubles: (step.dense_doubles * nrhs as u64)
                .saturating_sub(payload_doubles(plan, &step.sups, nrhs)),
        },
        ZTrim::Dense => SpanDetail::Allreduce {
            round: l as u32,
            role,
        },
    };

    // Sparse reduce: leaf to root, partial sums flow toward smaller z.
    for (l, step) in zsteps.iter().enumerate() {
        let Some(step) = step else { continue };
        if step.sups.is_empty() && plan.trim() == ZTrim::Live {
            // Round elided: nothing live crosses this cut. No message, no
            // span — not even the envelope of the zero-payload message the
            // dense layout would still ship. The dense payload (zero when
            // the list was empty by ownership alone) is saved wire bytes.
            if step.to_smaller {
                zcomm.metric_inc("comm.z.bytes_saved", 8 * step.dense_doubles * nrhs as u64);
            }
            continue;
        }
        zcomm.set_span_detail(Some(detail(l, TreeRole::Reduce, step)));
        if step.to_smaller {
            pack_into(plan, &step.sups, y_vals, nrhs, &mut buf);
            note_sent(zcomm, step.dense_doubles, nrhs, buf.len());
            zcomm.send(step.peer as usize, TAG_R + l as u64, &buf, Category::ZComm);
        } else {
            let msg = zcomm.recv(
                Some(step.peer as usize),
                Some(TAG_R + l as u64),
                Category::ZComm,
            );
            unpack_add(plan, &step.sups, &msg.payload, y_vals, nrhs);
        }
    }
    // Sparse broadcast: root to leaf, roles mirrored.
    for (l, step) in zsteps.iter().enumerate().rev() {
        let Some(step) = step else { continue };
        if step.sups.is_empty() && plan.trim() == ZTrim::Live {
            if !step.to_smaller {
                zcomm.metric_inc("comm.z.bytes_saved", 8 * step.dense_doubles * nrhs as u64);
            }
            continue;
        }
        zcomm.set_span_detail(Some(detail(l, TreeRole::Bcast, step)));
        if step.to_smaller {
            let msg = zcomm.recv(
                Some(step.peer as usize),
                Some(TAG_B + l as u64),
                Category::ZComm,
            );
            unpack_set(plan, &step.sups, &msg.payload, y_vals, nrhs);
        } else {
            pack_into(plan, &step.sups, y_vals, nrhs, &mut buf);
            note_sent(zcomm, step.dense_doubles, nrhs, buf.len());
            zcomm.send(step.peer as usize, TAG_B + l as u64, &buf, Category::ZComm);
        }
    }
    zcomm.set_span_detail(None);
}

/// The straightforward alternative (paper §3.2): one dense `MPI_Allreduce`
/// over the replicating grids for every ancestor layout node (pack lists
/// precompiled root-first in `naive`, live-trimmed under [`ZTrim::Live`]).
/// Used by the ablation bench to show why the sparse scheme wins.
pub fn naive_allreduce<T: Transport>(
    plan: &Plan,
    zcomm: &T,
    naive: &[NaiveNode],
    z: usize,
    nrhs: usize,
    y_vals: &mut HashMap<u32, Vec<f64>>,
) {
    let sym = plan.fact.lu.sym();
    // Presize slots and the hoisted buffer (see `sparse_allreduce`).
    let mut max_doubles = 0usize;
    for nn in naive {
        let mut doubles = 0usize;
        for &k in &nn.sups {
            let w = sym.sup_width(k as usize) * nrhs;
            doubles += w;
            y_vals.entry(k).or_insert_with(|| vec![0.0; w]);
        }
        max_doubles = max_doubles.max(doubles);
    }
    zcomm.metric_inc("comm.z.bytes", 0);
    zcomm.metric_inc("comm.z.bytes_saved", 0);
    let mut buf: Vec<f64> = Vec::with_capacity(max_doubles);

    // All grids of a subtree call in the same order (root first).
    for nn in naive {
        // The split is collective over `zcomm` (every grid splits once per
        // path level), so it must run even for elided nodes; only the
        // collective itself is skipped — in lockstep, since the trimmed
        // list is identical on every member of the node's group.
        let sub = zcomm.split(nn.node as usize, z);
        debug_assert_eq!(sub.size(), plan.n_grids_of(nn.node as usize));
        if nn.sups.is_empty() && plan.trim() == ZTrim::Live {
            zcomm.metric_inc("comm.z.bytes_saved", 8 * nn.dense_doubles * nrhs as u64);
            continue;
        }
        pack_into(plan, &nn.sups, y_vals, nrhs, &mut buf);
        note_sent(zcomm, nn.dense_doubles, nrhs, buf.len());
        sub.set_span_detail(Some(SpanDetail::NaiveAllreduce { node: nn.node }));
        sub.allreduce_sum(&mut buf, Category::ZComm);
        unpack_set(plan, &nn.sups, &buf, y_vals, nrhs);
    }
    zcomm.set_span_detail(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use crate::schedule::ScheduleKey;
    use lufactor::factorize;
    use ordering::SymbolicOptions;
    use simgrid::{Category, ClusterOptions, MachineModel};
    use sparse::gen;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Run just the allreduce over synthetic per-grid partials — one
    /// contribution per grid that is *live* for the supernode — and check
    /// every live diagonal owner ends up with the full live sum.
    fn allreduce_only(pz: usize, naive: bool) {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), 2, 2, pz));
        let sched = plan.schedule(ScheduleKey {
            baseline: false,
            tree_comm: true,
        });
        let nrhs = 2;
        let plan2 = Arc::clone(&plan);
        let rep = simgrid::run(
            plan.nranks(),
            MachineModel::cori_haswell(),
            &ClusterOptions::default(),
            move |world| {
                let plan = &plan2;
                let (x, y, z) = plan.coords(world.rank());
                let rs = &sched.ranks[plan.rank_of(x, y, z)];
                let _grid = world.split(z, x + plan.px * y);
                let zcomm = world.split(x + plan.px * y, z);
                // Synthetic partials: supernode k contributes (k + z·1000)
                // per entry on each grid live for it (dead replicas hold
                // exact zeros in the real solver and are trimmed away).
                let sym = plan.fact.lu.sym();
                let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
                for &k in &plan.grids[z].supers {
                    let ku = k as usize;
                    if ku % plan.px == x && ku % plan.py == y && plan.grids[z].live.contains(ku) {
                        let w = sym.sup_width(ku) * nrhs;
                        y_vals.insert(k, vec![k as f64 + z as f64 * 1000.0; w]);
                    }
                }
                if naive {
                    naive_allreduce(plan, &zcomm, &rs.naive, z, nrhs, &mut y_vals);
                } else {
                    sparse_allreduce(plan, &zcomm, &rs.zsteps, nrhs, &mut y_vals);
                }
                (x, y, z, y_vals)
            },
        );
        // Expected on every live diagonal owner: the sum over the live
        // replicating grids of (k + g·1000).
        let sym = plan.fact.lu.sym();
        for (x, y, z, y_vals) in rep.results {
            for &k in &plan.grids[z].supers {
                let ku = k as usize;
                if ku % plan.px != x || ku % plan.py != y || !plan.grids[z].live.contains(ku) {
                    continue;
                }
                let zs: Vec<usize> = (0..pz)
                    .filter(|&g| plan.grids[g].live.contains(ku))
                    .collect();
                let want: f64 = zs.iter().map(|&g| k as f64 + g as f64 * 1000.0).sum();
                let w = sym.sup_width(ku) * nrhs;
                let v = y_vals
                    .get(&k)
                    .unwrap_or_else(|| panic!("live sup {k} missing on grid {z}"));
                assert_eq!(v.len(), w);
                for &got in v {
                    assert_eq!(got, want, "sup {k} grid {z}");
                }
            }
        }
    }

    #[test]
    fn sparse_allreduce_sums_partials_pz2() {
        allreduce_only(2, false);
    }

    #[test]
    fn sparse_allreduce_sums_partials_pz8() {
        allreduce_only(8, false);
    }

    #[test]
    fn naive_allreduce_agrees() {
        allreduce_only(4, true);
    }

    /// The presence bitmap round-trips runtime-partial maps: absent
    /// supernodes pack no bytes, the unpacker visits only present entries,
    /// and the layout check rejects nothing on a well-formed payload.
    #[test]
    fn bitmap_partial_presence_roundtrip() {
        let a = gen::poisson2d_9pt(12, 12);
        let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
        let plan = Plan::new(Arc::clone(&f), 1, 1, 2);
        let sym = plan.fact.lu.sym();
        let nrhs = 2;
        let sups = plan.grids[0].supers.clone();
        assert!(sups.len() > 3, "test wants a multi-sup list");
        let width = |k: u32| sym.sup_width(k as usize) * nrhs;

        let mut vals: HashMap<u32, Vec<f64>> = HashMap::new();
        for (i, &k) in sups.iter().enumerate() {
            if i % 2 == 0 {
                vals.insert(k, vec![k as f64 + 0.5; width(k)]);
            }
        }
        let mut buf = Vec::new();
        pack_present_with(&sups, |k| vals.get(&k).map(|v| v.as_slice()), &mut buf);
        let present: usize = sups
            .iter()
            .enumerate()
            .filter(|&(i, _)| i % 2 == 0)
            .map(|(_, &k)| width(k))
            .sum();
        assert_eq!(buf.len(), sups.len().div_ceil(64) + present);

        // Only present supernodes are visited, each with its own values.
        let mut seen: HashMap<u32, Vec<f64>> = HashMap::new();
        unpack_present_with(&plan, &sups, &buf, nrhs, "test pack", |k, v| {
            seen.insert(k, v.to_vec());
        });
        assert_eq!(seen.len(), vals.len());
        for (k, v) in &vals {
            assert_eq!(&seen[k], v);
        }

        // A truncated payload trips the layout check.
        let short = &buf[..buf.len() - 1];
        let r = std::panic::catch_unwind(|| {
            check_present_layout(&plan, &sups, short, nrhs, "test pack")
        });
        assert!(r.is_err(), "layout check accepted a truncated payload");
    }

    /// The sparse allreduce must use exactly 2·log2(Pz) message rounds per
    /// diagonal rank column and far less volume than the naive scheme.
    #[test]
    fn sparse_beats_naive_in_volume() {
        let a = gen::poisson2d_9pt(16, 16);
        let pz = 8;
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), 1, 1, pz));
        let nrhs = 1;
        let vol = |naive: bool| {
            let plan2 = Arc::clone(&plan);
            let sched = plan.schedule(ScheduleKey {
                baseline: false,
                tree_comm: true,
            });
            let rep = simgrid::run(
                pz,
                MachineModel::cori_haswell(),
                &ClusterOptions::default(),
                move |world| {
                    let plan = &plan2;
                    let z = world.rank();
                    let rs = &sched.ranks[plan.rank_of(0, 0, z)];
                    let _grid = world.split(z, 0);
                    let zcomm = world.split(0, z);
                    let sym = plan.fact.lu.sym();
                    let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
                    for &k in &plan.grids[z].supers {
                        let w = sym.sup_width(k as usize) * nrhs;
                        y_vals.insert(k, vec![1.0; w]);
                    }
                    if naive {
                        naive_allreduce(plan, &zcomm, &rs.naive, z, nrhs, &mut y_vals);
                    } else {
                        sparse_allreduce(plan, &zcomm, &rs.zsteps, nrhs, &mut y_vals);
                    }
                },
            );
            (
                rep.total_msgs(Category::ZComm),
                rep.total_bytes(Category::ZComm),
            )
        };
        let (sm, sb) = vol(false);
        let (nm, nb) = vol(true);
        assert!(sm < nm, "sparse {sm} msgs vs naive {nm}");
        assert!(sb <= nb, "sparse {sb} bytes vs naive {nb}");
    }

    /// The trimmed layout ships strictly fewer z bytes than the dense
    /// layout of the same plan shape, and reports the delta through the
    /// `comm.z.*` counters.
    #[test]
    fn trimmed_layout_saves_wire_bytes() {
        // R-MAT: uneven separators leave many replicated ancestors dead on
        // deep grids (a PDE stencil couples everything and trims nothing).
        let a = gen::rmat(9, 8, 7);
        let pz = 8;
        let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let run_with = |trim: ZTrim| {
            let plan = Arc::new(Plan::with_trim(Arc::clone(&f), 1, 1, pz, trim));
            let sched = plan.schedule(ScheduleKey {
                baseline: false,
                tree_comm: true,
            });
            let plan2 = Arc::clone(&plan);
            let rep = simgrid::run(
                pz,
                MachineModel::cori_haswell(),
                &ClusterOptions::default(),
                move |world| {
                    let plan = &plan2;
                    let z = world.rank();
                    let rs = &sched.ranks[plan.rank_of(0, 0, z)];
                    let _grid = world.split(z, 0);
                    let zcomm = world.split(0, z);
                    let sym = plan.fact.lu.sym();
                    let mut y_vals: HashMap<u32, Vec<f64>> = HashMap::new();
                    for &k in &plan.grids[z].supers {
                        if plan.grids[z].live.contains(k as usize) {
                            let w = sym.sup_width(k as usize);
                            y_vals.insert(k, vec![1.0; w]);
                        }
                    }
                    sparse_allreduce(plan, &zcomm, &rs.zsteps, 1, &mut y_vals);
                },
            );
            (
                rep.total_bytes(Category::ZComm),
                rep.metrics.counter("comm.z.bytes"),
                rep.metrics.counter("comm.z.bytes_saved"),
            )
        };
        let (live_wire, live_bytes, live_saved) = run_with(ZTrim::Live);
        let (dense_wire, dense_bytes, dense_saved) = run_with(ZTrim::Dense);
        assert!(
            live_wire < dense_wire,
            "trim saved nothing: live {live_wire} vs dense {dense_wire}"
        );
        assert!(live_saved > 0, "comm.z.bytes_saved stayed zero");
        assert_eq!(dense_saved, 0, "dense layout reported savings");
        assert!(live_bytes < dense_bytes);
    }
}
