//! Real shared-memory transport backend (backend #2).
//!
//! Where `simgrid` simulates a cluster on virtual clocks, this crate runs
//! the *same* rank programs as real concurrent threads exchanging real
//! messages: one OS thread per rank, a mailbox queue per rank, zero-copy
//! `Arc<[f64]>` payloads, and wall-clock timing. There is no machine model
//! application, no fault injection, no settle window, and no tracing —
//! those are sim-private. What remains is exactly the
//! [`Transport`](simgrid::Transport) contract:
//!
//! * per-destination FIFO for two-sided sends (a sender enqueues in
//!   program order, receives scan the queue in order);
//! * `(src, tag)` and masked-tag addressing with unmatched messages left
//!   queued;
//! * binomial-tree collectives with the same reduction order as the
//!   simulator, so allreduce results are bit-identical across backends;
//! * per-collective tag sequencing and `MPI_Comm_split` semantics.
//!
//! ## Clock and attribution
//!
//! [`now`](simgrid::Transport::now) is real seconds since the cluster
//! started (monotonic, shared epoch across ranks). Time attribution is by
//! *elapsed real time since the rank's previous attribution point*: when a
//! solver calls `compute(modeled, cat)` after running a kernel, the native
//! backend charges the time the kernel actually took, not the model's
//! estimate. Category times therefore tile each rank's real runtime, and
//! the run's makespan is the real wall-clock of the slowest rank — the
//! number the `pr5_report` bench places next to the simulator's predicted
//! makespan.

use parking_lot::{Condvar, Mutex};
use simgrid::{
    Category, EventKind, FaultMark, FlightRecorder, MachineModel, Metrics, MsgInfo, Payload,
    RankStats, RecvMsg, RunReport, TraceEvent, Transport,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives (same
/// convention as the simulator).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// A queued message.
struct Msg {
    comm_id: u64,
    src: u32,
    tag: u64,
    /// Real receive-side arrival time (seconds since cluster epoch).
    arrival: f64,
    payload: Payload,
    seq: u64,
}

struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    cv: Condvar,
}

struct ClusterShared {
    mailboxes: Vec<Mailbox>,
    model: Arc<MachineModel>,
    epoch: Instant,
    next_comm_id: AtomicU64,
    stall_timeout: Option<Duration>,
    /// Per-rank flight recorders (always on, bounded; same semantics as
    /// the simulator's). Shared so a stalling rank's watchdog can drain
    /// every rank's ring, including ranks currently blocked.
    flight: Vec<Arc<Mutex<FlightRecorder>>>,
    /// Where the watchdog writes the Perfetto flight dump on a stall.
    flight_dump_path: Option<PathBuf>,
}

impl ClusterShared {
    #[inline]
    fn elapsed(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Drain every rank's flight recorder into a Perfetto trace at the
    /// configured dump path (watchdog path; non-consuming).
    fn dump_flight_on_stall(&self) {
        let Some(path) = &self.flight_dump_path else {
            return;
        };
        let timelines: Vec<Vec<TraceEvent>> =
            self.flight.iter().map(|f| f.lock().drain()).collect();
        let json = simgrid::export_perfetto(&timelines, 0);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "comm-native watchdog: flight recorder dumped to {}",
                path.display()
            ),
            Err(e) => eprintln!(
                "comm-native watchdog: failed to write flight dump {}: {e}",
                path.display()
            ),
        }
    }
}

/// Per-rank mutable context; owned by the rank's thread, shared by all of
/// that rank's communicator handles.
struct RankCtx {
    world_rank: usize,
    stats: RefCell<RankStats>,
    /// Elapsed seconds at the last time attribution (see `charge`).
    last_stamp: Cell<f64>,
    /// Per-communicator collective sequence numbers (same tag-isolation
    /// scheme as the simulator).
    coll_seq: RefCell<HashMap<u64, u64>>,
    metrics: RefCell<Metrics>,
    /// Messages sent so far; seq ids are `(world_rank + 1) << 32 | n`,
    /// matching the simulator's deterministic allocation scheme.
    sent_seq: Cell<u64>,
    /// This rank's always-on flight recorder (shared with the cluster so
    /// stall watchdogs on other ranks can drain it).
    flight: Arc<Mutex<FlightRecorder>>,
}

/// Handle to a communicator from one rank. Clonable within the owning
/// rank's thread; not shareable across threads.
pub struct NativeComm {
    shared: Arc<ClusterShared>,
    ctx: Rc<RankCtx>,
    id: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<Vec<u32>>,
    my_idx: usize,
}

impl Clone for NativeComm {
    fn clone(&self) -> Self {
        NativeComm {
            shared: Arc::clone(&self.shared),
            ctx: Rc::clone(&self.ctx),
            id: self.id,
            members: Arc::clone(&self.members),
            my_idx: self.my_idx,
        }
    }
}

impl NativeComm {
    /// Attribute the real time elapsed since this rank's previous
    /// attribution point to `cat`, and move the point to now. This makes
    /// the per-category times tile the rank's wall-clock runtime.
    fn charge(&self, cat: Category) -> f64 {
        let now = self.shared.elapsed();
        let dt = now - self.ctx.last_stamp.get();
        self.ctx.last_stamp.set(now);
        self.ctx.stats.borrow_mut().time[cat as usize] += dt;
        dt
    }

    /// Enqueue a message at `dst`'s mailbox. `counted` selects whether the
    /// send appears in traffic statistics (split/collective setup traffic
    /// is counted, exactly like every real send — only the simulator has a
    /// notion of zero-cost setup sends).
    fn enqueue(&self, dst: usize, tag: u64, payload: Payload, cat: Category, counted: bool) {
        let dst_world = self.members[dst] as usize;
        let bytes = 8 * payload.len() + 64;
        if counted {
            let mut st = self.ctx.stats.borrow_mut();
            st.bytes_sent[cat as usize] += bytes as u64;
            st.msgs_sent[cat as usize] += 1;
        }
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.sent", 1);
            m.observe("msgs.bytes", simgrid::BYTE_BUCKETS, bytes as f64);
        }
        let seq = {
            let n = self.ctx.sent_seq.get() + 1;
            self.ctx.sent_seq.set(n);
            ((self.ctx.world_rank as u64 + 1) << 32) | n
        };
        let arrival = self.shared.elapsed();
        let msg = Msg {
            comm_id: self.id,
            src: self.my_idx as u32,
            tag,
            arrival,
            payload,
            seq,
        };
        let mb = &self.shared.mailboxes[dst_world];
        mb.queue.lock().push_back(msg);
        mb.cv.notify_all();
        // Flight-record the send as an instant: the enqueue itself has no
        // measurable duration on real hardware (sender-side time lands in
        // the surrounding charge).
        self.ctx.flight.lock().record(TraceEvent {
            t0: arrival,
            t1: arrival,
            kind: EventKind::Send,
            category: cat,
            msg: Some(MsgInfo {
                peer: dst_world,
                bytes,
                tag,
                seq,
                arrival,
                faults: FaultMark::default(),
            }),
            detail: None,
        });
    }

    /// Blocking receive of the first queued message (in real arrival
    /// order) matching `matches` on this communicator. Does not touch the
    /// statistics.
    fn recv_matching(&self, matches: impl Fn(usize, u64) -> bool) -> RecvMsg {
        let mb = &self.shared.mailboxes[self.ctx.world_rank];
        let mut q = mb.queue.lock();
        let started = self
            .shared
            .stall_timeout
            .map(|limit| (Instant::now(), limit));
        loop {
            let pick = q
                .iter()
                .position(|m| m.comm_id == self.id && matches(m.src as usize, m.tag));
            if let Some(idx) = pick {
                let m = q.remove(idx).expect("picked index in bounds");
                return RecvMsg {
                    src: m.src as usize,
                    tag: m.tag,
                    arrival: m.arrival,
                    payload: m.payload,
                    seq: m.seq,
                    dup: false,
                    jittered: false,
                };
            }
            match started {
                None => mb.cv.wait(&mut q),
                Some((t0, limit)) => {
                    let waited = t0.elapsed();
                    if waited >= limit {
                        let report = self.stall_report(&q, waited);
                        // Release the mailbox before draining the flight
                        // recorders (the dump needs no queue state).
                        drop(q);
                        self.shared.dump_flight_on_stall();
                        panic!("{report}");
                    }
                    // Wake periodically so every stalled rank eventually
                    // times out (not only the ones that get notified).
                    let chunk = (limit - waited).min(Duration::from_millis(100));
                    mb.cv.wait_for(&mut q, chunk);
                }
            }
        }
    }

    /// Count a delivery and attribute the receive (including the blocked
    /// wait) to `cat`.
    fn charge_recv(&self, msg: &RecvMsg, cat: Category) {
        let dt = self.charge(cat);
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.received", 1);
            m.observe("recv.wait_seconds", simgrid::WAIT_BUCKETS, dt.max(0.0));
        }
        // The receive span covers the whole blocked wait, ending now.
        let t1 = self.ctx.last_stamp.get();
        self.ctx.flight.lock().record(TraceEvent {
            t0: t1 - dt.max(0.0),
            t1,
            kind: EventKind::Recv,
            category: cat,
            msg: Some(MsgInfo {
                peer: self.members[msg.src] as usize,
                bytes: 8 * msg.payload.len() + 64,
                tag: msg.tag,
                seq: msg.seq,
                arrival: msg.arrival,
                faults: FaultMark::default(),
            }),
            detail: None,
        });
    }

    /// Watchdog diagnostic for a stalled receive, mirroring the
    /// simulator's report shape.
    fn stall_report(&self, q: &VecDeque<Msg>, waited: Duration) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "comm-native watchdog: world rank {} (comm {} rank {}/{}) stalled in recv for {:.2?}",
            self.ctx.world_rank,
            self.id,
            self.my_idx,
            self.members.len(),
            waited,
        );
        let _ = writeln!(s, "  wall clock: {:.6e} s", self.shared.elapsed());
        let _ = writeln!(s, "  queued-but-unmatched messages: {}", q.len());
        const CAP: usize = 32;
        for m in q.iter().take(CAP) {
            let _ = writeln!(
                s,
                "    comm {:>3} src {:>4} tag {:#018x} arrival {:>12.6e} len {}",
                m.comm_id,
                m.src,
                m.tag,
                m.arrival,
                m.payload.len(),
            );
        }
        if q.len() > CAP {
            let _ = writeln!(s, "    ... {} more", q.len() - CAP);
        }
        s
    }

    /// Base tag for the next collective on this communicator (same
    /// sequencing scheme as the simulator: one fresh tag block per
    /// collective call, members agree by program order).
    fn coll_tag(&self) -> u64 {
        let mut seqs = self.ctx.coll_seq.borrow_mut();
        let seq = seqs.entry(self.id).or_insert(0);
        *seq += 1;
        COLLECTIVE_TAG_BASE + *seq * 4
    }

    /// Binomial reduce to rank 0 + binomial broadcast back — the shared
    /// [`simgrid::collectives`] shape, which is what makes allreduce
    /// results bit-identical across every backend.
    fn reduce_bcast(&self, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        simgrid::collectives::reduce_bcast(self, tag, data, cat);
    }
}

impl Transport for NativeComm {
    fn rank(&self) -> usize {
        self.my_idx
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn world_rank(&self, r: usize) -> usize {
        self.members[r] as usize
    }

    fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// `MPI_Comm_split` over real messages: gather every member's
    /// `(color, key)` at rank 0, allocate a fresh id block, broadcast the
    /// decisions. Same protocol as the simulator (minus virtual time).
    fn split(&self, color: usize, key: usize) -> Self {
        let me = self.my_idx;
        let size = self.members.len();
        let tag = COLLECTIVE_TAG_BASE + 1;
        if me == 0 {
            let mut triples: Vec<(usize, usize, usize)> = vec![(color, key, 0)];
            for _ in 1..size {
                let m = self.recv_matching(|_, t| t == tag);
                triples.push((m.payload[0] as usize, m.payload[1] as usize, m.src));
            }
            let base = self
                .shared
                .next_comm_id
                .fetch_add(size as u64, Ordering::Relaxed);
            let mut flat = Vec::with_capacity(3 * size + 1);
            flat.push(base as f64);
            for &(c, k, r) in &triples {
                flat.push(c as f64);
                flat.push(k as f64);
                flat.push(r as f64);
            }
            let flat: Arc<[f64]> = flat.into();
            for dst in 1..size {
                self.enqueue(dst, tag + 1, Arc::clone(&flat), Category::Setup, false);
            }
            self.build_split_comm(&flat, color)
        } else {
            let pair: Arc<[f64]> = vec![color as f64, key as f64].into();
            self.enqueue(0, tag, pair, Category::Setup, false);
            let m = self.recv_matching(|s, t| s == 0 && t == tag + 1);
            self.build_split_comm(&m.payload, color)
        }
    }

    fn now(&self) -> f64 {
        self.shared.elapsed()
    }

    /// The real clock advances by itself.
    fn advance_to(&self, _t: f64) {}

    /// The modeled duration is ignored: the kernel already ran in this
    /// thread, so the *measured* time since the last attribution point is
    /// what gets charged.
    fn compute(&self, _seconds: f64, cat: Category) {
        let dt = self.charge(cat);
        let t1 = self.ctx.last_stamp.get();
        self.ctx
            .flight
            .lock()
            .record(TraceEvent::compute(t1 - dt, t1, cat));
    }

    /// Same substitution as [`compute`](Transport::compute): measured
    /// elapsed time instead of the modeled value. Back-to-back `account`
    /// calls (the GPU executor's busy/idle split) charge the real elapsed
    /// time once and ~0 thereafter.
    fn account(&self, _seconds: f64, cat: Category) {
        let dt = self.charge(cat);
        let t1 = self.ctx.last_stamp.get();
        self.ctx
            .flight
            .lock()
            .record(TraceEvent::compute(t1 - dt, t1, cat));
    }

    fn time_snapshot(&self) -> [f64; simgrid::N_CATEGORIES] {
        self.ctx.stats.borrow().time
    }

    fn send_shared(&self, dst: usize, tag: u64, payload: &Payload, cat: Category) {
        self.charge(cat);
        self.enqueue(dst, tag, Arc::clone(payload), cat, true);
    }

    /// The modeled departure and wire times belong to the simulator's
    /// clock domain; on real hardware the put is just an immediate
    /// enqueue. Not subject to any ordering rule (NVSHMEM-style), which
    /// the plain queue already satisfies.
    fn send_timed_shared(
        &self,
        _depart: f64,
        _wire: f64,
        dst: usize,
        tag: u64,
        payload: &Payload,
        cat: Category,
    ) {
        self.enqueue(dst, tag, Arc::clone(payload), cat, true);
    }

    fn recv(&self, src: Option<usize>, tag: Option<u64>, cat: Category) -> RecvMsg {
        let msg = self.recv_matching(|s, t| {
            src.is_none_or(|want| s == want) && tag.is_none_or(|want| t == want)
        });
        self.charge_recv(&msg, cat);
        msg
    }

    fn recv_tag_masked(&self, mask: u64, value: u64, cat: Category) -> RecvMsg {
        let msg = self.recv_matching(|_, t| t & mask == value);
        self.charge_recv(&msg, cat);
        msg
    }

    fn recv_raw_tag_masked(&self, mask: u64, value: u64) -> RecvMsg {
        self.recv_matching(|_, t| t & mask == value)
    }

    fn barrier(&self, cat: Category) {
        let mut token = [0.0f64];
        self.reduce_bcast(&mut token, cat);
    }

    fn allreduce_sum(&self, data: &mut [f64], cat: Category) {
        self.reduce_bcast(data, cat);
    }

    fn bcast(&self, root: usize, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        simgrid::collectives::bcast_from(self, root, tag, data, cat);
    }

    fn metric_inc(&self, name: &str, by: u64) {
        self.ctx.metrics.borrow_mut().inc(name, by);
    }

    fn metric_observe(&self, name: &str, bounds: &[f64], v: f64) {
        self.ctx.metrics.borrow_mut().observe(name, bounds, v);
    }
}

impl NativeComm {
    fn build_split_comm(&self, flat: &[f64], my_color: usize) -> NativeComm {
        let base = flat[0] as u64;
        let mut group: Vec<(usize, usize)> = Vec::new(); // (key, comm_rank_in_parent)
        let mut colors_seen: Vec<usize> = Vec::new();
        for chunk in flat[1..].chunks(3) {
            let (c, k, r) = (chunk[0] as usize, chunk[1] as usize, chunk[2] as usize);
            if !colors_seen.contains(&c) {
                colors_seen.push(c);
            }
            if c == my_color {
                group.push((k, r));
            }
        }
        colors_seen.sort_unstable();
        let color_idx = colors_seen
            .iter()
            .position(|&c| c == my_color)
            .expect("own color present");
        group.sort_unstable();
        let members: Vec<u32> = group.iter().map(|&(_, pr)| self.members[pr]).collect();
        let my_world = self.ctx.world_rank as u32;
        let my_idx = members
            .iter()
            .position(|&w| w == my_world)
            .expect("self in group");
        NativeComm {
            shared: Arc::clone(&self.shared),
            ctx: Rc::clone(&self.ctx),
            id: base + color_idx as u64,
            members: Arc::new(members),
            my_idx,
        }
    }
}

/// Options for a native cluster run.
#[derive(Clone, Debug)]
pub struct NativeOptions {
    /// Real-time cap on a blocking receive before the watchdog panics
    /// with a diagnostic dump instead of hanging the process. `None`
    /// disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// Capacity of each rank's always-on flight recorder (most recent
    /// spans, overwrite-oldest). 0 disables recording.
    pub flight_capacity: usize,
    /// When set, a stall watchdog drains every rank's flight recorder
    /// into a Perfetto trace at this path before panicking.
    pub flight_dump_path: Option<PathBuf>,
}

impl Default for NativeOptions {
    fn default() -> Self {
        NativeOptions {
            stall_timeout: Some(Duration::from_secs(30)),
            flight_capacity: 512,
            flight_dump_path: None,
        }
    }
}

/// Run `f` on `nranks` real rank threads and collect per-rank results and
/// statistics. The returned report has the same shape as a simulator run;
/// its `makespan` is the real wall-clock of the slowest rank and its
/// traces are empty (tracing is sim-private). The per-rank flight
/// recorders are always on and their contents land in `report.flight`.
pub fn run<F, R>(nranks: usize, model: MachineModel, opts: &NativeOptions, f: F) -> RunReport<R>
where
    F: Fn(NativeComm) -> R + Send + Sync,
    R: Send,
{
    assert!(nranks > 0);
    let shared = Arc::new(ClusterShared {
        mailboxes: (0..nranks)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::with_capacity(1024)),
                cv: Condvar::new(),
            })
            .collect(),
        model: Arc::new(model),
        epoch: Instant::now(),
        next_comm_id: AtomicU64::new(1),
        stall_timeout: opts.stall_timeout,
        // Rings fully reserved at setup: steady-state records never
        // allocate (the alloc audit covers the native serving path).
        flight: (0..nranks)
            .map(|_| Arc::new(Mutex::new(FlightRecorder::new(opts.flight_capacity))))
            .collect(),
        flight_dump_path: opts.flight_dump_path.clone(),
    });
    let world_members: Arc<Vec<u32>> = Arc::new((0..nranks as u32).collect());

    type RankOut<R> = (RankStats, R, Metrics);
    let mut out: Vec<Option<RankOut<R>>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let shared = Arc::clone(&shared);
            let members = Arc::clone(&world_members);
            let f = &f;
            let h = std::thread::Builder::new()
                .name(format!("nrank-{rank}"))
                .stack_size(1 << 20)
                .spawn_scoped(scope, move || {
                    let ctx = Rc::new(RankCtx {
                        world_rank: rank,
                        stats: RefCell::new(RankStats::new(rank)),
                        last_stamp: Cell::new(shared.elapsed()),
                        coll_seq: RefCell::new(HashMap::new()),
                        metrics: RefCell::new(Metrics::new()),
                        sent_seq: Cell::new(0),
                        flight: Arc::clone(&shared.flight[rank]),
                    });
                    let world = NativeComm {
                        shared: Arc::clone(&shared),
                        ctx: Rc::clone(&ctx),
                        id: 0,
                        members,
                        my_idx: rank,
                    };
                    let r = f(world);
                    let mut stats = ctx.stats.borrow().clone();
                    stats.final_clock = shared.elapsed();
                    let metrics = ctx.metrics.borrow().clone();
                    (stats, r, metrics)
                })
                .expect("spawn rank thread");
            handles.push(h);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });

    let mut stats = Vec::with_capacity(nranks);
    let mut results = Vec::with_capacity(nranks);
    let mut metrics = Metrics::new();
    for slot in out {
        let (s, r, m) = slot.expect("every rank completed");
        stats.push(s);
        results.push(r);
        metrics.merge_from(&m);
    }
    let mut rep = RunReport::new(stats, results);
    rep.flight = shared.flight.iter().map(|f| f.lock().drain()).collect();
    rep.metrics = metrics;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> MachineModel {
        MachineModel::uniform("toy", 1e9, 1e-6, 1e9, 4)
    }

    #[test]
    fn ping_pong_delivers_payloads() {
        let rep = run(2, toy_model(), &NativeOptions::default(), |c| {
            if c.rank() == 0 {
                Transport::send(&c, 1, 7, &[1.0, 2.0], Category::XyComm);
                let m = Transport::recv(&c, Some(1), Some(8), Category::XyComm);
                assert_eq!(&m.payload[..], &[3.0]);
            } else {
                let m = Transport::recv(&c, Some(0), Some(7), Category::XyComm);
                assert_eq!(&m.payload[..], &[1.0, 2.0]);
                Transport::send(&c, 0, 8, &[3.0], Category::XyComm);
            }
            c.now()
        });
        assert!(rep.makespan > 0.0, "real time passed");
        assert_eq!(rep.metrics.counter("msgs.received"), 2);
    }

    #[test]
    fn fifo_non_overtaking_per_source() {
        let rep = run(2, toy_model(), &NativeOptions::default(), |c| {
            if c.rank() == 0 {
                Transport::send(&c, 1, 5, &[1.0], Category::XyComm);
                Transport::send(&c, 1, 5, &[2.0], Category::XyComm);
                Transport::send(&c, 1, 5, &[3.0], Category::XyComm);
                Vec::new()
            } else {
                (0..3)
                    .map(|_| Transport::recv(&c, Some(0), Some(5), Category::XyComm).payload[0])
                    .collect::<Vec<f64>>()
            }
        });
        assert_eq!(rep.results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_masked_receives_leave_other_phases_queued() {
        let rep = run(2, toy_model(), &NativeOptions::default(), |c| {
            if c.rank() == 0 {
                // Epoch 1 message sent *before* the epoch 0 message.
                Transport::send(&c, 1, (1 << 48) | 7, &[10.0], Category::XyComm);
                Transport::send(&c, 1, 7, &[1.0], Category::XyComm);
                (0.0, 0.0)
            } else {
                let mask = !((1u64 << 48) - 1);
                let e0 = c.recv_tag_masked(mask, 0, Category::XyComm).payload[0];
                let e1 = c.recv_tag_masked(mask, 1 << 48, Category::XyComm).payload[0];
                (e0, e1)
            }
        });
        assert_eq!(rep.results[1], (1.0, 10.0));
    }

    /// The reduction order is pinned to the simulator's: allreduce results
    /// must be bit-identical between the two backends.
    #[test]
    fn allreduce_bits_match_the_simulator() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            // Values chosen so summation order matters in f64.
            let contrib = |r: usize| [1.0 + 1e-16 * r as f64, (r as f64 + 0.1).ln(), 3e300];
            let native = run(p, toy_model(), &NativeOptions::default(), move |c| {
                let mut v = contrib(c.rank());
                c.allreduce_sum(&mut v, Category::ZComm);
                v
            });
            let sim = simgrid::run(
                p,
                toy_model(),
                &simgrid::ClusterOptions::default(),
                move |c| {
                    let mut v = contrib(c.rank());
                    c.allreduce_sum(&mut v, Category::ZComm);
                    v
                },
            );
            for r in 0..p {
                assert_eq!(
                    native.results[r].map(f64::to_bits),
                    sim.results[r].map(f64::to_bits),
                    "rank {r} of {p}"
                );
            }
        }
    }

    #[test]
    fn split_creates_disjoint_comms() {
        let rep = run(6, toy_model(), &NativeOptions::default(), |c| {
            let color = c.rank() % 2;
            let sub = c.split(color, c.rank());
            let mut v = [c.rank() as f64];
            sub.allreduce_sum(&mut v, Category::ZComm);
            (sub.rank(), sub.size(), v[0])
        });
        for wr in 0..6 {
            let (sr, ss, sum) = rep.results[wr];
            assert_eq!(ss, 3);
            assert_eq!(sr, wr / 2);
            assert_eq!(sum, if wr % 2 == 0 { 6.0 } else { 9.0 });
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let rep = run(5, toy_model(), &NativeOptions::default(), |c| {
            let mut v = if c.rank() == 3 { [42.0] } else { [0.0] };
            c.bcast(3, &mut v, Category::XyComm);
            v[0]
        });
        assert!(rep.results.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn category_times_tile_the_rank_runtime() {
        let rep = run(2, toy_model(), &NativeOptions::default(), |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                c.compute(0.0, Category::Flop); // charges the real 20ms
                Transport::send(&c, 1, 1, &[1.0], Category::XyComm);
            } else {
                Transport::recv(&c, Some(0), Some(1), Category::ZComm);
            }
        });
        let flop = rep.stats[0].time[Category::Flop as usize];
        assert!(flop >= 0.015, "measured compute time charged: {flop}");
        // Rank 1 blocked on the receive for ~as long; charged to ZComm.
        let z = rep.stats[1].time[Category::ZComm as usize];
        assert!(z >= 0.015, "blocked receive time charged: {z}");
        assert!(rep.makespan >= 0.015);
    }

    #[test]
    fn flight_recorder_captures_native_spans() {
        let rep = run(2, toy_model(), &NativeOptions::default(), |c| {
            if c.rank() == 0 {
                c.compute(0.0, Category::Flop);
                Transport::send(&c, 1, 7, &[1.0, 2.0], Category::XyComm);
            } else {
                Transport::recv(&c, Some(0), Some(7), Category::XyComm);
            }
        });
        assert_eq!(rep.flight.len(), 2);
        let kinds: Vec<EventKind> = rep.flight[0].iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Compute));
        assert!(kinds.contains(&EventKind::Send));
        assert!(rep.flight[1].iter().any(|e| e.kind == EventKind::Recv));
        // Send/recv pair by sequence id, same as sim traces.
        let send_seq = rep.flight[0]
            .iter()
            .find(|e| e.kind == EventKind::Send)
            .and_then(|e| e.msg.map(|m| m.seq))
            .unwrap();
        assert!(rep.flight[1]
            .iter()
            .any(|e| e.msg.is_some_and(|m| m.seq == send_seq)));
    }

    #[test]
    fn stall_watchdog_dumps_flight_recorder() {
        let dump = std::env::temp_dir().join("comm_native_stall_flight_test.json");
        let _ = std::fs::remove_file(&dump);
        let opts = NativeOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            flight_dump_path: Some(dump.clone()),
            ..NativeOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                // Real traffic first so both ranks hold flight spans.
                let mut v = [c.rank() as f64];
                c.allreduce_sum(&mut v, Category::ZComm);
                if c.rank() == 0 {
                    // Never satisfied: the watchdog fires and dumps.
                    Transport::recv(&c, Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic");
        drop(err);
        let json = std::fs::read_to_string(&dump).expect("flight dump written on stall");
        let v: serde_json::Value = serde_json::from_str(&json).expect("dump is valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde_json::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        for rank in 0..2i64 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph") == Some(&serde_json::Value::Str("X".into()))
                        && e.get("tid") == Some(&serde_json::Value::Int(rank))
                }),
                "rank {rank} has no spans in the stall dump"
            );
        }
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn watchdog_reports_stalled_ranks_instead_of_hanging() {
        let opts = NativeOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            ..NativeOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                if c.rank() == 0 {
                    // Tag 99 is never sent: rank 0 stalls forever.
                    Transport::recv(&c, Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic, not hang");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("watchdog"), "diagnostic missing: {msg}");
        assert!(msg.contains("world rank 0"), "diagnostic missing: {msg}");
    }
}
