//! Property-based tests of the sparse/dense substrate.

use proptest::prelude::*;
use sparse::dense::{gemm, gemv, trsm_lower, trsm_upper, DenseMat};
use sparse::{CooMatrix, CsrMatrix};

fn coo_strategy(n: usize, nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..nnz).prop_map(move |trips| {
        let mut coo = CooMatrix::new(n);
        for i in 0..n {
            coo.push(i, i, 10.0);
        }
        for (i, j, v) in trips {
            coo.push(i, j, v);
        }
        coo.to_csr()
    })
}

proptest! {
    /// Transposing twice is the identity; transposition preserves every
    /// entry with indices swapped.
    #[test]
    fn transpose_involution(a in coo_strategy(12, 40)) {
        let t = a.transpose();
        prop_assert_eq!(&t.transpose(), &a);
        for i in 0..a.nrows() {
            for (j, v) in a.row_iter(i) {
                prop_assert_eq!(t.get(j, i), v);
            }
        }
    }

    /// Symmetric permutation preserves entries: B[inv(i)][inv(j)] = A[i][j].
    #[test]
    fn permute_sym_preserves_entries(a in coo_strategy(10, 30), seed in 0u64..500) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = a.nrows();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let b = a.permute_sym(&perm);
        let mut inv = vec![0usize; n];
        for (newi, &oldi) in perm.iter().enumerate() {
            inv[oldi] = newi;
        }
        for i in 0..n {
            for (j, v) in a.row_iter(i) {
                prop_assert_eq!(b.get(inv[i], inv[j]), v);
            }
        }
    }

    /// spmv of the symmetrized pattern equals spmv of the original (added
    /// entries are explicit zeros).
    #[test]
    fn symmetrized_pattern_is_numerically_equal(a in coo_strategy(9, 25)) {
        let s = a.symmetrized_pattern();
        let x: Vec<f64> = (0..9).map(|i| (i as f64).sin() + 2.0).collect();
        let mut y1 = vec![0.0; 9];
        let mut y2 = vec![0.0; 9];
        sparse::spmv(&a, &x, &mut y1);
        sparse::spmv(&s, &x, &mut y2);
        prop_assert!(sparse::max_abs_diff(&y1, &y2) < 1e-12);
    }

    /// GEMM equals the naive triple loop.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..6, k in 1usize..6, n in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0; m * n];
        gemm(1.0, &a, m, k, &b, n, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0;
                for t in 0..k {
                    want += a[i + t * m] * b[t + j * k];
                }
                prop_assert!((c[i + j * m] - want).abs() < 1e-12);
            }
        }
    }

    /// trsm ∘ multiply round-trips for both triangles.
    #[test]
    fn triangular_solve_roundtrip(n in 1usize..8, seed in 0u64..1000) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut l = vec![0.0; n * n];
        let mut u = vec![0.0; n * n];
        for j in 0..n {
            l[j + j * n] = 2.0 + rng.gen::<f64>();
            u[j + j * n] = 2.0 + rng.gen::<f64>();
            for i in j + 1..n {
                l[i + j * n] = rng.gen_range(-1.0..1.0);
                u[j + i * n] = rng.gen_range(-1.0..1.0);
            }
        }
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        // b = L x, then solve.
        let mut b = vec![0.0; n];
        gemv(1.0, &l, n, n, &x, &mut b);
        trsm_lower(&l, n, &mut b, 1);
        prop_assert!(sparse::max_abs_diff(&b, &x) < 1e-9);
        let mut b = vec![0.0; n];
        gemv(1.0, &u, n, n, &x, &mut b);
        trsm_upper(&u, n, &mut b, 1);
        prop_assert!(sparse::max_abs_diff(&b, &x) < 1e-9);
    }

    /// inverse(M) · M = I for random diagonally dominant matrices.
    #[test]
    fn inverse_roundtrip(n in 1usize..8, seed in 0u64..1000) {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut m = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                m.set(i, j, if i == j { n as f64 + 1.0 } else { rng.gen_range(-1.0..1.0) });
            }
        }
        let inv = m.inverse().unwrap();
        let mut prod = vec![0.0; n * n];
        gemm(1.0, inv.data(), n, n, m.data(), n, &mut prod);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[i + j * n] - want).abs() < 1e-9);
            }
        }
    }

    /// Matrix Market round-trip for arbitrary matrices.
    #[test]
    fn mtx_roundtrip(a in coo_strategy(8, 20)) {
        let mut buf = Vec::new();
        sparse::io::write_matrix_market(&mut buf, &a).unwrap();
        let b = sparse::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a, b);
    }
}
