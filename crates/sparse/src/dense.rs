//! Column-major dense block kernels.
//!
//! Supernodal solvers spend their floating-point time in small dense
//! GEMV/GEMM/TRSM operations on supernode panels. These kernels are written
//! against raw column-major slices so the factorization and the distributed
//! solvers can call them on sub-panels without copying.

/// A small owned column-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMat {
    nrow: usize,
    ncol: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// Zero matrix of the given shape.
    pub fn zeros(nrow: usize, ncol: usize) -> Self {
        DenseMat {
            nrow,
            ncol,
            data: vec![0.0; nrow * ncol],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMat::zeros(n, n);
        for i in 0..n {
            m.data[i + i * n] = 1.0;
        }
        m
    }

    /// Build from a column-major data vector.
    pub fn from_col_major(nrow: usize, ncol: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrow * ncol);
        DenseMat { nrow, ncol, data }
    }

    /// Number of rows.
    pub fn nrow(&self) -> usize {
        self.nrow
    }

    /// Number of columns.
    pub fn ncol(&self) -> usize {
        self.ncol
    }

    /// Column-major backing slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable column-major backing slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrow && j < self.ncol);
        self.data[i + j * self.nrow]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrow && j < self.ncol);
        self.data[i + j * self.nrow] = v;
    }

    /// Invert a small square matrix by Gauss–Jordan elimination with partial
    /// pivoting. Returns `None` if the matrix is numerically singular.
    ///
    /// The paper precomputes `L(K,K)⁻¹` / `U(K,K)⁻¹` for all diagonal blocks;
    /// this is the kernel that does it.
    pub fn inverse(&self) -> Option<DenseMat> {
        assert_eq!(self.nrow, self.ncol, "inverse requires a square matrix");
        let n = self.nrow;
        let mut a = self.data.clone();
        let mut inv = DenseMat::identity(n);
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut best = a[col + col * n].abs();
            for r in col + 1..n {
                let v = a[r + col * n].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < f64::MIN_POSITIVE.sqrt() {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col + j * n, piv + j * n);
                    inv.data.swap(col + j * n, piv + j * n);
                }
            }
            let d = a[col + col * n];
            let dinv = 1.0 / d;
            for j in 0..n {
                a[col + j * n] *= dinv;
                inv.data[col + j * n] *= dinv;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[r + col * n];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[r + j * n] -= f * a[col + j * n];
                    inv.data[r + j * n] -= f * inv.data[col + j * n];
                }
            }
        }
        Some(inv)
    }
}

/// `y ← y + alpha * A x` with `A` column-major `m × n`.
pub fn gemv(alpha: f64, a: &[f64], m: usize, n: usize, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    for j in 0..n {
        let xv = alpha * x[j];
        if xv == 0.0 {
            continue;
        }
        let col = &a[j * m..(j + 1) * m];
        for i in 0..m {
            y[i] += xv * col[i];
        }
    }
}

/// `C ← C + alpha * A B` with `A` col-major `m × k`, `B` col-major `k × n`,
/// `C` col-major `m × n`. This is the multi-RHS (GEMM) path of the paper.
pub fn gemm(alpha: f64, a: &[f64], m: usize, k: usize, b: &[f64], n: usize, c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for j in 0..n {
        let bcol = &b[j * k..(j + 1) * k];
        let ccol = &mut c[j * m..(j + 1) * m];
        for p in 0..k {
            let bv = alpha * bcol[p];
            if bv == 0.0 {
                continue;
            }
            let acol = &a[p * m..(p + 1) * m];
            for i in 0..m {
                ccol[i] += bv * acol[i];
            }
        }
    }
}

/// Solve `L X = B` in place, with `L` col-major `n × n` lower-triangular
/// (non-unit diagonal) and `B` col-major `n × nrhs`.
pub fn trsm_lower(l: &[f64], n: usize, b: &mut [f64], nrhs: usize) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n * nrhs);
    for r in 0..nrhs {
        let x = &mut b[r * n..(r + 1) * n];
        for j in 0..n {
            let xj = x[j] / l[j + j * n];
            x[j] = xj;
            if xj == 0.0 {
                continue;
            }
            let col = &l[j * n..(j + 1) * n];
            for i in j + 1..n {
                x[i] -= xj * col[i];
            }
        }
    }
}

/// Solve `U X = B` in place, with `U` col-major `n × n` upper-triangular
/// (non-unit diagonal) and `B` col-major `n × nrhs`.
pub fn trsm_upper(u: &[f64], n: usize, b: &mut [f64], nrhs: usize) {
    debug_assert_eq!(u.len(), n * n);
    debug_assert_eq!(b.len(), n * nrhs);
    for r in 0..nrhs {
        let x = &mut b[r * n..(r + 1) * n];
        for j in (0..n).rev() {
            let xj = x[j] / u[j + j * n];
            x[j] = xj;
            if xj == 0.0 {
                continue;
            }
            let col = &u[j * n..(j + 1) * n];
            for i in 0..j {
                x[i] -= xj * col[i];
            }
        }
    }
}

/// `Y ← alpha * A X + Y` where `A` is `m × k` col-major and `X`, `Y` are
/// multi-RHS col-major blocks (`k × nrhs` and `m × nrhs`).
pub fn gemm_nrhs(alpha: f64, a: &[f64], m: usize, k: usize, x: &[f64], y: &mut [f64], nrhs: usize) {
    gemm(alpha, a, m, k, x, nrhs, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn gemv_small() {
        // A = [1 3; 2 4] col-major [1,2,3,4]; x = [1, 1]
        let a = [1.0, 2.0, 3.0, 4.0];
        let x = [1.0, 1.0];
        let mut y = [0.5, 0.5];
        gemv(2.0, &a, 2, 2, &x, &mut y);
        assert!(approx(y[0], 0.5 + 2.0 * 4.0));
        assert!(approx(y[1], 0.5 + 2.0 * 6.0));
    }

    #[test]
    fn gemm_matches_repeated_gemv() {
        let m = 3;
        let k = 2;
        let n = 2;
        let a: Vec<f64> = (0..m * k).map(|i| i as f64 * 0.7 - 1.0).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64).cos()).collect();
        let mut c1 = vec![0.0; m * n];
        gemm(1.5, &a, m, k, &b, n, &mut c1);
        let mut c2 = vec![0.0; m * n];
        for j in 0..n {
            gemv(
                1.5,
                &a,
                m,
                k,
                &b[j * k..(j + 1) * k],
                &mut c2[j * m..(j + 1) * m],
            );
        }
        for (x, y) in c1.iter().zip(&c2) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn trsm_lower_solves() {
        // L = [2 0; 1 4]
        let l = [2.0, 1.0, 0.0, 4.0];
        let mut b = [2.0, 9.0]; // x = [1, 2]
        trsm_lower(&l, 2, &mut b, 1);
        assert!(approx(b[0], 1.0));
        assert!(approx(b[1], 2.0));
    }

    #[test]
    fn trsm_upper_solves() {
        // U = [2 1; 0 4] col-major [2,0,1,4]
        let u = [2.0, 0.0, 1.0, 4.0];
        let mut b = [4.0, 8.0]; // x = [1, 2]
        trsm_upper(&u, 2, &mut b, 1);
        assert!(approx(b[0], 1.0));
        assert!(approx(b[1], 2.0));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let m = DenseMat::from_col_major(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 1.0, 0.0, 1.0, 6.0]);
        let inv = m.inverse().expect("nonsingular");
        let mut prod = vec![0.0; 9];
        gemm(1.0, inv.data(), 3, 3, m.data(), 3, &mut prod);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i + j * 3] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let m = DenseMat::zeros(2, 2);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_needs_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let m = DenseMat::from_col_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = m.inverse().expect("permutation is invertible");
        assert!(approx(inv.get(0, 1), 1.0));
        assert!(approx(inv.get(1, 0), 1.0));
        assert!(approx(inv.get(0, 0), 0.0));
    }

    #[test]
    fn trsm_multi_rhs() {
        let l = [3.0, 1.0, 0.0, 2.0];
        let mut b = [3.0, 3.0, 6.0, 4.0]; // rhs0 x=[1,1], rhs1 x=[2,1]
        trsm_lower(&l, 2, &mut b, 2);
        assert!(approx(b[0], 1.0) && approx(b[1], 1.0));
        assert!(approx(b[2], 2.0) && approx(b[3], 1.0));
    }
}
