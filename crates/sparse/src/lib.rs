//! Sparse-matrix substrate for the SpTRSV reproduction.
//!
//! This crate provides the data-structure layer everything else is built on:
//!
//! * [`CooMatrix`] — triplet assembly format used by the generators.
//! * [`CsrMatrix`] — compressed sparse rows, the workhorse exchange format
//!   (the symmetric matrices used throughout the paper make CSR and CSC
//!   interchangeable up to transposition).
//! * [`dense`] — column-major dense block kernels (GEMV/GEMM/TRSM and small
//!   inverses) used by the supernodal factorization and the solvers.
//! * [`gen`] — synthetic analogs of the paper's Table 1 test matrices
//!   (SuiteSparse is not available offline; see DESIGN.md §2 for the
//!   substitution argument).
//! * [`io`] — Matrix Market reader/writer, so the solver runs on the real
//!   SuiteSparse files when they are available.
//!
//! All matrices are square, real (`f64`), zero-indexed, and — matching the
//! paper's simplifying assumption — structurally symmetric.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod io;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMat;

/// Multiply `y = A * x` for CSR `A` and a single dense vector.
///
/// Panics if dimensions disagree.
pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len());
    assert_eq!(a.nrows(), y.len());
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, v) in a.row_iter(i) {
            acc += v * x[j];
        }
        *yi = acc;
    }
}

/// Multiply `Y = A * X` for CSR `A` and `nrhs` right-hand sides stored
/// column-major in `x` (`n * nrhs` entries).
pub fn spmm(a: &CsrMatrix, x: &[f64], y: &mut [f64], nrhs: usize) {
    let n = a.nrows();
    assert_eq!(x.len(), a.ncols() * nrhs);
    assert_eq!(y.len(), n * nrhs);
    for r in 0..nrhs {
        spmv(a, &x[r * n..(r + 1) * n], &mut y[r * n..(r + 1) * n]);
    }
}

/// Relative residual `‖Ax − b‖∞ / ‖b‖∞` for one or more column-major RHSs.
pub fn rel_residual_inf(a: &CsrMatrix, x: &[f64], b: &[f64], nrhs: usize) -> f64 {
    let n = a.nrows();
    let mut ax = vec![0.0; n * nrhs];
    spmm(a, x, &mut ax, nrhs);
    let mut num: f64 = 0.0;
    let mut den: f64 = 0.0;
    for k in 0..n * nrhs {
        num = num.max((ax[k] - b[k]).abs());
        den = den.max(b[k].abs());
    }
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Maximum absolute entrywise difference between two equally sized vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_identity() {
        let mut coo = CooMatrix::new(3);
        for i in 0..3 {
            coo.push(i, i, 1.0);
        }
        let a = coo.to_csr();
        let x = vec![3.0, -1.0, 2.0];
        let mut y = vec![0.0; 3];
        spmv(&a, &x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let mut coo = CooMatrix::new(2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 4.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        // x = [1, 1] => b = [3, 5]
        let x = vec![1.0, 1.0];
        let b = vec![3.0, 5.0];
        assert!(rel_residual_inf(&a, &x, &b, 1) < 1e-15);
    }

    #[test]
    fn spmm_matches_spmv_per_column() {
        let a = gen::poisson2d_5pt(4, 4);
        let n = a.nrows();
        let x: Vec<f64> = (0..2 * n).map(|k| (k as f64).sin()).collect();
        let mut y = vec![0.0; 2 * n];
        spmm(&a, &x, &mut y, 2);
        for r in 0..2 {
            let mut yr = vec![0.0; n];
            spmv(&a, &x[r * n..(r + 1) * n], &mut yr);
            assert_eq!(&y[r * n..(r + 1) * n], &yr[..]);
        }
    }
}
