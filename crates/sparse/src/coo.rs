//! Triplet (COO) assembly format.

use crate::csr::CsrMatrix;

/// A square sparse matrix under assembly, stored as `(row, col, value)`
/// triplets. Duplicate entries are summed on conversion, matching the usual
/// finite-element assembly convention.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    n: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Create an empty `n × n` triplet matrix.
    pub fn new(n: usize) -> Self {
        CooMatrix {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create an empty matrix with room for `cap` triplets.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        CooMatrix {
            n,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored triplets (before duplicate summation).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry. Panics if out of range.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(row < self.n && col < self.n, "entry out of range");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append `val` at `(row, col)` and `(col, row)`; off-diagonal helper for
    /// structurally (and here numerically) symmetric assembly.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Convert to CSR, summing duplicates and sorting column indices within
    /// each row.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n;
        let mut row_counts = vec![0usize; n + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..n {
            row_counts[i + 1] += row_counts[i];
        }
        let nnz = self.vals.len();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = row_counts.clone();
        for k in 0..nnz {
            let r = self.rows[k];
            let p = cursor[r];
            col_idx[p] = self.cols[k];
            values[p] = self.vals[k];
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates in place.
        let mut out_ptr = vec![0usize; n + 1];
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            scratch.clear();
            for p in row_counts[i]..row_counts[i + 1] {
                scratch.push((col_idx[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut last: Option<usize> = None;
            for &(c, v) in scratch.iter() {
                if last == Some(c) {
                    *out_vals.last_mut().expect("duplicate follows an entry") += v;
                } else {
                    out_cols.push(c);
                    out_vals.push(v);
                    last = Some(c);
                }
            }
            out_ptr[i + 1] = out_cols.len();
        }
        CsrMatrix::from_parts(n, out_ptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, -1.0);
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 3.5);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn rows_are_sorted() {
        let mut coo = CooMatrix::new(3);
        coo.push(0, 2, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 3.0);
        let a = coo.to_csr();
        let cols: Vec<usize> = a.row_iter(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut coo = CooMatrix::new(3);
        coo.push_sym(0, 2, 4.0);
        coo.push_sym(1, 1, 7.0);
        let a = coo.to_csr();
        assert_eq!(a.get(0, 2), 4.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 7.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut coo = CooMatrix::new(2);
        coo.push(2, 0, 1.0);
    }
}
