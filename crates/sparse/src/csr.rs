//! Compressed sparse row storage.

/// A square sparse matrix in CSR form with sorted, duplicate-free column
/// indices in each row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw parts, validating the CSR invariants (monotone row
    /// pointers, in-range and strictly increasing column indices per row).
    pub fn from_parts(
        n: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n + 1, "row_ptr length must be n+1");
        assert_eq!(row_ptr[0], 0);
        assert_eq!(*row_ptr.last().expect("nonempty row_ptr"), col_idx.len());
        assert_eq!(col_idx.len(), values.len());
        for i in 0..n {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!(last < n, "column index out of range");
            }
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Matrix dimension (rows == cols).
    pub fn nrows(&self) -> usize {
        self.n
    }

    /// Matrix dimension (rows == cols).
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `n + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, concatenated row by row.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values, concatenated row by row.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Iterate `(col, value)` over row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(i)
            .iter()
            .copied()
            .zip(self.row_vals(i).iter().copied())
    }

    /// Entry lookup by binary search; zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&j) {
            Ok(p) => self.row_vals(i)[p],
            Err(_) => 0.0,
        }
    }

    /// Transpose (for a structurally symmetric matrix this permutes values
    /// only).
    pub fn transpose(&self) -> CsrMatrix {
        let n = self.n;
        let mut cnt = vec![0usize; n + 1];
        for &c in &self.col_idx {
            cnt[c + 1] += 1;
        }
        for i in 0..n {
            cnt[i + 1] += cnt[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cur = cnt.clone();
        for i in 0..n {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[p];
                let q = cur[c];
                col_idx[q] = i;
                values[q] = self.values[p];
                cur[c] += 1;
            }
        }
        CsrMatrix::from_parts(n, cnt, col_idx, values)
    }

    /// True if the *pattern* is symmetric (values may differ).
    pub fn pattern_is_symmetric(&self) -> bool {
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// Symmetrize the pattern: return a matrix with pattern `A ∪ Aᵀ`, where
    /// entries present only in `Aᵀ` get value zero.
    pub fn symmetrized_pattern(&self) -> CsrMatrix {
        let t = self.transpose();
        let n = self.n;
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..n {
            let (ac, av) = (self.row_cols(i), self.row_vals(i));
            let tc = t.row_cols(i);
            let (mut p, mut q) = (0, 0);
            while p < ac.len() || q < tc.len() {
                let a = ac.get(p).copied().unwrap_or(usize::MAX);
                let b = tc.get(q).copied().unwrap_or(usize::MAX);
                if a < b {
                    col_idx.push(a);
                    values.push(av[p]);
                    p += 1;
                } else if b < a {
                    col_idx.push(b);
                    values.push(0.0);
                    q += 1;
                } else {
                    col_idx.push(a);
                    values.push(av[p]);
                    p += 1;
                    q += 1;
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix::from_parts(n, row_ptr, col_idx, values)
    }

    /// Apply a symmetric permutation: `B = P A Pᵀ`, i.e.
    /// `B[perm_inv[i]][perm_inv[j]] = A[i][j]` where `perm[new] = old`.
    pub fn permute_sym(&self, perm: &[usize]) -> CsrMatrix {
        let n = self.n;
        assert_eq!(perm.len(), n);
        let mut inv = vec![0usize; n];
        for (newi, &oldi) in perm.iter().enumerate() {
            inv[oldi] = newi;
        }
        let mut row_ptr = vec![0usize; n + 1];
        for newi in 0..n {
            let oldi = perm[newi];
            row_ptr[newi + 1] = row_ptr[newi] + (self.row_ptr[oldi + 1] - self.row_ptr[oldi]);
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for newi in 0..n {
            let oldi = perm[newi];
            scratch.clear();
            for (c, v) in self.row_iter(oldi) {
                scratch.push((inv[c], v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let base = row_ptr[newi];
            for (k, &(c, v)) in scratch.iter().enumerate() {
                col_idx[base + k] = c;
                values[base + k] = v;
            }
        }
        CsrMatrix::from_parts(n, row_ptr, col_idx, values)
    }

    /// Fill density `nnz / n²`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n as f64 * self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        // [ 1 2 0 ]
        // [ 0 3 4 ]
        // [ 5 0 6 ]
        let mut c = CooMatrix::new(3);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(1, 1, 3.0);
        c.push(1, 2, 4.0);
        c.push(2, 0, 5.0);
        c.push(2, 2, 6.0);
        c.to_csr()
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_moves_entries() {
        let a = sample().transpose();
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(0, 2), 5.0);
        assert_eq!(a.get(2, 1), 4.0);
    }

    #[test]
    fn pattern_symmetry_detection() {
        assert!(!sample().pattern_is_symmetric());
        let s = sample().symmetrized_pattern();
        assert!(s.pattern_is_symmetric());
        // Symmetrization preserves original values and adds explicit zeros.
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 0), 0.0);
        assert_eq!(s.get(2, 0), 5.0);
        assert_eq!(s.get(0, 2), 0.0);
    }

    #[test]
    fn permute_sym_identity_is_noop() {
        let a = sample();
        let p: Vec<usize> = (0..3).collect();
        assert_eq!(a.permute_sym(&p), a);
    }

    #[test]
    fn permute_sym_swap() {
        let a = sample();
        // perm[new] = old: new order (2, 1, 0)
        let b = a.permute_sym(&[2, 1, 0]);
        assert_eq!(b.get(0, 0), 6.0); // old (2,2)
        assert_eq!(b.get(0, 2), 5.0); // old (2,0)
        assert_eq!(b.get(2, 1), 2.0); // old (0,1)
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        for k in 0..4 {
            assert_eq!(i.get(k, k), 1.0);
        }
    }

    #[test]
    fn get_missing_entry_is_zero() {
        assert_eq!(sample().get(0, 2), 0.0);
    }
}
