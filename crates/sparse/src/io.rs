//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's public matrices live in the SuiteSparse collection as Matrix
//! Market files. This module lets a user of this library run the solver on
//! the *real* matrices when they have them (`coordinate real
//! general|symmetric` formats), instead of the offline synthetic analogs.

use crate::{CooMatrix, CsrMatrix};
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Read a square sparse matrix in Matrix Market coordinate format
/// (`real`/`integer`/`pattern`, `general` or `symmetric`). Pattern entries
/// get value 1. Symmetric storage is expanded to both triangles.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix, MtxError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if h.len() < 4 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_err("missing %%MatrixMarket matrix header"));
    }
    if h[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let field = h[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type {field}")));
    }
    let symmetry = h.get(4).map(|s| s.as_str()).unwrap_or("general");
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry {symmetry}")));
    }

    // Size line (skipping comments).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    if nrows != ncols {
        return Err(parse_err("only square matrices are supported"));
    }

    let mut coo = CooMatrix::with_capacity(
        nrows,
        if symmetry == "symmetric" {
            2 * nnz
        } else {
            nnz
        },
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = match field {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?,
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("entry ({i},{j}) out of range")));
        }
        coo.push(i - 1, j - 1, v);
        if symmetry == "symmetric" && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<CsrMatrix, MtxError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(std::io::BufReader::new(f))
}

/// Write a matrix in Matrix Market coordinate real general format.
pub fn write_matrix_market<W: Write>(mut w: W, a: &CsrMatrix) -> Result<(), MtxError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sptrsv3d")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        for (j, v) in a.row_iter(i) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

/// Write a Matrix Market file to disk.
pub fn write_matrix_market_file(path: &std::path::Path, a: &CsrMatrix) -> Result<(), MtxError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(std::io::BufWriter::new(f), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_general() {
        let a = gen::poisson2d_9pt(6, 5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_storage_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 2.0\n\
                    3 3 2.0\n\
                    3 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(2, 0), -1.0);
        assert_eq!(a.get(0, 2), -1.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn pattern_entries_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    2 2 3\n\
                    1 1\n\
                    2 2\n\
                    1 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % header comment\n\
                    \n\
                    2 2 2\n\
                    % entry comment\n\
                    1 1 1.0\n\
                    2 2 4.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn rejects_rectangular() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_matrix_market("1 1 1\n1 1 1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = gen::fusion_band(40, 3, 5, 1);
        let dir = std::env::temp_dir().join("sptrsv_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market_file(&path, &a).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
