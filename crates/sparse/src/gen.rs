//! Synthetic analogs of the paper's Table 1 test matrices.
//!
//! The evaluation matrices come from the SuiteSparse collection (plus two
//! private ones), which is unavailable offline. Each generator below
//! reproduces the *structural regime* the paper relies on — see DESIGN.md §2:
//!
//! | Paper matrix       | Analog here        | Regime                          |
//! |--------------------|--------------------|---------------------------------|
//! | s2D9pt2048         | [`poisson2d_9pt`]  | 2D PDE, low fill                |
//! | nlpkkt80           | [`kkt3d`]          | 3D-structured optimization KKT  |
//! | ldoor              | [`elasticity3d`]   | 3D structural, 3 dofs/node      |
//! | dielFilterV3real   | [`wave3d_27pt`]    | 3D wave / Maxwell, wide stencil |
//! | Ga19As19H42        | [`chem_cliques`]   | quantum chemistry, dense LU     |
//! | s1_mat_0_253872    | [`fusion_band`]    | fusion: band + long-range       |
//!
//! All generators produce numerically symmetric, strictly diagonally
//! dominant matrices so that LU factorization without pivoting (the paper's
//! static-pivoting setting) is stable.

use crate::{CooMatrix, CsrMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Finalize: set each diagonal to `1 + Σ|offdiag|` so the matrix is strictly
/// diagonally dominant, then convert to CSR.
fn finalize(n: usize, offdiag: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut diag = vec![1.0f64; n];
    for &(i, j, v) in offdiag {
        debug_assert_ne!(i, j);
        diag[i] += v.abs();
    }
    let mut coo = CooMatrix::with_capacity(n, offdiag.len() + n);
    for &(i, j, v) in offdiag {
        coo.push(i, j, v);
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d);
    }
    coo.to_csr()
}

/// Push the symmetric pair `(i,j)` and `(j,i)` with the same value.
fn push_pair(out: &mut Vec<(usize, usize, f64)>, i: usize, j: usize, v: f64) {
    out.push((i, j, v));
    out.push((j, i, v));
}

/// 5-point Laplacian on an `nx × ny` grid. Used mainly by tests: the
/// smallest matrix with genuine 2D separator structure.
pub fn poisson2d_5pt(nx: usize, ny: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize| y * nx + x;
    let mut off = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if x + 1 < nx {
                push_pair(&mut off, i, idx(x + 1, y), -1.0);
            }
            if y + 1 < ny {
                push_pair(&mut off, i, idx(x, y + 1), -1.0);
            }
        }
    }
    finalize(nx * ny, &off)
}

/// 9-point stencil on an `nx × ny` grid — the analog of the paper's
/// `s2D9pt2048` Poisson matrix (`n = nx·ny`).
pub fn poisson2d_9pt(nx: usize, ny: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize| y * nx + x;
    let mut off = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            // East, north, and the two upward diagonals; symmetry fills the rest.
            if x + 1 < nx {
                push_pair(&mut off, i, idx(x + 1, y), -1.0);
            }
            if y + 1 < ny {
                push_pair(&mut off, i, idx(x, y + 1), -1.0);
                if x + 1 < nx {
                    push_pair(&mut off, i, idx(x + 1, y + 1), -0.5);
                }
                if x > 0 {
                    push_pair(&mut off, i, idx(x - 1, y + 1), -0.5);
                }
            }
        }
    }
    finalize(nx * ny, &off)
}

/// 7-point Laplacian on an `nx × ny × nz` grid: the canonical 3D-PDE regime.
pub fn poisson3d_7pt(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut off = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                if x + 1 < nx {
                    push_pair(&mut off, i, idx(x + 1, y, z), -1.0);
                }
                if y + 1 < ny {
                    push_pair(&mut off, i, idx(x, y + 1, z), -1.0);
                }
                if z + 1 < nz {
                    push_pair(&mut off, i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    finalize(nx * ny * nz, &off)
}

/// KKT-structured matrix on a 3D grid — analog of `nlpkkt80`.
///
/// `nlpkkt80` is the KKT system of a 3D PDE-constrained optimization problem;
/// structurally it behaves like a 3D mesh with two unknowns (primal/adjoint)
/// per grid point coupled through the constraint Jacobian. We generate a
/// `2·nx·ny·nz` matrix with a 7-point mesh coupling on each field plus full
/// 2×2 inter-field blocks per vertex and Jacobian-like couplings to mesh
/// neighbours.
pub fn kkt3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let nv = nx * ny * nz;
    let vid = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    // Unknown layout: primal block [0, nv), adjoint block [nv, 2nv).
    let mut off = Vec::new();
    let couple = |a: usize, b: usize, off: &mut Vec<(usize, usize, f64)>| {
        // mesh coupling within each field
        push_pair(off, a, b, -1.0);
        push_pair(off, nv + a, nv + b, -1.0);
        // Jacobian coupling across fields to the neighbour
        push_pair(off, a, nv + b, -0.25);
        push_pair(off, b, nv + a, -0.25);
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = vid(x, y, z);
                // cross-field coupling at the vertex itself
                push_pair(&mut off, i, nv + i, -0.5);
                if x + 1 < nx {
                    couple(i, vid(x + 1, y, z), &mut off);
                }
                if y + 1 < ny {
                    couple(i, vid(x, y + 1, z), &mut off);
                }
                if z + 1 < nz {
                    couple(i, vid(x, y, z + 1), &mut off);
                }
            }
        }
    }
    finalize(2 * nv, &off)
}

/// 3D linear elasticity analog of `ldoor`: 3 displacement dofs per vertex of
/// an `nx × ny × nz` brick, 7-point vertex neighbourhood, full 3×3 coupling
/// blocks with mild randomization (seeded, deterministic).
pub fn elasticity3d(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vid = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let nv = nx * ny * nz;
    let mut off = Vec::new();
    let block = |a: usize, b: usize, rng: &mut ChaCha8Rng, off: &mut Vec<(usize, usize, f64)>| {
        for da in 0..3usize {
            for db in 0..3usize {
                let v = -(0.2 + 0.8 * rng.gen::<f64>()) * if da == db { 1.0 } else { 0.3 };
                // Keep the matrix numerically symmetric: emit both (i,j) and (j,i).
                push_pair(off, 3 * a + da, 3 * b + db, v);
            }
        }
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = vid(x, y, z);
                // within-vertex off-diagonal coupling (upper pairs only)
                for da in 0..3usize {
                    for db in da + 1..3usize {
                        push_pair(&mut off, 3 * i + da, 3 * i + db, -0.1);
                    }
                }
                if x + 1 < nx {
                    block(i, vid(x + 1, y, z), &mut rng, &mut off);
                }
                if y + 1 < ny {
                    block(i, vid(x, y + 1, z), &mut rng, &mut off);
                }
                if z + 1 < nz {
                    block(i, vid(x, y, z + 1), &mut rng, &mut off);
                }
            }
        }
    }
    finalize(3 * nv, &off)
}

/// 27-point stencil on a 3D grid — analog of `dielFilterV3real` (finite
/// element discretization of Maxwell equations: wide 3D coupling).
pub fn wave3d_27pt(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut off = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if (dx, dy, dz) <= (0, 0, 0) {
                                continue; // lexicographically later neighbours only
                            }
                            let (x2, y2, z2) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if x2 < 0
                                || y2 < 0
                                || z2 < 0
                                || x2 >= nx as i64
                                || y2 >= ny as i64
                                || z2 >= nz as i64
                            {
                                continue;
                            }
                            let dist = (dx.abs() + dy.abs() + dz.abs()) as f64;
                            push_pair(
                                &mut off,
                                i,
                                idx(x2 as usize, y2 as usize, z2 as usize),
                                -1.0 / dist,
                            );
                        }
                    }
                }
            }
        }
    }
    finalize(nx * ny * nz, &off)
}

/// Quantum-chemistry analog of `Ga19As19H42`: a union of overlapping random
/// cliques ("orbitals interacting within shells"), which produces a very
/// dense LU factor — the paper reports 9.15 % LU density for the original.
pub fn chem_cliques(n: usize, n_cliques: usize, clique_size: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pairs = std::collections::HashSet::new();
    let mut off = Vec::new();
    let mut members = Vec::with_capacity(clique_size);
    for _ in 0..n_cliques {
        members.clear();
        // Cliques are localized: pick a random center and draw members nearby,
        // mimicking spatially clustered orbital interactions.
        let center = rng.gen_range(0..n);
        let spread = (n / 8).max(clique_size * 2);
        for _ in 0..clique_size {
            let jitter = rng.gen_range(0..spread) as i64 - (spread / 2) as i64;
            let v = (center as i64 + jitter).rem_euclid(n as i64) as usize;
            members.push(v);
        }
        members.sort_unstable();
        members.dedup();
        for a in 0..members.len() {
            for b in a + 1..members.len() {
                let (i, j) = (members[a], members[b]);
                if pairs.insert((i, j)) {
                    push_pair(&mut off, i, j, -(0.1 + 0.9 * rng.gen::<f64>()));
                }
            }
        }
    }
    // Chain to guarantee irreducibility.
    for i in 0..n - 1 {
        if pairs.insert((i, i + 1)) {
            push_pair(&mut off, i, i + 1, -0.5);
        }
    }
    finalize(n, &off)
}

/// Fusion-plasma analog of `s1_mat_0_253872`: a banded matrix (local flux
/// surface coupling) plus seeded mid-range symmetric pairs (field line
/// connections). The extra couplings are distance-limited — real field
/// lines connect nearby flux surfaces — which keeps the nested-dissection
/// fill in the moderate regime of the original matrix (0.66 % LU density)
/// instead of the fill explosion uniform random pairs would cause.
pub fn fusion_band(n: usize, half_bw: usize, n_long: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut off = Vec::new();
    for i in 0..n {
        for d in 1..=half_bw {
            if i + d < n && (d <= 2 || rng.gen::<f64>() < 0.4) {
                push_pair(&mut off, i, i + d, -1.0 / d as f64);
            }
        }
    }
    let max_jump = (n / 24).max(2 * half_bw + 2);
    let mut pairs = std::collections::HashSet::new();
    let mut placed = 0;
    let mut attempts = 0;
    while placed < n_long && attempts < 50 * n_long {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let jump = rng.gen_range(half_bw + 1..=max_jump);
        let j = i + jump;
        if j >= n {
            continue;
        }
        if pairs.insert((i, j)) {
            push_pair(&mut off, i, j, -0.2);
            placed += 1;
        }
    }
    finalize(n, &off)
}

/// Vertex labelling of an `nx × ny × nz` lattice with a seeded fraction of
/// vertices removed ("holes"). Real application meshes (nlpkkt80's
/// optimization grid, dielFilterV3real's filter geometry, ldoor's door
/// panel) are *irregular*: their nested-dissection trees have uneven leaf
/// and separator sizes, which is what drives the baseline 3D algorithm's
/// load imbalance in the paper's Fig. 8. Returns `ids[v] = Some(new_id)`
/// for kept vertices.
fn holey_lattice(
    nx: usize,
    ny: usize,
    nz: usize,
    hole_fraction: f64,
    rng: &mut ChaCha8Rng,
) -> (Vec<Option<usize>>, usize) {
    let nv = nx * ny * nz;
    let mut ids = vec![None; nv];
    let mut next = 0usize;
    for id in ids.iter_mut() {
        if rng.gen::<f64>() >= hole_fraction {
            *id = Some(next);
            next += 1;
        }
    }
    (ids, next)
}

/// Irregular KKT analog of `nlpkkt80`: [`kkt3d`] structure on a 3D lattice
/// with a seeded fraction of vertices removed, giving the uneven
/// elimination-tree shape of the real matrix.
pub fn kkt3d_irregular(
    nx: usize,
    ny: usize,
    nz: usize,
    hole_fraction: f64,
    seed: u64,
) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (ids, nkept) = holey_lattice(nx, ny, nz, hole_fraction, &mut rng);
    let vid = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut off = Vec::new();
    let couple = |a: usize, b: usize, off: &mut Vec<(usize, usize, f64)>| {
        push_pair(off, a, b, -1.0);
        push_pair(off, nkept + a, nkept + b, -1.0);
        push_pair(off, a, nkept + b, -0.25);
        push_pair(off, b, nkept + a, -0.25);
    };
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let Some(i) = ids[vid(x, y, z)] else {
                    continue;
                };
                push_pair(&mut off, i, nkept + i, -0.5);
                let mut neighbors = Vec::with_capacity(3);
                if x + 1 < nx {
                    neighbors.push(ids[vid(x + 1, y, z)]);
                }
                if y + 1 < ny {
                    neighbors.push(ids[vid(x, y + 1, z)]);
                }
                if z + 1 < nz {
                    neighbors.push(ids[vid(x, y, z + 1)]);
                }
                for j in neighbors.into_iter().flatten() {
                    couple(i, j, &mut off);
                }
            }
        }
    }
    // Chain the kept vertices of each field so the matrix is irreducible
    // even if holes disconnect the lattice.
    for i in 0..nkept.saturating_sub(1) {
        push_pair(&mut off, i, i + 1, -0.05);
        push_pair(&mut off, nkept + i, nkept + i + 1, -0.05);
    }
    finalize(2 * nkept, &off)
}

/// Irregular wide-stencil analog of `dielFilterV3real`: [`wave3d_27pt`]
/// structure on a holey 3D lattice.
pub fn wave3d_irregular(
    nx: usize,
    ny: usize,
    nz: usize,
    hole_fraction: f64,
    seed: u64,
) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (ids, nkept) = holey_lattice(nx, ny, nz, hole_fraction, &mut rng);
    let vid = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut off = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let Some(i) = ids[vid(x, y, z)] else {
                    continue;
                };
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if (dx, dy, dz) <= (0, 0, 0) {
                                continue;
                            }
                            let (x2, y2, z2) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if x2 < 0
                                || y2 < 0
                                || z2 < 0
                                || x2 >= nx as i64
                                || y2 >= ny as i64
                                || z2 >= nz as i64
                            {
                                continue;
                            }
                            if let Some(j) = ids[vid(x2 as usize, y2 as usize, z2 as usize)] {
                                let dist = (dx.abs() + dy.abs() + dz.abs()) as f64;
                                push_pair(&mut off, i, j, -1.0 / dist);
                            }
                        }
                    }
                }
            }
        }
    }
    for i in 0..nkept.saturating_sub(1) {
        push_pair(&mut off, i, i + 1, -0.05);
    }
    finalize(nkept, &off)
}

/// Pure banded symmetric matrix: every in-band coupling present with
/// seeded magnitudes. The elimination DAG of a banded factor is one long
/// chain of narrow levels — the worst case for level-set execution
/// (maximal barrier count, minimal within-level parallelism) and the
/// best case for chain batching.
pub fn banded(n: usize, half_bw: usize, seed: u64) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut off = Vec::new();
    for i in 0..n {
        for d in 1..=half_bw {
            if i + d < n {
                push_pair(
                    &mut off,
                    i,
                    i + d,
                    -(0.2 + 0.8 * rng.gen::<f64>()) / d as f64,
                );
            }
        }
    }
    finalize(n, &off)
}

/// Power-law graph matrix via recursive R-MAT quadrant sampling
/// (Chakrabarti et al., SDM'04 parameters `a=0.57, b=c=0.19`): a few
/// hub rows couple to many others while most rows stay sparse. Nested
/// dissection produces very uneven separators on such graphs, which is
/// the shallow-and-wide, imbalanced regime where reactive tree execution
/// and level barriers diverge the most. `scale_log2` sets `n = 2^scale`;
/// `edge_factor` is the average edges per vertex before deduplication.
pub fn rmat(scale_log2: u32, edge_factor: usize, seed: u64) -> CsrMatrix {
    let n = 1usize << scale_log2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut pairs = std::collections::HashSet::new();
    let mut off = Vec::new();
    for _ in 0..n * edge_factor {
        let (mut i, mut j) = (0usize, 0usize);
        for _ in 0..scale_log2 {
            let r: f64 = rng.gen();
            let (di, dj) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            i = 2 * i + di;
            j = 2 * j + dj;
        }
        let (i, j) = (i.min(j), i.max(j));
        if i != j && pairs.insert((i, j)) {
            push_pair(&mut off, i, j, -(0.1 + 0.9 * rng.gen::<f64>()));
        }
    }
    // Chain to guarantee irreducibility (isolated vertices otherwise).
    for i in 0..n - 1 {
        if pairs.insert((i, i + 1)) {
            push_pair(&mut off, i, i + 1, -0.05);
        }
    }
    finalize(n, &off)
}

/// Blocked-random matrix: `n_blocks` dense diagonal blocks of width
/// `block` (supernode-friendly) coupled by a seeded fraction of random
/// block pairs. The factor's DAG is bushy and irregular — many
/// independent rows per level with wildly varying block sizes — which is
/// the regime where level sweeps amortize best.
pub fn blocked_random(n_blocks: usize, block: usize, coupling: f64, seed: u64) -> CsrMatrix {
    let n = n_blocks * block;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut off = Vec::new();
    for bi in 0..n_blocks {
        let base = bi * block;
        // Dense within-block coupling.
        for a in 0..block {
            for b in a + 1..block {
                push_pair(
                    &mut off,
                    base + a,
                    base + b,
                    -(0.2 + 0.8 * rng.gen::<f64>()),
                );
            }
        }
    }
    for bi in 0..n_blocks {
        for bj in bi + 1..n_blocks {
            if rng.gen::<f64>() >= coupling {
                continue;
            }
            // Couple a seeded row pair of the two blocks (keeps fill
            // moderate while connecting the block graph).
            let a = bi * block + rng.gen_range(0..block);
            let b = bj * block + rng.gen_range(0..block);
            push_pair(&mut off, a, b, -0.3);
        }
    }
    // Chain adjacent blocks so the block graph is connected even at low
    // coupling.
    for bi in 0..n_blocks.saturating_sub(1) {
        push_pair(&mut off, bi * block, (bi + 1) * block, -0.1);
    }
    finalize(n, &off)
}

/// Random strictly-lower-triangular CSR pattern (`row_ptr`, `col_idx`):
/// each row draws up to `max_deps` distinct dependencies on earlier
/// rows. This is the raw substrate the level-set property tests feed to
/// `ordering::levels::level_sets_csr` — a factor DAG shape without the
/// cost of a numeric factorization.
pub fn random_lower_csr(n: usize, max_deps: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0);
    let mut cols = Vec::new();
    for i in 0..n {
        cols.clear();
        if i > 0 {
            let k = rng.gen_range(0..=max_deps.min(i));
            for _ in 0..k {
                cols.push(rng.gen_range(0..i));
            }
            cols.sort_unstable();
            cols.dedup();
        }
        col_idx.extend_from_slice(&cols);
        row_ptr.push(col_idx.len());
    }
    (row_ptr, col_idx)
}

/// Size tier for the Table 1 analog suite. The paper's matrices have
/// 0.13–4.2 M rows; a single-core container cannot factor those, so each
/// experiment states which tier it ran (see EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred rows — unit/property tests.
    Tiny,
    /// A few thousand rows — integration tests and quick benches.
    Small,
    /// Tens of thousands of rows — the shipped benchmark tier.
    Medium,
}

/// A named test matrix mirroring one row of the paper's Table 1.
pub struct TestMatrix {
    /// The paper's matrix name this analog stands in for.
    pub name: &'static str,
    /// Application domain, as in Table 1.
    pub description: &'static str,
    /// The generated matrix (already structurally symmetric).
    pub matrix: CsrMatrix,
}

/// Generate the full Table 1 analog suite at the given size tier.
pub fn table1_suite(scale: Scale) -> Vec<TestMatrix> {
    let (g2, g3, ge, gw, nc, nf) = match scale {
        Scale::Tiny => (16, 5, 4, 5, 120, 200),
        Scale::Small => (48, 11, 8, 9, 600, 2_000),
        Scale::Medium => (160, 22, 14, 17, 2_400, 24_000),
    };
    vec![
        TestMatrix {
            name: "s2D9pt2048",
            description: "Poisson",
            matrix: poisson2d_9pt(g2, g2),
        },
        TestMatrix {
            name: "nlpkkt80",
            description: "Optimization",
            matrix: kkt3d_irregular(g3 + g3 / 2, g3, (2 * g3) / 3, 0.3, 17),
        },
        TestMatrix {
            name: "ldoor",
            description: "Structural",
            matrix: elasticity3d(ge, ge, ge, 7),
        },
        TestMatrix {
            name: "dielFilterV3real",
            description: "Wave",
            matrix: wave3d_irregular(gw, gw, gw, 0.15, 19),
        },
        TestMatrix {
            name: "Ga19As19H42",
            description: "Chemistry",
            matrix: chem_cliques(nc, nc / 2, 24, 11),
        },
        TestMatrix {
            name: "s1_mat_0_253872",
            description: "Fusion",
            matrix: fusion_band(nf, 8, nf / 10, 13),
        },
    ]
}

/// Look up a single Table 1 analog by its paper name.
pub fn by_name(name: &str, scale: Scale) -> Option<CsrMatrix> {
    table1_suite(scale)
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| m.matrix)
}

/// Deterministic dense-ish right-hand side for experiments: entry `k` of RHS
/// `r` is `sin(1 + k + 0.37 r)`, nonzero everywhere and reproducible.
pub fn standard_rhs(n: usize, nrhs: usize) -> Vec<f64> {
    let mut b = Vec::with_capacity(n * nrhs);
    for r in 0..nrhs {
        for k in 0..n {
            b.push((1.0 + k as f64 + 0.37 * r as f64).sin());
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sym_dd(a: &CsrMatrix) {
        assert!(a.pattern_is_symmetric(), "pattern must be symmetric");
        for i in 0..a.nrows() {
            let mut offsum = 0.0;
            let mut diag = 0.0;
            for (j, v) in a.row_iter(i) {
                if i == j {
                    diag = v;
                } else {
                    offsum += v.abs();
                    // numeric symmetry
                    assert_eq!(a.get(j, i), v);
                }
            }
            assert!(diag > offsum, "row {i} not strictly diagonally dominant");
        }
    }

    #[test]
    fn poisson2d_9pt_structure() {
        let a = poisson2d_9pt(5, 5);
        assert_eq!(a.nrows(), 25);
        check_sym_dd(&a);
        // interior point has 8 neighbours + diagonal
        let deg = a.row_cols(12).len();
        assert_eq!(deg, 9);
    }

    #[test]
    fn poisson3d_7pt_structure() {
        let a = poisson3d_7pt(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        check_sym_dd(&a);
        assert_eq!(a.row_cols(13).len(), 7); // center of 3x3x3
    }

    #[test]
    fn kkt3d_has_two_fields() {
        let a = kkt3d(3, 3, 3);
        assert_eq!(a.nrows(), 54);
        check_sym_dd(&a);
        // primal-adjoint coupling at vertex 0
        assert!(a.get(0, 27) != 0.0);
    }

    #[test]
    fn elasticity3d_blocks() {
        let a = elasticity3d(3, 3, 3, 42);
        assert_eq!(a.nrows(), 81);
        check_sym_dd(&a);
    }

    #[test]
    fn wave3d_corner_degree() {
        let a = wave3d_27pt(3, 3, 3);
        check_sym_dd(&a);
        assert_eq!(a.row_cols(13).len(), 27); // center couples to all 26 + self
    }

    #[test]
    fn chem_cliques_is_dense_ish() {
        let a = chem_cliques(200, 100, 24, 3);
        check_sym_dd(&a);
        assert!(a.density() > 0.01, "density {} too small", a.density());
    }

    #[test]
    fn fusion_band_connected() {
        let a = fusion_band(300, 6, 30, 5);
        check_sym_dd(&a);
        for i in 0..299 {
            assert!(a.get(i, i + 1) != 0.0 || a.get(i + 1, i) != 0.0);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let s1 = table1_suite(Scale::Tiny);
        let s2 = table1_suite(Scale::Tiny);
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.matrix, b.matrix);
        }
        assert_eq!(s1.len(), 6);
    }

    #[test]
    fn by_name_finds_all() {
        for m in table1_suite(Scale::Tiny) {
            assert!(by_name(m.name, Scale::Tiny).is_some());
        }
        assert!(by_name("nonexistent", Scale::Tiny).is_none());
    }

    #[test]
    fn banded_is_a_full_band() {
        let a = banded(40, 3, 9);
        check_sym_dd(&a);
        // Every in-band coupling is present; nothing outside the band.
        for i in 0..40usize {
            for (j, v) in a.row_iter(i) {
                assert!(i.abs_diff(j) <= 3, "({i},{j}) outside band");
                assert!(v != 0.0);
            }
            let lo = i.saturating_sub(3);
            let hi = (i + 3).min(39);
            assert_eq!(a.row_cols(i).len(), hi - lo + 1);
        }
        assert_eq!(a, banded(40, 3, 9));
    }

    #[test]
    fn rmat_is_skewed() {
        let a = rmat(7, 8, 11);
        assert_eq!(a.nrows(), 128);
        check_sym_dd(&a);
        // Power-law skew: the heaviest row carries several times the
        // median degree.
        let mut degs: Vec<usize> = (0..128).map(|i| a.row_cols(i).len()).collect();
        degs.sort_unstable();
        assert!(
            degs[127] >= 3 * degs[64],
            "max degree {} vs median {} — no hub structure",
            degs[127],
            degs[64]
        );
        assert_eq!(a, rmat(7, 8, 11));
    }

    #[test]
    fn blocked_random_has_dense_diagonal_blocks() {
        let a = blocked_random(8, 5, 0.3, 13);
        assert_eq!(a.nrows(), 40);
        check_sym_dd(&a);
        // Within-block coupling is fully dense.
        for r in 0..5usize {
            for c in 0..5usize {
                assert!(a.get(r, c) != 0.0, "block(0,0) entry ({r},{c}) missing");
            }
        }
        assert_eq!(a, blocked_random(8, 5, 0.3, 13));
    }

    #[test]
    fn random_lower_csr_is_strictly_lower() {
        let (row_ptr, col_idx) = random_lower_csr(50, 6, 21);
        assert_eq!(row_ptr.len(), 51);
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        for i in 0..50 {
            let deps = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            assert!(
                deps.windows(2).all(|w| w[0] < w[1]),
                "row {i} not sorted/deduped"
            );
            assert!(deps.iter().all(|&j| j < i), "row {i} has dep >= i");
        }
        assert_eq!(random_lower_csr(50, 6, 21), random_lower_csr(50, 6, 21));
    }

    #[test]
    fn standard_rhs_is_dense_and_deterministic() {
        let b = standard_rhs(10, 2);
        assert_eq!(b.len(), 20);
        assert!(b.iter().all(|&x| x != 0.0));
        assert_eq!(b, standard_rhs(10, 2));
    }
}
