//! The transport contract the solver core programs against.
//!
//! The paper's thesis is that one communication structure — binary
//! broadcast/reduction trees plus a sparse allreduce — serves CPU clusters,
//! GPU clusters, and one-sided transports alike. The solver executors
//! therefore never name a concrete communicator type: they are generic over
//! [`Transport`], and a backend supplies the wire.
//!
//! Three backends exist in-tree:
//!
//! * [`Comm`](crate::Comm) — the virtual-time simulator of this crate
//!   (backend #1). Virtual clocks, the α–β machine model, fault injection,
//!   the any-source settle window, and span tracing are all *sim-private*:
//!   they live behind this trait, not in the solver core.
//! * `sptrsv-comm-native` — a real shared-memory transport (backend #2):
//!   one OS thread per rank, mailbox queues, wall-clock timing.
//! * `sptrsv-comm-proc` — a real distributed transport (backend #3): one
//!   OS *process* per rank over Unix-domain sockets, messages serialized
//!   through the [`wire`](crate::wire) envelope.
//!
//! ## Contract
//!
//! What every backend must provide (the solvers rely on these):
//!
//! * **Per-destination FIFO**: two [`send_shared`](Transport::send_shared)
//!   calls from one rank to one destination on one communicator are
//!   received in send order when matched by `(src, tag)`. One-sided
//!   [`send_timed_shared`](Transport::send_timed_shared) is exempt, like
//!   NVSHMEM puts.
//! * **Tag addressing**: receives match on exact `(src, tag)` or on a
//!   masked tag pattern; unmatched messages stay queued.
//! * **Fixed collective shape**: `allreduce_sum`/`bcast`/`barrier` use the
//!   binomial tree over communicator ranks, so the floating-point
//!   reduction *order* is identical on every backend — this is what makes
//!   solutions bit-identical across transports (together with the solver
//!   side's order-independent ledger accumulation).
//! * **Collective tag isolation**: successive collectives on one
//!   communicator must not confuse each other's messages, even when the
//!   network duplicates or delays deliveries.
//!
//! What a backend may choose:
//!
//! * **The clock.** [`now`](Transport::now) is virtual seconds under the
//!   simulator and real (monotonic, process-relative) seconds under the
//!   native backend. Solvers only form differences of it.
//! * **Any-source pick order** among queued matches. Solvers are built to
//!   be delivery-order-independent (chaos-tested under the simulator's
//!   fault plans), so this never changes the computed bits.
//! * **Observability.** The trace/metric hooks default to no-ops; the
//!   simulator records structured spans, the native backend counters only.

use crate::machine::MachineModel;
use crate::stats::{Category, N_CATEGORIES};
use crate::trace::{EventKind, SpanDetail};
use crate::RecvMsg;
use std::sync::Arc;

/// A message payload as the solver core sees it: a shared, immutable
/// buffer of `f64` words (numeric values, and — on the PR 9 occupancy
/// paths — presence-bitmap words smuggled as bit patterns).
///
/// In-process backends move a `Payload` by bumping the `Arc` refcount, so
/// a send is zero-copy end to end. Process-boundary backends serialize it
/// through the [`wire`](crate::wire) frame — bit-exactly, via
/// `f64::to_bits` — and materialize a fresh `Payload` on the receiving
/// side; that frame is the single point where zero-copy ends.
pub type Payload = Arc<[f64]>;

/// A communicator handle of one rank on some message-passing backend.
///
/// Cloning semantics follow `MPI_Comm`: [`split`](Transport::split) is
/// collective and yields a subcommunicator of the same concrete backend,
/// which is why the trait is `Sized` and the solver core is generic rather
/// than trait-object-based.
pub trait Transport: Sized {
    // ---- topology ----

    /// My rank within this communicator.
    fn rank(&self) -> usize;

    /// Number of ranks in this communicator.
    fn size(&self) -> usize;

    /// World rank of communicator rank `r`.
    fn world_rank(&self, r: usize) -> usize;

    /// The machine cost model of the cluster. Backends that do not *apply*
    /// the model (the native backend pays real costs) still expose it: the
    /// solvers read structural parameters from it (GPU model, flop rate
    /// for modeled kernel times).
    fn model(&self) -> &MachineModel;

    /// Split into disjoint subcommunicators by `color`, members ordered by
    /// `(key, world rank)`. Collective: all ranks of this communicator
    /// must call in the same program order.
    fn split(&self, color: usize, key: usize) -> Self;

    // ---- clock & accounting ----

    /// Current time of this rank, in seconds. Virtual under the simulator,
    /// real (monotonic since cluster start) under the native backend.
    /// Solvers only form differences of this value.
    fn now(&self) -> f64;

    /// Advance this rank's clock to at least `t`. No-op on backends whose
    /// clock advances by itself.
    fn advance_to(&self, t: f64);

    /// Spend `seconds` of *modeled* computation, attributed to `cat`. The
    /// simulator advances the virtual clock by the model time; the native
    /// backend instead attributes the real time that elapsed since its
    /// last attribution point (the work already happened in this thread).
    fn compute(&self, seconds: f64, cat: Category);

    /// Attribute `seconds` to `cat` without advancing the clock (used by
    /// the GPU executor, which tracks task times itself). Like
    /// [`compute`](Transport::compute), real-time backends substitute
    /// measured elapsed time for the modeled value.
    fn account(&self, seconds: f64, cat: Category);

    /// Snapshot of this rank's per-category times so far. Solvers take
    /// deltas of this to attribute time to algorithm phases.
    fn time_snapshot(&self) -> [f64; N_CATEGORIES];

    // ---- point-to-point ----

    /// Send `payload` to communicator rank `dst`. Copies the slice into a
    /// shared buffer at this API boundary; hot paths that already own an
    /// `Arc<[f64]>` use [`send_shared`](Transport::send_shared).
    fn send(&self, dst: usize, tag: u64, payload: &[f64], cat: Category) {
        self.send_shared(dst, tag, &Arc::from(payload), cat)
    }

    /// Zero-copy send: enqueue a refcount bump of `payload`.
    fn send_shared(&self, dst: usize, tag: u64, payload: &Payload, cat: Category);

    /// One-sided put with an explicit departure time and wire cost, in the
    /// backend's clock domain (the GPU path's NVSHMEM-style messages).
    /// Exempt from the two-sided FIFO rule; must not block the caller.
    /// Backends with a real clock may ignore the modeled times and deliver
    /// immediately.
    fn send_timed_shared(
        &self,
        depart: f64,
        wire: f64,
        dst: usize,
        tag: u64,
        payload: &Payload,
        cat: Category,
    );

    /// Pre-create any per-destination bookkeeping for sends to `dst`, so
    /// the first steady-state send does not allocate. Optional.
    fn warm_route(&self, _dst: usize) {}

    /// Blocking receive. `src`/`tag` of `None` match anything (the
    /// `MPI_Recv(MPI_ANY_SOURCE)` pattern). Waiting time is attributed to
    /// `cat`.
    fn recv(&self, src: Option<usize>, tag: Option<u64>, cat: Category) -> RecvMsg;

    /// Blocking any-source receive matching `tag & mask == value` — the
    /// "any message of this solve phase" pattern. Messages of other phases
    /// stay queued.
    fn recv_tag_masked(&self, mask: u64, value: u64, cat: Category) -> RecvMsg;

    /// Like [`recv_tag_masked`](Transport::recv_tag_masked) but without
    /// touching the clock or the statistics (GPU path: arrival times drive
    /// the executor instead).
    fn recv_raw_tag_masked(&self, mask: u64, value: u64) -> RecvMsg;

    // ---- collectives (fixed binomial shape on every backend) ----

    /// Barrier over this communicator.
    fn barrier(&self, cat: Category);

    /// Allreduce (sum): binomial reduction to rank 0, binomial broadcast
    /// back. The reduction order is fixed by the tree, not by arrival, so
    /// results are bit-identical across backends.
    fn allreduce_sum(&self, data: &mut [f64], cat: Category);

    /// Broadcast `data` from `root` to all ranks (binomial tree).
    fn bcast(&self, root: usize, data: &mut [f64], cat: Category);

    // ---- observability hooks (default: no-op) ----

    /// Stamp `detail` onto every span recorded from now on (until cleared
    /// with `None`). Backends without tracing ignore this.
    fn set_span_detail(&self, _detail: Option<SpanDetail>) {}

    /// Attach `detail` to the most recently recorded span.
    fn annotate_last(&self, _detail: SpanDetail) {}

    /// Mark the most recent receive as a recognised-and-dropped duplicate.
    fn mark_last_dropped_duplicate(&self) {}

    /// Record a span with explicit bounds and annotation, without touching
    /// the clock or the statistics (GPU covering spans).
    fn trace_span(
        &self,
        _t0: f64,
        _t1: f64,
        _kind: EventKind,
        _cat: Category,
        _detail: Option<SpanDetail>,
    ) {
    }

    /// Add `by` to this rank's counter `name`.
    fn metric_inc(&self, _name: &str, _by: u64) {}

    /// Record `v` into this rank's histogram `name`.
    fn metric_observe(&self, _name: &str, _bounds: &[f64], _v: f64) {}
}

/// Backend #1: the virtual-time simulator. Every method delegates to the
/// inherent [`Comm`](crate::Comm) API; the trait adds nothing the
/// simulator did not already provide — it *subtracts* what is sim-private
/// (fault injection, settle window, raw any-source receives).
impl Transport for crate::Comm {
    fn rank(&self) -> usize {
        crate::Comm::rank(self)
    }

    fn size(&self) -> usize {
        crate::Comm::size(self)
    }

    fn world_rank(&self, r: usize) -> usize {
        crate::Comm::world_rank(self, r)
    }

    fn model(&self) -> &MachineModel {
        crate::Comm::model(self)
    }

    fn split(&self, color: usize, key: usize) -> Self {
        crate::Comm::split(self, color, key)
    }

    fn now(&self) -> f64 {
        crate::Comm::now(self)
    }

    fn advance_to(&self, t: f64) {
        crate::Comm::advance_to(self, t)
    }

    fn compute(&self, seconds: f64, cat: Category) {
        crate::Comm::compute(self, seconds, cat)
    }

    fn account(&self, seconds: f64, cat: Category) {
        crate::Comm::account(self, seconds, cat)
    }

    fn time_snapshot(&self) -> [f64; N_CATEGORIES] {
        crate::Comm::time_snapshot(self)
    }

    fn send(&self, dst: usize, tag: u64, payload: &[f64], cat: Category) {
        crate::Comm::send(self, dst, tag, payload, cat)
    }

    fn send_shared(&self, dst: usize, tag: u64, payload: &Payload, cat: Category) {
        crate::Comm::send_shared(self, dst, tag, payload, cat)
    }

    fn send_timed_shared(
        &self,
        depart: f64,
        wire: f64,
        dst: usize,
        tag: u64,
        payload: &Payload,
        cat: Category,
    ) {
        crate::Comm::send_timed_shared(self, depart, wire, dst, tag, payload, cat)
    }

    fn warm_route(&self, dst: usize) {
        crate::Comm::warm_route(self, dst)
    }

    fn recv(&self, src: Option<usize>, tag: Option<u64>, cat: Category) -> RecvMsg {
        crate::Comm::recv(self, src, tag, cat)
    }

    fn recv_tag_masked(&self, mask: u64, value: u64, cat: Category) -> RecvMsg {
        crate::Comm::recv_tag_masked(self, mask, value, cat)
    }

    fn recv_raw_tag_masked(&self, mask: u64, value: u64) -> RecvMsg {
        crate::Comm::recv_raw_tag_masked(self, mask, value)
    }

    fn barrier(&self, cat: Category) {
        crate::Comm::barrier(self, cat)
    }

    fn allreduce_sum(&self, data: &mut [f64], cat: Category) {
        crate::Comm::allreduce_sum(self, data, cat)
    }

    fn bcast(&self, root: usize, data: &mut [f64], cat: Category) {
        crate::Comm::bcast(self, root, data, cat)
    }

    fn set_span_detail(&self, detail: Option<SpanDetail>) {
        crate::Comm::set_span_detail(self, detail)
    }

    fn annotate_last(&self, detail: SpanDetail) {
        crate::Comm::annotate_last(self, detail)
    }

    fn mark_last_dropped_duplicate(&self) {
        crate::Comm::mark_last_dropped_duplicate(self)
    }

    fn trace_span(
        &self,
        t0: f64,
        t1: f64,
        kind: EventKind,
        cat: Category,
        detail: Option<SpanDetail>,
    ) {
        crate::Comm::trace_span(self, t0, t1, kind, cat, detail)
    }

    fn metric_inc(&self, name: &str, by: u64) {
        crate::Comm::metric_inc(self, name, by)
    }

    fn metric_observe(&self, name: &str, bounds: &[f64], v: f64) {
        crate::Comm::metric_observe(self, name, bounds, v)
    }
}
