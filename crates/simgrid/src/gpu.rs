//! Bounded-lane GPU task executor.
//!
//! Models the sync-free GPU solve kernels of the paper (Alg. 4/5): one
//! thread block per supernode column, with at most `concurrency` blocks
//! resident at a time. In virtual time this is a classic list scheduler:
//! each task becomes ready at some virtual time (its dependencies' finish
//! plus message arrivals), is assigned the earliest-free lane, and finishes
//! after its duration plus the per-block overhead.

use crate::machine::GpuModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered f64 wrapper for the lane heap.
#[derive(PartialEq, PartialOrd)]
struct F(f64);
impl Eq for F {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("no NaN times")
    }
}

/// Virtual-time executor for one GPU.
pub struct GpuExecutor {
    /// Earliest-free time per lane (min-heap).
    lanes: BinaryHeap<Reverse<F>>,
    block_overhead: f64,
    busy: f64,
    n_tasks: u64,
    last_finish: f64,
}

impl GpuExecutor {
    /// New executor with the kernel already launched at virtual time
    /// `t_launch` (the caller pays `kernel_launch` before that).
    pub fn new(model: &GpuModel, t_launch: f64) -> Self {
        let mut lanes = BinaryHeap::with_capacity(model.concurrency);
        for _ in 0..model.concurrency.max(1) {
            lanes.push(Reverse(F(t_launch)));
        }
        GpuExecutor {
            lanes,
            block_overhead: model.block_overhead,
            busy: 0.0,
            n_tasks: 0,
            last_finish: t_launch,
        }
    }

    /// Schedule a task that becomes ready at `ready` and runs for
    /// `duration`; returns its finish time.
    pub fn schedule(&mut self, ready: f64, duration: f64) -> f64 {
        debug_assert!(duration >= 0.0);
        let Reverse(F(free)) = self.lanes.pop().expect("at least one lane");
        let start = ready.max(free);
        let finish = start + duration + self.block_overhead;
        self.lanes.push(Reverse(F(finish)));
        self.busy += duration + self.block_overhead;
        self.n_tasks += 1;
        if finish > self.last_finish {
            self.last_finish = finish;
        }
        finish
    }

    /// Total busy lane-time consumed so far.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Number of tasks scheduled.
    pub fn n_tasks(&self) -> u64 {
        self.n_tasks
    }

    /// Latest finish time over all scheduled tasks.
    pub fn last_finish(&self) -> f64 {
        self.last_finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn model(concurrency: usize) -> GpuModel {
        let mut g = MachineModel::perlmutter_gpu().gpu.unwrap();
        g.concurrency = concurrency;
        g.block_overhead = 0.0;
        g
    }

    #[test]
    fn serial_when_one_lane() {
        let mut ex = GpuExecutor::new(&model(1), 0.0);
        let f1 = ex.schedule(0.0, 1.0);
        let f2 = ex.schedule(0.0, 1.0);
        assert_eq!(f1, 1.0);
        assert_eq!(f2, 2.0);
    }

    #[test]
    fn parallel_when_many_lanes() {
        let mut ex = GpuExecutor::new(&model(4), 0.0);
        for _ in 0..4 {
            assert_eq!(ex.schedule(0.0, 1.0), 1.0);
        }
        // Fifth task waits for a lane.
        assert_eq!(ex.schedule(0.0, 1.0), 2.0);
        assert_eq!(ex.n_tasks(), 5);
        assert_eq!(ex.last_finish(), 2.0);
    }

    #[test]
    fn ready_time_respected() {
        let mut ex = GpuExecutor::new(&model(2), 0.0);
        let f = ex.schedule(10.0, 0.5);
        assert_eq!(f, 10.5);
    }

    #[test]
    fn launch_time_delays_everything() {
        let mut ex = GpuExecutor::new(&model(2), 3.0);
        assert_eq!(ex.schedule(0.0, 1.0), 4.0);
    }

    #[test]
    fn block_overhead_accrues() {
        let mut g = model(1);
        g.block_overhead = 0.25;
        let mut ex = GpuExecutor::new(&g, 0.0);
        let f1 = ex.schedule(0.0, 1.0);
        assert_eq!(f1, 1.25);
        assert!((ex.busy_time() - 1.25).abs() < 1e-12);
    }
}
