//! Lightweight metrics registry: named counters and fixed-bucket
//! histograms, merged across ranks at the end of a run.
//!
//! Unlike tracing (off by default, event-per-span), metrics are always on
//! and O(1) per observation, so they are safe to leave enabled in
//! benchmark runs. The simulator feeds `msgs.*` / `recv.*` series; the
//! solver interpreters add `pass.*` series. [`Metrics::to_json`] produces
//! a deterministic snapshot (BTreeMap ordering) for `--metrics-out`, and
//! [`Metrics::to_openmetrics`] renders the same registry in the
//! OpenMetrics/Prometheus text exposition format for live scraping
//! (DESIGN.md §14): counters gain the `_total` suffix, histograms emit
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, and `.` in
//! series names becomes `_`.
//!
//! Latency series use log2 bucket boundaries ([`log2_buckets`] /
//! [`latency_buckets`]): successive powers of two cover seven decades of
//! dynamic range in ~24 buckets with a constant relative quantization
//! error, which is what makes [`Histogram::percentile`] estimates (p50 /
//! p90 / p99 / p999) usable from the bucket counts alone.
//!
//! The catalog emitted by a solve:
//!
//! | name                       | type      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `msgs.sent`                | counter   | point-to-point messages injected          |
//! | `msgs.received`            | counter   | messages charged to a receiver            |
//! | `msgs.dup_injected`        | counter   | duplicate copies created by fault plans   |
//! | `msgs.dropped_duplicates`  | counter   | duplicates recognised and dropped         |
//! | `msgs.jitter_delayed`      | counter   | arrivals pushed back by injected jitter   |
//! | `msgs.bytes`               | histogram | wire bytes per message                    |
//! | `recv.wait_seconds`        | histogram | receiver blocked time per receive         |
//! | `recv.settle_waits`        | counter   | any-source settle windows actually taken  |
//! | `pass.spans`               | counter   | interpreter steps executed by 2D passes   |
//! | `pass.fmod_stalls`         | counter   | partial sums that left a row still waiting|
//! | `comm.z.bytes`             | counter   | inter-grid exchange payload bytes shipped |
//! | `comm.z.bytes_saved`       | counter   | payload bytes the live-support trim and   |
//! |                            |           | presence bitmaps cut vs the dense layout  |
//!
//! The batched serving front door (`sptrsv::service`) adds its own series
//! to the same registry:
//!
//! | name                       | type      | meaning                                   |
//! |----------------------------|-----------|-------------------------------------------|
//! | `service.requests`         | counter   | solve requests accepted into the queue    |
//! | `service.rejected`         | counter   | requests refused by a full queue (reject) |
//! | `service.blocked`          | counter   | submits that waited on a full queue       |
//! | `service.batches`          | counter   | batched solves dispatched                 |
//! | `service.flush.width`      | counter   | batches flushed by the max-width cutoff   |
//! | `service.flush.window`     | counter   | partial batches flushed by window expiry  |
//! | `service.flush.drain`      | counter   | batches flushed by the shutdown drain     |
//! | `service.batch_width`      | histogram | RHS columns per dispatched batch          |
//! | `service.queue_depth`      | histogram | queued requests observed at each submit   |
//! | `service.wait_seconds`     | histogram | request wait from enqueue to dispatch     |
//!
//! The live observability plane (DESIGN.md §14) decomposes per-request
//! latency into four log2-bucketed stages:
//!
//! | name                         | type      | meaning                                 |
//! |------------------------------|-----------|-----------------------------------------|
//! | `service.queue_wait_seconds` | histogram | per request: enqueue → batch dispatch   |
//! | `service.batch_form_seconds` | histogram | per batch: dispatch → mux complete      |
//! | `service.solve_seconds`      | histogram | per batch: the batched solve itself     |
//! | `service.demux_seconds`      | histogram | per batch: scatter results to slots     |

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Bucket upper bounds for message sizes (bytes).
pub const BYTE_BUCKETS: &[f64] = &[64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];

/// Bucket upper bounds for wait durations (seconds).
pub const WAIT_BUCKETS: &[f64] = &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

/// Bucket upper bounds for batch widths (RHS columns per batch).
pub const WIDTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket upper bounds for queue depths (requests).
pub const DEPTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Log2 bucket upper bounds: `2^min_pow, 2^(min_pow+1), …, 2^max_pow`.
///
/// Powers of two are exactly representable, so boundary observations land
/// deterministically and [`Histogram::merge_from`]'s bounds-equality check
/// holds across ranks without float-comparison surprises.
pub fn log2_buckets(min_pow: i32, max_pow: i32) -> Vec<f64> {
    assert!(min_pow <= max_pow, "log2_buckets: empty range");
    (min_pow..=max_pow).map(|p| (p as f64).exp2()).collect()
}

/// Shared log2 bounds for latency series (seconds): `2^-20` (~0.95 µs)
/// through `2^3` (8 s), 24 buckets plus overflow. Every latency histogram
/// in the registry uses these bounds so cross-rank merges line up.
pub fn latency_buckets() -> &'static [f64] {
    static BUCKETS: OnceLock<Vec<f64>> = OnceLock::new();
    BUCKETS.get_or_init(|| log2_buckets(-20, 3))
}

/// Fixed-bucket histogram: `counts[i]` tallies observations `≤ bounds[i]`,
/// with one overflow bucket at the end.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    n: u64,
}

impl Histogram {
    /// Empty histogram over ascending `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            n: 0,
        }
    }

    /// Rebuild a histogram from its raw parts (the inverse of reading
    /// [`bounds`](Histogram::bounds) / [`bucket_counts`](Histogram::bucket_counts) /
    /// [`sum`](Histogram::sum)) — how a histogram crosses a process
    /// boundary without replaying every observation.
    pub fn from_raw(bounds: Vec<f64>, counts: Vec<u64>, sum: f64) -> Self {
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "histogram counts must include the overflow bucket"
        );
        let n = counts.iter().sum();
        Histogram {
            bounds,
            counts,
            sum,
            n,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the bucket counts
    /// by linear interpolation inside the target bucket, Prometheus-style.
    ///
    /// The first bucket interpolates from 0; the overflow bucket clamps to
    /// the last finite bound (there is no upper edge to interpolate
    /// toward). Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile: q out of range");
        if self.n == 0 {
            return 0.0;
        }
        let target = q * self.n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += c;
            if cum as f64 >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: no finite upper edge.
                    return self.bounds.last().copied().unwrap_or(0.0);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Fold another histogram (same bounds) into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.n += other.n;
    }
}

/// A named-series registry of counters and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Pre-create counter `name` at zero. Hot paths call this during setup
    /// so their steady-state `inc` calls always hit the `get_mut` fast path
    /// and never allocate a map node.
    pub fn touch_counter(&mut self, name: &str) {
        self.inc(name, 0);
    }

    /// Pre-create histogram `name` with `bounds`, for the same reason as
    /// [`Metrics::touch_counter`].
    pub fn touch_histogram(&mut self, name: &str, bounds: &[f64]) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), Histogram::new(bounds));
        }
    }

    /// Record `v` into histogram `name` (created with `bounds` on first use).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Install a reconstructed histogram under `name`, merging into any
    /// existing series of the same name (deserialization path).
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        if let Some(mine) = self.histograms.get_mut(name) {
            mine.merge_from(&h);
        } else {
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (same-name histograms must
    /// share bucket bounds).
    pub fn merge_from(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge_from(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Deterministic JSON snapshot:
    /// `{"counters": {...}, "histograms": {name: {bounds, counts, count, sum, mean}}}`.
    pub fn to_json(&self) -> String {
        fn push_f64_list(out: &mut String, xs: &[f64]) {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{x:?}"));
            }
            out.push(']');
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{k}\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{k}\": {{\"bounds\": "));
            push_f64_list(&mut out, &h.bounds);
            out.push_str(", \"counts\": [");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!(
                "], \"count\": {}, \"sum\": {:?}, \"mean\": {:?}}}",
                h.n,
                h.sum,
                h.mean()
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// OpenMetrics text exposition of the registry, for live scraping.
    ///
    /// Dots in series names become underscores (`service.batches` →
    /// `service_batches_total`). Counters render as `# TYPE name counter` +
    /// `name_total value`; histograms render cumulative `name_bucket{le}`
    /// series ending in `le="+Inf"`, then `name_sum` / `name_count`. The
    /// output is deterministic (BTreeMap order) and ends with `# EOF`.
    pub fn to_openmetrics(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.replace('.', "_")
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} counter\n{name}_total {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &b) in h.bounds.iter().enumerate() {
                cum += h.counts[i];
                out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cum}\n"));
            }
            cum += h.counts[h.bounds.len()];
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.n));
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary goes into the ≤1.0 bucket
        h.observe(5.0);
        h.observe(100.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = Metrics::new();
        a.inc("x", 2);
        a.observe("h", &[1.0], 0.5);
        let mut b = Metrics::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe("h", &[1.0], 2.0);
        a.merge_from(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), &[1, 1]);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_parses() {
        let mut m = Metrics::new();
        m.inc("b.second", 2);
        m.inc("a.first", 1);
        m.observe("wait", &[1e-6, 1e-3], 5e-4);
        let js = m.to_json();
        assert_eq!(js, m.clone().to_json());
        // Name order is lexicographic regardless of insertion order.
        assert!(js.find("a.first").unwrap() < js.find("b.second").unwrap());
        let v: serde_json::Value = serde_json::from_str(&js).expect("valid JSON");
        let counters = v.get("counters").expect("counters");
        assert_eq!(counters.get("a.first"), Some(&serde_json::Value::Int(1)));
        let h = v.get("histograms").and_then(|h| h.get("wait")).unwrap();
        assert_eq!(h.get("count"), Some(&serde_json::Value::Int(1)));
    }

    #[test]
    fn empty_registry_renders() {
        let m = Metrics::new();
        assert!(m.is_empty());
        let v: Result<serde_json::Value, _> = serde_json::from_str(&m.to_json());
        assert!(v.is_ok());
    }

    #[test]
    fn log2_bucket_boundaries_are_exact_powers() {
        let b = log2_buckets(-3, 3);
        assert_eq!(b, vec![0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]);
        let lat = latency_buckets();
        assert_eq!(lat.len(), 24);
        assert_eq!(lat[0], (-20f64).exp2());
        assert_eq!(*lat.last().unwrap(), 8.0);
        // Exact doubling everywhere: boundary observations are deterministic.
        for w in lat.windows(2) {
            assert_eq!(w[1], w[0] * 2.0);
        }
        // Same statics pointer across calls — no per-call allocation.
        assert!(std::ptr::eq(lat.as_ptr(), latency_buckets().as_ptr()));
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.percentile(0.5), 0.0); // empty
        for _ in 0..10 {
            h.observe(1.5); // all ten land in the (1, 2] bucket
        }
        // Median of a uniformly-interpolated (1, 2] bucket: halfway.
        assert!((h.percentile(0.5) - 1.5).abs() < 1e-12);
        assert!((h.percentile(0.1) - 1.1).abs() < 1e-12);
        assert!((h.percentile(1.0) - 2.0).abs() < 1e-12);
        // First bucket interpolates from zero.
        let mut h0 = Histogram::new(&[1.0, 2.0]);
        h0.observe(0.5);
        h0.observe(0.5);
        assert!((h0.percentile(0.5) - 0.5).abs() < 1e-12);
        // Overflow observations clamp to the last finite bound.
        let mut ho = Histogram::new(&[1.0, 2.0]);
        ho.observe(100.0);
        assert_eq!(ho.percentile(0.99), 2.0);
    }

    #[test]
    fn percentiles_survive_merge_across_ranks() {
        // Two "ranks" each record half the observations; the merged
        // histogram must report the same percentiles as one rank that saw
        // everything.
        let bounds = log2_buckets(-4, 4);
        let mut all = Histogram::new(&bounds);
        let mut a = Histogram::new(&bounds);
        let mut b = Histogram::new(&bounds);
        for i in 0..100 {
            let v = 0.07 + (i as f64) * 0.11;
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
    }

    #[test]
    fn openmetrics_rendering_is_cumulative_and_terminated() {
        let mut m = Metrics::new();
        m.inc("service.requests", 7);
        m.observe("service.wait_seconds", &[0.5, 1.0], 0.25);
        m.observe("service.wait_seconds", &[0.5, 1.0], 0.75);
        m.observe("service.wait_seconds", &[0.5, 1.0], 9.0);
        let text = m.to_openmetrics();
        assert!(text.contains("# TYPE service_requests counter\n"));
        assert!(text.contains("service_requests_total 7\n"));
        assert!(text.contains("# TYPE service_wait_seconds histogram\n"));
        assert!(text.contains("service_wait_seconds_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("service_wait_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("service_wait_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("service_wait_seconds_count 3\n"));
        assert!(text.ends_with("# EOF\n"));
        // Deterministic output.
        assert_eq!(text, m.to_openmetrics());
    }
}
