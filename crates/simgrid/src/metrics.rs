//! Lightweight metrics registry: named counters and fixed-bucket
//! histograms, merged across ranks at the end of a run.
//!
//! Unlike tracing (off by default, event-per-span), metrics are always on
//! and O(1) per observation, so they are safe to leave enabled in
//! benchmark runs. The simulator feeds `msgs.*` / `recv.*` series; the
//! solver interpreters add `pass.*` series. [`Metrics::to_json`] produces
//! a deterministic snapshot (BTreeMap ordering) for `--metrics-out`.
//!
//! The catalog emitted by a solve:
//!
//! | name                       | type      | meaning                                  |
//! |----------------------------|-----------|------------------------------------------|
//! | `msgs.sent`                | counter   | point-to-point messages injected          |
//! | `msgs.received`            | counter   | messages charged to a receiver            |
//! | `msgs.dup_injected`        | counter   | duplicate copies created by fault plans   |
//! | `msgs.dropped_duplicates`  | counter   | duplicates recognised and dropped         |
//! | `msgs.jitter_delayed`      | counter   | arrivals pushed back by injected jitter   |
//! | `msgs.bytes`               | histogram | wire bytes per message                    |
//! | `recv.wait_seconds`        | histogram | receiver blocked time per receive         |
//! | `recv.settle_waits`        | counter   | any-source settle windows actually taken  |
//! | `pass.spans`               | counter   | interpreter steps executed by 2D passes   |
//! | `pass.fmod_stalls`         | counter   | partial sums that left a row still waiting|
//!
//! The batched serving front door (`sptrsv::service`) adds its own series
//! to the same registry:
//!
//! | name                       | type      | meaning                                   |
//! |----------------------------|-----------|-------------------------------------------|
//! | `service.requests`         | counter   | solve requests accepted into the queue    |
//! | `service.rejected`         | counter   | requests refused by a full queue (reject) |
//! | `service.blocked`          | counter   | submits that waited on a full queue       |
//! | `service.batches`          | counter   | batched solves dispatched                 |
//! | `service.flush.width`      | counter   | batches flushed by the max-width cutoff   |
//! | `service.flush.window`     | counter   | partial batches flushed by window expiry  |
//! | `service.flush.drain`      | counter   | batches flushed by the shutdown drain     |
//! | `service.batch_width`      | histogram | RHS columns per dispatched batch          |
//! | `service.queue_depth`      | histogram | queued requests observed at each submit   |
//! | `service.wait_seconds`     | histogram | request wait from enqueue to dispatch     |

use std::collections::BTreeMap;

/// Bucket upper bounds for message sizes (bytes).
pub const BYTE_BUCKETS: &[f64] = &[64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0];

/// Bucket upper bounds for wait durations (seconds).
pub const WAIT_BUCKETS: &[f64] = &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

/// Bucket upper bounds for batch widths (RHS columns per batch).
pub const WIDTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket upper bounds for queue depths (requests).
pub const DEPTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Fixed-bucket histogram: `counts[i]` tallies observations `≤ bounds[i]`,
/// with one overflow bucket at the end.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    n: u64,
}

impl Histogram {
    /// Empty histogram over ascending `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            n: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram (same bounds) into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.n += other.n;
    }
}

/// A named-series registry of counters and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Pre-create counter `name` at zero. Hot paths call this during setup
    /// so their steady-state `inc` calls always hit the `get_mut` fast path
    /// and never allocate a map node.
    pub fn touch_counter(&mut self, name: &str) {
        self.inc(name, 0);
    }

    /// Pre-create histogram `name` with `bounds`, for the same reason as
    /// [`Metrics::touch_counter`].
    pub fn touch_histogram(&mut self, name: &str, bounds: &[f64]) {
        if !self.histograms.contains_key(name) {
            self.histograms
                .insert(name.to_string(), Histogram::new(bounds));
        }
    }

    /// Record `v` into histogram `name` (created with `bounds` on first use).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (same-name histograms must
    /// share bucket bounds).
    pub fn merge_from(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge_from(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// Deterministic JSON snapshot:
    /// `{"counters": {...}, "histograms": {name: {bounds, counts, count, sum, mean}}}`.
    pub fn to_json(&self) -> String {
        fn push_f64_list(out: &mut String, xs: &[f64]) {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{x:?}"));
            }
            out.push(']');
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{k}\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{k}\": {{\"bounds\": "));
            push_f64_list(&mut out, &h.bounds);
            out.push_str(", \"counts\": [");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str(&format!(
                "], \"count\": {}, \"sum\": {:?}, \"mean\": {:?}}}",
                h.n,
                h.sum,
                h.mean()
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary goes into the ≤1.0 bucket
        h.observe(5.0);
        h.observe(100.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = Metrics::new();
        a.inc("x", 2);
        a.observe("h", &[1.0], 0.5);
        let mut b = Metrics::new();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe("h", &[1.0], 2.0);
        a.merge_from(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), &[1, 1]);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_parses() {
        let mut m = Metrics::new();
        m.inc("b.second", 2);
        m.inc("a.first", 1);
        m.observe("wait", &[1e-6, 1e-3], 5e-4);
        let js = m.to_json();
        assert_eq!(js, m.clone().to_json());
        // Name order is lexicographic regardless of insertion order.
        assert!(js.find("a.first").unwrap() < js.find("b.second").unwrap());
        let v: serde_json::Value = serde_json::from_str(&js).expect("valid JSON");
        let counters = v.get("counters").expect("counters");
        assert_eq!(counters.get("a.first"), Some(&serde_json::Value::Int(1)));
        let h = v.get("histograms").and_then(|h| h.get("wait")).unwrap();
        assert_eq!(h.get("count"), Some(&serde_json::Value::Int(1)));
    }

    #[test]
    fn empty_registry_renders() {
        let m = Metrics::new();
        assert!(m.is_empty());
        let v: Result<serde_json::Value, _> = serde_json::from_str(&m.to_json());
        assert!(v.is_ok());
    }
}
