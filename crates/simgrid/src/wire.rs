//! The wire envelope: where zero-copy ends.
//!
//! In-process backends (the simulator, `comm_native`) move a
//! [`Payload`](crate::transport::Payload) by bumping an `Arc` refcount —
//! sender and receiver literally share the buffer. A process-per-rank
//! backend cannot: the payload must be *serialized* across the address
//! space boundary. This module defines that serialization once, so every
//! socket-class transport frames messages identically and a frame written
//! by one backend version is rejected (not misparsed) by another.
//!
//! ## Frame layout
//!
//! All integers little-endian; `f64` words travel as their IEEE-754 bit
//! patterns (`f64::to_bits`), so finite values, infinities, and the NaN
//! bit patterns used by presence bitmaps round-trip *bit-exactly*.
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"SPTV"
//!      4     2  version (currently 1)
//!      6     2  flags   (bit 0: frame carries presence-bitmap words)
//!      8     8  frame_len — bytes that FOLLOW this field (= 40 + 8·body_len)
//!     16     8  comm_id — communicator the message belongs to
//!     24     4  src — sender's rank within comm_id
//!     28     4  bitmap_words — trailing body words that are presence-bitmap
//!               bit patterns (PR 9's occupancy format), 0 when none
//!     32     8  tag (epoch/kind/supernode encoding of `core`)
//!     40     8  seq — cluster-unique message id
//!     48     8  body_len — payload length in f64 words
//!     56   8·n  body — body_len × f64::to_bits, little-endian
//! ```
//!
//! `frame_len` is the length prefix: a streaming reader reads the 16-byte
//! preamble, validates it, then reads exactly `frame_len` more bytes — a
//! corrupt or truncated frame yields a typed [`WireError`], never a panic
//! and never a partially delivered message.

use crate::metrics::{Histogram, Metrics};
use crate::stats::{Category, RankStats, CATEGORIES, N_CATEGORIES};
use crate::trace::{EventKind, FaultMark, MsgInfo, SpanDetail, TraceEvent, TreeRole};
use crate::transport::Payload;
use std::fmt;
use std::io::Read;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SPTV";

/// Wire-format version; bumped on any layout change.
pub const VERSION: u16 = 1;

/// Flag bit 0: the body's trailing `bitmap_words` words are presence-bitmap
/// bit patterns rather than numeric values.
pub const FLAG_BITMAP: u16 = 1;

/// Maximum accepted body length in f64 words (2 GiB of payload). A corrupt
/// length field must not drive a multi-terabyte allocation.
pub const MAX_BODY_WORDS: u64 = 1 << 28;

/// Fixed byte count of the fields covered by `frame_len` (everything after
/// the length prefix, minus the body).
const POST_LEN_FIXED: u64 = 40;

/// Typed decode failure. Every corrupt, truncated, or foreign input maps
/// to one of these — decoding never panics and never yields a partial
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure it promised.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version.
    BadVersion(u16),
    /// Declared body length exceeds [`MAX_BODY_WORDS`].
    Oversize {
        /// Declared body length in f64 words.
        words: u64,
    },
    /// `frame_len` and `body_len` disagree.
    LengthMismatch {
        /// Bytes declared by `frame_len`.
        declared: u64,
        /// Bytes implied by `body_len`.
        actual: u64,
    },
    /// `bitmap_words` claims more words than the body holds.
    BitmapOverrun {
        /// Declared bitmap word count.
        bitmap_words: u32,
        /// Declared body word count.
        body_words: u64,
    },
    /// A packed structure failed validation (bad discriminant, bad UTF-8).
    Malformed(&'static str),
    /// The stream closed cleanly on a frame boundary (EOF before any byte
    /// of a new frame) — the peer hung up, not a corruption.
    Closed,
    /// An I/O error from the underlying stream.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Oversize { words } => {
                write!(
                    f,
                    "frame body of {words} words exceeds the {MAX_BODY_WORDS}-word cap"
                )
            }
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "frame length mismatch: prefix declares {declared} bytes, body implies {actual}")
            }
            WireError::BitmapOverrun {
                bitmap_words,
                body_words,
            } => write!(
                f,
                "bitmap_words {bitmap_words} exceeds body of {body_words} words"
            ),
            WireError::Malformed(what) => write!(f, "malformed frame content: {what}"),
            WireError::Closed => write!(f, "stream closed on a frame boundary"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoded frame envelope (everything but the body).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Communicator the message belongs to.
    pub comm_id: u64,
    /// Sender's rank within `comm_id`.
    pub src: u32,
    /// Trailing body words holding presence-bitmap bit patterns (0: none).
    pub bitmap_words: u32,
    /// Message tag.
    pub tag: u64,
    /// Cluster-unique message id.
    pub seq: u64,
}

// ---- little-endian put helpers (encoding) ----

/// Append one raw byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append `v` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `v` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `v` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `v` as its IEEE-754 bit pattern, little-endian (bit-exact for
/// every value, NaN payloads included).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounds-checked little-endian cursor over a byte buffer (decoding).
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume one raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Append one complete frame for `(header, body)` to `out` (which is not
/// cleared — callers batch frames or reuse a scratch buffer).
pub fn encode_frame(out: &mut Vec<u8>, h: &FrameHeader, body: &[f64]) {
    out.extend_from_slice(&MAGIC);
    put_u16(out, VERSION);
    put_u16(out, if h.bitmap_words > 0 { FLAG_BITMAP } else { 0 });
    put_u64(out, POST_LEN_FIXED + 8 * body.len() as u64);
    put_u64(out, h.comm_id);
    put_u32(out, h.src);
    put_u32(out, h.bitmap_words);
    put_u64(out, h.tag);
    put_u64(out, h.seq);
    put_u64(out, body.len() as u64);
    for &v in body {
        put_f64(out, v);
    }
}

/// Validate the 16-byte preamble; returns `frame_len` (bytes after it).
fn check_preamble(r: &mut WireReader<'_>) -> Result<u64, WireError> {
    let magic: [u8; 4] = r.take(4)?.try_into().unwrap();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let _flags = r.u16()?;
    let frame_len = r.u64()?;
    if !(POST_LEN_FIXED..=POST_LEN_FIXED + 8 * MAX_BODY_WORDS).contains(&frame_len) {
        return Err(WireError::Oversize {
            words: frame_len.saturating_sub(POST_LEN_FIXED) / 8,
        });
    }
    Ok(frame_len)
}

/// Parse the post-preamble fields (header + body) from a cursor holding
/// exactly `frame_len` bytes.
fn parse_rest(r: &mut WireReader<'_>, frame_len: u64) -> Result<(FrameHeader, Payload), WireError> {
    let comm_id = r.u64()?;
    let src = r.u32()?;
    let bitmap_words = r.u32()?;
    let tag = r.u64()?;
    let seq = r.u64()?;
    let body_len = r.u64()?;
    if body_len > MAX_BODY_WORDS {
        return Err(WireError::Oversize { words: body_len });
    }
    let actual = POST_LEN_FIXED + 8 * body_len;
    if actual != frame_len {
        return Err(WireError::LengthMismatch {
            declared: frame_len,
            actual,
        });
    }
    if bitmap_words as u64 > body_len {
        return Err(WireError::BitmapOverrun {
            bitmap_words,
            body_words: body_len,
        });
    }
    let mut body = Vec::with_capacity(body_len as usize);
    for _ in 0..body_len {
        body.push(r.f64()?);
    }
    let header = FrameHeader {
        comm_id,
        src,
        bitmap_words,
        tag,
        seq,
    };
    Ok((header, body.into()))
}

/// Decode one complete frame from the front of `buf`. Returns the header,
/// the body (copied into a fresh [`Payload`] — this is the point where
/// zero-copy genuinely ends), and the number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameHeader, Payload, usize), WireError> {
    let mut r = WireReader::new(buf);
    let frame_len = check_preamble(&mut r)?;
    if (r.remaining() as u64) < frame_len {
        return Err(WireError::Truncated {
            need: frame_len as usize,
            have: r.remaining(),
        });
    }
    let (h, body) = parse_rest(&mut r, frame_len)?;
    Ok((h, body, 16 + frame_len as usize))
}

/// Read one frame from a byte stream: the 16-byte preamble, then exactly
/// `frame_len` more bytes into `scratch` (reused across calls so the
/// steady state allocates only the payload). A clean EOF *between* frames
/// returns [`WireError::Closed`]; an EOF mid-frame is [`WireError::Io`].
pub fn read_frame<S: Read>(
    stream: &mut S,
    scratch: &mut Vec<u8>,
) -> Result<(FrameHeader, Payload), WireError> {
    let mut preamble = [0u8; 16];
    let mut got = 0;
    while got < preamble.len() {
        match stream.read(&mut preamble[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(format!(
                    "eof after {got} bytes of a frame preamble"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let mut r = WireReader::new(&preamble);
    let frame_len = check_preamble(&mut r)?;
    scratch.clear();
    scratch.resize(frame_len as usize, 0);
    stream
        .read_exact(scratch)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let mut r = WireReader::new(scratch);
    parse_rest(&mut r, frame_len)
}

/// Binary pack/unpack for structures that cross the process boundary out
/// of band (rank results, statistics). Same conventions as the frame body:
/// little-endian integers, `f64` as bit patterns.
pub trait WirePack: Sized {
    /// Append this value's encoding to `out`.
    fn pack(&self, out: &mut Vec<u8>);
    /// Decode one value from the cursor.
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl WirePack for u32 {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl WirePack for u64 {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl WirePack for f64 {
    fn pack(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl WirePack for String {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.u64()?;
        if len > (1 << 20) {
            return Err(WireError::Malformed("string length over 1 MiB"));
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
    }
}

impl<T: WirePack> WirePack for Vec<T> {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        for v in self {
            v.pack(out);
        }
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.u64()?;
        // Each element consumes at least one byte; a corrupt count cannot
        // force an allocation larger than the buffer it must fill from.
        if len as usize > r.remaining() {
            return Err(WireError::Truncated {
                need: len as usize,
                have: r.remaining(),
            });
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(T::unpack(r)?);
        }
        Ok(v)
    }
}

impl<A: WirePack, B: WirePack> WirePack for (A, B) {
    fn pack(&self, out: &mut Vec<u8>) {
        self.0.pack(out);
        self.1.pack(out);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::unpack(r)?, B::unpack(r)?))
    }
}

impl<A: WirePack, B: WirePack, C: WirePack> WirePack for (A, B, C) {
    fn pack(&self, out: &mut Vec<u8>) {
        self.0.pack(out);
        self.1.pack(out);
        self.2.pack(out);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?))
    }
}

impl WirePack for () {
    fn pack(&self, _out: &mut Vec<u8>) {}
    fn unpack(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: WirePack> WirePack for Option<T> {
    fn pack(&self, out: &mut Vec<u8>) {
        match self {
            None => put_u8(out, 0),
            Some(v) => {
                put_u8(out, 1);
                v.pack(out);
            }
        }
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            _ => Err(WireError::Malformed("option discriminant")),
        }
    }
}

// ---- pack impls for the run artifacts a process-per-rank backend ships
// ---- back over its result channel (statistics, metrics, flight spans).

impl WirePack for RankStats {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u64(out, self.rank as u64);
        for v in self.time {
            put_f64(out, v);
        }
        for v in self.bytes_sent {
            put_u64(out, v);
        }
        for v in self.msgs_sent {
            put_u64(out, v);
        }
        put_f64(out, self.final_clock);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut s = RankStats::new(r.u64()? as usize);
        for i in 0..N_CATEGORIES {
            s.time[i] = r.f64()?;
        }
        for i in 0..N_CATEGORIES {
            s.bytes_sent[i] = r.u64()?;
        }
        for i in 0..N_CATEGORIES {
            s.msgs_sent[i] = r.u64()?;
        }
        s.final_clock = r.f64()?;
        Ok(s)
    }
}

impl WirePack for Metrics {
    fn pack(&self, out: &mut Vec<u8>) {
        let counters: Vec<(String, u64)> =
            self.counters().map(|(k, v)| (k.to_string(), v)).collect();
        counters.pack(out);
        let hists: Vec<(&str, &Histogram)> = self.histograms().collect();
        put_u64(out, hists.len() as u64);
        for (name, h) in hists {
            name.to_string().pack(out);
            h.bounds().to_vec().pack(out);
            h.bucket_counts().to_vec().pack(out);
            put_f64(out, h.sum());
        }
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut m = Metrics::new();
        for (k, v) in Vec::<(String, u64)>::unpack(r)? {
            m.inc(&k, v);
        }
        let n = r.u64()?;
        if n as usize > r.remaining() {
            return Err(WireError::Truncated {
                need: n as usize,
                have: r.remaining(),
            });
        }
        for _ in 0..n {
            let name = String::unpack(r)?;
            let bounds: Vec<f64> = Vec::unpack(r)?;
            let counts: Vec<u64> = Vec::unpack(r)?;
            let sum = r.f64()?;
            if counts.len() != bounds.len() + 1 {
                return Err(WireError::Malformed("histogram bucket count mismatch"));
            }
            m.insert_histogram(&name, Histogram::from_raw(bounds, counts, sum));
        }
        Ok(m)
    }
}

impl WirePack for Category {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u8(out, *self as u8);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let idx = r.u8()? as usize;
        CATEGORIES
            .get(idx)
            .copied()
            .ok_or(WireError::Malformed("category discriminant"))
    }
}

impl WirePack for EventKind {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self {
                EventKind::Compute => 0,
                EventKind::Send => 1,
                EventKind::Recv => 2,
            },
        );
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(EventKind::Compute),
            1 => Ok(EventKind::Send),
            2 => Ok(EventKind::Recv),
            _ => Err(WireError::Malformed("event kind discriminant")),
        }
    }
}

impl WirePack for TreeRole {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self {
                TreeRole::Diag => 0,
                TreeRole::Apply => 1,
                TreeRole::Bcast => 2,
                TreeRole::Reduce => 3,
            },
        );
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(TreeRole::Diag),
            1 => Ok(TreeRole::Apply),
            2 => Ok(TreeRole::Bcast),
            3 => Ok(TreeRole::Reduce),
            _ => Err(WireError::Malformed("tree role discriminant")),
        }
    }
}

impl WirePack for FaultMark {
    fn pack(&self, out: &mut Vec<u8>) {
        let bits = self.jitter_delayed as u8
            | (self.duplicate as u8) << 1
            | (self.dropped_duplicate as u8) << 2;
        put_u8(out, bits);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bits = r.u8()?;
        if bits > 0b111 {
            return Err(WireError::Malformed("fault mark bits"));
        }
        Ok(FaultMark {
            jitter_delayed: bits & 1 != 0,
            duplicate: bits & 2 != 0,
            dropped_duplicate: bits & 4 != 0,
        })
    }
}

impl WirePack for MsgInfo {
    fn pack(&self, out: &mut Vec<u8>) {
        put_u64(out, self.peer as u64);
        put_u64(out, self.bytes as u64);
        put_u64(out, self.tag);
        put_u64(out, self.seq);
        put_f64(out, self.arrival);
        self.faults.pack(out);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MsgInfo {
            peer: r.u64()? as usize,
            bytes: r.u64()? as usize,
            tag: r.u64()?,
            seq: r.u64()?,
            arrival: r.f64()?,
            faults: FaultMark::unpack(r)?,
        })
    }
}

impl WirePack for SpanDetail {
    fn pack(&self, out: &mut Vec<u8>) {
        match *self {
            SpanDetail::Pass {
                epoch,
                step,
                sup,
                role,
            } => {
                put_u8(out, 0);
                put_u64(out, epoch);
                put_u32(out, step);
                put_u32(out, sup);
                role.pack(out);
            }
            SpanDetail::Allreduce { round, role } => {
                put_u8(out, 1);
                put_u32(out, round);
                role.pack(out);
            }
            SpanDetail::ZExchangeTrim {
                round,
                role,
                saved_doubles,
            } => {
                put_u8(out, 2);
                put_u32(out, round);
                role.pack(out);
                put_u64(out, saved_doubles);
            }
            SpanDetail::NaiveAllreduce { node } => {
                put_u8(out, 3);
                put_u32(out, node);
            }
            SpanDetail::ZExchange { level, reduce } => {
                put_u8(out, 4);
                put_u32(out, level);
                put_u8(out, reduce as u8);
            }
            SpanDetail::GpuPass { epoch, tasks } => {
                put_u8(out, 5);
                put_u64(out, epoch);
                put_u64(out, tasks);
            }
            SpanDetail::LevelBarrier { epoch, level, sup } => {
                put_u8(out, 6);
                put_u64(out, epoch);
                put_u32(out, level);
                put_u32(out, sup);
            }
        }
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SpanDetail::Pass {
                epoch: r.u64()?,
                step: r.u32()?,
                sup: r.u32()?,
                role: TreeRole::unpack(r)?,
            }),
            1 => Ok(SpanDetail::Allreduce {
                round: r.u32()?,
                role: TreeRole::unpack(r)?,
            }),
            2 => Ok(SpanDetail::ZExchangeTrim {
                round: r.u32()?,
                role: TreeRole::unpack(r)?,
                saved_doubles: r.u64()?,
            }),
            3 => Ok(SpanDetail::NaiveAllreduce { node: r.u32()? }),
            4 => Ok(SpanDetail::ZExchange {
                level: r.u32()?,
                reduce: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bool discriminant")),
                },
            }),
            5 => Ok(SpanDetail::GpuPass {
                epoch: r.u64()?,
                tasks: r.u64()?,
            }),
            6 => Ok(SpanDetail::LevelBarrier {
                epoch: r.u64()?,
                level: r.u32()?,
                sup: r.u32()?,
            }),
            _ => Err(WireError::Malformed("span detail discriminant")),
        }
    }
}

impl WirePack for TraceEvent {
    fn pack(&self, out: &mut Vec<u8>) {
        put_f64(out, self.t0);
        put_f64(out, self.t1);
        self.kind.pack(out);
        self.category.pack(out);
        self.msg.pack(out);
        self.detail.pack(out);
    }
    fn unpack(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceEvent {
            t0: r.f64()?,
            t1: r.f64()?,
            kind: EventKind::unpack(r)?,
            category: Category::unpack(r)?,
            msg: Option::unpack(r)?,
            detail: Option::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> FrameHeader {
        FrameHeader {
            comm_id: 7,
            src: 3,
            bitmap_words: 1,
            tag: (0x5 << 48) | 42,
            seq: (4 << 32) | 9,
        }
    }

    #[test]
    fn frame_round_trips_bit_exactly() {
        let body = [1.5, -0.0, f64::NAN, f64::INFINITY, 3e300, 1e-300];
        let mut buf = Vec::new();
        encode_frame(&mut buf, &header(), &body);
        let (h, payload, used) = decode_frame(&buf).expect("decode");
        assert_eq!(h, header());
        assert_eq!(used, buf.len());
        assert_eq!(payload.len(), body.len());
        for (a, b) in payload.iter().zip(body.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn streaming_reader_matches_in_memory_decoder() {
        let empty = FrameHeader {
            bitmap_words: 0,
            ..header()
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &header(), &[2.0, 4.0]);
        encode_frame(&mut buf, &empty, &[]);
        let mut stream: &[u8] = &buf;
        let mut scratch = Vec::new();
        let (h1, p1) = read_frame(&mut stream, &mut scratch).expect("frame 1");
        let (h2, p2) = read_frame(&mut stream, &mut scratch).expect("frame 2");
        assert_eq!((h1, h2), (header(), empty));
        assert_eq!((&p1[..], p2.len()), (&[2.0, 4.0][..], 0));
        assert_eq!(
            read_frame(&mut stream, &mut scratch),
            Err(WireError::Closed)
        );
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &header(), &[1.0]);
        // Magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));
        // Version.
        let mut bad = buf.clone();
        bad[4] = 0x7f;
        assert!(matches!(decode_frame(&bad), Err(WireError::BadVersion(_))));
        // Oversize length prefix.
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::Oversize { .. })
        ));
        // Inconsistent body_len.
        let mut bad = buf.clone();
        bad[48..56].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::LengthMismatch { .. })
        ));
        // Bitmap overrun: more bitmap words than body words.
        let mut bad = buf.clone();
        bad[28..32].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::BitmapOverrun { .. })
        ));
        // Every truncation point fails typed, never panics.
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wirepack_round_trips_nested_structures() {
        let v: Vec<(u32, Vec<f64>)> = vec![(3, vec![1.0, f64::NEG_INFINITY]), (9, vec![])];
        let mut buf = Vec::new();
        v.pack(&mut buf);
        "hello".to_string().pack(&mut buf);
        let mut r = WireReader::new(&buf);
        let got: Vec<(u32, Vec<f64>)> = WirePack::unpack(&mut r).expect("vec");
        let s = String::unpack(&mut r).expect("string");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 3);
        assert_eq!(got[0].1[1].to_bits(), f64::NEG_INFINITY.to_bits());
        assert_eq!((got[1].0, got[1].1.len(), s.as_str()), (9, 0, "hello"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn run_artifacts_round_trip() {
        let mut stats = RankStats::new(5);
        stats.time[0] = 1.25;
        stats.bytes_sent[2] = 4096;
        stats.msgs_sent[1] = 7;
        stats.final_clock = 9.5;
        let mut metrics = Metrics::new();
        metrics.inc("msgs.sent", 12);
        metrics.observe("msgs.bytes", crate::metrics::BYTE_BUCKETS, 100.0);
        metrics.observe("msgs.bytes", crate::metrics::BYTE_BUCKETS, 1e9);
        let event = TraceEvent {
            t0: 0.5,
            t1: 0.75,
            kind: EventKind::Recv,
            category: Category::ZComm,
            msg: Some(MsgInfo {
                peer: 3,
                bytes: 128,
                tag: 0x7 << 48,
                seq: (6 << 32) | 2,
                arrival: 0.6,
                faults: FaultMark {
                    jitter_delayed: true,
                    ..FaultMark::default()
                },
            }),
            detail: Some(SpanDetail::Allreduce {
                round: 2,
                role: TreeRole::Reduce,
            }),
        };
        let mut buf = Vec::new();
        stats.pack(&mut buf);
        metrics.pack(&mut buf);
        vec![event, TraceEvent::compute(1.0, 2.0, Category::Flop)].pack(&mut buf);
        let mut r = WireReader::new(&buf);
        let s2 = RankStats::unpack(&mut r).expect("stats");
        let m2 = Metrics::unpack(&mut r).expect("metrics");
        let ev2: Vec<TraceEvent> = Vec::unpack(&mut r).expect("events");
        assert_eq!(r.remaining(), 0);
        assert_eq!(
            (s2.rank, s2.time[0], s2.bytes_sent[2], s2.msgs_sent[1]),
            (5, 1.25, 4096, 7)
        );
        assert_eq!(s2.final_clock, 9.5);
        assert_eq!(m2.counter("msgs.sent"), 12);
        let h = m2.histogram("msgs.bytes").expect("histogram crossed");
        assert_eq!((h.count(), h.sum()), (2, 100.0 + 1e9));
        assert_eq!(
            h.bucket_counts(),
            metrics.histogram("msgs.bytes").unwrap().bucket_counts()
        );
        assert_eq!(
            ev2,
            vec![event, TraceEvent::compute(1.0, 2.0, Category::Flop)]
        );
    }
}
