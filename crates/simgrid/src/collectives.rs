//! The one binomial collective shape every backend reduces in.
//!
//! Bit-identical solutions across transports rest on the collectives
//! having a *fixed floating-point reduction order*: the binomial tree
//! decides who sums whose contribution and in which sequence, not message
//! arrival. That shape used to be duplicated — once in the simulator, once
//! in `comm_native` — with a comment promising they matched. Now there is
//! exactly one copy, generic over [`Transport`], and the simulator, the
//! threaded backend, and the process backend all call it; a backend cannot
//! drift out of the shape without every conformance suite failing.
//!
//! Tag sequencing stays per-backend: callers allocate a fresh collective
//! tag block (their `coll_tag` scheme) and pass it in, which is what keeps
//! successive collectives on one communicator from confusing each other's
//! messages even under duplicated or delayed deliveries.

use crate::stats::Category;
use crate::transport::Transport;

/// Binomial reduce-to-rank-0 (sum) followed by a binomial broadcast back
/// down the same tree: the shared body of `allreduce_sum` and `barrier`.
///
/// Uses `tag` for the reduction leg and `tag + 1` for the broadcast leg;
/// callers reserve at least two tags per invocation.
pub fn reduce_bcast<T: Transport>(t: &T, tag: u64, data: &mut [f64], cat: Category) {
    let size = t.size();
    let me = t.rank();
    // Reduce: at distance d, odd multiples of d send to the even multiple
    // d below them, which accumulates in ascending-child order.
    let mut d = 1;
    while d < size {
        if me % (2 * d) == d {
            t.send(me - d, tag, data, cat);
            break;
        } else if me.is_multiple_of(2 * d) && me + d < size {
            let m = t.recv(Some(me + d), Some(tag), cat);
            for (a, b) in data.iter_mut().zip(m.payload.iter()) {
                *a += *b;
            }
        }
        d *= 2;
    }
    // Broadcast back down the same binomial tree, top-down.
    let mut levels = Vec::new();
    let mut d = 1;
    while d < size {
        levels.push(d);
        d *= 2;
    }
    for &d in levels.iter().rev() {
        if me.is_multiple_of(2 * d) && me + d < size {
            t.send(me + d, tag + 1, data, cat);
        } else if me % (2 * d) == d {
            let m = t.recv(Some(me - d), Some(tag + 1), cat);
            data.copy_from_slice(&m.payload);
        }
    }
}

/// Binomial broadcast of `data` from `root`: ranks are rotated so `root`
/// sits at virtual rank 0, then the tree unrolls top-down. Uses `tag`
/// only; callers reserve at least one tag per invocation.
pub fn bcast_from<T: Transport>(t: &T, root: usize, tag: u64, data: &mut [f64], cat: Category) {
    let size = t.size();
    let vrank = |r: usize| (r + size - root) % size;
    let unrot = |v: usize| (v + root) % size;
    let me = vrank(t.rank());
    let mut levels = Vec::new();
    let mut d = 1;
    while d < size {
        levels.push(d);
        d *= 2;
    }
    for &d in levels.iter().rev() {
        if me.is_multiple_of(2 * d) && me + d < size {
            t.send(unrot(me + d), tag, data, cat);
        } else if me % (2 * d) == d {
            let m = t.recv(Some(unrot(me - d)), Some(tag), cat);
            data.copy_from_slice(&m.payload);
        }
    }
}
