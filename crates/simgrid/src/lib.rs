//! Virtual-time message-passing cluster simulator.
//!
//! The paper's experiments run MPI (+ NVSHMEM) on Cori, Perlmutter and
//! Crusher. None of that exists in this environment, so this crate provides
//! the substitute substrate: every *rank* is an OS thread carrying a
//! **virtual clock**; messages move real data between rank mailboxes and
//! advance virtual time according to an α–β (latency + bandwidth) machine
//! model with distinct intra-node and inter-node links.
//!
//! Key property: timing is *passive*. A send stamps its arrival time from
//! the sender's clock and the link cost; a receive sets the receiver's clock
//! to `max(own clock, arrival)`. No global scheduler exists, so thousands of
//! ranks simulate on one core, and the numerics are bit-for-bit real — the
//! same run validates correctness and produces the paper's timing shapes.
//!
//! Approximation (documented in DESIGN.md): an any-source receive takes the
//! earliest-arrival message among those *currently queued*; a message still
//! in flight in real time with an earlier virtual arrival may be passed
//! over. This mirrors the nondeterminism of real `MPI_ANY_SOURCE`.

pub mod collectives;
pub mod fault;
pub mod gpu;
pub mod machine;
pub mod metrics;
pub mod stats;
pub mod trace;
pub mod transport;
pub mod wire;

pub use fault::{FaultPlan, Reorder, PROFILE_NAMES};
pub use gpu::GpuExecutor;
pub use machine::{GpuModel, MachineModel};
pub use metrics::{
    latency_buckets, log2_buckets, Histogram, Metrics, BYTE_BUCKETS, DEPTH_BUCKETS, WAIT_BUCKETS,
    WIDTH_BUCKETS,
};
pub use stats::{Category, RankStats, RunReport, CATEGORIES, N_CATEGORIES};
pub use trace::{
    export_perfetto, render_timeline, span_name, EventKind, FaultMark, FlightRecorder, MsgInfo,
    SpanDetail, TraceEvent, TreeRole,
};
pub use transport::{Payload, Transport};

use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives.
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// A message in flight (or queued at the destination).
struct Msg {
    comm_id: u64,
    src: u32,
    tag: u64,
    arrival: f64,
    /// Shared payload: enqueuing a send is a refcount bump on the sender's
    /// buffer, not a copy (see [`Comm::send_shared`]).
    payload: Arc<[f64]>,
    /// Cluster-unique id; a duplicate copy shares its original's id.
    seq: u64,
    /// Injected duplicate copy.
    dup: bool,
    /// Arrival was pushed back by injected jitter.
    jittered: bool,
}

/// A received message.
pub struct RecvMsg {
    /// Source rank *within the communicator* the receive was posted on.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Virtual arrival time at the receiver.
    pub arrival: f64,
    /// Message data — a borrowed view of the sender's shared buffer; clone
    /// the `Arc` (not the floats) to retain it.
    pub payload: Arc<[f64]>,
    /// Cluster-unique message id (pairs the receive with its send in
    /// traces; a duplicate delivery carries its original's id).
    pub seq: u64,
    /// True when this delivery is an injected duplicate copy.
    pub dup: bool,
    /// True when injected jitter pushed the arrival back.
    pub jittered: bool,
}

struct Mailbox {
    queue: Mutex<Vec<Msg>>,
    cv: Condvar,
}

struct ClusterShared {
    mailboxes: Vec<Mailbox>,
    model: Arc<MachineModel>,
    next_comm_id: AtomicU64,
    /// Effective fault plan for this run (inert when fault injection is off).
    fault: FaultPlan,
    /// Real-time cap on a blocking receive before the watchdog fires.
    stall_timeout: Option<Duration>,
    /// Real-time settle window for any-source receives (see
    /// [`ClusterOptions::settle_window`]).
    settle_window: Duration,
    /// Per-rank flight recorders (always on; see [`FlightRecorder`]).
    /// `Arc<Mutex<..>>` so a stalling rank's watchdog can drain *every*
    /// rank's ring, including ranks currently blocked or asleep.
    flight: Vec<Arc<Mutex<FlightRecorder>>>,
    /// Where the watchdog writes the Perfetto flight dump on a stall.
    flight_dump_path: Option<PathBuf>,
}

impl ClusterShared {
    /// Drain every rank's flight recorder into a Perfetto trace at the
    /// configured dump path. Called by the stall watchdog right before it
    /// panics; non-consuming, so concurrent stalls write the same dump.
    fn dump_flight_on_stall(&self) {
        let Some(path) = &self.flight_dump_path else {
            return;
        };
        let timelines: Vec<Vec<TraceEvent>> =
            self.flight.iter().map(|f| f.lock().drain()).collect();
        let json = trace::export_perfetto(&timelines, 0);
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "simgrid watchdog: flight recorder dumped to {}",
                path.display()
            ),
            Err(e) => eprintln!(
                "simgrid watchdog: failed to write flight dump {}: {e}",
                path.display()
            ),
        }
    }
}

/// Per-rank mutable context. Owned by the rank's thread; `Comm` handles on
/// the same thread share it.
struct RankCtx {
    world_rank: usize,
    clock: Cell<f64>,
    stats: RefCell<RankStats>,
    /// Per-destination last arrival, enforcing MPI's non-overtaking rule.
    fifo: RefCell<HashMap<(u64, u32), f64>>,
    /// xorshift state for this rank's fault-sampling stream; 0 = inert plan.
    fault_rng: Cell<u64>,
    /// Compute-time multiplier (straggler injection; 1.0 = normal).
    compute_mult: f64,
    /// Per-communicator collective sequence numbers, so successive
    /// collectives on one communicator use distinct tags and a duplicated
    /// delivery from an earlier collective can never satisfy a later one.
    coll_seq: RefCell<HashMap<u64, u64>>,
    /// Event timeline, recorded when tracing is enabled.
    trace: Option<RefCell<Vec<TraceEvent>>>,
    /// This rank's always-on flight recorder (shared with the cluster so
    /// stall watchdogs on other ranks can drain it).
    flight: Arc<Mutex<FlightRecorder>>,
    /// Solver-semantic annotation stamped onto spans recorded while set
    /// (see [`Comm::set_span_detail`]).
    span_detail: Cell<Option<SpanDetail>>,
    /// This rank's metrics registry (merged across ranks after the run).
    metrics: RefCell<crate::metrics::Metrics>,
    /// Count of messages this rank has sent, for sequence-id allocation.
    /// Ids are `(world_rank + 1) << 32 | count`, which is unique across
    /// the cluster *and* deterministic (each rank's send order is fixed by
    /// its program), unlike a shared atomic counter whose allocation order
    /// would race between rank threads. 0 stays reserved for setup sends.
    sent_seq: Cell<u64>,
}

impl RankCtx {
    #[inline]
    fn record(&self, t0: f64, t1: f64, kind: EventKind, cat: Category, msg: Option<MsgInfo>) {
        let e = TraceEvent {
            t0,
            t1,
            kind,
            category: cat,
            msg,
            detail: self.span_detail.get(),
        };
        // Always-on bounded ring (in-place write, never allocates); the
        // unbounded trace only when tracing was requested.
        self.flight.lock().record(e);
        if let Some(tr) = &self.trace {
            tr.borrow_mut().push(e);
        }
    }

    /// Next value of this rank's fault stream (xorshift64; state nonzero).
    #[inline]
    fn draw(&self) -> u64 {
        let mut s = self.fault_rng.get();
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.fault_rng.set(s);
        s
    }

    /// Uniform sample in `[0, 1)` from the fault stream.
    #[inline]
    fn draw_unit(&self) -> f64 {
        (self.draw() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Handle to a communicator from one rank. Clonable within the owning rank's
/// thread; not shareable across threads.
pub struct Comm {
    shared: Arc<ClusterShared>,
    ctx: Rc<RankCtx>,
    id: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<Vec<u32>>,
    my_idx: usize,
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            shared: Arc::clone(&self.shared),
            ctx: Rc::clone(&self.ctx),
            id: self.id,
            members: Arc::clone(&self.members),
            my_idx: self.my_idx,
        }
    }
}

impl Comm {
    /// My rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_idx
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The machine model of the cluster.
    pub fn model(&self) -> &MachineModel {
        &self.shared.model
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.ctx.clock.get()
    }

    /// Advance this rank's clock to at least `t`.
    pub fn advance_to(&self, t: f64) {
        if t > self.ctx.clock.get() {
            self.ctx.clock.set(t);
        }
    }

    /// Spend `seconds` of computation, attributed to `cat`. Straggler
    /// ranks (fault injection) pay a multiple of the nominal time.
    pub fn compute(&self, seconds: f64, cat: Category) {
        debug_assert!(seconds >= 0.0);
        let seconds = seconds * self.ctx.compute_mult;
        let t0 = self.ctx.clock.get();
        self.ctx.clock.set(t0 + seconds);
        self.ctx.stats.borrow_mut().time[cat as usize] += seconds;
        self.ctx
            .record(t0, t0 + seconds, EventKind::Compute, cat, None);
    }

    /// Record `seconds` in `cat` without advancing the clock (used by the
    /// GPU executor, which tracks task times itself).
    pub fn account(&self, seconds: f64, cat: Category) {
        self.ctx.stats.borrow_mut().time[cat as usize] += seconds;
    }

    /// Snapshot of this rank's per-category times so far. Rank programs use
    /// deltas of this to attribute time to algorithm phases.
    pub fn time_snapshot(&self) -> [f64; N_CATEGORIES] {
        self.ctx.stats.borrow().time
    }

    /// Stamp `detail` onto every span recorded from now on (until cleared
    /// with `None`). Interpreter layers bracket operations with this so the
    /// simulator's compute/send/recv spans carry solver semantics.
    pub fn set_span_detail(&self, detail: Option<SpanDetail>) {
        self.ctx.span_detail.set(detail);
    }

    /// Attach `detail` to the most recently recorded span (no-op when
    /// tracing is off or nothing was recorded). Used where the annotation
    /// is only known *after* the span exists — e.g. a receive whose
    /// supernode/role is decoded from the received tag.
    pub fn annotate_last(&self, detail: SpanDetail) {
        if let Some(tr) = &self.ctx.trace {
            if let Some(last) = tr.borrow_mut().last_mut() {
                last.detail = Some(detail);
            }
        }
    }

    /// Mark the most recent receive span as a recognised-and-dropped
    /// duplicate and count it in the metrics registry.
    pub fn mark_last_dropped_duplicate(&self) {
        self.metric_inc("msgs.dropped_duplicates", 1);
        if let Some(tr) = &self.ctx.trace {
            if let Some(last) = tr.borrow_mut().last_mut() {
                if last.kind == EventKind::Recv {
                    if let Some(m) = &mut last.msg {
                        m.faults.dropped_duplicate = true;
                    }
                }
            }
        }
    }

    /// Record a span with explicit bounds and annotation, without touching
    /// the clock or the statistics. The GPU paths use this to emit one
    /// covering span per event-driven pass (their internal puts/receives
    /// bypass per-message tracing), preserving the per-rank tiling
    /// invariant the critical-path analysis relies on.
    pub fn trace_span(
        &self,
        t0: f64,
        t1: f64,
        kind: EventKind,
        cat: Category,
        detail: Option<SpanDetail>,
    ) {
        let e = TraceEvent {
            t0,
            t1,
            kind,
            category: cat,
            msg: None,
            detail,
        };
        self.ctx.flight.lock().record(e);
        if let Some(tr) = &self.ctx.trace {
            tr.borrow_mut().push(e);
        }
    }

    /// Add `by` to this rank's counter `name`.
    pub fn metric_inc(&self, name: &str, by: u64) {
        self.ctx.metrics.borrow_mut().inc(name, by);
    }

    /// Record `v` into this rank's histogram `name` (created with `bounds`
    /// on first use).
    pub fn metric_observe(&self, name: &str, bounds: &[f64], v: f64) {
        self.ctx.metrics.borrow_mut().observe(name, bounds, v);
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: usize) -> usize {
        self.members[r] as usize
    }

    /// Send `payload` to communicator rank `dst` with the default p2p cost
    /// model. The sender pays the software overhead on its own clock.
    ///
    /// The slice is copied once into a shared buffer at this API boundary;
    /// hot paths that already own an `Arc<[f64]>` use [`Comm::send_shared`]
    /// to skip even that copy.
    pub fn send(&self, dst: usize, tag: u64, payload: &[f64], cat: Category) {
        self.send_shared(dst, tag, &Arc::from(payload), cat)
    }

    /// Zero-copy send: enqueue a refcount bump of `payload`. Timing, fault
    /// injection, and statistics are identical to [`Comm::send`].
    pub fn send_shared(&self, dst: usize, tag: u64, payload: &Arc<[f64]>, cat: Category) {
        let bytes = 8 * payload.len() + 64;
        let (overhead, wire) =
            self.shared
                .model
                .p2p_cost(self.world_rank(self.my_idx), self.world_rank(dst), bytes);
        let t0 = self.ctx.clock.get();
        self.ctx.clock.set(t0 + overhead);
        {
            let mut st = self.ctx.stats.borrow_mut();
            st.time[cat as usize] += overhead;
        }
        let depart = self.ctx.clock.get();
        let (seq, arrival, faults) =
            self.send_raw(depart, wire, dst, tag, payload, cat, bytes, true);
        self.ctx.record(
            t0,
            depart,
            EventKind::Send,
            cat,
            Some(MsgInfo {
                peer: self.world_rank(dst),
                bytes,
                tag,
                seq,
                arrival,
                faults,
            }),
        );
    }

    /// Send with an explicit departure time and wire cost (used by the GPU
    /// path, where tasks complete at arbitrary virtual times and one-sided
    /// puts have their own cost model). Does not touch the sender's clock,
    /// and — like NVSHMEM puts — is not subject to the MPI non-overtaking
    /// rule.
    pub fn send_timed(
        &self,
        depart: f64,
        wire: f64,
        dst: usize,
        tag: u64,
        payload: &[f64],
        cat: Category,
    ) {
        self.send_timed_shared(depart, wire, dst, tag, &Arc::from(payload), cat)
    }

    /// Zero-copy form of [`Comm::send_timed`].
    pub fn send_timed_shared(
        &self,
        depart: f64,
        wire: f64,
        dst: usize,
        tag: u64,
        payload: &Arc<[f64]>,
        cat: Category,
    ) {
        let bytes = 8 * payload.len() + 64;
        let _ = self.send_raw(depart, wire, dst, tag, payload, cat, bytes, false);
    }

    /// Pre-create the FIFO bookkeeping for sends to `dst` on this
    /// communicator, so the first steady-state send to that destination
    /// does not allocate a map node. Solvers call this while compiling
    /// their per-pass state.
    pub fn warm_route(&self, dst: usize) {
        let dst_world = self.members[dst];
        self.ctx
            .fifo
            .borrow_mut()
            .entry((self.id, dst_world))
            .or_insert(f64::NEG_INFINITY);
    }

    /// Inject a message, applying the fault plan. Returns the sequence id,
    /// the (post-fault) arrival time, and the fault marks for tracing.
    #[allow(clippy::too_many_arguments)]
    fn send_raw(
        &self,
        depart: f64,
        mut wire: f64,
        dst: usize,
        tag: u64,
        payload: &Arc<[f64]>,
        cat: Category,
        bytes: usize,
        fifo: bool,
    ) -> (u64, f64, FaultMark) {
        let dst_world = self.members[dst];
        let fault = &self.shared.fault;
        let mut marks = FaultMark::default();
        // Link degradation: inflate the wire time (β) and add latency (α)
        // when either endpoint is a degraded rank.
        if !fault.degraded_ranks.is_empty()
            && fault.link_degraded(self.ctx.world_rank, dst_world as usize)
        {
            wire = wire * fault.degrade_wire_mult + fault.degrade_extra_latency;
        }
        let mut arrival = depart + wire;
        // In-flight jitter, sampled in sender program order (deterministic
        // per seed). Applied before the FIFO clamp so two-sided sends stay
        // non-overtaking even under jitter.
        if fault.jitter_max > 0.0 && self.ctx.fault_rng.get() != 0 {
            arrival += self.ctx.draw_unit() * fault.jitter_max;
            marks.jitter_delayed = true;
        }
        // Non-overtaking: per (comm, dst) FIFO on arrival times.
        if fifo {
            let mut fifo = self.ctx.fifo.borrow_mut();
            let last = fifo
                .entry((self.id, dst_world))
                .or_insert(f64::NEG_INFINITY);
            if arrival <= *last {
                arrival = *last + 1e-12;
            }
            *last = arrival;
        }
        {
            let mut st = self.ctx.stats.borrow_mut();
            st.bytes_sent[cat as usize] += bytes as u64;
            st.msgs_sent[cat as usize] += 1;
        }
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.sent", 1);
            m.observe("msgs.bytes", crate::metrics::BYTE_BUCKETS, bytes as f64);
            if marks.jitter_delayed {
                m.inc("msgs.jitter_delayed", 1);
            }
        }
        let seq = {
            let n = self.ctx.sent_seq.get() + 1;
            self.ctx.sent_seq.set(n);
            ((self.ctx.world_rank as u64 + 1) << 32) | n
        };
        let msg = Msg {
            comm_id: self.id,
            src: self.my_idx as u32,
            tag,
            arrival,
            payload: Arc::clone(payload),
            seq,
            dup: false,
            jittered: marks.jitter_delayed,
        };
        let mb = &self.shared.mailboxes[dst_world as usize];
        mb.queue.lock().push(msg);
        mb.cv.notify_all();
        // Duplicate delivery: the copy arrives strictly after the original
        // with fresh jitter, exercising receiver-side idempotence. The copy
        // keeps the original's sequence id (it is the same logical message).
        if fault.duplicate_prob > 0.0
            && self.ctx.fault_rng.get() != 0
            && self.ctx.draw_unit() < fault.duplicate_prob
        {
            let extra = self.ctx.draw_unit() * fault.jitter_max.max(1e-6);
            let dup = Msg {
                comm_id: self.id,
                src: self.my_idx as u32,
                tag,
                arrival: arrival + 1e-12 + extra,
                // The one remaining payload copy in the transport: a
                // duplicate models an independent second copy on the wire,
                // so it must not share the original's buffer.
                payload: Arc::from(&payload[..]),
                seq,
                dup: true,
                jittered: marks.jitter_delayed,
            };
            {
                let mut st = self.ctx.stats.borrow_mut();
                st.bytes_sent[cat as usize] += bytes as u64;
                st.msgs_sent[cat as usize] += 1;
            }
            self.ctx.metrics.borrow_mut().inc("msgs.dup_injected", 1);
            marks.duplicate = true;
            mb.queue.lock().push(dup);
            mb.cv.notify_all();
        }
        (seq, arrival, marks)
    }

    /// Blocking receive. `src`/`tag` of `None` match anything (the paper's
    /// `MPI_Recv(MPI_ANY_SOURCE)` pattern). The receiver's clock advances to
    /// the arrival time; waiting time is attributed to `cat`.
    pub fn recv(&self, src: Option<usize>, tag: Option<u64>, cat: Category) -> RecvMsg {
        let msg = self.recv_raw(src, tag);
        self.charge_recv(&msg, cat);
        msg
    }

    /// Advance the clock to the arrival time plus the receive-side software
    /// overhead, attributing the wait to `cat`.
    fn charge_recv(&self, msg: &RecvMsg, cat: Category) {
        let before = self.ctx.clock.get();
        let after = msg.arrival.max(before) + self.shared.model.recv_overhead;
        self.ctx.stats.borrow_mut().time[cat as usize] += after - before;
        self.ctx.clock.set(after);
        {
            let mut m = self.ctx.metrics.borrow_mut();
            m.inc("msgs.received", 1);
            m.observe(
                "recv.wait_seconds",
                crate::metrics::WAIT_BUCKETS,
                (msg.arrival - before).max(0.0),
            );
        }
        self.ctx.record(
            before,
            after,
            EventKind::Recv,
            cat,
            Some(MsgInfo {
                peer: self.world_rank(msg.src),
                bytes: 8 * msg.payload.len() + 64,
                tag: msg.tag,
                seq: msg.seq,
                arrival: msg.arrival,
                faults: FaultMark {
                    duplicate: msg.dup,
                    jitter_delayed: msg.jittered,
                    ..FaultMark::default()
                },
            }),
        );
    }

    /// Blocking any-source receive matching `tag & mask == value` — the
    /// "any message of this solve phase" pattern: phases stamp an epoch
    /// into the high tag bits so that an early message from a neighbour
    /// already in the *next* phase stays queued instead of being consumed
    /// by the current phase's any-source loop.
    pub fn recv_tag_masked(&self, mask: u64, value: u64, cat: Category) -> RecvMsg {
        let msg = self.recv_raw_matching(|_, t| t & mask == value, false);
        self.charge_recv(&msg, cat);
        msg
    }

    /// Like [`Comm::recv_tag_masked`] but without touching the clock or
    /// statistics (GPU path: arrival times drive the executor instead).
    pub fn recv_raw_tag_masked(&self, mask: u64, value: u64) -> RecvMsg {
        self.recv_raw_matching(|_, t| t & mask == value, false)
    }

    /// Blocking receive that does not touch the clock or the statistics.
    /// The GPU path uses this and performs its own time accounting.
    pub fn recv_raw(&self, src: Option<usize>, tag: Option<u64>) -> RecvMsg {
        // A fully specified (src, tag) receive has exactly one logical
        // message that can satisfy it: sends are FIFO per destination, so
        // any later match from the same source arrives strictly later, and
        // no other source can match. The settle window exists only to make
        // the *choice among* concurrent candidates stable, so an exact
        // receive can commit the first match immediately.
        let exact = src.is_some() && tag.is_some();
        self.recv_raw_matching(
            |s, t| src.is_none_or(|want| s == want) && tag.is_none_or(|want| t == want),
            exact,
        )
    }

    fn recv_raw_matching(&self, matches: impl Fn(usize, u64) -> bool, exact: bool) -> RecvMsg {
        let mb = &self.shared.mailboxes[self.ctx.world_rank];
        let mut q = mb.queue.lock();
        let started = self
            .shared
            .stall_timeout
            .map(|limit| (Instant::now(), limit));
        // The pick below is what makes runs reproducible: among queued
        // matches, earliest *virtual* arrival wins. But the queue fills in
        // *real* time — a racing sender can be microseconds behind the
        // notifier yet earlier on the virtual clock. One bounded settle
        // wait before committing the first candidate lets such in-flight
        // sends land, making the choice (and with it clocks, traces, and
        // the critical path) stable against OS scheduling. Exact (src, tag)
        // receives skip it: their match is unique (see [`Comm::recv_raw`]),
        // so there is no choice to stabilize — short-circuiting avoids a
        // 100 µs real-time stall per receive on src/tag-addressed paths.
        let mut settle = !exact;
        loop {
            let policy = if self.ctx.fault_rng.get() == 0 {
                Reorder::EarliestArrival
            } else {
                self.shared.fault.reorder
            };
            let pick: Option<usize> = match policy {
                Reorder::EarliestArrival => {
                    // Faithful behavior: earliest virtual arrival among the
                    // currently queued matches, no allocation.
                    let mut best: Option<(usize, f64)> = None;
                    for (i, m) in q.iter().enumerate() {
                        if m.comm_id != self.id || !matches(m.src as usize, m.tag) {
                            continue;
                        }
                        if best.is_none_or(|(_, a)| m.arrival < a) {
                            best = Some((i, m.arrival));
                        }
                    }
                    best.map(|(i, _)| i)
                }
                _ => {
                    let idxs: Vec<usize> = q
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.comm_id == self.id && matches(m.src as usize, m.tag))
                        .map(|(i, _)| i)
                        .collect();
                    if idxs.is_empty() {
                        None
                    } else {
                        Some(match policy {
                            Reorder::NewestQueued => *idxs.last().unwrap(),
                            Reorder::LatestArrival => idxs
                                .iter()
                                .copied()
                                .max_by(|&a, &b| q[a].arrival.total_cmp(&q[b].arrival))
                                .unwrap(),
                            Reorder::Random => idxs[(self.ctx.draw() % idxs.len() as u64) as usize],
                            Reorder::EarliestArrival => unreachable!(),
                        })
                    }
                }
            };
            if let Some(idx) = pick {
                if settle {
                    settle = false;
                    self.ctx.metrics.borrow_mut().inc("recv.settle_waits", 1);
                    mb.cv.wait_for(&mut q, self.shared.settle_window);
                    continue; // re-evaluate over the settled queue
                }
                let m = q.swap_remove(idx);
                return RecvMsg {
                    src: m.src as usize,
                    tag: m.tag,
                    arrival: m.arrival,
                    payload: m.payload,
                    seq: m.seq,
                    dup: m.dup,
                    jittered: m.jittered,
                };
            }
            match started {
                None => mb.cv.wait(&mut q),
                Some((t0, limit)) => {
                    let waited = t0.elapsed();
                    if waited >= limit {
                        let report = self.stall_report(&q, waited);
                        // Release the mailbox before draining the flight
                        // recorders: the dump touches every rank's ring and
                        // writes a file, none of which needs the queue.
                        drop(q);
                        self.shared.dump_flight_on_stall();
                        panic!("{report}");
                    }
                    // Wake periodically so every stalled rank eventually
                    // times out (not only the ones that get notified).
                    let chunk = (limit - waited).min(Duration::from_millis(100));
                    mb.cv.wait_for(&mut q, chunk);
                }
            }
        }
    }

    /// Watchdog diagnostic for a stalled receive: who we are, how long we
    /// waited, the active fault plan, and every queued-but-unmatched
    /// message in our mailbox.
    fn stall_report(&self, q: &[Msg], waited: Duration) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "simgrid watchdog: world rank {} (comm {} rank {}/{}) stalled in recv for {:.2?}",
            self.ctx.world_rank,
            self.id,
            self.my_idx,
            self.size(),
            waited,
        );
        let _ = writeln!(s, "  virtual clock: {:.6e} s", self.ctx.clock.get());
        let _ = writeln!(s, "  fault plan: {:?}", self.shared.fault);
        let _ = writeln!(s, "  queued-but-unmatched messages: {}", q.len());
        const CAP: usize = 32;
        for m in q.iter().take(CAP) {
            let _ = writeln!(
                s,
                "    comm {:>3} src {:>4} tag {:#018x} arrival {:>12.6e} len {}",
                m.comm_id,
                m.src,
                m.tag,
                m.arrival,
                m.payload.len(),
            );
        }
        if q.len() > CAP {
            let _ = writeln!(s, "    ... {} more", q.len() - CAP);
        }
        s
    }

    /// Split into disjoint subcommunicators by `color`; members are ordered
    /// by `(key, world rank)`. Like `MPI_Comm_split`, but as a zero-cost
    /// setup operation (grid construction is not timed in the paper either).
    ///
    /// All members of this communicator must call `split` collectively and
    /// in the same program order.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        // Members must agree on the new communicator ids without any shared
        // ordering, so rank 0 of the parent gathers everyone's (color, key),
        // allocates a fresh id block, and broadcasts the decisions — all via
        // zero-virtual-cost setup messages.
        let me = self.my_idx;
        let size = self.size();
        // Gather all (color, key) at comm rank 0, then broadcast the
        // decisions. Uses raw sends with arrival = -inf so no virtual time
        // is consumed and FIFO stamps are unaffected.
        let tag = COLLECTIVE_TAG_BASE + 1;
        if me == 0 {
            let mut triples: Vec<(usize, usize, usize)> = vec![(color, key, 0)];
            for _ in 1..size {
                let m = self.recv_raw(None, Some(tag));
                triples.push((m.payload[0] as usize, m.payload[1] as usize, m.src));
            }
            // Allocate one id block for this split operation.
            let base = self
                .shared
                .next_comm_id
                .fetch_add(size as u64, Ordering::Relaxed);
            // Reply to each member: [base, color, key, ...] — members
            // reconstruct their group from the full triple list.
            let mut flat = Vec::with_capacity(3 * size + 1);
            flat.push(base as f64);
            for &(c, k, r) in &triples {
                flat.push(c as f64);
                flat.push(k as f64);
                flat.push(r as f64);
            }
            for dst in 1..size {
                self.send_setup(dst, tag + 1, &flat);
            }
            self.build_split_comm(&flat, color)
        } else {
            self.send_setup(0, tag, &[color as f64, key as f64]);
            let m = self.recv_raw(Some(0), Some(tag + 1));
            self.build_split_comm(&m.payload, color)
        }
    }

    /// Zero-virtual-cost setup send (used by `split`).
    fn send_setup(&self, dst: usize, tag: u64, payload: &[f64]) {
        let dst_world = self.members[dst];
        let msg = Msg {
            comm_id: self.id,
            src: self.my_idx as u32,
            tag,
            arrival: f64::NEG_INFINITY,
            payload: payload.into(),
            seq: 0,
            dup: false,
            jittered: false,
        };
        let mb = &self.shared.mailboxes[dst_world as usize];
        mb.queue.lock().push(msg);
        mb.cv.notify_all();
    }

    fn build_split_comm(&self, flat: &[f64], my_color: usize) -> Comm {
        let base = flat[0] as u64;
        let mut group: Vec<(usize, usize)> = Vec::new(); // (key, comm_rank_in_parent)
        let mut colors_seen: Vec<usize> = Vec::new();
        for chunk in flat[1..].chunks(3) {
            let (c, k, r) = (chunk[0] as usize, chunk[1] as usize, chunk[2] as usize);
            if !colors_seen.contains(&c) {
                colors_seen.push(c);
            }
            if c == my_color {
                group.push((k, r));
            }
        }
        colors_seen.sort_unstable();
        let color_idx = colors_seen
            .iter()
            .position(|&c| c == my_color)
            .expect("own color present");
        group.sort_unstable();
        let members: Vec<u32> = group.iter().map(|&(_, pr)| self.members[pr]).collect();
        let my_world = self.ctx.world_rank as u32;
        let my_idx = members
            .iter()
            .position(|&w| w == my_world)
            .expect("self in group");
        Comm {
            shared: Arc::clone(&self.shared),
            ctx: Rc::clone(&self.ctx),
            id: base + color_idx as u64,
            members: Arc::new(members),
            my_idx,
        }
    }

    /// Barrier: binomial fan-in to rank 0, binomial fan-out. All clocks end
    /// at a common time plus the fan-out latency skew.
    pub fn barrier(&self, cat: Category) {
        let mut token = [0.0f64];
        self.reduce_bcast(&mut token, cat);
    }

    /// Allreduce (sum) over `data`: binomial reduction to rank 0 followed by
    /// a binomial broadcast.
    pub fn allreduce_sum(&self, data: &mut [f64], cat: Category) {
        self.reduce_bcast(data, cat);
    }

    /// Base tag for the next collective on this communicator. Each
    /// collective call gets a fresh tag block so a duplicated delivery
    /// from an earlier collective can never be consumed by a later one;
    /// members agree because collectives are called in program order.
    fn coll_tag(&self) -> u64 {
        let mut seqs = self.ctx.coll_seq.borrow_mut();
        let seq = seqs.entry(self.id).or_insert(0);
        *seq += 1;
        // seq * 4 >= 4 keeps clear of the fixed split tags (BASE+1, BASE+2).
        COLLECTIVE_TAG_BASE + *seq * 4
    }

    fn reduce_bcast(&self, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        crate::collectives::reduce_bcast(self, tag, data, cat);
    }

    /// Broadcast `data` from `root` to all ranks (binomial tree).
    pub fn bcast(&self, root: usize, data: &mut [f64], cat: Category) {
        let tag = self.coll_tag();
        crate::collectives::bcast_from(self, root, tag, data, cat);
    }
}

/// Options for a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Legacy knob: when nonzero and `fault` is inert, behaves like
    /// `fault = FaultPlan::random_reorder(chaos_seed)` — any-source
    /// receives pick a random (seeded) matching message instead of the
    /// earliest arrival. Ignored when `fault` injects anything.
    pub chaos_seed: u64,
    /// Record per-rank event timelines (see [`trace`]).
    pub trace: bool,
    /// Fault-injection plan; the default is inert (no faults).
    pub fault: FaultPlan,
    /// Real-time watchdog: a receive blocked longer than this panics with
    /// a per-rank diagnostic dump instead of hanging the process. `None`
    /// disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// Real-time window an any-source receive waits before committing its
    /// earliest-virtual-arrival pick, letting racing in-flight sends land
    /// so the choice is stable against OS scheduling. Slow or heavily
    /// oversubscribed runners can raise it; latency-sensitive callers can
    /// lower it (the pick may then depend on thread timing). The
    /// `recv.settle_waits` metric counts one wait per any-source receive
    /// regardless of the window length, so metric assertions stay
    /// deterministic under any setting.
    pub settle_window: Duration,
    /// Capacity of each rank's always-on flight recorder (most recent
    /// spans, overwrite-oldest). 0 disables recording.
    pub flight_capacity: usize,
    /// When set, a stall watchdog drains every rank's flight recorder into
    /// a Perfetto trace at this path before panicking.
    pub flight_dump_path: Option<PathBuf>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            chaos_seed: 0,
            trace: false,
            fault: FaultPlan::default(),
            stall_timeout: Some(Duration::from_secs(30)),
            settle_window: Duration::from_micros(100),
            flight_capacity: 512,
            flight_dump_path: None,
        }
    }
}

/// Run `f` on `nranks` simulated ranks of the given machine and collect the
/// per-rank results and statistics.
pub fn run<F, R>(nranks: usize, model: MachineModel, opts: &ClusterOptions, f: F) -> RunReport<R>
where
    F: Fn(Comm) -> R + Send + Sync,
    R: Send,
{
    assert!(nranks > 0);
    // Back-compat: a bare `chaos_seed` (no explicit plan) means the old
    // random any-source reorder fault.
    let fault = if opts.fault.is_inert() && opts.chaos_seed != 0 {
        FaultPlan::random_reorder(opts.chaos_seed)
    } else {
        opts.fault.clone()
    };
    let shared = Arc::new(ClusterShared {
        mailboxes: (0..nranks)
            .map(|_| Mailbox {
                // Pre-sized so steady-state enqueues don't reallocate the
                // queue (a realloc inside `push` would be a heap allocation
                // at an OS-scheduling-dependent moment).
                queue: Mutex::new(Vec::with_capacity(1024)),
                cv: Condvar::new(),
            })
            .collect(),
        model: Arc::new(model),
        next_comm_id: AtomicU64::new(1),
        fault,
        stall_timeout: opts.stall_timeout,
        settle_window: opts.settle_window,
        // Rings are fully reserved here, at setup: steady-state records
        // write in place and never allocate.
        flight: (0..nranks)
            .map(|_| Arc::new(Mutex::new(FlightRecorder::new(opts.flight_capacity))))
            .collect(),
        flight_dump_path: opts.flight_dump_path.clone(),
    });
    let world_members: Arc<Vec<u32>> = Arc::new((0..nranks as u32).collect());

    let trace_on = opts.trace;
    type RankOut<R> = (RankStats, R, Vec<TraceEvent>, crate::metrics::Metrics);
    let mut out: Vec<Option<RankOut<R>>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let shared = Arc::clone(&shared);
            let members = Arc::clone(&world_members);
            let f = &f;
            let h = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(1 << 20)
                .spawn_scoped(scope, move || {
                    let ctx = Rc::new(RankCtx {
                        world_rank: rank,
                        clock: Cell::new(0.0),
                        stats: RefCell::new(RankStats::new(rank)),
                        fifo: RefCell::new(HashMap::new()),
                        fault_rng: Cell::new(shared.fault.rank_stream(rank)),
                        compute_mult: shared.fault.compute_mult(rank),
                        coll_seq: RefCell::new(HashMap::new()),
                        trace: trace_on.then(|| RefCell::new(Vec::new())),
                        flight: Arc::clone(&shared.flight[rank]),
                        span_detail: Cell::new(None),
                        metrics: RefCell::new(crate::metrics::Metrics::new()),
                        sent_seq: Cell::new(0),
                    });
                    {
                        // Pre-create the standard per-message series so the
                        // steady-state send/recv paths never insert a map
                        // node (BTreeMap insertion allocates).
                        let mut m = ctx.metrics.borrow_mut();
                        m.touch_counter("msgs.sent");
                        m.touch_counter("msgs.received");
                        m.touch_counter("recv.settle_waits");
                        m.touch_histogram("msgs.bytes", crate::metrics::BYTE_BUCKETS);
                        m.touch_histogram("recv.wait_seconds", crate::metrics::WAIT_BUCKETS);
                    }
                    let world = Comm {
                        shared,
                        ctx: Rc::clone(&ctx),
                        id: 0,
                        members,
                        my_idx: rank,
                    };
                    let r = f(world);
                    let mut stats = ctx.stats.borrow().clone();
                    stats.final_clock = ctx.clock.get();
                    let tr = ctx
                        .trace
                        .as_ref()
                        .map(|t| t.borrow().clone())
                        .unwrap_or_default();
                    let metrics = ctx.metrics.borrow().clone();
                    (stats, r, tr, metrics)
                })
                .expect("spawn rank thread");
            handles.push(h);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });

    let mut stats = Vec::with_capacity(nranks);
    let mut results = Vec::with_capacity(nranks);
    let mut traces = Vec::with_capacity(nranks);
    let mut metrics = crate::metrics::Metrics::new();
    for slot in out {
        let (s, r, t, m) = slot.expect("every rank completed");
        stats.push(s);
        results.push(r);
        traces.push(t);
        metrics.merge_from(&m);
    }
    let mut rep = RunReport::new(stats, results);
    rep.traces = traces;
    rep.flight = shared.flight.iter().map(|f| f.lock().drain()).collect();
    rep.metrics = metrics;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn toy_model() -> MachineModel {
        MachineModel::uniform("toy", 1e9, 1e-6, 1e9, 4)
    }

    #[test]
    fn ping_pong_advances_clocks() {
        let rep = run(2, toy_model(), &ClusterOptions::default(), |c| {
            if c.rank() == 0 {
                c.send(1, 7, &[1.0, 2.0], Category::XyComm);
                let m = c.recv(Some(1), Some(8), Category::XyComm);
                assert_eq!(&m.payload[..], &[3.0]);
            } else {
                let m = c.recv(Some(0), Some(7), Category::XyComm);
                assert_eq!(&m.payload[..], &[1.0, 2.0]);
                c.send(0, 8, &[3.0], Category::XyComm);
            }
            c.now()
        });
        assert!(rep.results[0] > 0.0);
        assert!(rep.results[1] > 0.0);
        // Round trip at rank 0 covers two latencies.
        assert!(rep.results[0] >= 2e-6);
    }

    #[test]
    fn compute_advances_only_own_clock() {
        let rep = run(2, toy_model(), &ClusterOptions::default(), |c| {
            if c.rank() == 0 {
                c.compute(1.0, Category::Flop);
            }
            c.now()
        });
        assert!(rep.results[0] >= 1.0);
        assert_eq!(rep.results[1], 0.0);
    }

    #[test]
    fn recv_any_takes_earliest_arrival() {
        let rep = run(3, toy_model(), &ClusterOptions::default(), |c| {
            match c.rank() {
                1 => {
                    c.compute(5.0, Category::Flop); // late sender
                    c.send(0, 1, &[1.0], Category::XyComm);
                }
                2 => {
                    c.send(0, 1, &[2.0], Category::XyComm); // early sender
                }
                0 => {
                    // Wait until both messages are definitely queued.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    let m1 = c.recv(None, Some(1), Category::XyComm);
                    let m2 = c.recv(None, Some(1), Category::XyComm);
                    assert_eq!(m1.payload[0], 2.0, "earliest virtual arrival first");
                    assert_eq!(m2.payload[0], 1.0);
                    assert!(m1.arrival < m2.arrival);
                }
                _ => unreachable!(),
            }
            c.now()
        });
        assert!(rep.results[0] >= 5.0, "rank 0 waited for the late message");
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let rep = run(p, toy_model(), &ClusterOptions::default(), |c| {
                let mut v = [c.rank() as f64, 1.0];
                c.allreduce_sum(&mut v, Category::ZComm);
                v
            });
            let want0 = (p * (p - 1) / 2) as f64;
            for r in &rep.results {
                assert_eq!(r[0], want0);
                assert_eq!(r[1], p as f64);
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let rep = run(5, toy_model(), &ClusterOptions::default(), |c| {
            let mut v = if c.rank() == 3 { [42.0] } else { [0.0] };
            c.bcast(3, &mut v, Category::XyComm);
            v[0]
        });
        assert!(rep.results.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn split_creates_disjoint_comms() {
        let rep = run(6, toy_model(), &ClusterOptions::default(), |c| {
            let color = c.rank() % 2;
            let sub = c.split(color, c.rank());
            // Sum my world rank within the subcomm.
            let mut v = [c.rank() as f64];
            sub.allreduce_sum(&mut v, Category::ZComm);
            (sub.rank(), sub.size(), v[0])
        });
        // color 0: world {0,2,4} sum 6; color 1: {1,3,5} sum 9.
        for wr in 0..6 {
            let (sr, ss, sum) = rep.results[wr];
            assert_eq!(ss, 3);
            assert_eq!(sr, wr / 2);
            assert_eq!(sum, if wr % 2 == 0 { 6.0 } else { 9.0 });
        }
    }

    #[test]
    fn nested_split_rows_and_cols() {
        // 2x3 grid: split world into rows, then the rows into columns.
        let rep = run(6, toy_model(), &ClusterOptions::default(), |c| {
            let (px, py) = (2usize, 3usize);
            let (x, y) = (c.rank() / py, c.rank() % py);
            let row = c.split(x, y);
            let col = c.split(y, x);
            assert_eq!(row.size(), py);
            assert_eq!(col.size(), px);
            let mut rv = [c.rank() as f64];
            row.allreduce_sum(&mut rv, Category::XyComm);
            let mut cv = [c.rank() as f64];
            col.allreduce_sum(&mut cv, Category::XyComm);
            (rv[0], cv[0])
        });
        assert_eq!(rep.results[0].0, 0.0 + 1.0 + 2.0);
        assert_eq!(rep.results[3].0, 3.0 + 4.0 + 5.0);
        assert_eq!(rep.results[0].1, 0.0 + 3.0);
        assert_eq!(rep.results[5].1, 2.0 + 5.0);
    }

    #[test]
    fn barrier_synchronizes_virtual_time() {
        let rep = run(4, toy_model(), &ClusterOptions::default(), |c| {
            if c.rank() == 2 {
                c.compute(3.0, Category::Flop);
            }
            c.barrier(Category::ZComm);
            c.now()
        });
        for r in &rep.results {
            assert!(*r >= 3.0, "barrier must not complete before slowest rank");
        }
    }

    #[test]
    fn fifo_non_overtaking_per_destination() {
        let rep = run(2, toy_model(), &ClusterOptions::default(), |c| {
            if c.rank() == 0 {
                // Large then tiny message, same tag: arrival order must hold.
                let big = vec![0.5; 100_000];
                c.send(1, 5, &big, Category::XyComm);
                c.send(1, 5, &[9.0], Category::XyComm);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let m1 = c.recv(Some(0), Some(5), Category::XyComm);
                let m2 = c.recv(Some(0), Some(5), Category::XyComm);
                assert_eq!(m1.payload.len(), 100_000);
                assert_eq!(m2.payload[0], 9.0);
                assert!(m1.arrival <= m2.arrival);
            }
        });
        drop(rep);
    }

    #[test]
    fn stats_track_bytes_and_messages() {
        let rep = run(2, toy_model(), &ClusterOptions::default(), |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[1.0; 10], Category::ZComm);
            } else {
                c.recv(Some(0), Some(1), Category::ZComm);
            }
        });
        let s0 = &rep.stats[0];
        assert_eq!(s0.msgs_sent[Category::ZComm as usize], 1);
        assert!(s0.bytes_sent[Category::ZComm as usize] >= 80);
    }

    #[test]
    fn chaos_mode_still_delivers_everything() {
        let rep = run(
            4,
            toy_model(),
            &ClusterOptions {
                chaos_seed: 1234,
                ..ClusterOptions::default()
            },
            |c| {
                if c.rank() == 0 {
                    let mut sum = 0.0;
                    for _ in 0..3 {
                        let m = c.recv(None, Some(2), Category::XyComm);
                        sum += m.payload[0];
                    }
                    sum
                } else {
                    c.send(0, 2, &[c.rank() as f64], Category::XyComm);
                    0.0
                }
            },
        );
        assert_eq!(rep.results[0], 6.0);
    }

    fn faulty_opts(fault: FaultPlan) -> ClusterOptions {
        ClusterOptions {
            fault,
            ..ClusterOptions::default()
        }
    }

    #[test]
    fn straggler_rank_is_slowed_by_the_multiplier() {
        let fault = FaultPlan {
            seed: 1,
            straggler_ranks: vec![1],
            straggler_factor: 8.0,
            ..FaultPlan::default()
        };
        let rep = run(2, toy_model(), &faulty_opts(fault), |c| {
            c.compute(1.0, Category::Flop);
            c.now()
        });
        assert_eq!(rep.results[0], 1.0);
        assert_eq!(rep.results[1], 8.0);
    }

    #[test]
    fn degraded_link_inflates_arrival_times() {
        let arrival_with = |fault: FaultPlan| {
            let rep = run(2, toy_model(), &faulty_opts(fault), |c| {
                if c.rank() == 0 {
                    c.send(1, 1, &[1.0; 1000], Category::XyComm);
                    0.0
                } else {
                    c.recv(Some(0), Some(1), Category::XyComm).arrival
                }
            });
            rep.results[1]
        };
        let clean = arrival_with(FaultPlan::default());
        let degraded = arrival_with(FaultPlan {
            seed: 1,
            degraded_ranks: vec![1],
            degrade_wire_mult: 20.0,
            degrade_extra_latency: 20e-6,
            ..FaultPlan::default()
        });
        assert!(
            degraded > clean + 19e-6,
            "degraded {degraded:e} vs clean {clean:e}"
        );
    }

    #[test]
    fn duplicates_and_jitter_still_deliver_correct_payloads() {
        let fault = FaultPlan {
            seed: 99,
            jitter_max: 5e-6,
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        };
        let rep = run(4, toy_model(), &faulty_opts(fault), |c| {
            if c.rank() == 0 {
                let mut sum = 0.0;
                for src in 1..4 {
                    sum += c
                        .recv(Some(src), Some(src as u64), Category::XyComm)
                        .payload[0];
                }
                sum
            } else {
                c.send(0, c.rank() as u64, &[c.rank() as f64], Category::XyComm);
                0.0
            }
        });
        // Duplicates stay queued behind the src/tag-specific receives.
        assert_eq!(rep.results[0], 6.0);
    }

    #[test]
    fn fault_sampling_is_deterministic_per_seed() {
        let arrivals = || {
            let fault = FaultPlan {
                seed: 4242,
                jitter_max: 10e-6,
                duplicate_prob: 0.5,
                ..FaultPlan::default()
            };
            let rep = run(2, toy_model(), &faulty_opts(fault), |c| {
                if c.rank() == 0 {
                    for k in 0..20u64 {
                        c.send(1, k, &[k as f64], Category::XyComm);
                    }
                    Vec::new()
                } else {
                    (0..20u64)
                        .map(|k| c.recv(Some(0), Some(k), Category::XyComm).arrival)
                        .collect::<Vec<f64>>()
                }
            });
            rep.results[1].clone()
        };
        assert_eq!(arrivals(), arrivals());
    }

    #[test]
    fn repeated_collectives_survive_duplicate_deliveries() {
        // Without per-collective tag sequencing, a duplicated reduction
        // message from the first allreduce would satisfy the second one
        // with a stale payload.
        let fault = FaultPlan {
            seed: 7,
            duplicate_prob: 1.0,
            ..FaultPlan::default()
        };
        let rep = run(4, toy_model(), &faulty_opts(fault), |c| {
            let mut a = [c.rank() as f64];
            c.allreduce_sum(&mut a, Category::ZComm);
            let mut b = [10.0 * c.rank() as f64];
            c.allreduce_sum(&mut b, Category::ZComm);
            (a[0], b[0])
        });
        for r in &rep.results {
            assert_eq!(r.0, 6.0);
            assert_eq!(r.1, 60.0);
        }
    }

    #[test]
    fn adversarial_reorder_policies_deliver_everything() {
        for reorder in [
            Reorder::Random,
            Reorder::NewestQueued,
            Reorder::LatestArrival,
        ] {
            let fault = FaultPlan {
                seed: 31337,
                reorder,
                ..FaultPlan::default()
            };
            let rep = run(4, toy_model(), &faulty_opts(fault), |c| {
                if c.rank() == 0 {
                    let mut sum = 0.0;
                    for _ in 0..3 {
                        sum += c.recv(None, Some(2), Category::XyComm).payload[0];
                    }
                    sum
                } else {
                    c.send(0, 2, &[c.rank() as f64], Category::XyComm);
                    0.0
                }
            });
            assert_eq!(rep.results[0], 6.0, "reorder {reorder:?} lost a message");
        }
    }

    /// Exact (src, tag) receives commit their unique match immediately;
    /// only any-source receives pay the settle window. Counted via the
    /// `recv.settle_waits` metric so the assertion is deterministic (no
    /// wall-clock timing).
    #[test]
    fn exact_receives_skip_the_settle_window() {
        let rep = run(3, toy_model(), &ClusterOptions::default(), |c| {
            match c.rank() {
                1 => c.send(0, 5, &[1.0], Category::XyComm),
                2 => c.send(0, 6, &[2.0], Category::XyComm),
                0 => {
                    // Let both messages land first.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    let m = c.recv(Some(1), Some(5), Category::XyComm);
                    assert_eq!(m.payload[0], 1.0);
                    let m = c.recv(None, Some(6), Category::XyComm);
                    assert_eq!(m.payload[0], 2.0);
                }
                _ => unreachable!(),
            }
        });
        assert_eq!(
            rep.metrics.counter("recv.settle_waits"),
            1,
            "only the any-source receive settles"
        );
    }

    /// The settle window is a tunable `ClusterOptions` knob. Even at zero
    /// (commit the first candidate immediately) the pick among *already
    /// queued* matches is still earliest-virtual-arrival, and the
    /// `recv.settle_waits` counter still counts one wait per any-source
    /// receive — assertions on it stay deterministic at any setting.
    #[test]
    fn settle_window_is_configurable() {
        for window_us in [0u64, 100, 2000] {
            let opts = ClusterOptions {
                settle_window: Duration::from_micros(window_us),
                ..ClusterOptions::default()
            };
            let rep = run(3, toy_model(), &opts, |c| match c.rank() {
                1 => {
                    c.compute(5.0, Category::Flop); // late virtual sender
                    c.send(0, 1, &[1.0], Category::XyComm);
                }
                2 => c.send(0, 1, &[2.0], Category::XyComm),
                0 => {
                    // Both messages are queued before the receive is posted,
                    // so the pick is window-independent.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    let m1 = c.recv(None, Some(1), Category::XyComm);
                    let m2 = c.recv(None, Some(1), Category::XyComm);
                    assert_eq!(m1.payload[0], 2.0, "earliest virtual arrival first");
                    assert_eq!(m2.payload[0], 1.0);
                }
                _ => unreachable!(),
            });
            assert_eq!(
                rep.metrics.counter("recv.settle_waits"),
                2,
                "one settle wait per any-source receive (window {window_us}us)"
            );
        }
    }

    #[test]
    fn flight_recorder_always_captures_recent_spans() {
        let run_once = || {
            run(2, toy_model(), &ClusterOptions::default(), |c| {
                if c.rank() == 0 {
                    c.compute(1e-6, Category::Flop);
                    c.send(1, 7, &[1.0, 2.0], Category::XyComm);
                } else {
                    c.recv(Some(0), Some(7), Category::XyComm);
                }
            })
        };
        let rep = run_once();
        // Tracing is off, yet the flight recorder kept every span.
        assert!(rep.traces.iter().all(Vec::is_empty));
        assert_eq!(rep.flight.len(), 2);
        assert_eq!(rep.flight[0].len(), 2); // compute + send
        assert_eq!(rep.flight[0][0].kind, EventKind::Compute);
        assert_eq!(rep.flight[0][1].kind, EventKind::Send);
        assert_eq!(rep.flight[1].len(), 1); // recv
        assert_eq!(rep.flight[1][0].kind, EventKind::Recv);
        // Bit-stable across identical runs.
        assert_eq!(rep.flight, run_once().flight);
    }

    #[test]
    fn stall_watchdog_dumps_flight_recorder() {
        let dump = std::env::temp_dir().join("simgrid_stall_flight_test.json");
        let _ = std::fs::remove_file(&dump);
        let opts = ClusterOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            flight_dump_path: Some(dump.clone()),
            ..ClusterOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                // Real traffic first so both ranks hold flight spans.
                let mut v = [c.rank() as f64];
                c.allreduce_sum(&mut v, Category::ZComm);
                if c.rank() == 0 {
                    // Tag 99 is never sent: rank 0 stalls and its watchdog
                    // must drain every rank's ring before panicking.
                    c.recv(Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic");
        drop(err);
        let json = std::fs::read_to_string(&dump).expect("flight dump written on stall");
        let v: serde_json::Value = serde_json::from_str(&json).expect("dump is valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde_json::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Non-empty "X" spans for every rank.
        for rank in 0..2i64 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph") == Some(&serde_json::Value::Str("X".into()))
                        && e.get("tid") == Some(&serde_json::Value::Int(rank))
                }),
                "rank {rank} has no spans in the stall dump"
            );
        }
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn watchdog_reports_stalled_ranks_instead_of_hanging() {
        let opts = ClusterOptions {
            stall_timeout: Some(Duration::from_millis(200)),
            ..ClusterOptions::default()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(2, toy_model(), &opts, |c| {
                if c.rank() == 0 {
                    c.send(1, 1, &[1.0], Category::XyComm);
                    // Tag 99 is never sent: rank 0 stalls forever.
                    c.recv(Some(1), Some(99), Category::XyComm);
                }
            });
        }))
        .expect_err("stalled run must panic, not hang");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("watchdog"), "diagnostic missing: {msg}");
        assert!(msg.contains("world rank 0"), "diagnostic missing: {msg}");
        assert!(msg.contains("fault plan"), "diagnostic missing: {msg}");
    }
}
