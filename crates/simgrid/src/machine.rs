//! Machine models: calibrated α–β cost parameters for the paper's systems.
//!
//! The absolute constants are order-of-magnitude figures from public system
//! documentation and the paper itself (e.g. Perlmutter's 300 GB/s NVLink vs
//! 12.5 GB/s per-direction per-GPU Slingshot injection, §4.2.2). They are
//! not meant to match the paper's absolute runtimes — only the *relative*
//! behaviour: who wins, by roughly what factor, where scaling stops.

/// GPU cost parameters (per device).
#[derive(Clone, Debug)]
pub struct GpuModel {
    /// Peak-ish f64 throughput for the dense panel kernels (flops/s).
    pub flop_rate: f64,
    /// HBM bandwidth (bytes/s) — the binding resource for GEMV.
    pub hbm_bw: f64,
    /// Host-side kernel-launch overhead (s); paid once per solve kernel.
    pub kernel_launch: f64,
    /// Per-thread-block scheduling overhead (s); paid once per supernode
    /// task (the paper maps one thread block per supernode column).
    pub block_overhead: f64,
    /// Concurrently resident thread blocks (≈ #SMs × blocks/SM); bounds the
    /// task-level parallelism of the sync-free solve kernel.
    pub concurrency: usize,
    /// GPU-initiated one-sided put latency within a node (s).
    pub put_latency_intra: f64,
    /// GPU-initiated one-sided put latency across nodes (s).
    pub put_latency_inter: f64,
    /// Intra-node GPU-GPU bandwidth (NVLink / Infinity Fabric), bytes/s.
    pub put_bw_intra: f64,
    /// Inter-node per-GPU injection bandwidth, bytes/s.
    pub put_bw_inter: f64,
    /// GPUs per node (for link selection).
    pub gpus_per_node: usize,
}

impl GpuModel {
    /// Time for a dense `m × k` GEMV/GEMM against `nrhs` RHS columns on the
    /// GPU: max of the compute and memory-bandwidth bounds (the panel must
    /// stream from HBM once).
    pub fn panel_op_time(&self, m: usize, k: usize, nrhs: usize) -> f64 {
        let flops = 2.0 * m as f64 * k as f64 * nrhs as f64;
        let bytes = 8.0 * (m as f64 * k as f64 + (m + k) as f64 * nrhs as f64);
        (flops / self.flop_rate).max(bytes / self.hbm_bw)
    }

    /// One-sided put cost `(latency, wire_time)` between two GPUs.
    pub fn put_cost(&self, src_gpu: usize, dst_gpu: usize, bytes: usize) -> (f64, f64) {
        let same_node = src_gpu / self.gpus_per_node == dst_gpu / self.gpus_per_node;
        if same_node {
            (self.put_latency_intra, bytes as f64 / self.put_bw_intra)
        } else {
            (self.put_latency_inter, bytes as f64 / self.put_bw_inter)
        }
    }
}

/// Cluster cost model: per-rank CPU compute rate plus a two-level
/// (intra-node / inter-node) α–β network.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Human-readable system name.
    pub name: &'static str,
    /// Effective f64 throughput of the solve kernels on one rank (flops/s).
    /// SpTRSV GEMVs are memory-bound, so this is far below peak.
    pub flop_rate: f64,
    /// Software + injection overhead paid by the sender per message (s).
    pub send_overhead: f64,
    /// Software overhead paid by the receiver per matched message (s) —
    /// the cost that makes flat (star) reductions serialize at the root
    /// and motivates the paper's binary communication trees.
    pub recv_overhead: f64,
    /// Remaining latency to an intra-node peer (s).
    pub latency_intra: f64,
    /// Remaining latency to an inter-node peer (s).
    pub latency_inter: f64,
    /// Intra-node bandwidth per rank (bytes/s).
    pub bw_intra: f64,
    /// Inter-node bandwidth per rank (bytes/s).
    pub bw_inter: f64,
    /// MPI ranks per node (for link selection).
    pub ranks_per_node: usize,
    /// How much faster (per flop) multi-RHS GEMM runs than single-RHS GEMV
    /// on this CPU (cache reuse): effective rate = `flop_rate · min(this,
    /// 1 + 0.2·(nrhs − 1))`.
    pub gemm_peak_ratio: f64,
    /// GPU parameters when the system has one GPU per rank.
    pub gpu: Option<GpuModel>,
}

impl MachineModel {
    /// A flat single-level network, mainly for tests.
    pub fn uniform(
        name: &'static str,
        flop_rate: f64,
        latency: f64,
        bandwidth: f64,
        ranks_per_node: usize,
    ) -> Self {
        MachineModel {
            name,
            flop_rate,
            send_overhead: latency * 0.3,
            recv_overhead: latency * 0.3,
            latency_intra: latency * 0.7,
            latency_inter: latency * 0.7,
            bw_intra: bandwidth,
            bw_inter: bandwidth,
            ranks_per_node,
            gemm_peak_ratio: 6.0,
            gpu: None,
        }
    }

    /// `(sender_overhead, wire_time)` for a point-to-point message.
    pub fn p2p_cost(&self, src: usize, dst: usize, bytes: usize) -> (f64, f64) {
        if src == dst {
            // Self-message: memcpy through the local memory system.
            return (0.0, bytes as f64 / (2.0 * self.bw_intra));
        }
        let same_node = src / self.ranks_per_node == dst / self.ranks_per_node;
        if same_node {
            (
                self.send_overhead,
                self.latency_intra + bytes as f64 / self.bw_intra,
            )
        } else {
            (
                self.send_overhead,
                self.latency_inter + bytes as f64 / self.bw_inter,
            )
        }
    }

    /// Time to perform a dense `m × k` panel operation with `nrhs` RHSs on
    /// the CPU: max of flop and memory-bandwidth bounds, modelled through
    /// the single effective `flop_rate` (already memory-bound calibrated).
    pub fn cpu_panel_op_time(&self, m: usize, k: usize, nrhs: usize) -> f64 {
        let eff = self
            .gemm_peak_ratio
            .min(1.0 + 0.2 * (nrhs as f64 - 1.0))
            .max(1.0);
        2.0 * m as f64 * k as f64 * nrhs as f64 / (self.flop_rate * eff)
    }

    /// Cori Haswell (Cray XC40, Aries): the paper's CPU testbed (Fig. 4–8).
    /// 32 ranks/node; effective per-core GEMV rate ~2 GF/s (memory bound);
    /// Aries MPI latency ~1.3/2.5 µs, per-rank bandwidth shares of
    /// ~100 GB/s DDR and ~10 GB/s NIC.
    pub fn cori_haswell() -> Self {
        MachineModel {
            name: "cori-haswell",
            recv_overhead: 0.7e-6,
            flop_rate: 2.0e9,
            send_overhead: 0.7e-6,
            latency_intra: 0.4e-6,
            latency_inter: 1.6e-6,
            bw_intra: 3.0e9,
            bw_inter: 0.6e9,
            ranks_per_node: 32,
            gemm_peak_ratio: 6.0,
            gpu: None,
        }
    }

    /// Perlmutter GPU node, CPU side (AMD EPYC 7763; used for the "CPU"
    /// curves of Fig. 9–11 when run with `Pz` ranks on CPU cores).
    pub fn perlmutter_cpu() -> Self {
        MachineModel {
            name: "perlmutter-cpu",
            recv_overhead: 0.6e-6,
            flop_rate: 5.5e9,
            send_overhead: 0.6e-6,
            latency_intra: 0.3e-6,
            latency_inter: 1.4e-6,
            bw_intra: 6.0e9,
            bw_inter: 1.5e9,
            ranks_per_node: 64,
            gemm_peak_ratio: 7.0,
            gpu: None,
        }
    }

    /// Perlmutter GPU partition: 4 × A100 per node, NVSHMEM over NVLink
    /// (300 GB/s) intra-node and Slingshot-11 (12.5 GB/s per direction per
    /// GPU) inter-node — the §4.2.2 bandwidth cliff.
    pub fn perlmutter_gpu() -> Self {
        MachineModel {
            name: "perlmutter-gpu",
            // Host ranks drive setup + the MPI sparse allreduce.
            flop_rate: 5.5e9,
            recv_overhead: 0.6e-6,
            send_overhead: 0.6e-6,
            latency_intra: 0.3e-6,
            latency_inter: 1.4e-6,
            bw_intra: 6.0e9,
            bw_inter: 1.5e9,
            ranks_per_node: 4, // one rank per GPU
            gemm_peak_ratio: 7.0,
            gpu: Some(GpuModel {
                flop_rate: 9.0e12,
                hbm_bw: 1.4e12,
                kernel_launch: 10.0e-6,
                block_overhead: 1.6e-6,
                concurrency: 216, // 108 SMs × 2 resident blocks
                put_latency_intra: 1.5e-6,
                put_latency_inter: 3.0e-6,
                put_bw_intra: 300.0e9,
                put_bw_inter: 12.5e9,
                gpus_per_node: 4,
            }),
        }
    }

    /// Crusher (Frontier testbed): 8 MI250X GCDs per node. ROC-SHMEM lacks
    /// subcommunicator support (paper §3.4), so only `Px = Py = 1` runs use
    /// the GPU path; higher software overheads give the smaller CPU→GPU
    /// speedups the paper reports on this system.
    pub fn crusher_gpu() -> Self {
        MachineModel {
            name: "crusher-gpu",
            recv_overhead: 0.7e-6,
            flop_rate: 4.5e9,
            send_overhead: 0.7e-6,
            latency_intra: 0.4e-6,
            latency_inter: 1.6e-6,
            bw_intra: 5.0e9,
            bw_inter: 1.5e9,
            ranks_per_node: 8,
            gemm_peak_ratio: 6.0,
            gpu: Some(GpuModel {
                flop_rate: 8.0e12,
                hbm_bw: 1.3e12,
                kernel_launch: 25.0e-6,
                block_overhead: 4.5e-6,
                concurrency: 220,
                put_latency_intra: 2.5e-6,
                put_latency_inter: 4.0e-6,
                put_bw_intra: 200.0e9,
                put_bw_inter: 12.5e9,
                gpus_per_node: 8,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_node_is_cheaper() {
        let m = MachineModel::cori_haswell();
        let (_, wi) = m.p2p_cost(0, 1, 1024);
        let (_, we) = m.p2p_cost(0, 32, 1024);
        assert!(wi < we);
    }

    #[test]
    fn self_message_is_cheapest() {
        let m = MachineModel::cori_haswell();
        let (o, w) = m.p2p_cost(3, 3, 1024);
        assert_eq!(o, 0.0);
        let (_, wi) = m.p2p_cost(0, 1, 1024);
        assert!(w < wi);
    }

    #[test]
    fn gpu_put_bandwidth_cliff() {
        let g = MachineModel::perlmutter_gpu().gpu.unwrap();
        let bytes = 1 << 20;
        let (_, intra) = g.put_cost(0, 1, bytes);
        let (_, inter) = g.put_cost(0, 4, bytes);
        // Paper: 300 GB/s vs 12.5 GB/s => ~24x wire-time gap.
        assert!(inter / intra > 10.0);
    }

    #[test]
    fn gpu_beats_cpu_on_large_panels() {
        let m = MachineModel::perlmutter_gpu();
        let g = m.gpu.as_ref().unwrap();
        let cpu = m.cpu_panel_op_time(512, 64, 50);
        let gpu = g.panel_op_time(512, 64, 50);
        assert!(gpu < cpu / 10.0);
    }

    #[test]
    fn gemv_on_gpu_is_memory_bound() {
        let g = MachineModel::perlmutter_gpu().gpu.unwrap();
        // Single RHS: bytes dominate flops.
        let t = g.panel_op_time(100, 100, 1);
        let mem = 8.0 * (100.0 * 100.0 + 200.0) / g.hbm_bw;
        assert!((t - mem).abs() < 1e-12);
    }
}
