//! Deterministic, seeded fault injection for the virtual cluster.
//!
//! A [`FaultPlan`] describes one adversarial network: sampled message
//! jitter, duplicated deliveries, adversarial any-source queue ordering,
//! straggler ranks with slowed compute, and degraded links with inflated
//! latency/bandwidth cost. Every random choice is drawn from xorshift
//! streams derived from the single `seed`, so any failure observed under a
//! plan reproduces exactly from `{plan, seed}` — test failure messages
//! print the full plan for that reason.
//!
//! The inert plan ([`FaultPlan::default`]) injects nothing and samples
//! nothing; runs with it behave bit-for-bit like a fault-free cluster.

use serde::{Deserialize, Serialize};

/// Policy for choosing among matching queued messages in an any-source
/// receive. The simulator's faithful behavior is `EarliestArrival`; the
/// others are adversarial schedules for fault injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reorder {
    /// Earliest virtual arrival first (the faithful MPI-like default).
    #[default]
    EarliestArrival,
    /// Seeded uniformly random pick among matches (the old `chaos_seed`
    /// behavior).
    Random,
    /// Most recently queued match first — a LIFO schedule.
    NewestQueued,
    /// Maximum virtual arrival time first — the exact inverse of the
    /// faithful order.
    LatestArrival,
}

/// A complete description of the faults injected into one cluster run.
///
/// The default value is inert: no jitter, no duplicates, faithful
/// ordering, no stragglers, no degraded links. `ClusterOptions::default()`
/// therefore preserves fault-free behavior exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed for every sampled decision (jitter, duplication, random
    /// reorder). Per-rank streams are derived from it deterministically.
    pub seed: u64,
    /// Any-source queue ordering policy.
    pub reorder: Reorder,
    /// Maximum extra in-flight delay added to each message, in seconds;
    /// the actual delay is sampled uniformly from `[0, jitter_max)`.
    pub jitter_max: f64,
    /// Probability in `[0, 1]` that a message is delivered twice; the
    /// duplicate arrives after the original with fresh jitter.
    pub duplicate_prob: f64,
    /// World ranks whose `compute` calls are slowed by `straggler_factor`.
    pub straggler_ranks: Vec<usize>,
    /// Compute-time multiplier for straggler ranks (≥ 1 slows them down).
    pub straggler_factor: f64,
    /// World ranks whose links (either endpoint) are degraded.
    pub degraded_ranks: Vec<usize>,
    /// Wire-time multiplier on degraded links (β degradation).
    pub degrade_wire_mult: f64,
    /// Extra latency in seconds on degraded links (α degradation).
    pub degrade_extra_latency: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            reorder: Reorder::EarliestArrival,
            jitter_max: 0.0,
            duplicate_prob: 0.0,
            straggler_ranks: Vec::new(),
            straggler_factor: 1.0,
            degraded_ranks: Vec::new(),
            degrade_wire_mult: 1.0,
            degrade_extra_latency: 0.0,
        }
    }
}

/// Names of the built-in fault profiles, in sweep order.
pub const PROFILE_NAMES: &[&str] = &[
    "clean",
    "jitter",
    "duplicates",
    "reorder",
    "straggler",
    "degraded-link",
    "all",
];

impl FaultPlan {
    /// True when this plan injects nothing — the cluster behaves exactly
    /// as if no fault subsystem existed.
    pub fn is_inert(&self) -> bool {
        self.reorder == Reorder::EarliestArrival
            && self.jitter_max == 0.0
            && self.duplicate_prob == 0.0
            && (self.straggler_ranks.is_empty() || self.straggler_factor == 1.0)
            && (self.degraded_ranks.is_empty()
                || (self.degrade_wire_mult == 1.0 && self.degrade_extra_latency == 0.0))
    }

    /// The legacy `chaos_seed` behavior: random any-source ordering only.
    pub fn random_reorder(seed: u64) -> Self {
        FaultPlan {
            seed,
            reorder: Reorder::Random,
            ..FaultPlan::default()
        }
    }

    /// A named fault profile (see [`PROFILE_NAMES`]), parameterized by the
    /// run seed and the world size (used to pick victim ranks). Returns
    /// `None` for unknown names.
    pub fn from_profile(name: &str, seed: u64, nranks: usize) -> Option<Self> {
        let victim = (seed as usize) % nranks.max(1);
        let base = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        Some(match name {
            "clean" => base,
            "jitter" => FaultPlan {
                jitter_max: 20e-6,
                ..base
            },
            "duplicates" => FaultPlan {
                duplicate_prob: 0.3,
                jitter_max: 2e-6,
                ..base
            },
            "reorder" => FaultPlan {
                reorder: match seed % 3 {
                    0 => Reorder::NewestQueued,
                    1 => Reorder::LatestArrival,
                    _ => Reorder::Random,
                },
                ..base
            },
            "straggler" => FaultPlan {
                straggler_ranks: vec![victim],
                straggler_factor: 8.0,
                ..base
            },
            "degraded-link" => FaultPlan {
                degraded_ranks: vec![victim],
                degrade_wire_mult: 20.0,
                degrade_extra_latency: 20e-6,
                ..base
            },
            "all" => FaultPlan {
                reorder: Reorder::LatestArrival,
                jitter_max: 20e-6,
                duplicate_prob: 0.3,
                straggler_ranks: vec![victim],
                straggler_factor: 8.0,
                degraded_ranks: vec![nranks.max(1) - 1 - victim.min(nranks.max(1) - 1)],
                degrade_wire_mult: 10.0,
                degrade_extra_latency: 10e-6,
                ..base
            },
            _ => return None,
        })
    }

    /// True when the link between world ranks `a` and `b` is degraded
    /// (either endpoint listed).
    pub fn link_degraded(&self, a: usize, b: usize) -> bool {
        self.degraded_ranks.contains(&a) || self.degraded_ranks.contains(&b)
    }

    /// Compute-time multiplier for world rank `r`.
    pub fn compute_mult(&self, r: usize) -> f64 {
        if self.straggler_ranks.contains(&r) {
            self.straggler_factor
        } else {
            1.0
        }
    }

    /// Initial xorshift state for world rank `r`'s fault stream; 0 means
    /// the rank samples nothing (inert plan).
    pub fn rank_stream(&self, r: usize) -> u64 {
        if self.is_inert() {
            return 0;
        }
        // splitmix64 over (seed, rank) — decorrelates adjacent ranks.
        let mut z = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(r as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) | 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert_eq!(FaultPlan::default().rank_stream(3), 0);
        assert_eq!(FaultPlan::default().compute_mult(0), 1.0);
        assert!(!FaultPlan::default().link_degraded(0, 1));
    }

    #[test]
    fn profiles_resolve_and_unknown_is_none() {
        for name in PROFILE_NAMES {
            let p = FaultPlan::from_profile(name, 7, 8).expect("known profile");
            if *name == "clean" {
                assert!(p.is_inert(), "clean profile must be inert");
            } else {
                assert!(!p.is_inert(), "profile {name} must inject something");
            }
        }
        assert!(FaultPlan::from_profile("nope", 7, 8).is_none());
    }

    #[test]
    fn rank_streams_are_deterministic_and_distinct() {
        let p = FaultPlan::from_profile("jitter", 42, 4).unwrap();
        assert_eq!(p.rank_stream(2), p.rank_stream(2));
        assert_ne!(p.rank_stream(1), p.rank_stream(2));
        assert_ne!(p.rank_stream(0), 0);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let p = FaultPlan::from_profile("all", 1234, 16).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
