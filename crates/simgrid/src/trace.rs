//! Optional per-rank event tracing.
//!
//! When [`crate::ClusterOptions::trace`] is set, every compute, send, and
//! receive interval is recorded with its virtual start/end times. The
//! resulting timelines explain *why* a solve has the makespan it does —
//! the closest offline equivalent to the Vampir/Score-P traces used when
//! tuning the real SuperLU_DIST solver.

use crate::stats::Category;

/// What a traced interval was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Local computation.
    Compute,
    /// Sender-side overhead of a message (peer = destination world rank).
    Send,
    /// Waiting for + receiving a message (peer = source world rank).
    Recv,
}

/// One traced interval on a rank's virtual timeline.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Interval start (virtual seconds).
    pub t0: f64,
    /// Interval end (virtual seconds, `t1 ≥ t0`).
    pub t1: f64,
    /// Interval kind.
    pub kind: EventKind,
    /// Attribution category.
    pub category: Category,
    /// Peer world rank for messages, `usize::MAX` for compute.
    pub peer: usize,
    /// Payload bytes for messages, 0 for compute.
    pub bytes: usize,
}

/// Render per-rank timelines as an ASCII Gantt chart of `width` columns.
/// `timelines[r]` is rank r's event list; `makespan` scales the time axis.
/// Glyphs: `#` compute, `>` send, `.` recv/wait, (space) idle.
pub fn render_timeline(timelines: &[Vec<TraceEvent>], makespan: f64, width: usize) -> String {
    let mut out = String::new();
    let scale = width as f64 / makespan.max(f64::MIN_POSITIVE);
    for (rank, events) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in events {
            let c0 = ((e.t0 * scale) as usize).min(width.saturating_sub(1));
            let c1 = ((e.t1 * scale).ceil() as usize).clamp(c0 + 1, width);
            let glyph = match e.kind {
                EventKind::Compute => '#',
                EventKind::Send => '>',
                EventKind::Recv => '.',
            };
            for c in row.iter_mut().take(c1).skip(c0) {
                // Compute wins over send wins over recv when overlapping.
                let rank_of = |g: char| match g {
                    '#' => 3,
                    '>' => 2,
                    '.' => 1,
                    _ => 0,
                };
                if rank_of(glyph) > rank_of(*c) {
                    *c = glyph;
                }
            }
        }
        out.push_str(&format!("rank {rank:>4} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderer_places_glyphs() {
        let timelines = vec![
            vec![
                TraceEvent {
                    t0: 0.0,
                    t1: 0.5,
                    kind: EventKind::Compute,
                    category: Category::Flop,
                    peer: usize::MAX,
                    bytes: 0,
                },
                TraceEvent {
                    t0: 0.5,
                    t1: 1.0,
                    kind: EventKind::Recv,
                    category: Category::XyComm,
                    peer: 1,
                    bytes: 8,
                },
            ],
            vec![],
        ];
        let s = render_timeline(&timelines, 1.0, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('.'));
        assert!(!lines[1].contains('#'));
    }

    #[test]
    fn renderer_handles_zero_makespan() {
        let s = render_timeline(&[vec![]], 0.0, 5);
        assert!(s.contains("rank    0"));
    }
}
