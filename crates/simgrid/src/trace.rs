//! Optional per-rank event tracing with structured solver semantics.
//!
//! When [`crate::ClusterOptions::trace`] is set, every compute, send, and
//! receive interval is recorded with its virtual start/end times. The
//! resulting timelines explain *why* a solve has the makespan it does —
//! the closest offline equivalent to the Vampir/Score-P traces used when
//! tuning the real SuperLU_DIST solver.
//!
//! Spans carry two optional attachments:
//!
//! * [`MsgInfo`] — the wire-level facts of a send/receive (peer, bytes,
//!   tag, a cluster-unique sequence id that pairs each receive with its
//!   send, the virtual arrival time, and fault-injection marks).
//! * [`SpanDetail`] — what the *solver* was doing (supernode, schedule
//!   step, broadcast/reduction-tree role, allreduce round, z-exchange
//!   level, GPU pass), stamped by the interpreter layers in `core`.
//!
//! On CPU ranks the recorded spans exactly tile `[0, final_clock]`: every
//! clock advance happens inside a recorded interval, so the spans of each
//! rank are non-overlapping and gap-free. Event-driven GPU passes record
//! one covering span per pass instead of per-task spans (their internal
//! puts/receives deliberately bypass tracing); the covering span preserves
//! the tiling invariant, which is what lets the critical-path walk in
//! `core::analysis` telescope exactly to the makespan.
//!
//! [`export_perfetto`] serialises timelines into the Chrome trace-event
//! JSON format (one *process* per 2D grid, one *thread* per rank, flow
//! arrows linking each send to its matching receive), loadable directly
//! in <https://ui.perfetto.dev>.

use crate::stats::Category;

/// What a traced interval was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Local computation.
    Compute,
    /// Sender-side overhead of a message.
    Send,
    /// Waiting for + receiving a message.
    Recv,
}

/// Position of an operation inside a communication tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeRole {
    /// Solving the diagonal block (root work of a broadcast tree).
    Diag,
    /// Applying an off-diagonal block column update.
    Apply,
    /// Moving a solved vector down a broadcast tree.
    Bcast,
    /// Moving a partial sum up a reduction tree.
    Reduce,
}

impl TreeRole {
    /// Lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            TreeRole::Diag => "diag",
            TreeRole::Apply => "apply",
            TreeRole::Bcast => "bcast",
            TreeRole::Reduce => "reduce",
        }
    }
}

/// Solver-semantic annotation attached to a span by the interpreter
/// layers in `core` (the simulator itself never fabricates one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanDetail {
    /// Activity inside a 2D schedule pass driven by `run_pass`.
    Pass {
        /// Pass epoch (L/U, possibly per z-step for the baseline).
        epoch: u64,
        /// Monotone per-pass step index on this rank.
        step: u32,
        /// Supernode the operation concerns.
        sup: u32,
        /// Tree role of the operation.
        role: TreeRole,
    },
    /// One round of the sparse z-line allreduce.
    Allreduce {
        /// Butterfly/tree round index (reduce counts up, bcast back down).
        round: u32,
        /// `Reduce` on the way up, `Bcast` on the way down.
        role: TreeRole,
    },
    /// One round of the sparse z-line allreduce under the live-support
    /// trimmed layout: same role as [`SpanDetail::Allreduce`], plus the
    /// payload doubles the trim removed from this round, so the critical-
    /// path walk can attribute makespan wins per round.
    ZExchangeTrim {
        /// Butterfly/tree round index (reduce counts up, bcast back down).
        round: u32,
        /// `Reduce` on the way up, `Bcast` on the way down.
        role: TreeRole,
        /// Doubles removed from this round's payload vs the dense layout.
        saved_doubles: u64,
    },
    /// Dense per-node allreduce of the naive fallback path.
    NaiveAllreduce {
        /// Layout-node heap id being reduced.
        node: u32,
    },
    /// Baseline-3D z-exchange of packed lsum/x buffers.
    ZExchange {
        /// Exchange level (low bits of the compile-time tag).
        level: u32,
        /// True for the lsum reduction leg, false for solved-x forwarding.
        reduce: bool,
    },
    /// Covering span of one event-driven GPU pass.
    GpuPass {
        /// Pass epoch.
        epoch: u64,
        /// Kernel launches retired by the pass.
        tasks: u64,
    },
    /// Blocking receive entered while the level-set executor is parked at
    /// a level barrier: the waited-on row's dependencies are incomplete,
    /// so the span's stall time is level-synchronization cost.
    LevelBarrier {
        /// Pass epoch.
        epoch: u64,
        /// Level the executor is parked at.
        level: u32,
        /// Supernode of the row waiting at the barrier.
        sup: u32,
    },
}

/// Fault-injection marks stamped on message spans, so chaos runs can be
/// audited from the trace alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultMark {
    /// The message's arrival was pushed back by injected jitter.
    pub jitter_delayed: bool,
    /// This delivery is an injected duplicate copy.
    pub duplicate: bool,
    /// The receiver recognised this delivery as a duplicate and dropped it.
    pub dropped_duplicate: bool,
}

impl FaultMark {
    /// Any mark set?
    pub fn any(self) -> bool {
        self.jitter_delayed || self.duplicate || self.dropped_duplicate
    }
}

/// Wire-level facts of a send/receive span. Replaces the old
/// `peer = usize::MAX` / `bytes = 0` sentinel convention: compute spans
/// simply carry no `MsgInfo`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MsgInfo {
    /// World rank of the other endpoint.
    pub peer: usize,
    /// Bytes on the wire (payload + envelope).
    pub bytes: usize,
    /// Message tag (epoch/kind/supernode encoding of `core`).
    pub tag: u64,
    /// Cluster-unique message id; a receive span carries the id of the
    /// send that produced it, which is how flow arrows and the
    /// critical-path walk pair the two.
    pub seq: u64,
    /// Virtual arrival time at the receiver (post fault injection).
    pub arrival: f64,
    /// Fault-injection marks.
    pub faults: FaultMark,
}

/// One traced interval on a rank's virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Interval start (virtual seconds).
    pub t0: f64,
    /// Interval end (virtual seconds, `t1 ≥ t0`).
    pub t1: f64,
    /// Interval kind.
    pub kind: EventKind,
    /// Attribution category.
    pub category: Category,
    /// Message facts (`None` for compute spans).
    pub msg: Option<MsgInfo>,
    /// Solver-semantic annotation, if the interpreter stamped one.
    pub detail: Option<SpanDetail>,
}

impl TraceEvent {
    /// A compute span (no message payload).
    pub fn compute(t0: f64, t1: f64, category: Category) -> Self {
        TraceEvent {
            t0,
            t1,
            kind: EventKind::Compute,
            category,
            msg: None,
            detail: None,
        }
    }
}

/// Always-on flight recorder: a fixed-capacity ring buffer of the most
/// recent [`TraceEvent`]s on one rank, overwriting the oldest entry when
/// full.
///
/// Unlike the opt-in full trace (which grows unboundedly and is off by
/// default), a recorder is bounded and allocation-free after construction:
/// the backing store is reserved up front and [`FlightRecorder::record`]
/// only ever writes in place. Both backends feed every compute/send/recv
/// span into it, so when a rank stalls the watchdog can drain the last N
/// spans of *every* rank into a Perfetto dump — a replayable
/// last-few-milliseconds timeline instead of a point-in-time report.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry once the ring is full; next write slot.
    head: usize,
    overwritten: u64,
}

impl FlightRecorder {
    /// Recorder holding the most recent `capacity` events (0 disables it).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            overwritten: 0,
        }
    }

    /// Record one event, overwriting the oldest if the ring is full.
    /// Never allocates: the buffer grows only up to its reserved capacity.
    pub fn record(&mut self, e: TraceEvent) {
        let cap = self.buf.capacity();
        if cap == 0 {
            return;
        }
        if self.buf.len() < cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Events evicted to make room since construction.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Copy out the retained events, oldest first. Non-consuming, so a
    /// stall dump and an end-of-run drain can both read the same ring.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Render per-rank timelines as an ASCII Gantt chart of `width` columns.
/// `timelines[r]` is rank r's event list; `makespan` scales the time axis.
/// Glyphs: `#` compute, `>` send, `.` recv/wait, (space) idle.
pub fn render_timeline(timelines: &[Vec<TraceEvent>], makespan: f64, width: usize) -> String {
    let mut out = String::new();
    let scale = width as f64 / makespan.max(f64::MIN_POSITIVE);
    for (rank, events) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in events {
            let c0 = ((e.t0 * scale) as usize).min(width.saturating_sub(1));
            let c1 = ((e.t1 * scale).ceil() as usize).clamp(c0 + 1, width);
            let glyph = match e.kind {
                EventKind::Compute => '#',
                EventKind::Send => '>',
                EventKind::Recv => '.',
            };
            for c in row.iter_mut().take(c1).skip(c0) {
                // Compute wins over send wins over recv when overlapping.
                let rank_of = |g: char| match g {
                    '#' => 3,
                    '>' => 2,
                    '.' => 1,
                    _ => 0,
                };
                if rank_of(glyph) > rank_of(*c) {
                    *c = glyph;
                }
            }
        }
        out.push_str(&format!("rank {rank:>4} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Human-readable span name for exports and reports.
pub fn span_name(e: &TraceEvent) -> String {
    match (e.kind, &e.detail) {
        (_, Some(SpanDetail::Pass { sup, role, .. })) => match e.kind {
            EventKind::Compute => format!("{} sup {}", role.label(), sup),
            EventKind::Send => format!("{} sup {} send", role.label(), sup),
            EventKind::Recv => format!("{} sup {} recv", role.label(), sup),
        },
        (_, Some(SpanDetail::Allreduce { round, role })) => match e.kind {
            EventKind::Recv => format!("z-{} r{} recv", role.label(), round),
            _ => format!("z-{} r{} send", role.label(), round),
        },
        (_, Some(SpanDetail::ZExchangeTrim { round, role, .. })) => match e.kind {
            EventKind::Recv => format!("z-{} r{} recv (trim)", role.label(), round),
            _ => format!("z-{} r{} send (trim)", role.label(), round),
        },
        (_, Some(SpanDetail::NaiveAllreduce { node })) => format!("z-allreduce node {node}"),
        (_, Some(SpanDetail::ZExchange { level, reduce })) => {
            let leg = if *reduce { "lsum" } else { "x" };
            format!("z-xchg {leg} L{level}")
        }
        (_, Some(SpanDetail::GpuPass { epoch, .. })) => match e.kind {
            EventKind::Compute => format!("gpu pass e{epoch}"),
            _ => format!("gpu drain e{epoch}"),
        },
        (_, Some(SpanDetail::LevelBarrier { level, sup, .. })) => {
            format!("level barrier L{level} sup {sup}")
        }
        (EventKind::Compute, None) => "compute".to_string(),
        (EventKind::Send, None) => match &e.msg {
            Some(m) => format!("send -> {}", m.peer),
            None => "send".to_string(),
        },
        (EventKind::Recv, None) => match &e.msg {
            Some(m) => format!("recv <- {}", m.peer),
            None => "recv".to_string(),
        },
    }
}

/// Append a JSON-escaped string literal (with quotes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append one `"key":value` pair where the value is already rendered.
fn push_kv_raw(out: &mut String, key: &str, value: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_json_str(out, key);
    out.push(':');
    out.push_str(value);
}

/// Microseconds, rendered with shortest-roundtrip float formatting (the
/// Chrome trace format counts `ts`/`dur` in microseconds).
fn us(t: f64) -> String {
    format!("{:?}", t * 1e6)
}

/// Append the `args` object of a span.
fn push_args(out: &mut String, e: &TraceEvent) {
    out.push('{');
    let mut first = true;
    if let Some(m) = &e.msg {
        push_kv_raw(out, "peer", &m.peer.to_string(), &mut first);
        push_kv_raw(out, "bytes", &m.bytes.to_string(), &mut first);
        push_kv_raw(out, "tag", &format!("\"0x{:x}\"", m.tag), &mut first);
        push_kv_raw(out, "seq", &m.seq.to_string(), &mut first);
        push_kv_raw(out, "arrival_us", &us(m.arrival), &mut first);
        if m.faults.jitter_delayed {
            push_kv_raw(out, "jitter_delayed", "true", &mut first);
        }
        if m.faults.duplicate {
            push_kv_raw(out, "duplicate", "true", &mut first);
        }
        if m.faults.dropped_duplicate {
            push_kv_raw(out, "dropped_duplicate", "true", &mut first);
        }
    }
    match &e.detail {
        Some(SpanDetail::Pass {
            epoch,
            step,
            sup,
            role,
        }) => {
            push_kv_raw(out, "epoch", &epoch.to_string(), &mut first);
            push_kv_raw(out, "step", &step.to_string(), &mut first);
            push_kv_raw(out, "sup", &sup.to_string(), &mut first);
            push_kv_raw(out, "role", &format!("\"{}\"", role.label()), &mut first);
        }
        Some(SpanDetail::Allreduce { round, role }) => {
            push_kv_raw(out, "round", &round.to_string(), &mut first);
            push_kv_raw(out, "role", &format!("\"{}\"", role.label()), &mut first);
        }
        Some(SpanDetail::ZExchangeTrim {
            round,
            role,
            saved_doubles,
        }) => {
            push_kv_raw(out, "round", &round.to_string(), &mut first);
            push_kv_raw(out, "role", &format!("\"{}\"", role.label()), &mut first);
            push_kv_raw(out, "saved_doubles", &saved_doubles.to_string(), &mut first);
        }
        Some(SpanDetail::NaiveAllreduce { node }) => {
            push_kv_raw(out, "node", &node.to_string(), &mut first);
        }
        Some(SpanDetail::ZExchange { level, reduce }) => {
            push_kv_raw(out, "level", &level.to_string(), &mut first);
            push_kv_raw(
                out,
                "reduce",
                if *reduce { "true" } else { "false" },
                &mut first,
            );
        }
        Some(SpanDetail::GpuPass { epoch, tasks }) => {
            push_kv_raw(out, "epoch", &epoch.to_string(), &mut first);
            push_kv_raw(out, "tasks", &tasks.to_string(), &mut first);
        }
        Some(SpanDetail::LevelBarrier { epoch, level, sup }) => {
            push_kv_raw(out, "epoch", &epoch.to_string(), &mut first);
            push_kv_raw(out, "level", &level.to_string(), &mut first);
            push_kv_raw(out, "sup", &sup.to_string(), &mut first);
        }
        None => {}
    }
    let _ = first;
    out.push('}');
}

/// Export timelines in the Chrome/Perfetto trace-event JSON format.
///
/// * one *process* per 2D grid (`pid = rank / ranks_per_grid`, pass
///   `ranks_per_grid = px * py`; 0 means "everything in one process"),
/// * one *thread* per world rank,
/// * `"X"` complete events for every span (`ts`/`dur` in microseconds),
/// * flow events (`"s"`/`"f"`) pairing each traced send with its traced
///   receive via the message sequence id.
///
/// The returned string is self-contained JSON loadable in
/// <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn export_perfetto(timelines: &[Vec<TraceEvent>], ranks_per_grid: usize) -> String {
    let rpg = if ranks_per_grid == 0 {
        timelines.len().max(1)
    } else {
        ranks_per_grid
    };
    // Only pair flows whose both endpoints were traced.
    let mut recv_seqs: Vec<u64> = timelines
        .iter()
        .flatten()
        .filter(|e| e.kind == EventKind::Recv)
        .filter_map(|e| e.msg.as_ref().map(|m| m.seq))
        .collect();
    recv_seqs.sort_unstable();
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first_ev = true;
    let mut emit = |out: &mut String, body: &str| {
        if !first_ev {
            out.push(',');
        }
        first_ev = false;
        out.push_str("\n  ");
        out.push_str(body);
    };
    for (rank, _) in timelines.iter().enumerate() {
        let pid = rank / rpg;
        if rank % rpg == 0 {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"grid {pid}\"}}}}"
                ),
            );
        }
        emit(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ),
        );
    }
    for (rank, events) in timelines.iter().enumerate() {
        let pid = rank / rpg;
        for e in events {
            let mut body = String::new();
            body.push('{');
            let mut first = true;
            push_kv_raw(&mut body, "name", "", &mut first);
            push_json_str(&mut body, &span_name(e));
            push_kv_raw(
                &mut body,
                "cat",
                &format!("\"{}\"", e.category.label()),
                &mut first,
            );
            push_kv_raw(&mut body, "ph", "\"X\"", &mut first);
            push_kv_raw(&mut body, "pid", &pid.to_string(), &mut first);
            push_kv_raw(&mut body, "tid", &rank.to_string(), &mut first);
            push_kv_raw(&mut body, "ts", &us(e.t0), &mut first);
            push_kv_raw(&mut body, "dur", &us((e.t1 - e.t0).max(0.0)), &mut first);
            push_kv_raw(&mut body, "args", "", &mut first);
            push_args(&mut body, e);
            body.push('}');
            emit(&mut out, &body);
            if let Some(m) = &e.msg {
                match e.kind {
                    EventKind::Send if recv_seqs.binary_search(&m.seq).is_ok() => {
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\
                                 \"id\":{},\"pid\":{pid},\"tid\":{rank},\"ts\":{}}}",
                                m.seq,
                                us(e.t1)
                            ),
                        );
                    }
                    EventKind::Recv => {
                        // Bind the arrow inside the receive span.
                        let ts = m.arrival.clamp(e.t0, e.t1);
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                                 \"id\":{},\"pid\":{pid},\"tid\":{rank},\"ts\":{}}}",
                                m.seq,
                                us(ts)
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg_event(kind: EventKind, t0: f64, t1: f64, peer: usize, seq: u64) -> TraceEvent {
        TraceEvent {
            t0,
            t1,
            kind,
            category: Category::XyComm,
            msg: Some(MsgInfo {
                peer,
                bytes: 72,
                tag: 0x1_0000_0000_0007,
                seq,
                arrival: t1,
                faults: FaultMark::default(),
            }),
            detail: None,
        }
    }

    #[test]
    fn renderer_places_glyphs() {
        let timelines = vec![
            vec![
                TraceEvent::compute(0.0, 0.5, Category::Flop),
                msg_event(EventKind::Recv, 0.5, 1.0, 1, 3),
            ],
            vec![],
        ];
        let s = render_timeline(&timelines, 1.0, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('.'));
        assert!(!lines[1].contains('#'));
    }

    #[test]
    fn renderer_glyph_priority() {
        // A send and a recv sharing a column: '>' outranks '.'.
        let timelines = vec![vec![
            msg_event(EventKind::Recv, 0.0, 1.0, 1, 1),
            msg_event(EventKind::Send, 0.0, 1.0, 1, 2),
        ]];
        let s = render_timeline(&timelines, 1.0, 4);
        assert!(s.contains('>'));
        assert!(!s.contains('.'));
    }

    #[test]
    fn renderer_handles_zero_makespan() {
        let s = render_timeline(&[vec![]], 0.0, 5);
        assert!(s.contains("rank    0"));
    }

    #[test]
    fn perfetto_export_pairs_flows() {
        let timelines = vec![
            vec![msg_event(EventKind::Send, 0.0, 1e-6, 1, 42)],
            vec![msg_event(EventKind::Recv, 0.0, 2e-6, 0, 42)],
        ];
        let json = export_perfetto(&timelines, 1);
        // Parses as a value tree.
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde_json::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 2 process metas + 2 thread metas + 2 spans + 1 flow start + 1 flow end.
        assert_eq!(events.len(), 8);
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"id\":42"));
        assert!(json.contains("\"name\":\"grid 0\""));
        assert!(json.contains("\"name\":\"grid 1\""));
    }

    #[test]
    fn perfetto_export_skips_unpaired_flows() {
        // A send whose receive was never traced must not emit a dangling
        // flow-start (Perfetto renders those as arrows to nowhere).
        let timelines = vec![vec![msg_event(EventKind::Send, 0.0, 1e-6, 1, 7)], vec![]];
        let json = export_perfetto(&timelines, 2);
        assert!(!json.contains("\"ph\":\"s\""));
        // Single grid: 2x2 grid would be pid 0 for both ranks.
        assert!(json.contains("\"name\":\"grid 0\""));
        assert!(!json.contains("\"name\":\"grid 1\""));
    }

    #[test]
    fn flight_recorder_wraparound_keeps_spans_well_formed() {
        let mut fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        for i in 0..11u64 {
            fr.record(msg_event(EventKind::Send, i as f64, i as f64 + 0.5, 1, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.overwritten(), 7);
        let drained = fr.drain();
        // Oldest-first, contiguous tail of the stream, spans intact.
        let seqs: Vec<u64> = drained.iter().map(|e| e.msg.unwrap().seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        for e in &drained {
            assert!(e.t1 > e.t0);
            assert_eq!(e.t1 - e.t0, 0.5);
        }
        // Drain is non-consuming and stable.
        assert_eq!(fr.drain(), drained);
    }

    #[test]
    fn flight_recorder_zero_capacity_is_inert() {
        let mut fr = FlightRecorder::new(0);
        fr.record(TraceEvent::compute(0.0, 1.0, Category::Flop));
        assert!(fr.is_empty());
        assert_eq!(fr.overwritten(), 0);
        assert!(fr.drain().is_empty());
    }

    #[test]
    fn flight_recorder_partial_fill_drains_in_order() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3u64 {
            fr.record(msg_event(EventKind::Recv, i as f64, i as f64 + 1.0, 0, i));
        }
        let seqs: Vec<u64> = fr.drain().iter().map(|e| e.msg.unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(fr.overwritten(), 0);
    }

    #[test]
    fn span_names_reflect_detail() {
        let mut e = msg_event(EventKind::Send, 0.0, 1.0, 3, 1);
        assert_eq!(span_name(&e), "send -> 3");
        e.detail = Some(SpanDetail::Pass {
            epoch: 1,
            step: 4,
            sup: 12,
            role: TreeRole::Bcast,
        });
        assert_eq!(span_name(&e), "bcast sup 12 send");
        e.kind = EventKind::Recv;
        assert_eq!(span_name(&e), "bcast sup 12 recv");
        e.detail = Some(SpanDetail::Allreduce {
            round: 2,
            role: TreeRole::Reduce,
        });
        assert_eq!(span_name(&e), "z-reduce r2 recv");
        let g = TraceEvent {
            detail: Some(SpanDetail::GpuPass { epoch: 0, tasks: 9 }),
            ..TraceEvent::compute(0.0, 1.0, Category::Flop)
        };
        assert_eq!(span_name(&g), "gpu pass e0");
    }
}
