//! Per-rank and per-run statistics: the paper's time-breakdown categories.

/// Time/traffic category, matching the breakdown of the paper's Fig. 5/6:
/// `ZComm` is inter-grid communication, `XyComm` intra-grid communication,
/// `Flop` the floating-point operation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[repr(usize)]
pub enum Category {
    /// Floating-point (GEMV/GEMM/TRSV) time.
    Flop = 0,
    /// Intra-grid (2D solve) communication, including waiting.
    XyComm = 1,
    /// Inter-grid (across `Pz`) communication, including waiting.
    ZComm = 2,
    /// Setup work excluded from solve timings.
    Setup = 3,
    /// Anything else.
    Other = 4,
}

/// Number of categories (array sizing).
pub const N_CATEGORIES: usize = 5;

/// All categories, in index order.
pub const CATEGORIES: [Category; N_CATEGORIES] = [
    Category::Flop,
    Category::XyComm,
    Category::ZComm,
    Category::Setup,
    Category::Other,
];

impl Category {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Flop => "FP-Operation",
            Category::XyComm => "XY-Comm",
            Category::ZComm => "Z-Comm",
            Category::Setup => "Setup",
            Category::Other => "Other",
        }
    }
}

/// Statistics of a single rank over one run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RankStats {
    /// World rank.
    pub rank: usize,
    /// Seconds attributed to each category.
    pub time: [f64; N_CATEGORIES],
    /// Bytes sent per category.
    pub bytes_sent: [u64; N_CATEGORIES],
    /// Messages sent per category.
    pub msgs_sent: [u64; N_CATEGORIES],
    /// Rank clock at the end of the run.
    pub final_clock: f64,
}

impl RankStats {
    /// Fresh zeroed statistics for `rank`.
    pub fn new(rank: usize) -> Self {
        RankStats {
            rank,
            time: [0.0; N_CATEGORIES],
            bytes_sent: [0; N_CATEGORIES],
            msgs_sent: [0; N_CATEGORIES],
            final_clock: 0.0,
        }
    }

    /// Total attributed time across all categories.
    pub fn total_time(&self) -> f64 {
        self.time.iter().sum()
    }
}

/// Aggregated result of a cluster run.
pub struct RunReport<R> {
    /// Per-rank statistics, indexed by world rank.
    pub stats: Vec<RankStats>,
    /// Per-rank return values of the rank program.
    pub results: Vec<R>,
    /// Maximum final clock over all ranks: the simulated wall time.
    pub makespan: f64,
    /// Per-rank event timelines (empty unless tracing was enabled).
    pub traces: Vec<Vec<crate::trace::TraceEvent>>,
    /// Per-rank flight-recorder contents at the end of the run: the most
    /// recent spans of every rank, oldest first (always recorded, bounded
    /// by the recorder capacity).
    pub flight: Vec<Vec<crate::trace::TraceEvent>>,
    /// Counters and histograms merged across all ranks (always recorded).
    pub metrics: crate::metrics::Metrics,
}

impl<R> RunReport<R> {
    /// Build a report, computing the makespan.
    pub fn new(stats: Vec<RankStats>, results: Vec<R>) -> Self {
        let makespan = stats.iter().map(|s| s.final_clock).fold(0.0, f64::max);
        RunReport {
            stats,
            results,
            makespan,
            traces: Vec::new(),
            flight: Vec::new(),
            metrics: crate::metrics::Metrics::new(),
        }
    }

    /// Mean over ranks of the time in `cat` — the paper's "averaged over
    /// all MPI ranks" breakdown quantity.
    pub fn mean_time(&self, cat: Category) -> f64 {
        self.stats.iter().map(|s| s.time[cat as usize]).sum::<f64>() / self.stats.len() as f64
    }

    /// `(min, mean, max)` over ranks of the time in `cat` — the paper's
    /// load-balance error bars (Fig. 7/8).
    pub fn min_mean_max(&self, cat: Category) -> (f64, f64, f64) {
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for s in &self.stats {
            let t = s.time[cat as usize];
            mn = mn.min(t);
            mx = mx.max(t);
            sum += t;
        }
        (mn, sum / self.stats.len() as f64, mx)
    }

    /// Total bytes sent in `cat` across all ranks.
    pub fn total_bytes(&self, cat: Category) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent[cat as usize]).sum()
    }

    /// Total messages sent in `cat` across all ranks.
    pub fn total_msgs(&self, cat: Category) -> u64 {
        self.stats.iter().map(|s| s.msgs_sent[cat as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let mut s0 = RankStats::new(0);
        s0.time[Category::Flop as usize] = 1.0;
        s0.final_clock = 2.0;
        let mut s1 = RankStats::new(1);
        s1.time[Category::Flop as usize] = 3.0;
        s1.final_clock = 5.0;
        let rep = RunReport::new(vec![s0, s1], vec![(), ()]);
        assert_eq!(rep.makespan, 5.0);
        assert_eq!(rep.mean_time(Category::Flop), 2.0);
        assert_eq!(rep.min_mean_max(Category::Flop), (1.0, 2.0, 3.0));
    }

    #[test]
    fn labels_are_paper_terms() {
        assert_eq!(Category::ZComm.label(), "Z-Comm");
        assert_eq!(Category::XyComm.label(), "XY-Comm");
        assert_eq!(Category::Flop.label(), "FP-Operation");
    }
}
