//! Integration tests of the tracing facility.

use simgrid::{render_timeline, Category, ClusterOptions, EventKind, MachineModel};

fn traced_opts() -> ClusterOptions {
    ClusterOptions {
        trace: true,
        ..ClusterOptions::default()
    }
}

#[test]
fn traces_cover_all_activity() {
    let rep = simgrid::run(
        3,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| {
            c.compute(1e-5, Category::Flop);
            if c.rank() == 0 {
                c.send(1, 0, &[1.0; 8], Category::XyComm);
                c.send(2, 0, &[2.0; 4], Category::ZComm);
            } else {
                c.recv(Some(0), Some(0), Category::XyComm);
            }
        },
    );
    assert_eq!(rep.traces.len(), 3);
    // Rank 0: one compute + two sends.
    let kinds: Vec<EventKind> = rep.traces[0].iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::Compute, EventKind::Send, EventKind::Send]
    );
    let send = rep.traces[0][1].msg.expect("send span carries MsgInfo");
    assert_eq!(send.peer, 1);
    assert_eq!(send.bytes, 8 * 8 + 64);
    assert!(!send.faults.any());
    // Compute spans carry no message payload (no more sentinel values).
    assert!(rep.traces[0][0].msg.is_none());
    // Rank 1: compute then recv from 0, paired by sequence id.
    let r1 = &rep.traces[1];
    assert_eq!(r1.last().unwrap().kind, EventKind::Recv);
    let recv = r1.last().unwrap().msg.expect("recv span carries MsgInfo");
    assert_eq!(recv.peer, 0);
    assert_eq!(recv.seq, send.seq);
    assert_eq!(recv.bytes, send.bytes);
    assert!(recv.arrival >= rep.traces[0][1].t1);
    // Events on each rank are time-ordered and within the makespan.
    for tl in &rep.traces {
        let mut last = 0.0;
        for e in tl {
            assert!(e.t0 >= last - 1e-15);
            assert!(e.t1 >= e.t0);
            assert!(e.t1 <= rep.makespan + 1e-15);
            last = e.t0;
        }
    }
}

#[test]
fn tracing_off_by_default() {
    let rep = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &ClusterOptions::default(),
        |c| c.compute(1e-6, Category::Flop),
    );
    assert!(rep.traces.iter().all(|t| t.is_empty()));
}

#[test]
fn timeline_renders_one_row_per_rank() {
    let rep = simgrid::run(
        4,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| c.compute(1e-6 * (c.rank() + 1) as f64, Category::Flop),
    );
    let s = render_timeline(&rep.traces, rep.makespan, 40);
    assert_eq!(s.lines().count(), 4);
    // The longest-running rank's row has the most compute glyphs.
    let counts: Vec<usize> = s.lines().map(|l| l.matches('#').count()).collect();
    assert!(counts[3] >= counts[0]);
}

#[test]
fn tracing_does_not_change_virtual_time() {
    let prog = |c: &simgrid::Comm| {
        if c.rank() == 0 {
            c.compute(2e-6, Category::Flop);
            c.send(1, 0, &[0.0; 16], Category::XyComm);
        } else {
            c.recv(Some(0), Some(0), Category::XyComm);
        }
        c.now()
    };
    let a = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &ClusterOptions::default(),
        |c| prog(&c),
    );
    let b = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| prog(&c),
    );
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn spans_tile_each_ranks_clock() {
    // Every clock advance happens inside a recorded span: per rank the
    // spans are contiguous from 0 to the final clock. This is the tiling
    // invariant the critical-path analysis in `core` builds on.
    let rep = simgrid::run(
        4,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| {
            let mut v = [c.rank() as f64];
            c.compute(1e-6, Category::Flop);
            c.allreduce_sum(&mut v, Category::ZComm);
            c.compute(2e-6, Category::Flop);
            c.now()
        },
    );
    for (rank, tl) in rep.traces.iter().enumerate() {
        let mut t = 0.0;
        for e in tl {
            assert!(
                (e.t0 - t).abs() < 1e-15,
                "rank {rank}: gap/overlap at t={t}: span starts {}",
                e.t0
            );
            assert!(e.t1 >= e.t0);
            t = e.t1;
        }
        assert!(
            (t - rep.results[rank]).abs() < 1e-15,
            "rank {rank}: spans end at {t}, clock at {}",
            rep.results[rank]
        );
    }
}

#[test]
fn metrics_count_messages_even_without_tracing() {
    let rep = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &ClusterOptions::default(),
        |c| {
            if c.rank() == 0 {
                c.send(1, 3, &[1.0; 8], Category::XyComm);
            } else {
                c.recv(Some(0), Some(3), Category::XyComm);
            }
        },
    );
    assert_eq!(rep.metrics.counter("msgs.sent"), 1);
    assert_eq!(rep.metrics.counter("msgs.received"), 1);
    let h = rep
        .metrics
        .histogram("msgs.bytes")
        .expect("bytes histogram");
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), (8 * 8 + 64) as f64);
    let v: serde_json::Value =
        serde_json::from_str(&rep.metrics.to_json()).expect("snapshot parses");
    assert!(v.get("counters").is_some());
}
