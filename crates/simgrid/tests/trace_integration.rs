//! Integration tests of the tracing facility.

use simgrid::{render_timeline, Category, ClusterOptions, EventKind, MachineModel};

fn traced_opts() -> ClusterOptions {
    ClusterOptions {
        trace: true,
        ..ClusterOptions::default()
    }
}

#[test]
fn traces_cover_all_activity() {
    let rep = simgrid::run(
        3,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| {
            c.compute(1e-5, Category::Flop);
            if c.rank() == 0 {
                c.send(1, 0, &[1.0; 8], Category::XyComm);
                c.send(2, 0, &[2.0; 4], Category::ZComm);
            } else {
                c.recv(Some(0), Some(0), Category::XyComm);
            }
        },
    );
    assert_eq!(rep.traces.len(), 3);
    // Rank 0: one compute + two sends.
    let kinds: Vec<EventKind> = rep.traces[0].iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::Compute, EventKind::Send, EventKind::Send]
    );
    assert_eq!(rep.traces[0][1].peer, 1);
    assert_eq!(rep.traces[0][1].bytes, 8 * 8 + 64);
    // Rank 1: compute then recv from 0.
    let r1 = &rep.traces[1];
    assert_eq!(r1.last().unwrap().kind, EventKind::Recv);
    assert_eq!(r1.last().unwrap().peer, 0);
    // Events on each rank are time-ordered and within the makespan.
    for tl in &rep.traces {
        let mut last = 0.0;
        for e in tl {
            assert!(e.t0 >= last - 1e-15);
            assert!(e.t1 >= e.t0);
            assert!(e.t1 <= rep.makespan + 1e-15);
            last = e.t0;
        }
    }
}

#[test]
fn tracing_off_by_default() {
    let rep = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &ClusterOptions::default(),
        |c| c.compute(1e-6, Category::Flop),
    );
    assert!(rep.traces.iter().all(|t| t.is_empty()));
}

#[test]
fn timeline_renders_one_row_per_rank() {
    let rep = simgrid::run(
        4,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| c.compute(1e-6 * (c.rank() + 1) as f64, Category::Flop),
    );
    let s = render_timeline(&rep.traces, rep.makespan, 40);
    assert_eq!(s.lines().count(), 4);
    // The longest-running rank's row has the most compute glyphs.
    let counts: Vec<usize> = s.lines().map(|l| l.matches('#').count()).collect();
    assert!(counts[3] >= counts[0]);
}

#[test]
fn tracing_does_not_change_virtual_time() {
    let prog = |c: &simgrid::Comm| {
        if c.rank() == 0 {
            c.compute(2e-6, Category::Flop);
            c.send(1, 0, &[0.0; 16], Category::XyComm);
        } else {
            c.recv(Some(0), Some(0), Category::XyComm);
        }
        c.now()
    };
    let a = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &ClusterOptions::default(),
        |c| prog(&c),
    );
    let b = simgrid::run(
        2,
        MachineModel::uniform("t", 1e9, 1e-6, 1e9, 4),
        &traced_opts(),
        |c| prog(&c),
    );
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan);
}
