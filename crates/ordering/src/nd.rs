//! Recursive-bisection nested dissection (METIS substitute).
//!
//! Produces a fill-reducing symmetric permutation *and* the binary separator
//! tree the paper's 3D process layout is built on: the top `log2(Pz)` levels
//! of the tree are always present (children may be empty when a region
//! cannot be split further), and the columns of every tree node occupy a
//! contiguous range of the new ordering — left subtree, right subtree, then
//! the node's own separator.

use crate::graph::Graph;
use std::ops::Range;

/// Parameters for [`nested_dissection`].
#[derive(Clone, Debug)]
pub struct NdOptions {
    /// The top `forced_depth` levels of the separator tree are always
    /// produced, even for tiny graphs (needed so that a `Pz = 2^d` layout
    /// always has `2^d` leaves).
    pub forced_depth: usize,
    /// Stop dissecting once a region has at most this many vertices
    /// (beyond the forced depth).
    pub min_leaf: usize,
    /// Hard recursion cap (safety).
    pub max_depth: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions {
            forced_depth: 0,
            min_leaf: 24,
            max_depth: 48,
        }
    }
}

/// One node of the separator tree.
#[derive(Clone, Debug)]
pub struct SepTreeNode {
    /// Contiguous new-index range of *all* columns in this subtree.
    pub span: Range<usize>,
    /// New-index range of this node's own columns: the separator for
    /// internal nodes, the whole region for leaves. Always the tail of
    /// `span`.
    pub sep: Range<usize>,
    /// Child node ids (left, right); `None` for leaves.
    pub children: Option<(usize, usize)>,
    /// Depth below the root (root = 0).
    pub level: usize,
}

/// Binary separator tree over the new column ordering. `nodes[0]` is the
/// root (whose span is the whole matrix).
#[derive(Clone, Debug)]
pub struct SepTree {
    /// All nodes; children always have larger ids than their parent.
    pub nodes: Vec<SepTreeNode>,
}

/// One entry of a depth-`d` layout: the tree cut the 3D algorithm uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayoutNode {
    /// Heap-order id: root = 0, children of `t` are `2t+1`, `2t+2`.
    pub id: usize,
    /// Depth below the root.
    pub level: usize,
    /// Columns owned by this layout node (separator columns for internal
    /// levels, the whole remaining subtree for the leaf level). May be
    /// empty.
    pub cols: Range<usize>,
    /// Full subtree span (used to assemble `L^z`).
    pub span: Range<usize>,
}

impl SepTree {
    /// Root node id.
    pub fn root(&self) -> usize {
        0
    }

    /// Tree-node id owning each column (the node whose `sep` contains it).
    pub fn col_owner(&self, n: usize) -> Vec<u32> {
        let mut owner = vec![u32::MAX; n];
        for (id, node) in self.nodes.iter().enumerate() {
            for c in node.sep.clone() {
                owner[c] = id as u32;
            }
        }
        debug_assert!(owner.iter().all(|&o| o != u32::MAX));
        owner
    }

    /// Cut the tree at depth `d`, producing the `2^(d+1) − 1` layout nodes
    /// of the paper's Fig. 1(a) in heap order: internal layout nodes carry
    /// their separator columns, the `2^d` leaf layout nodes carry their
    /// whole remaining subtree.
    ///
    /// Where the real tree is shallower than `d` (an unsplittable region),
    /// the missing descendants appear with empty column ranges.
    pub fn layout(&self, d: usize) -> Vec<LayoutNode> {
        let mut out = vec![
            LayoutNode {
                id: 0,
                level: 0,
                cols: 0..0,
                span: 0..0,
            };
            (1 << (d + 1)) - 1
        ];
        self.fill_layout(0, 0, 0, d, &mut out);
        out
    }

    fn fill_layout(
        &self,
        node: usize,
        heap_id: usize,
        level: usize,
        d: usize,
        out: &mut Vec<LayoutNode>,
    ) {
        let n = &self.nodes[node];
        if level == d {
            // Leaf layout node: the whole remaining subtree.
            out[heap_id] = LayoutNode {
                id: heap_id,
                level,
                cols: n.span.clone(),
                span: n.span.clone(),
            };
            return;
        }
        match n.children {
            Some((l, r)) => {
                out[heap_id] = LayoutNode {
                    id: heap_id,
                    level,
                    cols: n.sep.clone(),
                    span: n.span.clone(),
                };
                self.fill_layout(l, 2 * heap_id + 1, level + 1, d, out);
                self.fill_layout(r, 2 * heap_id + 2, level + 1, d, out);
            }
            None => {
                // Region that could not be split to depth d: keep all its
                // columns here; descendants stay empty (their ranges were
                // initialised empty). Anchor empty descendants' ranges at
                // the start of this span so ranges remain well-formed.
                out[heap_id] = LayoutNode {
                    id: heap_id,
                    level,
                    cols: n.span.clone(),
                    span: n.span.clone(),
                };
                let mut stack = vec![(heap_id, level)];
                while let Some((h, lv)) = stack.pop() {
                    if lv == d {
                        continue;
                    }
                    for child in [2 * h + 1, 2 * h + 2] {
                        out[child] = LayoutNode {
                            id: child,
                            level: lv + 1,
                            cols: n.span.start..n.span.start,
                            span: n.span.start..n.span.start,
                        };
                        stack.push((child, lv + 1));
                    }
                }
            }
        }
    }
}

/// Result of nested dissection.
#[derive(Clone, Debug)]
pub struct NdResult {
    /// Symmetric permutation, `perm[new] = old`.
    pub perm: Vec<usize>,
    /// Separator tree over the *new* indices.
    pub tree: SepTree,
}

struct Dissector<'a> {
    g: &'a Graph,
    opts: &'a NdOptions,
    /// stamp[v] == generation marks membership of the current working set
    stamp: Vec<u64>,
    generation: u64,
    levels: Vec<u32>,
    order: Vec<u32>,
    perm: Vec<usize>,
    nodes: Vec<SepTreeNode>,
}

impl<'a> Dissector<'a> {
    /// Split `verts` into `(a, b, sep)` such that no edge joins `a` and `b`.
    ///
    /// Strategy: BFS from a pseudo-peripheral vertex, take the first half of
    /// the BFS order as `a`; `sep` is the set of remaining vertices adjacent
    /// to `a` (a valid vertex separator for *any* partition), `b` the rest.
    fn split(&mut self, verts: &[u32]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        self.generation += 1;
        let gen = self.generation;
        for &v in verts {
            self.stamp[v as usize] = gen;
        }
        let stamp = &self.stamp;
        let in_set = |v: usize| stamp[v] == gen;
        let root =
            self.g
                .pseudo_peripheral(verts[0] as usize, in_set, &mut self.levels, &mut self.order);
        let stamp = &self.stamp;
        let in_set = |v: usize| stamp[v] == gen;
        self.g
            .bfs_levels(root, in_set, &mut self.levels, &mut self.order);
        // Full traversal order: BFS order then any unreached vertices
        // (other connected components).
        let mut full: Vec<u32> = std::mem::take(&mut self.order);
        if full.len() < verts.len() {
            for &v in verts {
                if self.levels[v as usize] == u32::MAX {
                    full.push(v);
                }
            }
        }
        let half = verts.len().div_ceil(2);
        let (a_part, rest) = full.split_at(half);
        // Membership of A: reuse the levels array as a marker (-2 == in A).
        const IN_A: u32 = u32::MAX - 1;
        for &v in a_part {
            self.levels[v as usize] = IN_A;
        }
        let mut b = Vec::with_capacity(rest.len());
        let mut sep = Vec::new();
        for &v in rest {
            let touches_a = self
                .g
                .neighbors(v as usize)
                .iter()
                .any(|&w| self.levels[w as usize] == IN_A);
            if touches_a {
                sep.push(v);
            } else {
                b.push(v);
            }
        }
        let a = a_part.to_vec();
        // Reset the levels scratch for the vertices we touched.
        for &v in &full {
            self.levels[v as usize] = u32::MAX;
        }
        self.order = full;
        self.order.clear();
        (a, b, sep)
    }

    /// Recursively dissect `verts`; returns the id of the created tree node.
    /// Emits column indices into `self.perm` in subtree order and fills in
    /// node spans over the new indices.
    fn dissect(&mut self, mut verts: Vec<u32>, level: usize) -> usize {
        let start = self.perm.len();
        let must_split = level < self.opts.forced_depth;
        let done = verts.len() <= self.opts.min_leaf.max(1) || level >= self.opts.max_depth;
        if (done && !must_split) || verts.is_empty() {
            // Leaf: order vertices by old index for determinism.
            verts.sort_unstable();
            self.perm.extend(verts.iter().map(|&v| v as usize));
            let id = self.nodes.len();
            self.nodes.push(SepTreeNode {
                span: start..self.perm.len(),
                sep: start..self.perm.len(),
                children: None,
                level,
            });
            return id;
        }
        let (a, b, mut sep) = self.split(&verts);
        drop(verts);
        let id = self.nodes.len();
        self.nodes.push(SepTreeNode {
            span: 0..0,
            sep: 0..0,
            children: None,
            level,
        });
        let left = self.dissect(a, level + 1);
        let right = self.dissect(b, level + 1);
        let sep_start = self.perm.len();
        sep.sort_unstable();
        self.perm.extend(sep.iter().map(|&v| v as usize));
        let end = self.perm.len();
        let node = &mut self.nodes[id];
        node.span = start..end;
        node.sep = sep_start..end;
        node.children = Some((left, right));
        id
    }
}

/// Compute a nested-dissection ordering and separator tree of `g`.
pub fn nested_dissection(g: &Graph, opts: &NdOptions) -> NdResult {
    let n = g.n();
    let mut d = Dissector {
        g,
        opts,
        stamp: vec![0; n],
        generation: 0,
        levels: vec![u32::MAX; n],
        order: Vec::with_capacity(n),
        perm: Vec::with_capacity(n),
        nodes: Vec::new(),
    };
    let verts: Vec<u32> = (0..n as u32).collect();
    let root = d.dissect(verts, 0);
    assert_eq!(root, 0, "root must be node 0");
    assert_eq!(d.perm.len(), n, "permutation must cover all vertices");
    NdResult {
        perm: d.perm,
        tree: SepTree { nodes: d.nodes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &v in p {
            if v >= p.len() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    #[test]
    fn produces_valid_permutation() {
        let a = gen::poisson2d_5pt(12, 12);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        assert!(is_permutation(&nd.perm));
    }

    /// Core ND invariant: for every internal node, no (old-index) edge joins
    /// the left and right subtrees — they only couple through separators.
    #[test]
    fn separators_disconnect() {
        let a = gen::poisson2d_5pt(10, 10);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(
            &g,
            &NdOptions {
                forced_depth: 2,
                ..NdOptions::default()
            },
        );
        let n = g.n();
        let mut newidx = vec![0usize; n];
        for (new, &old) in nd.perm.iter().enumerate() {
            newidx[old] = new;
        }
        for node in &nd.tree.nodes {
            if let Some((l, r)) = node.children {
                let ls = nd.tree.nodes[l].span.clone();
                let rs = nd.tree.nodes[r].span.clone();
                for oldv in 0..n {
                    if !ls.contains(&newidx[oldv]) {
                        continue;
                    }
                    for &w in g.neighbors(oldv) {
                        assert!(
                            !rs.contains(&newidx[w as usize]),
                            "edge crosses separator: {oldv} - {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spans_are_contiguous_and_nested() {
        let a = gen::poisson2d_5pt(9, 9);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        for node in &nd.tree.nodes {
            assert!(node.sep.end == node.span.end, "sep must be span tail");
            if let Some((l, r)) = node.children {
                let ls = &nd.tree.nodes[l].span;
                let rs = &nd.tree.nodes[r].span;
                assert_eq!(ls.start, node.span.start);
                assert_eq!(ls.end, rs.start);
                assert_eq!(rs.end, node.sep.start);
            }
        }
    }

    #[test]
    fn forced_depth_gives_full_layout() {
        // 6 vertices but forced depth 3 => 15 layout nodes, some empty.
        let a = gen::poisson2d_5pt(6, 1);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(
            &g,
            &NdOptions {
                forced_depth: 3,
                min_leaf: 2,
                max_depth: 10,
            },
        );
        let layout = nd.tree.layout(3);
        assert_eq!(layout.len(), 15);
        let leaf_total: usize = layout[7..].iter().map(|l| l.cols.len()).sum();
        let sep_total: usize = layout[..7].iter().map(|l| l.cols.len()).sum();
        assert_eq!(leaf_total + sep_total, 6);
    }

    #[test]
    fn layout_depth_zero_is_single_node() {
        let a = gen::poisson2d_5pt(4, 4);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        let layout = nd.tree.layout(0);
        assert_eq!(layout.len(), 1);
        assert_eq!(layout[0].cols, 0..16);
    }

    #[test]
    fn col_owner_covers_all_columns() {
        let a = gen::poisson2d_5pt(8, 8);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        let owner = nd.tree.col_owner(64);
        for (c, &o) in owner.iter().enumerate() {
            let node = &nd.tree.nodes[o as usize];
            assert!(node.sep.contains(&c));
        }
    }

    #[test]
    fn layout_spans_nest_heapwise() {
        let a = gen::poisson2d_5pt(16, 16);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(
            &g,
            &NdOptions {
                forced_depth: 2,
                ..NdOptions::default()
            },
        );
        let layout = nd.tree.layout(2);
        for t in 0..3 {
            let l = &layout[2 * t + 1];
            let r = &layout[2 * t + 2];
            let p = &layout[t];
            assert!(l.span.start >= p.span.start && r.span.end <= p.span.end);
            assert!(l.span.end <= r.span.start);
        }
    }
}
