//! Level sets of a triangular factor's dependency DAG.
//!
//! A lower-triangular solve admits a classic alternative to message-driven
//! tree execution: group the rows into *level sets* — row `i` is in level
//! `1 + max(level of every row it depends on)` — and sweep the levels in
//! order, with all rows of one level independent of each other. The level
//! program is a valid schedule for **any** executor that fires rows in
//! `(level, topological)` order, because a level assignment is a linear
//! extension of the dependency partial order.
//!
//! Two refinements from the scheduling literature (Böhnlein et al.,
//! PAPERS.md; cholespy, SNIPPETS.md §2–3) are implemented here:
//!
//! * **Chain batching**: a row whose *only* dependency is a row with a
//!   *single* successor forms a sequential chain; splitting the chain
//!   across levels buys no parallelism and costs one barrier per link.
//!   Merging such runs into their head's level (up to a batch width)
//!   collapses long thin tails of the DAG into few levels.
//! * **A cost model** ([`ChainPolicy::auto`]) choosing the batch width
//!   from the DAG shape: wide DAGs keep width 1 (batching would serialize
//!   real parallelism), thin DAGs batch aggressively (barriers dominate).
//!
//! The construction is generic over the node set and dependency relation:
//! callers hand in a topological order and a dependency enumerator, so the
//! same code levels scalar CSR rows (tests), supernodes of an L factor
//! (`blocks_left` edges), and supernodes of a U factor (`blocks_below`
//! edges, reversed topological order).

/// Batch-width policy for chain batching. Width 1 disables batching and
/// yields the pure level assignment (every dependency strictly earlier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainPolicy {
    /// Maximum rows merged into one level along a single-successor chain.
    pub batch_width: u32,
}

impl ChainPolicy {
    /// No batching: the pure level-set construction.
    pub fn none() -> ChainPolicy {
        ChainPolicy { batch_width: 1 }
    }

    /// Simple cost model: compare the DAG's mean level occupancy
    /// (`n_nodes / depth`) against the machine's parallel width. Wide
    /// levels already saturate the machine — batching would serialize
    /// useful concurrency, keep width 1. Thin levels mean the solve is
    /// barrier-bound — batch chains up to the width that would lift the
    /// mean occupancy to ~2× the parallel width, capped at 16.
    pub fn auto(n_nodes: usize, depth: u32, parallel_width: usize) -> ChainPolicy {
        let depth = (depth as usize).max(1);
        let occupancy = n_nodes.div_ceil(depth).max(1);
        let target = 2 * parallel_width.max(1);
        let batch_width = if occupancy >= target {
            1
        } else {
            target.div_ceil(occupancy).min(16)
        };
        ChainPolicy {
            batch_width: batch_width as u32,
        }
    }
}

/// A level assignment of a dependency DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelSets {
    /// Level index of each node, `0 ..= n_levels - 1`.
    pub level_of: Vec<u32>,
    /// Number of distinct levels (the DAG depth when unbatched).
    pub n_levels: u32,
}

impl LevelSets {
    /// Nodes grouped by level in the caller's topological order:
    /// `(order, level_ptr)` with level `l` occupying
    /// `order[level_ptr[l] .. level_ptr[l + 1]]`.
    pub fn grouped(&self, topo: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let nlev = self.n_levels as usize;
        let mut counts = vec![0u32; nlev + 1];
        for &v in topo {
            counts[self.level_of[v as usize] as usize + 1] += 1;
        }
        for l in 0..nlev {
            counts[l + 1] += counts[l];
        }
        let mut order = vec![0u32; topo.len()];
        let mut cursor = counts.clone();
        for &v in topo {
            let l = self.level_of[v as usize] as usize;
            order[cursor[l] as usize] = v;
            cursor[l] += 1;
        }
        (order, counts)
    }
}

/// Dependency enumerator: `deps(v, yield)` calls `yield(u)` once per
/// dependency `u` of node `v`.
pub type DepsFn<'a> = dyn FnMut(u32, &mut dyn FnMut(u32)) + 'a;

/// Compute the level sets of a DAG over nodes `0 .. n`.
///
/// `topo` is a topological order of the nodes (every dependency precedes
/// its dependents). `deps(v, yield)` enumerates the dependencies of node
/// `v`. With `policy.batch_width == 1` this is the textbook construction:
/// `level(v) = 1 + max(level(dep))`. With a larger width, a node whose
/// sole dependency has a single successor is merged into that
/// dependency's level while the merged run stays within the width —
/// within a level, chained nodes keep their topological order, so any
/// executor firing a level in `topo` order still respects the chain.
pub fn level_sets(n: usize, topo: &[u32], policy: ChainPolicy, deps: &mut DepsFn) -> LevelSets {
    assert_eq!(topo.len(), n, "topo order must cover every node");
    let batch = policy.batch_width.max(1);

    // Successor counts drive the chain test; only needed when batching.
    let mut succ = vec![0u32; if batch > 1 { n } else { 0 }];
    if batch > 1 {
        for &v in topo {
            deps(v, &mut |u| succ[u as usize] += 1);
        }
    }

    let mut level_of = vec![0u32; n];
    let mut chain_len = vec![1u32; n];
    let mut n_levels = 0u32;
    for &v in topo {
        let mut maxlev = 0u32;
        let mut ndeps = 0u32;
        let mut the_dep = 0u32;
        deps(v, &mut |u| {
            maxlev = maxlev.max(level_of[u as usize] + 1);
            ndeps += 1;
            the_dep = u;
        });
        let vu = v as usize;
        if ndeps == 0 {
            level_of[vu] = 0;
            chain_len[vu] = 1;
        } else if batch > 1
            && ndeps == 1
            && succ[the_dep as usize] == 1
            && chain_len[the_dep as usize] < batch
        {
            // Single-successor chain link: ride the head's level.
            level_of[vu] = level_of[the_dep as usize];
            chain_len[vu] = chain_len[the_dep as usize] + 1;
        } else {
            level_of[vu] = maxlev;
            chain_len[vu] = 1;
        }
        n_levels = n_levels.max(level_of[vu] + 1);
    }
    LevelSets {
        level_of,
        n_levels: if n == 0 { 0 } else { n_levels },
    }
}

/// Level sets of a strictly lower-triangular dependency pattern in CSR
/// form (`row_ptr`/`col_idx`, entries below the diagonal only): the
/// dependency DAG of a forward substitution. Convenience wrapper used by
/// tests and the scalar-level proptest harness.
pub fn level_sets_csr(row_ptr: &[usize], col_idx: &[usize], policy: ChainPolicy) -> LevelSets {
    let n = row_ptr.len().saturating_sub(1);
    let topo: Vec<u32> = (0..n as u32).collect();
    level_sets(n, &topo, policy, &mut |v, f| {
        let vu = v as usize;
        for &j in &col_idx[row_ptr[vu]..row_ptr[vu + 1]] {
            if j != vu {
                debug_assert!(j < vu, "entry above the diagonal");
                f(j as u32);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 → {1, 2} → 3. Depth 3, no chains.
    #[test]
    fn diamond_levels() {
        let row_ptr = [0, 0, 1, 2, 4];
        let col_idx = [0, 0, 1, 2];
        let ls = level_sets_csr(&row_ptr, &col_idx, ChainPolicy::none());
        assert_eq!(ls.level_of, vec![0, 1, 1, 2]);
        assert_eq!(ls.n_levels, 3);
    }

    /// A pure chain 0 → 1 → 2 → 3 collapses under batching but its level
    /// count still respects the `depth / batch_width` floor.
    #[test]
    fn chain_batches() {
        let row_ptr = [0, 0, 1, 2, 3];
        let col_idx = [0, 1, 2];
        let pure = level_sets_csr(&row_ptr, &col_idx, ChainPolicy::none());
        assert_eq!(pure.n_levels, 4);
        let batched = level_sets_csr(&row_ptr, &col_idx, ChainPolicy { batch_width: 2 });
        assert_eq!(batched.level_of, vec![0, 0, 1, 1]);
        let wide = level_sets_csr(&row_ptr, &col_idx, ChainPolicy { batch_width: 8 });
        assert_eq!(wide.n_levels, 1);
    }

    /// A fan-out node is never merged into a chain: its successors each
    /// depend on it, so level order must keep them strictly later unless
    /// they are themselves single-dependency chain links.
    #[test]
    fn fanout_is_not_a_chain() {
        // 0 → 1, 0 → 2: node 0 has two successors.
        let row_ptr = [0, 0, 1, 2];
        let col_idx = [0, 0];
        let ls = level_sets_csr(&row_ptr, &col_idx, ChainPolicy { batch_width: 8 });
        assert_eq!(ls.level_of[0], 0);
        assert_eq!(ls.level_of[1], 1);
        assert_eq!(ls.level_of[2], 1);
    }

    #[test]
    fn grouped_partitions_in_topo_order() {
        let row_ptr = [0, 0, 1, 2, 4];
        let col_idx = [0, 0, 1, 2];
        let ls = level_sets_csr(&row_ptr, &col_idx, ChainPolicy::none());
        let topo: Vec<u32> = (0..4).collect();
        let (order, ptr) = ls.grouped(&topo);
        assert_eq!(ptr, vec![0, 1, 3, 4]);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn auto_policy_scales_with_occupancy() {
        // Wide DAG: occupancy 100 ≥ 2·4 → no batching.
        assert_eq!(ChainPolicy::auto(1000, 10, 4).batch_width, 1);
        // Thin DAG: occupancy 1 < 2·4 → batch toward 2×width.
        assert_eq!(ChainPolicy::auto(10, 10, 4).batch_width, 8);
        // Cap at 16 for extreme depth.
        assert_eq!(ChainPolicy::auto(4, 400, 64).batch_width, 16);
        // Degenerate inputs do not divide by zero.
        assert_eq!(ChainPolicy::auto(0, 0, 0).batch_width, 2);
    }

    #[test]
    fn empty_dag() {
        let ls = level_sets(0, &[], ChainPolicy::none(), &mut |_, _| {});
        assert_eq!(ls.n_levels, 0);
        assert!(ls.level_of.is_empty());
    }
}
