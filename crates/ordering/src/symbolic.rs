//! Symbolic factorization: fill pattern, supernodes, block structure.
//!
//! Works on the ND-permuted matrix. Because the pattern is symmetric, the
//! fill pattern of `U` is the transpose of the fill pattern of `L`, so the
//! whole symbolic structure is described by the below-diagonal row sets of
//! `L`'s supernode columns — exactly the paper's setting where each `U(I,K)`
//! block is a dense rectangle of equal-length columns.

use crate::etree;
use crate::nd::SepTree;
use sparse::CsrMatrix;
use std::ops::Range;

/// Options controlling supernode formation.
#[derive(Clone, Debug)]
pub struct SymbolicOptions {
    /// Maximum supernode width (paper-style panel cap).
    pub max_supernode: usize,
    /// Relaxed-supernode amalgamation: merge an etree-adjacent chain of
    /// supernodes while the combined width stays at or below this value
    /// (0 disables). Introduces explicit zeros — the classic SuperLU
    /// "relaxed snodes" trade-off that keeps panels from degenerating to
    /// width 1–2 on small leaf subtrees.
    pub relax_size: usize,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            max_supernode: 96,
            relax_size: 16,
        }
    }
}

/// Supernodal symbolic structure of the LU factors.
#[derive(Clone, Debug)]
pub struct SymbolicLU {
    n: usize,
    /// Supernode `K` owns columns `sup_starts[K]..sup_starts[K+1]`.
    sup_starts: Vec<usize>,
    /// Column → supernode id.
    col_to_sup: Vec<u32>,
    /// Per supernode: sorted union of row indices strictly below the
    /// supernode's columns with `L(i, K) ≠ 0` (after fill). By pattern
    /// symmetry these are also the column indices of `U(K, ·)`.
    rows_below: Vec<Vec<u32>>,
    /// Per supernode: sorted distinct row-supernodes `I > K` with a nonzero
    /// block `L(I, K)`.
    blocks_below: Vec<Vec<u32>>,
    /// Transpose of `blocks_below`: per supernode `I`, sorted distinct
    /// column-supernodes `K < I` with a nonzero block `L(I, K)`.
    blocks_left: Vec<Vec<u32>>,
    /// Column elimination-tree parents.
    parent: Vec<u32>,
    /// Separator-tree node owning each supernode (supernodes never straddle
    /// separator-tree nodes).
    sup_owner: Vec<u32>,
}

impl SymbolicLU {
    /// Analyze the (ND-permuted, structurally symmetric) matrix `pa`.
    pub fn analyze(pa: &CsrMatrix, tree: &SepTree, opts: &SymbolicOptions) -> Self {
        let n = pa.nrows();
        let parent = etree::etree(pa);
        let col_owner = tree.col_owner(n);

        // Per-column fill patterns (rows strictly below the diagonal).
        let mut colpat: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for j in 0..n {
            if parent[j] != etree::NO_PARENT {
                children[parent[j] as usize].push(j as u32);
            }
        }
        let mut buf: Vec<u32> = Vec::new();
        for (j, ch) in children.iter().enumerate() {
            buf.clear();
            // A's below-diagonal column pattern = row j entries right of the
            // diagonal (symmetric pattern).
            for &c in pa.row_cols(j) {
                if c > j {
                    buf.push(c as u32);
                }
            }
            for &c in ch {
                for &i in &colpat[c as usize] {
                    if i as usize > j {
                        buf.push(i);
                    }
                }
            }
            buf.sort_unstable();
            buf.dedup();
            colpat.push(buf.clone());
        }

        // Fundamental supernodes, broken at separator-tree node boundaries
        // and at the width cap.
        let mut sup_starts = vec![0usize];
        let mut col_to_sup = vec![0u32; n];
        for j in 1..n {
            let start = *sup_starts.last().expect("nonempty");
            let width = j - start;
            let chain = parent[j - 1] == j as u32
                && colpat[j - 1].len() == colpat[j].len() + 1
                && colpat[j - 1].first() == Some(&(j as u32))
                && colpat[j - 1][1..] == colpat[j][..]
                && col_owner[j - 1] == col_owner[j]
                && width < opts.max_supernode;
            if !chain {
                sup_starts.push(j);
            }
        }
        sup_starts.push(n);
        drop(colpat);

        // Relaxed amalgamation: greedily merge etree-adjacent neighbours
        // while the combined width stays within the relax cap (and within
        // one separator-tree node).
        let relax = opts.relax_size.min(opts.max_supernode);
        if relax > 1 {
            let mut merged = vec![sup_starts[0]];
            for w in sup_starts.windows(2) {
                let (s, e) = (w[0], w[1]);
                let cur_start = *merged.last().expect("nonempty");
                let chainable = cur_start < s
                    && parent[s - 1] == s as u32
                    && col_owner[s - 1] == col_owner[s]
                    && (e - cur_start) <= relax;
                if !chainable {
                    merged.push(s);
                }
            }
            // `merged` holds starts; drop the duplicate leading boundary
            // and close with n.
            merged.push(n);
            merged.dedup();
            sup_starts = merged;
        }
        let nsup = sup_starts.len() - 1;
        for k in 0..nsup {
            col_to_sup[sup_starts[k]..sup_starts[k + 1]].fill(k as u32);
        }

        // Supernodal symbolic factorization: row sets via the first-row
        // parent recurrence (exact for fundamental partitions; a closed
        // superset for relaxed ones):
        //   S_k = (A-pattern below k) ∪ ⋃_{children c} (S_c \ cols ≤ e_k)
        // where the supernodal parent of c is the supernode of S_c's first
        // row. Closure under block elimination holds by construction.
        let mut rows_below: Vec<Vec<u32>> = Vec::with_capacity(nsup);
        let mut pending: Vec<Vec<u32>> = vec![Vec::new(); nsup];
        let mut union_buf: Vec<u32> = Vec::new();
        for k in 0..nsup {
            let (s, e) = (sup_starts[k], sup_starts[k + 1]);
            union_buf.clear();
            for j in s..e {
                for &c in pa.row_cols(j) {
                    if c >= e {
                        union_buf.push(c as u32);
                    }
                }
            }
            for &c in &pending[k] {
                let crows = &rows_below[c as usize];
                for &i in crows {
                    if i as usize >= e {
                        union_buf.push(i);
                    }
                }
            }
            pending[k] = Vec::new();
            union_buf.sort_unstable();
            union_buf.dedup();
            if let Some(&first) = union_buf.first() {
                let p = col_to_sup[first as usize] as usize;
                pending[p].push(k as u32);
            }
            rows_below.push(union_buf.clone());
        }
        drop(pending);

        // Block-level structure.
        let mut blocks_below = Vec::with_capacity(nsup);
        for rows in rows_below.iter() {
            let mut blocks: Vec<u32> = rows.iter().map(|&i| col_to_sup[i as usize]).collect();
            blocks.dedup();
            blocks_below.push(blocks);
        }
        let mut blocks_left = vec![Vec::new(); nsup];
        for (k, blocks) in blocks_below.iter().enumerate() {
            for &i in blocks {
                blocks_left[i as usize].push(k as u32);
            }
        }

        let sup_owner = (0..nsup)
            .map(|k| col_owner[sup_starts[k]])
            .collect::<Vec<_>>();

        SymbolicLU {
            n,
            sup_starts,
            col_to_sup,
            rows_below,
            blocks_below,
            blocks_left,
            parent,
            sup_owner,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of supernodes.
    pub fn n_supernodes(&self) -> usize {
        self.sup_starts.len() - 1
    }

    /// Column range of supernode `k`.
    pub fn sup_cols(&self, k: usize) -> Range<usize> {
        self.sup_starts[k]..self.sup_starts[k + 1]
    }

    /// Width (number of columns) of supernode `k`.
    pub fn sup_width(&self, k: usize) -> usize {
        self.sup_starts[k + 1] - self.sup_starts[k]
    }

    /// Supernode id of column `j`.
    pub fn col_sup(&self, j: usize) -> usize {
        self.col_to_sup[j] as usize
    }

    /// Supernode boundaries (length `n_supernodes() + 1`).
    pub fn sup_starts(&self) -> &[usize] {
        &self.sup_starts
    }

    /// Sorted below-diagonal row indices of supernode `k` (also the
    /// right-of-diagonal column indices of `U(k, ·)`).
    pub fn rows_below(&self, k: usize) -> &[u32] {
        &self.rows_below[k]
    }

    /// Sorted distinct row-supernodes `I > k` with `L(I, k) ≠ 0`.
    pub fn blocks_below(&self, k: usize) -> &[u32] {
        &self.blocks_below[k]
    }

    /// Sorted distinct column-supernodes `K < i` with `L(i, K) ≠ 0`
    /// (equivalently row-supernodes of `U(K, i)` above `i`).
    pub fn blocks_left(&self, i: usize) -> &[u32] {
        &self.blocks_left[i]
    }

    /// Column elimination-tree parents.
    pub fn parent(&self) -> &[u32] {
        &self.parent
    }

    /// Separator-tree node owning supernode `k`.
    pub fn sup_owner(&self, k: usize) -> usize {
        self.sup_owner[k] as usize
    }

    /// Nonzeros in L (dense diagonal lower triangles + below-diagonal
    /// panels).
    pub fn nnz_l(&self) -> usize {
        (0..self.n_supernodes())
            .map(|k| {
                let w = self.sup_width(k);
                w * (w + 1) / 2 + self.rows_below[k].len() * w
            })
            .sum()
    }

    /// Nonzeros in the LU factors together (dense `w × w` diagonal blocks
    /// counted once, L-below and U-right panels both counted). Comparable
    /// to the paper's Table 1 "Nonzeros in LU" column.
    pub fn nnz_lu(&self) -> usize {
        (0..self.n_supernodes())
            .map(|k| {
                let w = self.sup_width(k);
                w * w + 2 * self.rows_below[k].len() * w
            })
            .sum()
    }

    /// Floating-point operations for one triangular solve pair (L then U)
    /// with `nrhs` right-hand sides, counting 2 flops per multiply-add,
    /// assuming precomputed diagonal inverses (dense `w × w` GEMV each).
    pub fn solve_flops(&self, nrhs: usize) -> usize {
        (0..self.n_supernodes())
            .map(|k| {
                let w = self.sup_width(k);
                let r = self.rows_below[k].len();
                2 * (w * w + 2 * r * w) * nrhs
            })
            .sum::<usize>()
            * 2 // L-solve and U-solve
    }

    /// Check internal invariants; used by tests and debug assertions.
    pub fn validate(&self) {
        let n = self.n;
        let nsup = self.n_supernodes();
        assert_eq!(self.sup_starts[0], 0);
        assert_eq!(self.sup_starts[nsup], n);
        for k in 0..nsup {
            let e = self.sup_starts[k + 1];
            assert!(self.sup_starts[k] < e, "empty supernode {k}");
            let rows = &self.rows_below[k];
            for w in rows.windows(2) {
                assert!(w[0] < w[1], "rows not strictly sorted");
            }
            if let Some(&first) = rows.first() {
                assert!(first as usize >= e, "row inside supernode");
            }
            for &i in &self.blocks_below[k] {
                assert!(i as usize > k);
            }
            for &i in &self.blocks_left[k] {
                assert!((i as usize) < k);
            }
        }
        for j in 0..n {
            let k = self.col_to_sup[j] as usize;
            assert!(self.sup_cols(k).contains(&j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::nd::{nested_dissection, NdOptions};
    use sparse::gen;

    fn analyze_poisson(nx: usize) -> (CsrMatrix, SymbolicLU) {
        let a = gen::poisson2d_5pt(nx, nx);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        let pa = a.permute_sym(&nd.perm);
        let sym = SymbolicLU::analyze(&pa, &nd.tree, &SymbolicOptions::default());
        (pa, sym)
    }

    #[test]
    fn pattern_contains_matrix() {
        let (pa, sym) = analyze_poisson(8);
        sym.validate();
        // Every below-diagonal entry of pa must appear in the symbolic L.
        for i in 0..pa.nrows() {
            for &j in pa.row_cols(i) {
                if j >= i {
                    continue;
                }
                let k = sym.col_sup(j);
                let e = sym.sup_cols(k).end;
                if i < e {
                    continue; // inside the diagonal block
                }
                assert!(
                    sym.rows_below(k).binary_search(&(i as u32)).is_ok(),
                    "A({i},{j}) missing from symbolic L"
                );
            }
        }
    }

    #[test]
    fn fill_is_closed_under_elimination() {
        // For every pair of rows i1 < i2 in the same supernode column
        // pattern, L(i2, sup(i1)) must exist (the classic fill rule at
        // block granularity).
        let (_, sym) = analyze_poisson(7);
        for k in 0..sym.n_supernodes() {
            let rows = sym.rows_below(k);
            if rows.len() < 2 {
                continue;
            }
            let i1 = rows[0] as usize;
            let k1 = sym.col_sup(i1);
            for &i2 in &rows[1..] {
                if sym.col_sup(i2 as usize) == k1 {
                    continue; // same block row
                }
                let blk2 = sym.col_sup(i2 as usize) as u32;
                assert!(
                    sym.blocks_below(k1).binary_search(&blk2).is_ok(),
                    "missing block fill L({blk2}, {k1})"
                );
            }
        }
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = gen::poisson2d_5pt(16, 1);
        let g = Graph::from_csr_pattern(&a);
        // Natural-order chain: force trivial ND (min_leaf large).
        let nd = nested_dissection(
            &g,
            &NdOptions {
                min_leaf: 16,
                ..NdOptions::default()
            },
        );
        let pa = a.permute_sym(&nd.perm);
        let sym = SymbolicLU::analyze(
            &pa,
            &nd.tree,
            &SymbolicOptions {
                relax_size: 0,
                ..SymbolicOptions::default()
            },
        );
        // nnz(L) for a tridiagonal = 2n - 1 (no relaxation => no explicit
        // zeros, and a tridiagonal factors without fill).
        assert_eq!(sym.nnz_l(), 2 * 16 - 1);
    }

    #[test]
    fn supernode_cap_respected() {
        let a = gen::poisson2d_5pt(10, 10);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(&g, &NdOptions::default());
        let pa = a.permute_sym(&nd.perm);
        let sym = SymbolicLU::analyze(
            &pa,
            &nd.tree,
            &SymbolicOptions {
                max_supernode: 3,
                relax_size: 3,
            },
        );
        for k in 0..sym.n_supernodes() {
            assert!(sym.sup_width(k) <= 3);
        }
        sym.validate();
    }

    #[test]
    fn supernodes_do_not_straddle_tree_nodes() {
        let a = gen::poisson2d_5pt(12, 12);
        let g = Graph::from_csr_pattern(&a);
        let nd = nested_dissection(
            &g,
            &NdOptions {
                forced_depth: 2,
                ..NdOptions::default()
            },
        );
        let pa = a.permute_sym(&nd.perm);
        let sym = SymbolicLU::analyze(&pa, &nd.tree, &SymbolicOptions::default());
        let owner = nd.tree.col_owner(pa.nrows());
        for k in 0..sym.n_supernodes() {
            let cols = sym.sup_cols(k);
            let o = owner[cols.start];
            for c in cols {
                assert_eq!(owner[c], o, "supernode {k} straddles tree nodes");
            }
            assert_eq!(sym.sup_owner(k), o as usize);
        }
    }

    #[test]
    fn blocks_left_is_transpose_of_blocks_below() {
        let (_, sym) = analyze_poisson(9);
        for k in 0..sym.n_supernodes() {
            for &i in sym.blocks_below(k) {
                assert!(sym.blocks_left(i as usize).contains(&(k as u32)));
            }
            for &j in sym.blocks_left(k) {
                assert!(sym.blocks_below(j as usize).contains(&(k as u32)));
            }
        }
    }

    #[test]
    fn counts_are_consistent() {
        let (_, sym) = analyze_poisson(6);
        assert!(sym.nnz_lu() > sym.nnz_l());
        assert!(sym.solve_flops(2) > sym.solve_flops(1));
    }
}
