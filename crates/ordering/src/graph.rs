//! Adjacency-list view of a symmetric sparse pattern.

use sparse::CsrMatrix;

/// An undirected graph in flat CSR-like adjacency storage (no self loops).
#[derive(Clone, Debug)]
pub struct Graph {
    ptr: Vec<usize>,
    adj: Vec<u32>,
}

impl Graph {
    /// Build the adjacency graph of a structurally symmetric matrix,
    /// dropping the diagonal. Panics if the pattern is not symmetric.
    pub fn from_csr_pattern(a: &CsrMatrix) -> Self {
        assert!(
            a.pattern_is_symmetric(),
            "ordering requires a structurally symmetric pattern; call symmetrized_pattern() first"
        );
        let n = a.nrows();
        let mut ptr = Vec::with_capacity(n + 1);
        ptr.push(0usize);
        let mut adj = Vec::with_capacity(a.nnz());
        for i in 0..n {
            for &j in a.row_cols(i) {
                if j != i {
                    adj.push(j as u32);
                }
            }
            ptr.push(adj.len());
        }
        Graph { ptr, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Neighbours of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.ptr[v]..self.ptr[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.ptr[v + 1] - self.ptr[v]
    }

    /// Breadth-first levels within the vertex subset marked by `in_set`
    /// (indexed by vertex), starting from `root`. Returns `(levels, order)`
    /// where unreached or out-of-set vertices get `u32::MAX` and `order` is
    /// the BFS visitation order. `work` is a caller-provided queue buffer.
    pub fn bfs_levels(
        &self,
        root: usize,
        in_set: impl Fn(usize) -> bool,
        levels: &mut [u32],
        order: &mut Vec<u32>,
    ) {
        debug_assert!(in_set(root));
        order.clear();
        levels[root] = 0;
        order.push(root as u32);
        let mut head = 0;
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            let lv = levels[v];
            for &w in self.neighbors(v) {
                let w = w as usize;
                if in_set(w) && levels[w] == u32::MAX {
                    levels[w] = lv + 1;
                    order.push(w as u32);
                }
            }
        }
    }

    /// A pseudo-peripheral vertex of the subset containing `start`: repeat
    /// BFS from the farthest vertex until the eccentricity stops growing.
    pub fn pseudo_peripheral(
        &self,
        start: usize,
        in_set: impl Fn(usize) -> bool + Copy,
        levels: &mut [u32],
        order: &mut Vec<u32>,
    ) -> usize {
        let mut root = start;
        let mut best_ecc = 0u32;
        for _ in 0..4 {
            for &v in order.iter() {
                levels[v as usize] = u32::MAX;
            }
            // first call: caller guarantees levels are reset for the subset
            levels[root] = u32::MAX;
            self.bfs_levels(root, in_set, levels, order);
            let &far = order.last().expect("root itself is always visited");
            let ecc = levels[far as usize];
            if ecc <= best_ecc {
                // reset for caller
                for &v in order.iter() {
                    levels[v as usize] = u32::MAX;
                }
                return root;
            }
            best_ecc = ecc;
            root = far as usize;
        }
        for &v in order.iter() {
            levels[v as usize] = u32::MAX;
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn path_graph_levels() {
        // 1D chain of 5 via poisson on 5x1
        let a = gen::poisson2d_5pt(5, 1);
        let g = Graph::from_csr_pattern(&a);
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        let mut levels = vec![u32::MAX; 5];
        let mut order = Vec::new();
        g.bfs_levels(0, |_| true, &mut levels, &mut order);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn bfs_respects_subset() {
        let a = gen::poisson2d_5pt(5, 1);
        let g = Graph::from_csr_pattern(&a);
        let mut levels = vec![u32::MAX; 5];
        let mut order = Vec::new();
        // exclude vertex 2: chain is cut
        g.bfs_levels(0, |v| v != 2, &mut levels, &mut order);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[2], u32::MAX);
        assert_eq!(levels[3], u32::MAX);
    }

    #[test]
    fn pseudo_peripheral_of_chain_is_endpoint() {
        let a = gen::poisson2d_5pt(9, 1);
        let g = Graph::from_csr_pattern(&a);
        let mut levels = vec![u32::MAX; 9];
        let mut order = Vec::new();
        let p = g.pseudo_peripheral(4, |_| true, &mut levels, &mut order);
        assert!(p == 0 || p == 8, "got {p}");
        // levels buffer is reset on exit
        assert!(levels.iter().all(|&l| l == u32::MAX));
    }

    #[test]
    #[should_panic(expected = "structurally symmetric")]
    fn asymmetric_pattern_rejected() {
        let mut coo = sparse::CooMatrix::new(2);
        coo.push(0, 1, 1.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let _ = Graph::from_csr_pattern(&coo.to_csr());
    }
}
