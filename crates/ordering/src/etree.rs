//! Elimination tree of a symmetrically permuted matrix (Liu's algorithm).

use sparse::CsrMatrix;

/// Sentinel for "no parent" (tree roots).
pub const NO_PARENT: u32 = u32::MAX;

/// Compute the elimination tree of a structurally symmetric matrix: for each
/// column `j`, `parent[j]` is the smallest `i > j` such that `L(i, j) ≠ 0`
/// in the Cholesky-like fill pattern, or [`NO_PARENT`] for roots.
pub fn etree(a: &CsrMatrix) -> Vec<u32> {
    let n = a.nrows();
    let mut parent = vec![NO_PARENT; n];
    let mut ancestor = vec![NO_PARENT; n];
    for i in 0..n {
        for &k in a.row_cols(i) {
            if k >= i {
                break;
            }
            // Walk from k to the root of its current subtree, compressing
            // the path to i as we go.
            let mut j = k;
            loop {
                let anc = ancestor[j];
                if anc == i as u32 {
                    break;
                }
                ancestor[j] = i as u32;
                if anc == NO_PARENT {
                    parent[j] = i as u32;
                    break;
                }
                j = anc as usize;
            }
        }
    }
    parent
}

/// A postorder of the forest given by `parent`, children visited before
/// parents. Ties are broken by ascending child index.
pub fn postorder(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    // Build child lists (reverse order so pops visit ascending children).
    let mut first_child = vec![NO_PARENT; n];
    let mut next_sibling = vec![NO_PARENT; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NO_PARENT {
            next_sibling[j] = first_child[p as usize];
            first_child[p as usize] = j as u32;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for root in (0..n).rev() {
        if parent[root] == NO_PARENT {
            stack.push((root as u32, false));
        }
    }
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            order.push(v);
            continue;
        }
        stack.push((v, true));
        // Push children in reverse so they pop in ascending order.
        let mut kids = Vec::new();
        let mut c = first_child[v as usize];
        while c != NO_PARENT {
            kids.push(c);
            c = next_sibling[c as usize];
        }
        for &k in kids.iter().rev() {
            stack.push((k, false));
        }
    }
    order
}

/// Depth of each vertex in the forest (roots have depth 0).
pub fn depths(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    let mut depth = vec![NO_PARENT; n];
    let mut path = Vec::new();
    for start in 0..n {
        if depth[start] != NO_PARENT {
            continue;
        }
        path.clear();
        let mut j = start;
        while depth[j] == NO_PARENT {
            path.push(j);
            match parent[j] {
                NO_PARENT => {
                    depth[j] = 0;
                    break;
                }
                p => j = p as usize,
            }
        }
        let mut d = depth[j];
        for &v in path.iter().rev() {
            if v == j {
                continue; // root, already assigned
            }
            d += 1;
            depth[v] = d;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CooMatrix;

    fn tridiag(n: usize) -> sparse::CsrMatrix {
        let mut c = CooMatrix::new(n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push_sym(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn tridiagonal_etree_is_a_chain() {
        let parent = etree(&tridiag(5));
        assert_eq!(parent, vec![1, 2, 3, 4, NO_PARENT]);
    }

    #[test]
    fn arrow_matrix_etree_is_a_star() {
        // Last row/col dense: every column's parent is n-1.
        let n = 5;
        let mut c = CooMatrix::new(n);
        for i in 0..n {
            c.push(i, i, 4.0);
            if i + 1 < n {
                c.push_sym(i, n - 1, -1.0);
            }
        }
        let parent = etree(&c.to_csr());
        assert_eq!(parent, vec![4, 4, 4, 4, NO_PARENT]);
    }

    #[test]
    fn etree_captures_fill_path() {
        // Pattern: (0,1), (1,3), (0,2): col 0's parent is 1; col 1's parent 3;
        // col 2 connects to 0 directly but through the tree must attach to
        // the subtree containing 0, i.e. parent[2] comes from reachability.
        let mut c = CooMatrix::new(4);
        for i in 0..4 {
            c.push(i, i, 4.0);
        }
        c.push_sym(0, 1, -1.0);
        c.push_sym(1, 3, -1.0);
        c.push_sym(0, 2, -1.0);
        let parent = etree(&c.to_csr());
        assert_eq!(parent[0], 1);
        // L(2,0) != 0 and L(2,1) fill => parent[1] = 2, parent[2] = 3.
        assert_eq!(parent[1], 2);
        assert_eq!(parent[2], 3);
        assert_eq!(parent[3], NO_PARENT);
    }

    #[test]
    fn postorder_visits_children_first() {
        let parent = etree(&tridiag(6));
        let po = postorder(&parent);
        assert_eq!(po.len(), 6);
        let mut pos = [0usize; 6];
        for (k, &v) in po.iter().enumerate() {
            pos[v as usize] = k;
        }
        for j in 0..6 {
            if parent[j] != NO_PARENT {
                assert!(pos[j] < pos[parent[j] as usize]);
            }
        }
    }

    #[test]
    fn depths_of_chain() {
        let parent = etree(&tridiag(4));
        assert_eq!(depths(&parent), vec![3, 2, 1, 0]);
    }
}
