//! Fill-reducing ordering and symbolic analysis substrate.
//!
//! The paper's pipeline runs METIS nested dissection, builds the elimination
//! tree, detects supernodes, and performs symbolic factorization inside
//! SuperLU_DIST before the SpTRSV ever runs. None of those components are
//! available offline, so this crate implements them from scratch:
//!
//! * [`graph::Graph`] — adjacency view of a symmetric sparse pattern.
//! * [`nd`] — recursive-bisection nested dissection producing a permutation
//!   *and* the binary separator tree the 3D process layout is built on.
//! * [`etree`] — elimination tree of a symmetrically permuted matrix.
//! * [`symbolic`] — fill pattern of L (= Uᵀ for symmetric patterns),
//!   fundamental supernode detection, and the supernodal symbolic structure
//!   consumed by the numeric factorization and the distributed solvers.
//! * [`levels`] — level sets of a factor's dependency DAG with chain
//!   batching, the substrate of the level-set execution engine.

pub mod etree;
pub mod graph;
pub mod levels;
pub mod nd;
pub mod symbolic;

pub use graph::Graph;
pub use levels::{ChainPolicy, LevelSets};
pub use nd::{NdOptions, NdResult, SepTree, SepTreeNode};
pub use symbolic::{SymbolicLU, SymbolicOptions};

/// End-to-end analysis: permute `a` with nested dissection (forcing the top
/// `log2(pz)` separator levels to be binary), then compute the supernodal
/// symbolic factorization of the permuted matrix.
///
/// Returns the ND result (permutation + separator tree) and the symbolic LU.
pub fn analyze(a: &sparse::CsrMatrix, pz: usize, opts: &SymbolicOptions) -> (NdResult, SymbolicLU) {
    assert!(pz.is_power_of_two(), "Pz must be a power of two");
    let g = Graph::from_csr_pattern(a);
    let ndo = NdOptions {
        forced_depth: pz.trailing_zeros() as usize,
        ..NdOptions::default()
    };
    let nd = nd::nested_dissection(&g, &ndo);
    let pa = a.permute_sym(&nd.perm);
    let sym = symbolic::SymbolicLU::analyze(&pa, &nd.tree, opts);
    (nd, sym)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn analyze_poisson_runs() {
        let a = gen::poisson2d_5pt(8, 8);
        let (nd, sym) = analyze(&a, 4, &SymbolicOptions::default());
        assert_eq!(nd.perm.len(), 64);
        assert!(sym.n_supernodes() > 0);
        assert!(sym.nnz_l() >= a.nnz() / 2);
    }
}
