//! Shared harness for the paper-reproduction benchmarks.
//!
//! Each `benches/figN_*.rs` target regenerates one table or figure of the
//! paper (see DESIGN.md §4). This crate holds the common machinery:
//! matrix/factorization caching, configuration sweeps, and the tabular
//! output format.
//!
//! Environment knobs:
//! * `SPTRSV_SCALE` — `tiny` | `small` | `medium` (default `medium`):
//!   size tier of the Table 1 analog matrices. Absolute times shift with
//!   scale; the paper's qualitative shapes are strongest at `medium`
//!   (EXPERIMENTS.md records that tier); `small` keeps a full sweep fast.
//! * `SPTRSV_MAX_P` — cap on the total rank count of any configuration
//!   (default 2048 at `medium`/`small`, 128 at `tiny`); configurations
//!   above the cap are skipped.

pub mod serving;

use lufactor::Factorized;
use ordering::SymbolicOptions;
use simgrid::MachineModel;
use sparse::gen::{self, Scale};
use sptrsv::{solve_distributed, Algorithm, Arch, SolveOutcome, SolverConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The benchmark size tier, from `SPTRSV_SCALE`.
pub fn scale() -> Scale {
    match std::env::var("SPTRSV_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("medium") => Scale::Medium,
        Ok("small") => Scale::Small,
        Ok(other) => panic!("unknown SPTRSV_SCALE {other:?}"),
        Err(_) => Scale::Medium,
    }
}

/// Cap on the total rank count of a configuration.
pub fn max_p() -> usize {
    if let Ok(v) = std::env::var("SPTRSV_MAX_P") {
        return v.parse().expect("SPTRSV_MAX_P must be an integer");
    }
    match scale() {
        Scale::Tiny => 128,
        _ => 2048,
    }
}

type FactKey = (String, usize);

fn fact_cache() -> &'static Mutex<HashMap<FactKey, Arc<Factorized>>> {
    static CACHE: OnceLock<Mutex<HashMap<FactKey, Arc<Factorized>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Factorize (with caching) the Table 1 analog named after the paper's
/// matrix, analyzed for up to `max_pz` grids.
pub fn factorized(name: &str, max_pz: usize) -> Arc<Factorized> {
    let key = (name.to_string(), max_pz);
    if let Some(f) = fact_cache().lock().unwrap().get(&key) {
        return Arc::clone(f);
    }
    let a = gen::by_name(name, scale()).unwrap_or_else(|| panic!("unknown test matrix {name}"));
    eprintln!(
        "# factorizing {name}: n = {}, nnz(A) = {} (scale {:?}, Pz ≤ {max_pz})",
        a.nrows(),
        a.nnz(),
        scale()
    );
    let f = Arc::new(
        lufactor::factorize(&a, max_pz, &SymbolicOptions::default())
            .expect("generator matrices are diagonally dominant"),
    );
    fact_cache().lock().unwrap().insert(key, Arc::clone(&f));
    f
}

/// The original (unpermuted) matrix for residual checks.
pub fn matrix(name: &str) -> sparse::CsrMatrix {
    gen::by_name(name, scale()).unwrap_or_else(|| panic!("unknown test matrix {name}"))
}

/// Split `p = px · py` as square as possible (paper: "the 2D grid is set
/// as square as possible" with `px ≤ py`... the paper sets `Px ≈ Py`).
pub fn near_square(p: usize) -> (usize, usize) {
    let mut px = (p as f64).sqrt() as usize;
    while px > 1 && !p.is_multiple_of(px) {
        px -= 1;
    }
    (px.max(1), p / px.max(1))
}

/// One benchmark measurement.
pub struct Measurement {
    /// Solve outcome (timings + solution).
    pub out: SolveOutcome,
    /// The configuration that produced it.
    pub cfg: SolverConfig,
}

/// Run one configuration of a solver on a factorized matrix.
#[allow(clippy::too_many_arguments)]
pub fn run_once(
    fact: &Arc<Factorized>,
    machine: MachineModel,
    algorithm: Algorithm,
    arch: Arch,
    px: usize,
    py: usize,
    pz: usize,
    nrhs: usize,
) -> Measurement {
    let n = fact.lu.n();
    let b = gen::standard_rhs(n, nrhs);
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs,
        algorithm,
        arch,
        machine,
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let out = solve_distributed(fact, &b, &cfg);
    assert!(
        out.replication_disagreement < 1e-8,
        "replicated grids disagree: {}",
        out.replication_disagreement
    );
    Measurement { out, cfg }
}

/// One row of a Fig. 5/6-style breakdown table.
pub struct BreakdownRow {
    /// `"Baseline"` or `"New"`.
    pub algorithm: &'static str,
    /// Grid count.
    pub pz: usize,
    /// Total rank count.
    pub p: usize,
    /// Mean inter-grid communication seconds per rank.
    pub z: f64,
    /// Mean intra-grid communication seconds per rank.
    pub xy: f64,
    /// Mean floating-point seconds per rank.
    pub fp: f64,
}

/// Shared driver for the Fig. 5 / Fig. 6 breakdown benches: prints the
/// Z-Comm / XY-Comm / FP-Operation table for one matrix and asserts the
/// paper's core claim (the sparse allreduce cuts Z-Comm at `Pz ≥ 4`).
pub fn breakdown_figure(name: &str) -> Vec<BreakdownRow> {
    use simgrid::Category;
    let fact = factorized(name, 32);
    let ps: Vec<usize> = [128, 512, 2048]
        .into_iter()
        .filter(|&p| p <= max_p())
        .collect();
    println!("--- {name}: mean seconds per rank ---");
    println!(
        "{:>10} {:>4} {:>8} {:>12} {:>12} {:>12}",
        "algorithm", "Pz", "P", "Z-Comm", "XY-Comm", "FP-Operation"
    );
    let mut rows = Vec::new();
    for (alg, label) in [
        (Algorithm::Baseline3d, "Baseline"),
        (Algorithm::New3d, "New"),
    ] {
        for pz in [1usize, 4, 16, 32] {
            for &p in &ps {
                if p % pz != 0 {
                    continue;
                }
                let (px, py) = near_square(p / pz);
                let m = run_once(
                    &fact,
                    MachineModel::cori_haswell(),
                    alg,
                    Arch::Cpu,
                    px,
                    py,
                    pz,
                    1,
                );
                let nr = m.out.stats.len() as f64;
                let mean =
                    |c: Category| m.out.stats.iter().map(|s| s.time[c as usize]).sum::<f64>() / nr;
                let (z, xy, fp) = (
                    mean(Category::ZComm),
                    mean(Category::XyComm),
                    mean(Category::Flop),
                );
                println!("{label:>10} {pz:>4} {p:>8} {z:>12.4e} {xy:>12.4e} {fp:>12.4e}");
                rows.push(BreakdownRow {
                    algorithm: label,
                    pz,
                    p,
                    z,
                    xy,
                    fp,
                });
            }
        }
    }
    let zsum = |lbl: &str| -> f64 {
        rows.iter()
            .filter(|r| r.algorithm == lbl && r.pz >= 4)
            .map(|r| r.z)
            .sum()
    };
    let (zb, zn) = (zsum("Baseline"), zsum("New"));
    println!(
        "\nZ-Comm total (Pz >= 4): baseline {zb:.4e} s vs proposed {zn:.4e} s ({:.2}x less)\n",
        zb / zn
    );
    assert!(
        zn < zb,
        "the sparse allreduce must reduce inter-grid communication time"
    );
    rows
}

/// Shared driver for the Fig. 7 / Fig. 8 load-balance benches: per-rank
/// busy time (FP + intra-grid comm, Z-Comm excluded — the paper's error-bar
/// quantity) in the L and U phases, min/mean/max over ranks, at `P ∈ {128,
/// 1024}` and varying `Pz`. Returns `(algorithm, pz, p, phase,
/// max/mean imbalance)` tuples.
pub fn load_balance_figure(name: &str) -> Vec<(&'static str, usize, usize, &'static str, f64)> {
    let fact = factorized(name, 32);
    let ps: Vec<usize> = [128, 1024].into_iter().filter(|&p| p <= max_p()).collect();
    println!("--- {name}: busy seconds per rank, min / mean / max (Z-Comm excluded) ---");
    println!(
        "{:>10} {:>4} {:>8} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "algorithm", "Pz", "P", "phase", "min", "mean", "max", "max/mean"
    );
    let mut out = Vec::new();
    for &p in &ps {
        for (alg, label) in [
            (Algorithm::Baseline3d, "Baseline"),
            (Algorithm::New3d, "New"),
        ] {
            for pz in [1usize, 4, 16, 32] {
                if p % pz != 0 {
                    continue;
                }
                let (px, py) = near_square(p / pz);
                let m = run_once(
                    &fact,
                    MachineModel::cori_haswell(),
                    alg,
                    Arch::Cpu,
                    px,
                    py,
                    pz,
                    1,
                );
                for (phase, get) in [
                    (
                        "L",
                        Box::new(|ph: &sptrsv::PhaseTimes| ph.l_busy)
                            as Box<dyn Fn(&sptrsv::PhaseTimes) -> f64>,
                    ),
                    ("U", Box::new(|ph: &sptrsv::PhaseTimes| ph.u_busy)),
                ] {
                    let (mn, mean, mx) = m.out.min_mean_max(&get);
                    println!(
                        "{label:>10} {pz:>4} {p:>8} {phase:>7} {mn:>12.4e} {mean:>12.4e} {mx:>12.4e} {:>9.2}",
                        mx / mean.max(1e-30)
                    );
                    out.push((label, pz, p, phase, mx / mean.max(1e-30)));
                }
            }
        }
    }
    out
}

/// Shared driver for the Fig. 9 / Fig. 10 benches: `1 × 1 × Pz` layouts of
/// the proposed 3D SpTRSV with CPU vs GPU ranks, `Pz = 1…64`, 1 and 50 RHS.
/// Prints total / L-solve / U-solve / Z-comm per configuration and returns
/// the best CPU→GPU speedup per matrix (1 RHS).
pub fn gpu_1x1xpz_figure(
    machine: MachineModel,
    matrices: &[&'static str],
) -> Vec<(&'static str, f64)> {
    let max_pz = 64.min(max_p());
    let mut best = Vec::new();
    for &name in matrices {
        let fact = factorized(name, max_pz);
        println!("--- {name} on {} ---", machine.name);
        println!(
            "{:>5} {:>4} {:>4} {:>12} {:>12} {:>12} {:>12}",
            "arch", "nrhs", "Pz", "total", "L-solve", "U-solve", "Z-comm"
        );
        let mut best_speedup = 0.0f64;
        for nrhs in [1usize, 50] {
            // The 50-RHS runs execute 50x the real arithmetic; sample the
            // Pz sweep more coarsely there (the paper's curves are smooth).
            let pzs: Vec<usize> = if nrhs == 1 {
                (0..7)
                    .map(|e| 1usize << e)
                    .filter(|&z| z <= max_pz)
                    .collect()
            } else {
                [1usize, 4, 16, 64]
                    .into_iter()
                    .filter(|&z| z <= max_pz)
                    .collect()
            };
            let mut cpu_times = Vec::new();
            for arch in [Arch::Cpu, Arch::Gpu] {
                for (pi, &pz) in pzs.iter().enumerate() {
                    let m = run_once(
                        &fact,
                        machine.clone(),
                        Algorithm::New3d,
                        arch,
                        1,
                        1,
                        pz,
                        nrhs,
                    );
                    let l = m.out.mean(|p| p.l_wall);
                    let u = m.out.mean(|p| p.u_wall);
                    let z = m.out.mean(|p| p.z_time);
                    let label = if arch == Arch::Cpu { "CPU" } else { "GPU" };
                    println!(
                        "{label:>5} {nrhs:>4} {pz:>4} {:>12.4e} {l:>12.4e} {u:>12.4e} {z:>12.4e}",
                        m.out.makespan
                    );
                    if arch == Arch::Cpu {
                        cpu_times.push(m.out.makespan);
                    } else if nrhs == 1 {
                        best_speedup = best_speedup.max(cpu_times[pi] / m.out.makespan);
                    }
                }
            }
        }
        println!("best CPU->GPU speedup (1 RHS): {best_speedup:.2}x\n");
        best.push((name, best_speedup));
    }
    best
}

/// Best CPU→GPU speedup (1 RHS) over `Pz = 1…64` for one matrix on one
/// system — the Fig. 10 cross-system comparison helper.
pub fn gpu_1x1xpz_best_speedup(machine: MachineModel, name: &'static str) -> f64 {
    let max_pz = 64.min(max_p());
    let fact = factorized(name, max_pz);
    let mut best = 0.0f64;
    let mut pz = 1;
    while pz <= max_pz {
        let cpu = run_once(
            &fact,
            machine.clone(),
            Algorithm::New3d,
            Arch::Cpu,
            1,
            1,
            pz,
            1,
        );
        let gpu = run_once(
            &fact,
            machine.clone(),
            Algorithm::New3d,
            Arch::Gpu,
            1,
            1,
            pz,
            1,
        );
        best = best.max(cpu.out.makespan / gpu.out.makespan);
        pz *= 2;
    }
    best
}

/// Print a table header: `label` column plus one column per entry.
pub fn print_header(label: &str, cols: &[String]) {
    print!("{label:>18}");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
}

/// Print one row of `f64` cells (µs-precision seconds in scientific form).
pub fn print_row(label: &str, cells: &[Option<f64>]) {
    print!("{label:>18}");
    for c in cells {
        match c {
            Some(v) => print!(" {v:>12.4e}"),
            None => print!(" {:>12}", "-"),
        }
    }
    println!();
}

/// Format a speedup ratio.
pub fn speedup(base: f64, new: f64) -> String {
    format!("{:.2}x", base / new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_splits() {
        assert_eq!(near_square(1), (1, 1));
        assert_eq!(near_square(4), (2, 2));
        assert_eq!(near_square(8), (2, 4));
        assert_eq!(near_square(128), (8, 16));
        assert_eq!(near_square(2048), (32, 64));
        let (a, b) = near_square(6);
        assert_eq!(a * b, 6);
    }

    #[test]
    fn factorization_is_cached() {
        std::env::set_var("SPTRSV_SCALE", "tiny");
        let f1 = factorized("s2D9pt2048", 2);
        let f2 = factorized("s2D9pt2048", 2);
        assert!(Arc::ptr_eq(&f1, &f2));
    }
}
