//! Open-loop load harness for the batched serving front door
//! ([`SolverService`], DESIGN.md §13).
//!
//! Arrivals are scheduled on a fixed open-loop clock (request `i` is due
//! at `start + i / rate`); the submitter sleeps until each due time and
//! never waits for responses, so queueing delay shows up as latency
//! instead of silently throttling the offered load.  Latency is measured
//! from the *scheduled* arrival to result collection — if the service
//! falls behind, the backlog is charged to the requests that suffered it.
//!
//! Shared by the `pr7_report` bench and `sptrsv3d --serve`.

use sptrsv::{BatchPolicy, QueueFullPolicy, ServiceConfig, Solver3d, SolverService};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One open-loop experiment: `requests` width-1 solves offered at
/// `rate_hz`, coalesced under (`max_batch`, `max_wait`).
#[derive(Clone, Debug)]
pub struct ServeRun {
    pub requests: usize,
    pub rate_hz: f64,
    pub max_batch: usize,
    pub max_wait: Duration,
}

/// What an open-loop run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub completed: usize,
    pub batches: u64,
    pub mean_batch_width: f64,
    pub p50_latency_us: f64,
    pub p99_latency_us: f64,
    pub solves_per_sec: f64,
}

/// Median wall-clock time of a standalone width-1 solve on `solver`
/// (after warm-up), used to calibrate offered-load sweeps.
pub fn calibrate_single_solve(solver: &Solver3d, b: &[f64], n: usize) -> Duration {
    for _ in 0..2 {
        std::hint::black_box(solver.solve(&b[..n], 1));
    }
    let mut samples: Vec<Duration> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(solver.solve(&b[..n], 1));
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Linear-interpolated percentile (`q` in 0..=1) of a sorted slice.
pub fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    let frac = pos - lo as f64;
    let (a, b) = (
        sorted[lo].as_secs_f64() * 1e6,
        sorted[hi].as_secs_f64() * 1e6,
    );
    a + frac * (b - a)
}

/// Drive `solver` through a [`SolverService`] under the open-loop
/// schedule in `run`.  `b` supplies the request RHS columns (column
/// `i % cols` for request `i`); `n` is the system size.
pub fn run_open_loop(solver: Solver3d, b: &[f64], n: usize, run: &ServeRun) -> ServeReport {
    let svc = SolverService::start(
        solver,
        ServiceConfig {
            batch: BatchPolicy {
                max_batch: run.max_batch,
                max_wait: run.max_wait,
            },
            queue_capacity: 64,
            max_request_width: 1,
            on_full: QueueFullPolicy::Block,
        },
    );
    let report = run_open_loop_on(&svc, b, n, run);
    svc.shutdown();
    report
}

/// [`run_open_loop`] against a caller-owned service: the service stays
/// alive afterwards, so the caller can scrape final metrics, dump the
/// flight recorder, or write a span profile before shutting down (this is
/// how `sptrsv3d --serve` keeps its `--metrics-listen` endpoint and
/// snapshot flags working across the drain).
pub fn run_open_loop_on(svc: &SolverService, b: &[f64], n: usize, run: &ServeRun) -> ServeReport {
    assert!(run.rate_hz > 0.0, "offered load must be positive");
    let cols = b.len() / n;
    assert!(cols >= 1, "need at least one RHS column");
    let base = svc.stats();
    let period = Duration::from_secs_f64(1.0 / run.rate_hz);
    let (tx, rx) = mpsc::channel();
    let mut latencies: Vec<Duration> = Vec::with_capacity(run.requests);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..run.requests {
                let due = start + period.mul_f64(i as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let col = i % cols;
                let ticket = svc
                    .submit(&b[col * n..(col + 1) * n], 1)
                    .expect("service rejected a blocking submit");
                tx.send((ticket, due)).expect("collector hung up");
            }
        });
        // Single dispatcher + FIFO batch cuts: tickets complete in submit
        // order, so collecting in submit order adds no artificial delay.
        for (ticket, due) in rx {
            std::hint::black_box(ticket.wait());
            latencies.push(due.elapsed());
        }
    });
    let elapsed = start.elapsed();
    let stats = svc.stats();
    // Delta against the entry snapshot so repeated runs on one service
    // (rate sweeps) report per-run batching, not lifetime averages.
    let batches = stats.batches - base.batches;
    let requests = stats.requests - base.requests;

    latencies.sort();
    ServeReport {
        completed: latencies.len(),
        batches,
        mean_batch_width: if batches > 0 {
            requests as f64 / batches as f64
        } else {
            0.0
        },
        p50_latency_us: percentile_us(&latencies, 0.50),
        p99_latency_us: percentile_us(&latencies, 0.99),
        solves_per_sec: latencies.len() as f64 / elapsed.as_secs_f64(),
    }
}
