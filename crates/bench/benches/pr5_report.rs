//! PR 5 acceptance report: native wall-clock next to sim-predicted
//! makespan, with cross-backend conformance.
//!
//! Plain (non-criterion) harness that writes `BENCH_pr5.json` at the
//! workspace root. For each algorithm variant on the solve-many fixture
//! (1024-dof 9-point Poisson, 2x2x4 grid) it records:
//!
//! * the simulator's predicted makespan (virtual seconds under the
//!   cori-haswell model),
//! * the measured wall-clock makespan of the same solve on the real
//!   shared-memory threaded backend (min over reps: every source of
//!   interference only ever adds time), and
//! * whether the two backends produced a **bit-identical** solution —
//!   the report fails if any variant does not conform.
//!
//! Run with `cargo bench -p sptrsv-bench --bench pr5_report`.

use ordering::SymbolicOptions;
use sptrsv::{Algorithm, Arch, Backend, SolverConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const NRHS: usize = 1;
const REPS: usize = 5;

struct Row {
    algorithm: &'static str,
    sim_makespan_us: f64,
    native_wall_us_min: f64,
    native_wall_us_mean: f64,
    conformant: bool,
}

fn main() {
    let a = sparse::gen::poisson2d_9pt(32, 32);
    let f = Arc::new(lufactor::factorize(&a, 4, &SymbolicOptions::default()).unwrap());
    let b = sparse::gen::standard_rhs(a.nrows(), NRHS);

    let variants: [(&str, Algorithm); 4] = [
        ("new3d", Algorithm::New3d),
        ("new3d-flat", Algorithm::New3dFlat),
        ("new3d-naive-allreduce", Algorithm::New3dNaiveAllreduce),
        ("baseline3d", Algorithm::Baseline3d),
    ];

    let mut rows = Vec::new();
    for (name, alg) in variants {
        let cfg = |backend| SolverConfig {
            px: 2,
            py: 2,
            pz: 4,
            nrhs: NRHS,
            algorithm: alg,
            arch: Arch::Cpu,
            machine: simgrid::MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend,
            executor: Default::default(),
        };
        let sim = sptrsv::solve_distributed(&f, &b, &cfg(Backend::Sim));

        let solver = sptrsv::Solver3d::new(Arc::clone(&f), cfg(Backend::Native));
        // Warm up: plan + schedule compile + thread-pool cold start.
        let first = solver.solve(&b, NRHS);
        let conformant = sim
            .x
            .iter()
            .zip(&first.x)
            .all(|(s, n)| s.to_bits() == n.to_bits());

        // The native makespan is itself the measurement (max rank
        // wall-clock inside the solve), so aggregate makespans rather
        // than timing the harness loop.
        let mut wall = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            let out = black_box(solver.solve(&b, NRHS));
            black_box(t.elapsed());
            wall.push(out.makespan);
        }
        let min = wall.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = wall.iter().sum::<f64>() / wall.len() as f64;

        eprintln!(
            "{name:22} sim {:9.1} us   native wall min {:9.1} us  mean {:9.1} us   conformant: {conformant}",
            sim.makespan * 1e6,
            min * 1e6,
            mean * 1e6
        );
        rows.push(Row {
            algorithm: name,
            sim_makespan_us: sim.makespan * 1e6,
            native_wall_us_min: min * 1e6,
            native_wall_us_mean: mean * 1e6,
            conformant,
        });
    }

    let all_conformant = rows.iter().all(|r| r.conformant);
    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push(',');
        }
        rows_json.push_str(&format!(
            "\n    {{\"algorithm\": \"{}\", \"sim_makespan_us\": {:.2}, \
             \"native_wall_us_min\": {:.2}, \"native_wall_us_mean\": {:.2}, \
             \"conformant\": {}}}",
            r.algorithm,
            r.sim_makespan_us,
            r.native_wall_us_min,
            r.native_wall_us_mean,
            r.conformant
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"fixture\": \"poisson2d_9pt 32x32, 2x2x4 ranks, nrhs {NRHS}\",\n  \
         \"backends\": [{rows_json}\n  ],\n  \"all_conformant\": {all_conformant}\n}}\n"
    );
    // Workspace root (bench runs with the package as cwd).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    std::fs::write(path, &json).expect("write BENCH_pr5.json");
    eprintln!("wrote {path}");

    assert!(
        all_conformant,
        "cross-backend conformance failed: sim and native x differ in bits"
    );
}
