//! PR 7 acceptance report: the batched serving front door under
//! open-loop load.
//!
//! Plain (non-criterion) harness that writes `BENCH_pr7.json` at the
//! workspace root.  For each backend × executor combination it
//! calibrates the standalone single-solve time, then sweeps offered
//! load (0.5×, 2×, and 8× the unbatched service rate) against three
//! batching configurations:
//!
//! * `unbatched`   — `max_batch = 1` (every request is its own solve),
//! * `b8_w200us`   — coalesce up to 8 columns, 200 µs wait window,
//! * `b8_w2ms`     — coalesce up to 8 columns, 2 ms wait window,
//!
//! and records p50/p99 request latency (scheduled arrival → collection)
//! and sustained solves/sec.  The report fails unless, at the highest
//! offered load, some batched configuration out-serves the unbatched
//! one on every backend × executor combination — the whole point of the
//! serving layer.
//!
//! Run with `cargo bench -p sptrsv-bench --bench pr7_report`.
//! `SPTRSV_SCALE=tiny` shrinks the matrix and request counts for smoke
//! runs (CI).

use benchkit::serving::{calibrate_single_solve, run_open_loop, ServeReport, ServeRun};
use ordering::SymbolicOptions;
use sparse::gen::Scale;
use sptrsv::{Algorithm, Arch, Backend, ExecutorKind, Solver3d, SolverConfig};
use std::sync::Arc;
use std::time::Duration;

const GRID: (usize, usize, usize) = (2, 2, 2);
/// Offered load as a multiple of the calibrated unbatched service rate.
const LOAD_X: [f64; 3] = [0.5, 2.0, 8.0];

struct Scenario {
    backend: Backend,
    executor: ExecutorKind,
    config: &'static str,
    window_us: u64,
    load_x: f64,
    rate_hz: f64,
    report: ServeReport,
}

fn main() {
    let (px, py, pz) = GRID;
    let tiny = benchkit::scale() == Scale::Tiny;
    let side = if tiny { 12 } else { 24 };
    let requests = if tiny { 48 } else { 160 };
    let a = sparse::gen::poisson2d_9pt(side, side);
    let n = a.nrows();
    let f = Arc::new(lufactor::factorize(&a, pz, &SymbolicOptions::default()).unwrap());
    let b = sparse::gen::standard_rhs(n, 8);

    let configs: [(&'static str, usize, Duration); 3] = [
        ("unbatched", 1, Duration::ZERO),
        ("b8_w200us", 8, Duration::from_micros(200)),
        ("b8_w2ms", 8, Duration::from_millis(2)),
    ];
    let combos = [
        (Backend::Sim, ExecutorKind::Tree),
        (Backend::Sim, ExecutorKind::Level),
        (Backend::Native, ExecutorKind::Tree),
        (Backend::Native, ExecutorKind::Level),
    ];

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut gate_ok = true;
    for (backend, executor) in combos {
        let cfg = SolverConfig {
            px,
            py,
            pz,
            nrhs: 1,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: simgrid::MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend,
            executor,
        };
        let t_solve = calibrate_single_solve(&Solver3d::new(Arc::clone(&f), cfg.clone()), &b, n);
        let base_rate = 1.0 / t_solve.as_secs_f64();
        eprintln!(
            "{backend:?}/{executor:?}: single solve {:.1} us ({base_rate:.0} solves/s unbatched)",
            t_solve.as_secs_f64() * 1e6
        );
        // (config, load) grid for this combo; the gate compares the cells
        // at the top load point.
        let mut top_unbatched = 0.0f64;
        let mut top_batched = 0.0f64;
        for &load_x in &LOAD_X {
            let rate_hz = load_x * base_rate;
            for (config, max_batch, max_wait) in configs {
                let run = ServeRun {
                    requests,
                    rate_hz,
                    max_batch,
                    max_wait,
                };
                let report = run_open_loop(Solver3d::new(Arc::clone(&f), cfg.clone()), &b, n, &run);
                assert_eq!(report.completed, requests, "lost requests in {config}");
                eprintln!(
                    "  {config:10} @ {load_x:3.1}x ({rate_hz:8.0}/s): p50 {:9.1} us  \
                     p99 {:9.1} us  {:8.0} solves/s  (batches {}, mean width {:.1})",
                    report.p50_latency_us,
                    report.p99_latency_us,
                    report.solves_per_sec,
                    report.batches,
                    report.mean_batch_width
                );
                if load_x == LOAD_X[2] {
                    if max_batch == 1 {
                        top_unbatched = report.solves_per_sec;
                    } else {
                        top_batched = top_batched.max(report.solves_per_sec);
                    }
                }
                scenarios.push(Scenario {
                    backend,
                    executor,
                    config,
                    window_us: max_wait.as_micros() as u64,
                    load_x,
                    rate_hz,
                    report,
                });
            }
        }
        if top_batched <= top_unbatched {
            eprintln!(
                "  GATE FAIL: batched {top_batched:.0} <= unbatched {top_unbatched:.0} \
                 solves/s at {}x load",
                LOAD_X[2]
            );
            gate_ok = false;
        } else {
            eprintln!(
                "  gate: batched {top_batched:.0} > unbatched {top_unbatched:.0} solves/s \
                 at {}x load ({:.2}x)",
                LOAD_X[2],
                top_batched / top_unbatched
            );
        }
    }

    let mut rows = String::new();
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"backend\": \"{:?}\", \"executor\": \"{:?}\", \"config\": \"{}\", \
             \"window_us\": {}, \"load_x\": {}, \"rate_hz\": {:.1}, \
             \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \
             \"solves_per_sec\": {:.1}, \"batches\": {}, \"mean_batch_width\": {:.2}}}",
            s.backend,
            s.executor,
            s.config,
            s.window_us,
            s.load_x,
            s.rate_hz,
            s.report.p50_latency_us,
            s.report.p99_latency_us,
            s.report.solves_per_sec,
            s.report.batches,
            s.report.mean_batch_width
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 7,\n  \"grid\": \"{px}x{py}x{pz}\",\n  \"n\": {n},\n  \
         \"requests_per_point\": {requests},\n  \"load_points\": {:?},\n  \
         \"scenarios\": [{rows}\n  ],\n  \
         \"batched_beats_unbatched_at_peak\": {gate_ok}\n}}\n",
        LOAD_X
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    std::fs::write(path, &json).expect("write BENCH_pr7.json");
    eprintln!("wrote {path}");

    assert!(
        gate_ok,
        "serving gate failed: batching did not beat unbatched throughput \
         at the highest offered load on every backend x executor combination"
    );
}
