//! Figure 9: the proposed 3D SpTRSV on simulated Crusher (AMD MI250X) with
//! `1 × 1 × Pz` layouts, `Pz = 1…64`, CPU vs GPU ranks, 1 and 50 RHS.
//!
//! ROC-SHMEM lacks subcommunicator support (paper §3.4), so Crusher runs
//! use only `Px = Py = 1` — the single-GPU kernel (Alg. 4) per grid plus
//! the MPI sparse allreduce. Paper headline: CPU→GPU speedups up to
//! 1.6–1.8× (1 RHS) and 2.2–2.9× (50 RHS); both paths scale with `Pz`;
//! Z-comm stays negligible.

fn main() {
    println!("== Fig. 9: Crusher 1x1xPz, CPU vs GPU, proposed 3D SpTRSV ==\n");
    benchkit::gpu_1x1xpz_figure(
        simgrid::MachineModel::crusher_gpu(),
        &["s1_mat_0_253872", "s2D9pt2048", "ldoor"],
    );
}
