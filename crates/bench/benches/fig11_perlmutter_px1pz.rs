//! Figure 11: the proposed 3D SpTRSV on simulated Perlmutter with
//! `Px × 1 × Pz` layouts (NVSHMEM-style multi-GPU 2D solves, `Py = 1` as
//! the paper finds broadcast outperforms reduction on GPU).
//!
//! Paper headlines reproduced here:
//! * the `Pz = 1` curve — the 2D NVSHMEM solver of [ACDA'21] — stops
//!   scaling at ~8 GPUs, where one-sided traffic starts crossing the
//!   4-GPU node boundary (NVLink 300 GB/s → Slingshot 12.5 GB/s);
//! * the 3D algorithm keeps scaling because NVSHMEM traffic stays
//!   intra-node (small `Px`) while only the sparse allreduce crosses
//!   nodes — up to 256 GPUs (`Px = 4, Pz = 64`);
//! * at a fixed GPU count, larger `Pz` beats larger `Px`.

use benchkit::{factorized, max_p, run_once};
use simgrid::MachineModel;
use sptrsv::{Algorithm, Arch};

fn main() {
    println!("== Fig. 11: Perlmutter Px x 1 x Pz, GPU (and CPU reference) ==\n");
    let matrices = [
        "s1_mat_0_253872",
        "nlpkkt80",
        "Ga19As19H42",
        "dielFilterV3real",
    ];
    let machine = MachineModel::perlmutter_gpu();
    let max_pz = 64.min(max_p() / 4);
    let mut ok_2d_stops = 0usize;
    let mut ok_3d_scales = 0usize;
    for name in matrices {
        let fact = factorized(name, max_pz);
        println!("--- {name} (GPU unless noted) ---");
        println!(
            "{:>10} {:>5} {:>5} {:>6} {:>12}",
            "curve", "Px", "Pz", "GPUs", "time (s)"
        );
        // 2D NVSHMEM curve: Pz = 1, Px across and beyond the node boundary.
        let mut curve_2d = Vec::new();
        for px in [1usize, 2, 4, 8, 16] {
            let m = run_once(
                &fact,
                machine.clone(),
                Algorithm::New3d,
                Arch::Gpu,
                px,
                1,
                1,
                1,
            );
            println!(
                "{:>10} {px:>5} {:>5} {px:>6} {:>12.4e}",
                "2D [12]", 1, m.out.makespan
            );
            curve_2d.push(m.out.makespan);
        }
        // 3D curves: Px in {1, 2, 4} (intra-node), Pz up to 64.
        let mut best_256 = f64::INFINITY;
        let mut best_3d_at = std::collections::HashMap::new();
        for px in [1usize, 2, 4] {
            let mut pz = 2;
            while pz <= max_pz {
                let m = run_once(
                    &fact,
                    machine.clone(),
                    Algorithm::New3d,
                    Arch::Gpu,
                    px,
                    1,
                    pz,
                    1,
                );
                println!(
                    "{:>10} {px:>5} {pz:>5} {:>6} {:>12.4e}",
                    "3D GPU",
                    px * pz,
                    m.out.makespan
                );
                if px * pz == 256 {
                    best_256 = best_256.min(m.out.makespan);
                }
                let e = best_3d_at.entry(px * pz).or_insert(f64::INFINITY);
                *e = e.min(m.out.makespan);
                pz *= 2;
            }
        }
        // CPU reference at the largest layout.
        let mcpu = run_once(
            &fact,
            machine.clone(),
            Algorithm::New3d,
            Arch::Cpu,
            4,
            1,
            max_pz,
            1,
        );
        println!(
            "{:>10} {:>5} {max_pz:>5} {:>6} {:>12.4e}",
            "3D CPU",
            4,
            4 * max_pz,
            mcpu.out.makespan
        );

        // Shape checks mirroring the paper's conclusions:
        // (a) the 2D NVSHMEM solver stops scaling once traffic crosses the
        //     node boundary (8+ GPUs on a 4-GPU node);
        let best_intra = curve_2d[..3].iter().cloned().fold(f64::INFINITY, f64::min);
        let beyond_node = curve_2d[3].min(curve_2d[4]); // 8, 16 GPUs
        if beyond_node >= best_intra * 0.95 {
            ok_2d_stops += 1;
        }
        // (b) at every multi-node GPU count the 3D layout beats the 2D one
        //     (NVSHMEM stays intra-node, only the allreduce crosses nodes),
        //     and even 256 3D GPUs stay below 2D's collapsed 16-GPU point.
        let ok_equal_counts = best_3d_at.get(&8).is_some_and(|&t| t < curve_2d[3])
            && best_3d_at.get(&16).is_some_and(|&t| t < curve_2d[4]);
        if ok_equal_counts && best_256 < curve_2d[4] {
            ok_3d_scales += 1;
        }
        println!(
            "2D stops past the node: {}; 3D beats 2D at 8/16 GPUs: {ok_equal_counts}; 3D @256 GPUs {best_256:.4e} vs 2D @16 {:.4e}\n",
            beyond_node >= best_intra * 0.95,
            curve_2d[4]
        );
    }
    println!(
        "2D-stops-at-node-boundary on {ok_2d_stops}/4 matrices; 3D-outscales-2D on {ok_3d_scales}/4"
    );
    assert!(
        ok_2d_stops >= 3,
        "the 2D NVSHMEM solver must stop scaling at the node boundary"
    );
    assert!(
        ok_3d_scales >= 3,
        "the 3D solver must outscale the 2D solver at multi-node GPU counts"
    );
}
