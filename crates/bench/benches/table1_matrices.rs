//! Table 1: the test-matrix inventory — size, nonzeros in the LU factors,
//! and density, for the six analog matrices.
//!
//! Paper values (full-scale SuiteSparse matrices) for reference:
//!
//! | Matrix           | n         | nnz(LU)       | Density |
//! |------------------|-----------|---------------|---------|
//! | nlpkkt80         | 1,062,400 | 1,928,132,340 | 0.17 %  |
//! | Ga19As19H42      |   133,123 | 1,565,515,001 | 9.15 %  |
//! | s1_mat_0_253872  |   253,872 |   425,394,978 | 0.66 %  |
//! | s2D9pt2048       | 4,194,304 |   810,605,750 | 0.005 % |
//! | ldoor            |   952,203 |   319,022,661 | 0.035 % |
//! | dielFilterV3real | 1,102,824 | 1,138,910,076 | 0.094 % |
//!
//! The analogs are scaled down (SPTRSV_SCALE) but must land in the same
//! density *regimes*: the chemistry analog densest by far, the 2D Poisson
//! analog sparsest.

use ordering::SymbolicOptions;

fn main() {
    let scale = benchkit::scale();
    println!("== Table 1: test matrices (analog suite, scale {scale:?}) ==\n");
    println!(
        "{:<18} {:>10} {:>10} {:>14} {:>10} {:<14}",
        "Matrix", "Size n", "nnz(A)", "Nonzeros in LU", "Density", "Description"
    );
    let mut densities = Vec::new();
    for m in sparse::gen::table1_suite(scale) {
        let a = &m.matrix;
        let (_, sym) = ordering::analyze(a, 1, &SymbolicOptions::default());
        let nnz_lu = sym.nnz_lu();
        let density = nnz_lu as f64 / (a.nrows() as f64 * a.nrows() as f64);
        println!(
            "{:<18} {:>10} {:>10} {:>14} {:>9.3}% {:<14}",
            m.name,
            a.nrows(),
            a.nnz(),
            nnz_lu,
            100.0 * density,
            m.description
        );
        densities.push((m.name, density));
    }
    // Regime check mirrored from the paper's table.
    let get = |n: &str| densities.iter().find(|(m, _)| *m == n).unwrap().1;
    assert!(
        get("Ga19As19H42") > get("nlpkkt80"),
        "chemistry analog must be densest"
    );
    assert!(
        get("s2D9pt2048") < get("ldoor"),
        "2D Poisson analog must be sparsest"
    );
    println!("\nregime check passed: chemistry densest, 2D Poisson sparsest (as in the paper)");
}
