//! PR 6 acceptance report: tree vs level execution engines across matrix
//! families.
//!
//! Plain (non-criterion) harness that writes `BENCH_pr6.json` at the
//! workspace root. For each matrix family × `nrhs ∈ {1, 4, 8}` it runs
//! the same compiled schedule through both intra-grid execution engines
//! on the virtual-time simulator and records:
//!
//! * predicted makespan under each engine (cori-haswell model),
//! * the winner and its advantage,
//! * the level engine's attributed barrier wait from the traced
//!   critical path (zero by construction under the tree engine), and
//! * bit-conformance between the two engines (the report fails if any
//!   cell diverges).
//!
//! The families deliberately span elimination-DAG shapes — regular mesh,
//! deep banded chain, power-law hubs, bushy blocked-random — because the
//! engines trade places across them: reactive tree walks win when the
//! DAG is deep and thin, level sweeps win when levels are wide enough to
//! amortize their barriers.
//!
//! Run with `cargo bench -p sptrsv-bench --bench pr6_report`.

use ordering::SymbolicOptions;
use sptrsv::{solve_traced, Algorithm, Arch, ExecutorKind, Plan, SolverConfig};
use std::sync::Arc;

const GRID: (usize, usize, usize) = (2, 2, 4);
const NRHS_SWEEP: [usize; 3] = [1, 4, 8];

struct Cell {
    family: &'static str,
    nrhs: usize,
    tree_us: f64,
    level_us: f64,
    level_barrier_wait_us: f64,
    conformant: bool,
}

impl Cell {
    fn winner(&self) -> &'static str {
        if self.level_us < self.tree_us {
            "level"
        } else {
            "tree"
        }
    }
}

fn families() -> Vec<(&'static str, sparse::CsrMatrix)> {
    vec![
        ("poisson2d_9pt", sparse::gen::poisson2d_9pt(24, 24)),
        ("banded", sparse::gen::banded(576, 8, 7)),
        ("rmat", sparse::gen::rmat(9, 8, 11)),
        (
            "blocked_random",
            sparse::gen::blocked_random(48, 8, 0.2, 13),
        ),
    ]
}

fn main() {
    let (px, py, pz) = GRID;
    let mut cells = Vec::new();
    for (family, a) in families() {
        let f = Arc::new(lufactor::factorize(&a, pz, &SymbolicOptions::default()).unwrap());
        let plan = Arc::new(Plan::new(Arc::clone(&f), px, py, pz));
        for nrhs in NRHS_SWEEP {
            let b = sparse::gen::standard_rhs(a.nrows(), nrhs);
            let cfg = |executor| SolverConfig {
                px,
                py,
                pz,
                nrhs,
                algorithm: Algorithm::New3d,
                arch: Arch::Cpu,
                machine: simgrid::MachineModel::cori_haswell(),
                chaos_seed: 0,
                fault: Default::default(),
                backend: Default::default(),
                executor,
            };
            // Traced solves: same virtual clock as untraced, plus the
            // span DAG the critical-path attribution needs.
            let tree = solve_traced(&plan, &b, &cfg(ExecutorKind::Tree), true);
            let level = solve_traced(&plan, &b, &cfg(ExecutorKind::Level), true);
            let conformant = tree
                .x
                .iter()
                .zip(&level.x)
                .all(|(t, l)| t.to_bits() == l.to_bits());
            let cell = Cell {
                family,
                nrhs,
                tree_us: tree.makespan * 1e6,
                level_us: level.makespan * 1e6,
                level_barrier_wait_us: level.critical_path().level_barrier_wait * 1e6,
                conformant,
            };
            eprintln!(
                "{family:16} nrhs {nrhs}: tree {:9.1} us   level {:9.1} us   \
                 barrier wait {:8.1} us   winner: {:5}   conformant: {conformant}",
                cell.tree_us,
                cell.level_us,
                cell.level_barrier_wait_us,
                cell.winner()
            );
            cells.push(cell);
        }
    }

    let all_conformant = cells.iter().all(|c| c.conformant);
    let tree_wins: Vec<&Cell> = cells.iter().filter(|c| c.winner() == "tree").collect();
    let level_wins: Vec<&Cell> = cells.iter().filter(|c| c.winner() == "level").collect();

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"family\": \"{}\", \"nrhs\": {}, \"tree_us\": {:.2}, \
             \"level_us\": {:.2}, \"level_barrier_wait_us\": {:.2}, \
             \"winner\": \"{}\", \"conformant\": {}}}",
            c.family,
            c.nrhs,
            c.tree_us,
            c.level_us,
            c.level_barrier_wait_us,
            c.winner(),
            c.conformant
        ));
    }
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"grid\": \"{px}x{py}x{pz}\",\n  \
         \"scenarios\": [{rows}\n  ],\n  \
         \"tree_wins\": {},\n  \"level_wins\": {},\n  \"all_conformant\": {all_conformant}\n}}\n",
        tree_wins.len(),
        level_wins.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(path, &json).expect("write BENCH_pr6.json");
    eprintln!("wrote {path}");

    assert!(
        all_conformant,
        "executor conformance failed: tree and level x differ in bits"
    );
    assert!(
        !tree_wins.is_empty() && !level_wins.is_empty(),
        "expected each engine to win at least one scenario \
         (tree {} / level {}) — the families no longer discriminate",
        tree_wins.len(),
        level_wins.len()
    );
}
