//! Criterion micro-benchmarks of the dense block kernels every solver is
//! built on: GEMV/GEMM panels, triangular solves, diagonal-block inversion,
//! and the supernodal L-block application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse::dense::{gemm, gemv, trsm_lower, trsm_upper, DenseMat};
use std::hint::black_box;

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(m, k) in &[(32usize, 32usize), (128, 64), (512, 96)] {
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..k).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; m];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}")),
            &(),
            |b, _| {
                b.iter(|| gemv(1.0, black_box(&a), m, k, black_box(&x), &mut y));
            },
        );
    }
    g.finish();
}

fn bench_gemm_multi_rhs(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_50rhs");
    for &(m, k) in &[(128usize, 64usize), (512, 96)] {
        let nrhs = 50;
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..k * nrhs).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; m * nrhs];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}")),
            &(),
            |b, _| {
                b.iter(|| gemm(1.0, black_box(&a), m, k, black_box(&x), nrhs, &mut y));
            },
        );
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    for &n in &[32usize, 96] {
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            l[j + j * n] = 2.0;
            for i in j + 1..n {
                l[i + j * n] = -0.01;
            }
        }
        let u: Vec<f64> = {
            let mut u = vec![0.0; n * n];
            for j in 0..n {
                u[j + j * n] = 2.0;
                for i in 0..j {
                    u[i + j * n] = -0.01;
                }
            }
            u
        };
        let b0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("lower", n), &(), |bch, _| {
            bch.iter(|| {
                let mut b = b0.clone();
                trsm_lower(black_box(&l), n, &mut b, 1);
                b
            });
        });
        g.bench_with_input(BenchmarkId::new("upper", n), &(), |bch, _| {
            bch.iter(|| {
                let mut b = b0.clone();
                trsm_upper(black_box(&u), n, &mut b, 1);
                b
            });
        });
    }
    g.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("diag_inverse");
    for &n in &[16usize, 48, 96] {
        let mut m = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                m.set(
                    i,
                    j,
                    if i == j {
                        4.0
                    } else {
                        -1.0 / (1.0 + (i + j) as f64)
                    },
                );
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(&m).inverse().expect("nonsingular"));
        });
    }
    g.finish();
}

/// Reference (scalar, rows/istart recomputation) vs blocked (precompiled
/// scatter, nrhs-register-blocked) supernodal apply kernels — the "before"
/// and "after" of the PR 4 hot-path rework. One representative
/// off-diagonal block shape, both Dense-run and Scatter addressing.
fn bench_apply(c: &mut Criterion) {
    use sptrsv::kernels::{self, Targets};

    // A mid-size supernode block (48 KB panel, past L1): 96-row panel, 64-wide source supernode,
    // 96-wide target, 64 block rows starting at panel offset 16.
    let (r, w, wi, lo, len) = (96usize, 64usize, 96usize, 16usize, 64usize);
    let hi = lo + len;
    let istart = 1000usize;
    let panel: Vec<f64> = (0..r * w).map(|i| ((i * 37 % 101) as f64) - 50.0).collect();
    // Dense run vs every-other-row scatter (same block length).
    let dense_offsets: Vec<usize> = (0..len).collect();
    let scatter_offsets: Vec<usize> = (0..len).map(|q| (q * 2).min(wi - len + q)).collect();
    let scatter_ix: Vec<u32> = scatter_offsets.iter().map(|&o| o as u32).collect();
    let mk_rows = |offs: &[usize]| -> Vec<u32> {
        let mut rows = vec![0u32; r];
        for (q, &o) in offs.iter().enumerate() {
            rows[lo + q] = (istart + o) as u32;
        }
        rows
    };
    let rows_dense = mk_rows(&dense_offsets);
    let rows_scatter = mk_rows(&scatter_offsets);

    let mut g = c.benchmark_group("apply_l");
    for &nrhs in &[1usize, 4, 8] {
        let y: Vec<f64> = (0..w * nrhs)
            .map(|i| ((i * 13 % 17) as f64) * 0.25 + 0.5)
            .collect();
        let mut acc = vec![0.0f64; wi * nrhs];
        g.bench_with_input(BenchmarkId::new("reference", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::reference::apply_l(
                    black_box(&panel),
                    r,
                    &rows_dense,
                    istart,
                    lo,
                    hi,
                    black_box(&y),
                    w,
                    &mut acc,
                    wi,
                    nrhs,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked_dense", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::apply_l(
                    black_box(&panel),
                    r,
                    lo,
                    hi,
                    Targets::Dense(0),
                    black_box(&y),
                    w,
                    &mut acc,
                    wi,
                    nrhs,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("reference_scatter", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::reference::apply_l(
                    black_box(&panel),
                    r,
                    &rows_scatter,
                    istart,
                    lo,
                    hi,
                    black_box(&y),
                    w,
                    &mut acc,
                    wi,
                    nrhs,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked_scatter", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::apply_l(
                    black_box(&panel),
                    r,
                    lo,
                    hi,
                    Targets::Scatter(&scatter_ix),
                    black_box(&y),
                    w,
                    &mut acc,
                    wi,
                    nrhs,
                )
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("apply_u");
    for &nrhs in &[1usize, 4, 8] {
        let x: Vec<f64> = (0..wi * nrhs)
            .map(|i| ((i * 11 % 19) as f64) * 0.25 + 0.5)
            .collect();
        let mut acc = vec![0.0f64; w * nrhs];
        g.bench_with_input(BenchmarkId::new("reference", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::reference::apply_u(
                    black_box(&panel),
                    w,
                    &rows_dense,
                    istart,
                    lo,
                    hi,
                    black_box(&x),
                    wi,
                    &mut acc,
                    nrhs,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked_dense", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::apply_u(
                    black_box(&panel),
                    w,
                    lo,
                    hi,
                    Targets::Dense(0),
                    black_box(&x),
                    wi,
                    &mut acc,
                    nrhs,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked_scatter", nrhs), &(), |b, _| {
            b.iter(|| {
                kernels::apply_u(
                    black_box(&panel),
                    w,
                    lo,
                    hi,
                    Targets::Scatter(&scatter_ix),
                    black_box(&x),
                    wi,
                    &mut acc,
                    nrhs,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_gemv, bench_gemm_multi_rhs, bench_trsm, bench_inverse, bench_apply
);
criterion_main!(kernels);
