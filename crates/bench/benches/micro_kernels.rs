//! Criterion micro-benchmarks of the dense block kernels every solver is
//! built on: GEMV/GEMM panels, triangular solves, diagonal-block inversion,
//! and the supernodal L-block application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparse::dense::{gemm, gemv, trsm_lower, trsm_upper, DenseMat};
use std::hint::black_box;

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(m, k) in &[(32usize, 32usize), (128, 64), (512, 96)] {
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..k).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; m];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}")),
            &(),
            |b, _| {
                b.iter(|| gemv(1.0, black_box(&a), m, k, black_box(&x), &mut y));
            },
        );
    }
    g.finish();
}

fn bench_gemm_multi_rhs(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_50rhs");
    for &(m, k) in &[(128usize, 64usize), (512, 96)] {
        let nrhs = 50;
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..k * nrhs).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.0; m * nrhs];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}")),
            &(),
            |b, _| {
                b.iter(|| gemm(1.0, black_box(&a), m, k, black_box(&x), nrhs, &mut y));
            },
        );
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    for &n in &[32usize, 96] {
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            l[j + j * n] = 2.0;
            for i in j + 1..n {
                l[i + j * n] = -0.01;
            }
        }
        let u: Vec<f64> = {
            let mut u = vec![0.0; n * n];
            for j in 0..n {
                u[j + j * n] = 2.0;
                for i in 0..j {
                    u[i + j * n] = -0.01;
                }
            }
            u
        };
        let b0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("lower", n), &(), |bch, _| {
            bch.iter(|| {
                let mut b = b0.clone();
                trsm_lower(black_box(&l), n, &mut b, 1);
                b
            });
        });
        g.bench_with_input(BenchmarkId::new("upper", n), &(), |bch, _| {
            bch.iter(|| {
                let mut b = b0.clone();
                trsm_upper(black_box(&u), n, &mut b, 1);
                b
            });
        });
    }
    g.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("diag_inverse");
    for &n in &[16usize, 48, 96] {
        let mut m = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                m.set(
                    i,
                    j,
                    if i == j {
                        4.0
                    } else {
                        -1.0 / (1.0 + (i + j) as f64)
                    },
                );
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(&m).inverse().expect("nonsingular"));
        });
    }
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_gemv, bench_gemm_multi_rhs, bench_trsm, bench_inverse
);
criterion_main!(kernels);
