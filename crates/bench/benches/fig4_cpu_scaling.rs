//! Figure 4: CPU SpTRSV time on Cori Haswell as the total MPI count
//! `P = Px·Py·Pz` varies (128…2048) for `Pz ∈ {1, 2, 4, 8, 16, 32}`,
//! baseline 3D vs proposed 3D, four matrices.
//!
//! `Pz = 1` of the proposed algorithm is the 2D communication-optimized
//! solver of [CSC'18] (red solid curve in the paper). Expected shapes:
//! the proposed algorithm beats the baseline everywhere (up to 3.45×, on
//! the s2D9pt matrix), the baseline can lose even to the 2D solver, and
//! intermediate `Pz` (≈16) is optimal.

use benchkit::{factorized, max_p, near_square, print_header, print_row, run_once};
use simgrid::MachineModel;
use sptrsv::{Algorithm, Arch};

fn main() {
    let matrices = ["s2D9pt2048", "nlpkkt80", "ldoor", "dielFilterV3real"];
    let ps: Vec<usize> = [128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|&p| p <= max_p())
        .collect();
    let pzs = [1usize, 2, 4, 8, 16, 32];
    println!("== Fig. 4: CPU SpTRSV time (s) on simulated Cori Haswell ==");
    println!("   (rows: algorithm × Pz; columns: total P; '-' = Pz > P)\n");

    let mut best_speedup_overall: Vec<(String, f64)> = Vec::new();
    for name in matrices {
        let fact = factorized(name, 32);
        println!("--- {name} ---");
        print_header(
            "alg / Pz \\ P",
            &ps.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
        );
        let mut table: Vec<Vec<Option<f64>>> = Vec::new();
        for (alg, label) in [
            (Algorithm::Baseline3d, "Baseline"),
            (Algorithm::New3d, "New"),
        ] {
            for pz in pzs {
                let mut row = Vec::new();
                for &p in &ps {
                    if p % pz != 0 {
                        row.push(None);
                        continue;
                    }
                    let (px, py) = near_square(p / pz);
                    let m = run_once(
                        &fact,
                        MachineModel::cori_haswell(),
                        alg,
                        Arch::Cpu,
                        px,
                        py,
                        pz,
                        1,
                    );
                    row.push(Some(m.out.makespan));
                }
                print_row(&format!("{label} Pz={pz}"), &row);
                table.push(row);
            }
        }
        // Headline: max speedup of New over Baseline at matched (P, Pz).
        let half = table.len() / 2;
        let mut best = 0.0f64;
        for r in 0..half {
            for (c, &base) in table[r].iter().enumerate().take(ps.len()) {
                if let (Some(b), Some(n)) = (base, table[half + r][c]) {
                    best = best.max(b / n);
                }
            }
        }
        println!("max speedup New vs Baseline (matched P, Pz): {best:.2}x\n");
        best_speedup_overall.push((name.to_string(), best));
    }

    println!("== headline (paper: up to 3.45x on s2D9pt2048, 1.87x nlpkkt80, 1.13x ldoor, 1.98x dielFilterV3real) ==");
    for (name, s) in &best_speedup_overall {
        println!("  {name}: {s:.2}x");
    }
    // Shape check: at its best matched configuration the proposed algorithm
    // must at worst tie the baseline (the paper reports 1.13x-3.45x; our
    // scaled-down analogs compress the margins - see EXPERIMENTS.md).
    assert!(
        best_speedup_overall.iter().all(|(_, s)| *s >= 0.9),
        "the proposed algorithm must not materially lose to the baseline at its best point"
    );
    let top = best_speedup_overall
        .iter()
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    assert!(
        top >= 1.25,
        "at least one matrix must show a clear win for the proposed algorithm (got {top:.2}x)"
    );
}
