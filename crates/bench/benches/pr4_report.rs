//! PR 4 acceptance report: kernel speedups and hot-solve regression.
//!
//! Plain (non-criterion) harness that writes `BENCH_pr4.json` at the
//! workspace root with the two numbers the zero-copy/precompiled-kernel
//! rework is gated on:
//!
//! * `apply_l`/`apply_u` blocked-vs-reference throughput at nrhs 1/4/8 —
//!   the blocked kernels must be >= 2x at nrhs >= 4 (the reference scalar
//!   loops are still in-tree as `kernels::reference`, so "before" is
//!   measured live, not replayed from a file);
//! * the 20-solve hot loop of a planned [`sptrsv::Solver3d`] against the
//!   per-solve median recorded on the pre-change commit — the rework must
//!   not regress solve-many by more than 2%.
//!
//! Run with `cargo bench -p sptrsv-bench --bench pr4_report`.

use ordering::SymbolicOptions;
use sptrsv::kernels::{self, Targets};
use sptrsv::{Solver3d, SolverConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Per-solve best of the planned hot loop measured on the commit before
/// this rework with this exact loop (5 reps of 20 solves, min), same
/// fixture and machine model. Repeated runs: 12.826 / 12.821 / 12.997 ms.
const BASELINE_HOT_SOLVE_MS: f64 = 12.82;

/// Min-of-`reps` wall time for `iters` calls of `f`, in seconds. The
/// minimum is the noise-robust statistic for a throughput gate: every
/// source of interference only ever adds time.
fn time_best<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

struct KernelRow {
    kernel: &'static str,
    nrhs: usize,
    ref_ns: f64,
    blocked_ns: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.blocked_ns
    }
}

fn bench_kernels() -> Vec<KernelRow> {
    // A root-separator-scale block — 512-row panel of a 512-wide
    // supernode (2 MB, past L2), 448 block rows into a 512-wide target.
    // The top separators are where supernodal solves spend their flops,
    // and the panel re-reads the reference makes per rhs are the traffic
    // the blocked kernels exist to remove.
    let (r, w, wi, lo, len) = (512usize, 512usize, 512usize, 32usize, 448usize);
    let hi = lo + len;
    let istart = 1000usize;
    let panel: Vec<f64> = (0..r * w).map(|i| ((i * 37 % 101) as f64) - 50.0).collect();
    let mut rows = vec![0u32; r];
    for q in 0..len {
        rows[lo + q] = (istart + q) as u32;
    }
    let (reps, iters) = (7, 60);

    let mut out = Vec::new();
    for &nrhs in &[1usize, 4, 8] {
        let y: Vec<f64> = (0..w * nrhs)
            .map(|i| ((i * 13 % 17) as f64) * 0.25 + 0.5)
            .collect();
        let x: Vec<f64> = (0..wi * nrhs)
            .map(|i| ((i * 11 % 19) as f64) * 0.25 + 0.5)
            .collect();
        let mut acc_l = vec![0.0f64; wi * nrhs];
        let mut acc_u = vec![0.0f64; w * nrhs];

        let ref_l = time_best(reps, iters, || {
            kernels::reference::apply_l(
                black_box(&panel),
                r,
                &rows,
                istart,
                lo,
                hi,
                black_box(&y),
                w,
                &mut acc_l,
                wi,
                nrhs,
            );
        });
        let blk_l = time_best(reps, iters, || {
            kernels::apply_l(
                black_box(&panel),
                r,
                lo,
                hi,
                Targets::Dense(0),
                black_box(&y),
                w,
                &mut acc_l,
                wi,
                nrhs,
            );
        });
        out.push(KernelRow {
            kernel: "apply_l",
            nrhs,
            ref_ns: ref_l * 1e9,
            blocked_ns: blk_l * 1e9,
        });

        let ref_u = time_best(reps, iters, || {
            kernels::reference::apply_u(
                black_box(&panel),
                w,
                &rows,
                istart,
                lo,
                hi,
                black_box(&x),
                wi,
                &mut acc_u,
                nrhs,
            );
        });
        let blk_u = time_best(reps, iters, || {
            kernels::apply_u(
                black_box(&panel),
                w,
                lo,
                hi,
                Targets::Dense(0),
                black_box(&x),
                wi,
                &mut acc_u,
                nrhs,
            );
        });
        out.push(KernelRow {
            kernel: "apply_u",
            nrhs,
            ref_ns: ref_u * 1e9,
            blocked_ns: blk_u * 1e9,
        });
    }
    out
}

/// Per-solve seconds of the 20-solve planned hot loop (micro_schedule's
/// solve-many fixture: 1024-dof 9-point Poisson on a 2x2x4 grid).
fn bench_hot_solve() -> f64 {
    let a = sparse::gen::poisson2d_9pt(32, 32);
    let f = Arc::new(lufactor::factorize(&a, 4, &SymbolicOptions::default()).unwrap());
    let b = sparse::gen::standard_rhs(a.nrows(), 1);
    let cfg = SolverConfig {
        px: 2,
        py: 2,
        pz: 4,
        nrhs: 1,
        algorithm: sptrsv::Algorithm::New3d,
        arch: sptrsv::Arch::Cpu,
        machine: simgrid::MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);
    // Warm up: plan + schedule compile + arena/ledger sizing.
    black_box(solver.solve(&b, 1));

    (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..20 {
                black_box(solver.solve(&b, 1));
            }
            t.elapsed().as_secs_f64() / 20.0
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    // `cargo bench` passes harness flags (e.g. --bench); accept and ignore.
    // Hot solve first: the kernel spins heat the core and would bias the
    // solve loop against the (cool-start) recorded baseline.
    let hot_s = bench_hot_solve();
    let kernel_rows = bench_kernels();
    let hot_ms = hot_s * 1e3;
    let regression = hot_ms / BASELINE_HOT_SOLVE_MS - 1.0;

    let mut kernels_json = String::new();
    let mut kernels_ok = true;
    for (i, row) in kernel_rows.iter().enumerate() {
        if i > 0 {
            kernels_json.push(',');
        }
        let sp = row.speedup();
        if row.nrhs >= 4 && sp < 2.0 {
            kernels_ok = false;
        }
        kernels_json.push_str(&format!(
            "\n    {{\"kernel\": \"{}\", \"nrhs\": {}, \"reference_ns\": {:.1}, \
             \"blocked_ns\": {:.1}, \"speedup\": {:.2}}}",
            row.kernel, row.nrhs, row.ref_ns, row.blocked_ns, sp
        ));
        eprintln!(
            "{:8} nrhs={}  reference {:8.1} ns  blocked {:8.1} ns  speedup {:.2}x",
            row.kernel, row.nrhs, row.ref_ns, row.blocked_ns, sp
        );
    }
    eprintln!(
        "hot solve (planned, 20-solve loop): {hot_ms:.2} ms/solve \
         (baseline {BASELINE_HOT_SOLVE_MS:.2} ms, {:+.1}%)",
        regression * 100.0
    );

    let solve_ok = regression < 0.02;
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"kernels\": [{kernels_json}\n  ],\n  \
         \"kernel_speedup_ok\": {kernels_ok},\n  \
         \"hot_solve\": {{\"baseline_ms\": {BASELINE_HOT_SOLVE_MS}, \
         \"measured_ms\": {hot_ms:.3}, \"regression\": {regression:.4}, \
         \"ok\": {solve_ok}}}\n}}\n"
    );
    // Workspace root (bench runs with the package as cwd).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(path, &json).expect("write BENCH_pr4.json");
    eprintln!("wrote {path}");

    assert!(
        kernels_ok,
        "blocked apply kernels are below the 2x floor at nrhs >= 4"
    );
    // The acceptance figure is <2% (`hot_solve.ok` above); the hard fail
    // sits at 5% so whole-run interference on shared runners doesn't
    // flake the gate while a real regression still aborts it.
    assert!(
        regression < 0.05,
        "hot solve regressed {:.1}% (hard floor is 5%)",
        regression * 100.0
    );
}
