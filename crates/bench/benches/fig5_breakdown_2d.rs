//! Figure 5: time breakdown (Z-Comm / XY-Comm / FP-Operation, averaged over
//! ranks) of the s2D9pt2048 analog, baseline vs proposed 3D SpTRSV, on
//! simulated Cori Haswell.
//!
//! Expected shapes (paper): the proposed algorithm's sparse allreduce
//! slashes Z-Comm, particularly at large `Pz`; the communication trees cut
//! XY-Comm at large `Px·Py`; the replicated FP operations rise with `Pz`
//! but stay a small fraction of the total.

fn main() {
    println!("== Fig. 5: time breakdown, 2D-PDE matrix (s2D9pt analog) ==\n");
    benchkit::breakdown_figure("s2D9pt2048");
}
