//! Figure 7: load balance of the L/U solve phases for the s2D9pt2048
//! analog at P = 128 and P = 1024 (error bars = min/max over ranks, Z-Comm
//! excluded). Paper: both algorithms show reasonable balance on the 2D-PDE
//! matrix.

fn main() {
    println!("== Fig. 7: load balance, 2D-PDE matrix (s2D9pt analog) ==\n");
    benchkit::load_balance_figure("s2D9pt2048");
}
