//! Ablation of the paper's three communication strategies (DESIGN.md §4):
//!
//! * (a) binary communication trees vs flat intra-grid communication
//!   (`New3d` vs `New3dFlat`),
//! * (b) sparse allreduce vs naive per-node dense allreduce
//!   (`New3d` vs `New3dNaiveAllreduce`),
//! * (c) one inter-grid synchronization + replicated computation vs the
//!   baseline's `O(log Pz)` synchronizations (`New3d*` vs `Baseline3d`).
//!
//! Reports simulated time plus message/byte counts per category so each
//! strategy's mechanism is visible, not just its outcome.

use benchkit::{factorized, max_p, near_square, run_once};
use simgrid::{Category, MachineModel};
use sptrsv::{Algorithm, Arch};

fn main() {
    println!("== Ablation: communication strategies of the proposed 3D SpTRSV ==\n");
    let fact = factorized("s2D9pt2048", 16);
    let p = 512.min(max_p());
    println!(
        "{:<28} {:>4} {:>12} {:>9} {:>10} {:>9} {:>10}",
        "variant", "Pz", "time (s)", "XY msgs", "XY bytes", "Z msgs", "Z bytes"
    );
    let mut sparse_z_bytes = u64::MAX;
    let mut naive_z = (0u64, 0u64);
    let mut tree_time = f64::NAN;
    let mut flat_time = f64::NAN;
    for pz in [4usize, 16] {
        let (px, py) = near_square(p / pz);
        for (alg, label) in [
            (Algorithm::New3d, "trees + sparse allreduce"),
            (Algorithm::New3dFlat, "flat comm + sparse allreduce"),
            (Algorithm::New3dNaiveAllreduce, "trees + naive allreduce"),
            (Algorithm::Baseline3d, "baseline [ICS'19]"),
        ] {
            let m = run_once(
                &fact,
                MachineModel::cori_haswell(),
                alg,
                Arch::Cpu,
                px,
                py,
                pz,
                1,
            );
            let xym = m
                .out
                .stats
                .iter()
                .map(|s| s.msgs_sent[Category::XyComm as usize])
                .sum::<u64>();
            let xyb = m
                .out
                .stats
                .iter()
                .map(|s| s.bytes_sent[Category::XyComm as usize])
                .sum::<u64>();
            let zm = m
                .out
                .stats
                .iter()
                .map(|s| s.msgs_sent[Category::ZComm as usize])
                .sum::<u64>();
            let zb = m
                .out
                .stats
                .iter()
                .map(|s| s.bytes_sent[Category::ZComm as usize])
                .sum::<u64>();
            println!(
                "{label:<28} {pz:>4} {:>12.4e} {xym:>9} {xyb:>10} {zm:>9} {zb:>10}",
                m.out.makespan
            );
            if pz == 16 {
                match alg {
                    Algorithm::New3d => {
                        sparse_z_bytes = zb;
                        tree_time = m.out.makespan;
                    }
                    Algorithm::New3dFlat => flat_time = m.out.makespan,
                    Algorithm::New3dNaiveAllreduce => naive_z = (zm, zb),
                    _ => {}
                }
            }
        }
        println!();
    }
    println!(
        "sparse allreduce Z bytes {sparse_z_bytes} vs naive {} ({} msgs)",
        naive_z.1, naive_z.0
    );
    println!("tree vs flat time at Pz=16: {tree_time:.4e} vs {flat_time:.4e}");
    assert!(
        sparse_z_bytes <= naive_z.1,
        "the sparse allreduce must move no more inter-grid bytes than the naive one"
    );
}
