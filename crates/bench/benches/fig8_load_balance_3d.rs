//! Figure 8: load balance of the L/U solve phases for the nlpkkt80 analog.
//!
//! Paper: "When Pz is large, the baseline code shows large imbalance, while
//! the proposed code shows good balance. Although the proposed code shows
//! increased CPU time averaged over the ranks due to duplicated
//! computation, it still achieves decreased overall CPU time, which is the
//! maximum over the ranks." The baseline's imbalance comes from idle grids:
//! only the smallest grid of each subtree stays active up the tree.

fn main() {
    println!("== Fig. 8: load balance, 3D-PDE matrix (nlpkkt80 analog) ==\n");
    let rows = benchkit::load_balance_figure("nlpkkt80");
    // The baseline's worst max/mean imbalance at large Pz must exceed the
    // proposed algorithm's (idle grids vs replicated work).
    let worst = |lbl: &str| {
        rows.iter()
            .filter(|(a, pz, _, _, _)| *a == lbl && *pz >= 16)
            .map(|(_, _, _, _, r)| *r)
            .fold(0.0f64, f64::max)
    };
    let (b, n) = (worst("Baseline"), worst("New"));
    println!("\nworst max/mean imbalance at Pz >= 16: baseline {b:.2} vs proposed {n:.2}");
    assert!(
        b > n,
        "the baseline's idle grids must show worse imbalance than the proposed algorithm"
    );
}
