//! PR 9 acceptance report: sparsity-aware inter-grid exchange.
//!
//! Plain (non-criterion) harness that writes `BENCH_pr9.json` at the
//! workspace root. Sweeps `Pz ∈ {2, 4, 8, 16}` over three structural
//! regimes on a `2 × 2 × Pz` grid:
//!
//! * `banded`         — long narrow band: every replicated ancestor stays
//!   live, so all the trim can win is round elision (ownership-empty
//!   binomial rounds that the dense layout ships as header-only
//!   messages),
//! * `rmat`           — power-law graph: uneven separators leave many
//!   ancestors with no live contributor below, so pack lists really
//!   shrink,
//! * `blocked_random` — bushy block-sparse coupling: a middle ground
//!   with a few dead ancestors plus elidable rounds.
//!
//! For each cell it solves the same system under the live-trimmed and
//! the dense (pre-trim ablation) exchange layouts on the simulator and
//! records bytes-on-wire (`Category::ZComm`, envelopes included),
//! message counts, the `comm.z.bytes`/`comm.z.bytes_saved` counters,
//! the schedule-predicted exchange volume, the measured makespan, and
//! the critical-path z-exchange attribution (DESIGN.md §15).
//!
//! The report fails unless
//!
//! 1. the trimmed layout moves strictly fewer inter-grid bytes than the
//!    dense layout in **every** cell,
//! 2. `x` is bit-identical across layouts in every cell (and matches
//!    the sequential reference),
//! 3. in the deep `1 × 1 × Pz` dive (`Pz ∈ {8, 16}`, the matrices whose
//!    pack lists shrink) the trimmed makespan beats the dense makespan
//!    and the dense critical path attributes nonzero stall time to
//!    z-exchange rounds — the measured win lands exactly where the trim
//!    aims. (The trimmed run's own z-wait may redistribute: removing
//!    bytes re-routes the path, it does not pin its stalls.)
//!
//! Run with `cargo bench -p sptrsv-bench --bench pr9_report`.
//! `SPTRSV_SCALE=tiny` shrinks the matrices for smoke runs (CI).

use ordering::SymbolicOptions;
use simgrid::{Category, MachineModel};
use sparse::gen::{self, Scale};
use sptrsv::analysis::predict_new3d_volume;
use sptrsv::{critical_path, solve_traced, Algorithm, Arch, Plan, SolverConfig, ZTrim};
use std::sync::Arc;

const GRID_XY: (usize, usize) = (2, 2);
const PZ_SWEEP: [usize; 4] = [2, 4, 8, 16];
const NRHS: usize = 2;

struct Cell {
    matrix: &'static str,
    n: usize,
    pz: usize,
    z_bytes_live: u64,
    z_bytes_dense: u64,
    z_msgs_live: u64,
    z_msgs_dense: u64,
    bytes_saved_counter: u64,
    predicted_z_bytes_live: u64,
    makespan_live: f64,
    makespan_dense: f64,
    z_wait_live: f64,
    z_wait_dense: f64,
}

struct LayoutRun {
    x: Vec<f64>,
    z_bytes: u64,
    z_msgs: u64,
    bytes_counter: u64,
    saved_counter: u64,
    makespan: f64,
    z_wait: f64,
}

fn run_layout(plan: &Arc<Plan>, b: &[f64], cfg: &SolverConfig) -> LayoutRun {
    let out = solve_traced(plan, b, cfg, true);
    let z_bytes = out
        .stats
        .iter()
        .map(|s| s.bytes_sent[Category::ZComm as usize])
        .sum();
    let z_msgs = out
        .stats
        .iter()
        .map(|s| s.msgs_sent[Category::ZComm as usize])
        .sum();
    let cp = critical_path(&out.traces, out.makespan);
    LayoutRun {
        z_bytes,
        z_msgs,
        bytes_counter: out.metrics.counter("comm.z.bytes"),
        saved_counter: out.metrics.counter("comm.z.bytes_saved"),
        makespan: out.makespan,
        z_wait: cp.z_exchange_wait,
        x: out.x,
    }
}

fn main() {
    let tiny = benchkit::scale() == Scale::Tiny;
    let (px, py) = GRID_XY;
    let matrices: [(&'static str, sparse::CsrMatrix); 3] = if tiny {
        [
            ("banded", gen::banded(256, 3, 1)),
            ("rmat", gen::rmat(8, 8, 7)),
            ("blocked_random", gen::blocked_random(32, 8, 0.05, 5)),
        ]
    } else {
        [
            ("banded", gen::banded(1024, 4, 1)),
            ("rmat", gen::rmat(10, 8, 7)),
            ("blocked_random", gen::blocked_random(32, 16, 0.05, 5)),
        ]
    };

    let mut cells: Vec<Cell> = Vec::new();
    let mut shrink_ok = true;
    let mut deep_pz_ok = true;
    for (name, a) in &matrices {
        let n = a.nrows();
        println!("== {name} (n = {n}) ==");
        println!(
            "{:>4} {:>12} {:>12} {:>8} {:>7} {:>7} {:>12} {:>12} {:>10} {:>10}",
            "Pz",
            "live bytes",
            "dense bytes",
            "saved",
            "msgs L",
            "msgs D",
            "live time",
            "dense time",
            "zwait L",
            "zwait D"
        );
        for &pz in &PZ_SWEEP {
            let f = Arc::new(factorize_for(a, pz));
            let b = gen::standard_rhs(n, NRHS);
            let want = f.solve(&b, NRHS);
            let cfg = SolverConfig {
                px,
                py,
                pz,
                nrhs: NRHS,
                algorithm: Algorithm::New3d,
                arch: Arch::Cpu,
                // A bandwidth-constrained interconnect: the regime the
                // paper's communication optimizations target, where the
                // inter-grid exchange sits on the critical path and the
                // trim's byte cut is visible in the makespan (on
                // Cori-class networks these tiny systems are entirely
                // compute-bound and both layouts tie).
                machine: MachineModel::uniform("thin-net", 2e9, 4e-6, 2e8, 4),
                chaos_seed: 0,
                fault: Default::default(),
                backend: Default::default(),
                executor: Default::default(),
            };
            let live_plan = Arc::new(Plan::with_trim(Arc::clone(&f), px, py, pz, ZTrim::Live));
            let dense_plan = Arc::new(Plan::with_trim(Arc::clone(&f), px, py, pz, ZTrim::Dense));
            let live = run_layout(&live_plan, &b, &cfg);
            let dense = run_layout(&dense_plan, &b, &cfg);

            // Numerics: bit-identity across layouts, accuracy vs reference.
            assert!(
                live.x
                    .iter()
                    .zip(&dense.x)
                    .all(|(l, d)| l.to_bits() == d.to_bits()),
                "{name}/pz{pz}: x differs between live and dense exchange layouts"
            );
            let diff = sparse::max_abs_diff(&live.x, &want);
            assert!(
                diff < 1e-8,
                "{name}/pz{pz}: trimmed solve off the sequential reference by {diff:e}"
            );
            // The analytic predictor walks the same trimmed schedule the
            // executors interpret; on a clean simulator both must agree
            // exactly (the predictor counts payload, the wire adds a
            // 64-byte envelope per message).
            let predicted = predict_new3d_volume(&live_plan, NRHS).z_bytes;
            assert_eq!(
                predicted,
                live.z_bytes - 64 * live.z_msgs,
                "{name}/pz{pz}: predicted exchange volume disagrees with the simulator"
            );

            println!(
                "{pz:>4} {:>12} {:>12} {:>8} {:>7} {:>7} {:>12.4e} {:>12.4e} {:>10.3e} {:>10.3e}",
                live.z_bytes,
                dense.z_bytes,
                live.saved_counter,
                live.z_msgs,
                dense.z_msgs,
                live.makespan,
                dense.makespan,
                live.z_wait,
                dense.z_wait
            );
            if live.z_bytes >= dense.z_bytes {
                println!(
                    "  GATE FAIL: {name}/pz{pz} live layout moved {} z bytes vs dense {}",
                    live.z_bytes, dense.z_bytes
                );
                shrink_ok = false;
            }
            debug_assert_eq!(live.bytes_counter, 0); // sim counts via stats
            cells.push(Cell {
                matrix: name,
                n,
                pz,
                z_bytes_live: live.z_bytes,
                z_bytes_dense: dense.z_bytes,
                z_msgs_live: live.z_msgs,
                z_msgs_dense: dense.z_msgs,
                bytes_saved_counter: live.saved_counter,
                predicted_z_bytes_live: predicted,
                makespan_live: live.makespan,
                makespan_dense: dense.makespan,
                z_wait_live: live.z_wait,
                z_wait_dense: dense.z_wait,
            });
        }
        println!();
    }

    // Deep-Pz exchange dive: pure-Z `1 × 1 × Pz` layouts of the two
    // regimes whose pack lists actually shrink (banded factors keep every
    // ancestor live, so they have no payload to cut — their win above is
    // elided rounds). With no intra-grid traffic, every communication
    // stall IS a z-exchange round, so the critical-path engine's
    // `z_exchange_wait` cleanly attributes what the trim buys: the
    // trimmed makespan must beat the dense one at Pz >= 8, with the
    // attributed exchange wait shrinking alongside the bytes.
    const DEEP_NRHS: usize = 8;
    let mut deep: Vec<Cell> = Vec::new();
    for (name, a) in &matrices {
        if *name == "banded" {
            continue;
        }
        let n = a.nrows();
        println!("== deep 1x1xPz dive: {name} (n = {n}, nrhs = {DEEP_NRHS}) ==");
        for pz in [8usize, 16] {
            let f = Arc::new(factorize_for(a, pz));
            let b = gen::standard_rhs(n, DEEP_NRHS);
            let cfg = SolverConfig {
                px: 1,
                py: 1,
                pz,
                nrhs: DEEP_NRHS,
                algorithm: Algorithm::New3d,
                arch: Arch::Cpu,
                // Thinner still than the sweep's interconnect: the dive
                // must stay exchange-bound at the full-scale matrix
                // sizes too, so the stalls the trim removes are visible.
                machine: MachineModel::uniform("thin-net-deep", 2e9, 4e-6, 2e7, 4),
                chaos_seed: 0,
                fault: Default::default(),
                backend: Default::default(),
                executor: Default::default(),
            };
            let live_plan = Arc::new(Plan::with_trim(Arc::clone(&f), 1, 1, pz, ZTrim::Live));
            let dense_plan = Arc::new(Plan::with_trim(Arc::clone(&f), 1, 1, pz, ZTrim::Dense));
            let live = run_layout(&live_plan, &b, &cfg);
            let dense = run_layout(&dense_plan, &b, &cfg);
            assert!(
                live.x
                    .iter()
                    .zip(&dense.x)
                    .all(|(l, d)| l.to_bits() == d.to_bits()),
                "deep {name}/pz{pz}: x differs between live and dense exchange layouts"
            );
            println!(
                "  pz {pz:>2}: bytes {} -> {}  makespan {:.4e}s -> {:.4e}s  \
                 z-wait {:.3e}s -> {:.3e}s",
                dense.z_bytes,
                live.z_bytes,
                dense.makespan,
                live.makespan,
                dense.z_wait,
                live.z_wait
            );
            if live.z_bytes >= dense.z_bytes
                || live.makespan >= dense.makespan
                || dense.z_wait <= 0.0
            {
                println!(
                    "  GATE FAIL: deep {name}/pz{pz} exchange win missing \
                     (live {:.4e}s / z-wait {:.3e}s vs dense {:.4e}s / z-wait {:.3e}s)",
                    live.makespan, live.z_wait, dense.makespan, dense.z_wait
                );
                deep_pz_ok = false;
            }
            deep.push(Cell {
                matrix: name,
                n,
                pz,
                z_bytes_live: live.z_bytes,
                z_bytes_dense: dense.z_bytes,
                z_msgs_live: live.z_msgs,
                z_msgs_dense: dense.z_msgs,
                bytes_saved_counter: live.saved_counter,
                predicted_z_bytes_live: predict_new3d_volume(&live_plan, DEEP_NRHS).z_bytes,
                makespan_live: live.makespan,
                makespan_dense: dense.makespan,
                z_wait_live: live.z_wait,
                z_wait_dense: dense.z_wait,
            });
        }
        println!();
    }

    let rows = |cells: &[Cell]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"matrix\": \"{}\", \"n\": {}, \"pz\": {}, \
                 \"z_bytes_live\": {}, \"z_bytes_dense\": {}, \
                 \"z_msgs_live\": {}, \"z_msgs_dense\": {}, \
                 \"bytes_saved_counter\": {}, \"predicted_z_bytes_live\": {}, \
                 \"makespan_live\": {:.6e}, \"makespan_dense\": {:.6e}, \
                 \"z_wait_live\": {:.6e}, \"z_wait_dense\": {:.6e}}}",
                c.matrix,
                c.n,
                c.pz,
                c.z_bytes_live,
                c.z_bytes_dense,
                c.z_msgs_live,
                c.z_msgs_dense,
                c.bytes_saved_counter,
                c.predicted_z_bytes_live,
                c.makespan_live,
                c.makespan_dense,
                c.z_wait_live,
                c.z_wait_dense
            ));
        }
        s
    };
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"grid_xy\": \"{px}x{py}\",\n  \"nrhs\": {NRHS},\n  \
         \"pz_sweep\": {PZ_SWEEP:?},\n  \"scenarios\": [{}\n  ],\n  \
         \"deep_1x1xpz\": [{}\n  ],\n  \
         \"bytes_shrink_everywhere\": {shrink_ok},\n  \
         \"deep_pz_exchange_win\": {deep_pz_ok}\n}}\n",
        rows(&cells),
        rows(&deep)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    std::fs::write(path, &json).expect("write BENCH_pr9.json");
    println!("wrote {path}");

    assert!(
        shrink_ok,
        "exchange-trim gate failed: the live layout must move strictly fewer \
         inter-grid bytes than the dense layout in every swept scenario"
    );
    assert!(
        deep_pz_ok,
        "deep-Pz gate failed: at Pz >= 8 the trimmed layout must beat the dense \
         makespan with the critical path attributing stall time to z-exchange rounds"
    );
}

fn factorize_for(a: &sparse::CsrMatrix, pz: usize) -> lufactor::Factorized {
    lufactor::factorize(a, pz, &SymbolicOptions::default())
        .unwrap_or_else(|e| panic!("factorize at pz = {pz}: {e:?}"))
}
