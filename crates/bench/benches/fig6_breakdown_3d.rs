//! Figure 6: time breakdown (Z-Comm / XY-Comm / FP-Operation, averaged over
//! ranks) of the nlpkkt80 analog — the 3D-PDE regime, where replicated
//! computation and intra-grid communication grow asymptotically with `Pz`
//! (paper §4.1: "the increased intra-grid communication for large Pz leads
//! to worse 3D SpTRSV performance").

fn main() {
    println!("== Fig. 6: time breakdown, 3D-PDE matrix (nlpkkt80 analog) ==\n");
    let rows = benchkit::breakdown_figure("nlpkkt80");
    // 3D-regime check: the proposed algorithm's FP time grows with Pz
    // (replicated separator work), unlike the 2D case where it stays flat.
    let new_fp: Vec<(usize, f64)> = rows
        .iter()
        .filter(|r| r.algorithm == "New")
        .map(|r| (r.pz, r.fp))
        .collect();
    let lo = new_fp
        .iter()
        .filter(|(pz, _)| *pz == 1)
        .map(|(_, f)| *f)
        .fold(0.0, f64::max);
    let hi = new_fp.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    println!(
        "replicated FP growth (max over configs / Pz=1): {:.2}x",
        hi / lo
    );
    assert!(
        hi > lo,
        "3D-PDE regime must show replicated-computation growth"
    );
}
