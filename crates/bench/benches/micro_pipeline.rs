//! Criterion micro-benchmarks of the analysis/factorization pipeline and
//! the distributed-solve primitives: nested dissection, symbolic analysis,
//! numeric factorization, tree construction, and one full simulated solve.

use criterion::{criterion_group, criterion_main, Criterion};
use ordering::{Graph, NdOptions, SymbolicOptions};
use std::hint::black_box;
use std::sync::Arc;

fn bench_nested_dissection(c: &mut Criterion) {
    let a = sparse::gen::poisson2d_9pt(48, 48);
    let g = Graph::from_csr_pattern(&a);
    c.bench_function("nested_dissection_2304", |b| {
        b.iter(|| ordering::nd::nested_dissection(black_box(&g), &NdOptions::default()));
    });
}

fn bench_symbolic(c: &mut Criterion) {
    let a = sparse::gen::poisson2d_9pt(48, 48);
    let (nd, _) = ordering::analyze(&a, 1, &SymbolicOptions::default());
    let pa = a.permute_sym(&nd.perm);
    c.bench_function("symbolic_factorization_2304", |b| {
        b.iter(|| {
            ordering::SymbolicLU::analyze(black_box(&pa), &nd.tree, &SymbolicOptions::default())
        });
    });
}

fn bench_numeric_factor(c: &mut Criterion) {
    let a = sparse::gen::poisson2d_9pt(48, 48);
    c.bench_function("numeric_lu_2304", |b| {
        b.iter(|| lufactor::factorize(black_box(&a), 1, &SymbolicOptions::default()).unwrap());
    });
}

fn bench_reference_solve(c: &mut Criterion) {
    let a = sparse::gen::poisson2d_9pt(48, 48);
    let f = lufactor::factorize(&a, 1, &SymbolicOptions::default()).unwrap();
    let b0 = sparse::gen::standard_rhs(a.nrows(), 1);
    c.bench_function("reference_lu_solve_2304", |b| {
        b.iter(|| f.solve(black_box(&b0), 1));
    });
}

fn bench_tree_links(c: &mut Criterion) {
    let members: Vec<usize> = (0..64).collect();
    c.bench_function("tree_links_64", |b| {
        b.iter(|| {
            for me in 0..64 {
                black_box(sptrsv::solve2d::tree_links(&members, me, true));
            }
        });
    });
}

fn bench_simulated_solve(c: &mut Criterion) {
    let a = sparse::gen::poisson2d_9pt(32, 32);
    let f = Arc::new(lufactor::factorize(&a, 4, &SymbolicOptions::default()).unwrap());
    let b0 = sparse::gen::standard_rhs(a.nrows(), 1);
    let cfg = sptrsv::SolverConfig {
        px: 2,
        py: 2,
        pz: 4,
        nrhs: 1,
        algorithm: sptrsv::Algorithm::New3d,
        arch: sptrsv::Arch::Cpu,
        machine: simgrid::MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    c.bench_function("simulated_new3d_16ranks_1024", |b| {
        b.iter(|| sptrsv::solve_distributed(black_box(&f), &b0, &cfg));
    });
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_nested_dissection, bench_symbolic, bench_numeric_factor, bench_reference_solve, bench_tree_links, bench_simulated_solve
);
criterion_main!(pipeline);
