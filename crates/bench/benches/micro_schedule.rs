//! Criterion micro-benchmarks of the "compile once, solve many" split:
//! how much one-time work planning + schedule compilation costs, and how
//! much the hot solve path gains from skipping it. The final group prints
//! the measured solve-many speedup of a planned [`sptrsv::Solver3d`] over
//! replanning with `solve_distributed` on every call.

use criterion::{criterion_group, criterion_main, Criterion};
use ordering::SymbolicOptions;
use sptrsv::schedule::{Schedule, ScheduleKey};
use sptrsv::{Plan, Solver3d, SolverConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const KEY: ScheduleKey = ScheduleKey {
    baseline: false,
    tree_comm: true,
};

fn fixture() -> (Arc<lufactor::Factorized>, Vec<f64>, SolverConfig) {
    let a = sparse::gen::poisson2d_9pt(32, 32);
    let f = Arc::new(lufactor::factorize(&a, 4, &SymbolicOptions::default()).unwrap());
    let b = sparse::gen::standard_rhs(a.nrows(), 1);
    let cfg = SolverConfig {
        px: 2,
        py: 2,
        pz: 4,
        nrhs: 1,
        algorithm: sptrsv::Algorithm::New3d,
        arch: sptrsv::Arch::Cpu,
        machine: simgrid::MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    (f, b, cfg)
}

/// One-time cost: 3D layout + grid membership.
fn bench_plan_build(c: &mut Criterion) {
    let (f, _, _) = fixture();
    c.bench_function("plan_build_16ranks_1024", |b| {
        b.iter(|| Plan::new(black_box(Arc::clone(&f)), 2, 2, 4));
    });
}

/// One-time cost: compiling the full communication-schedule IR for a
/// prebuilt plan (all tree links, fmod counters, pack layouts).
fn bench_schedule_compile(c: &mut Criterion) {
    let (f, _, _) = fixture();
    let plan = Plan::new(f, 2, 2, 4);
    c.bench_function("schedule_compile_16ranks_1024", |b| {
        b.iter(|| Schedule::compile(black_box(&plan), KEY));
    });
}

/// Hot path: a planned solver's solve (zero schedule setup) vs replanning
/// everything on each call.
fn bench_solve_paths(c: &mut Criterion) {
    let (f, b0, cfg) = fixture();
    let solver = Solver3d::new(Arc::clone(&f), cfg.clone());
    c.bench_function("solve_hot_planned_16ranks_1024", |b| {
        b.iter(|| solver.solve(black_box(&b0), 1));
    });
    c.bench_function("solve_cold_replanned_16ranks_1024", |b| {
        b.iter(|| sptrsv::solve_distributed(black_box(&f), &b0, &cfg));
    });
}

/// Report the solve-many amortization directly: wall time of N solves
/// through one planned solver vs N replanned solves.
fn report_solve_many_speedup(c: &mut Criterion) {
    let (f, b0, cfg) = fixture();
    let n = 20;
    let solver = Solver3d::new(Arc::clone(&f), cfg.clone());
    let t = Instant::now();
    for _ in 0..n {
        black_box(solver.solve(&b0, 1));
    }
    let hot = t.elapsed();
    let t = Instant::now();
    for _ in 0..n {
        black_box(sptrsv::solve_distributed(&f, &b0, &cfg));
    }
    let cold = t.elapsed();
    println!(
        "solve-many ({n} solves): planned {hot:.2?} vs replanned {cold:.2?} \
         -> {:.2}x speedup from the compiled schedule",
        cold.as_secs_f64() / hot.as_secs_f64()
    );
    // Keep criterion happy with a trivial registered benchmark so the
    // group runs this reporter exactly once.
    c.bench_function("schedule_cache_hit", |b| {
        let plan = solver.plan();
        b.iter(|| black_box(plan.schedule(KEY)));
    });
}

criterion_group!(
    name = schedule;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_plan_build, bench_schedule_compile, bench_solve_paths, report_solve_many_speedup
);
criterion_main!(schedule);
