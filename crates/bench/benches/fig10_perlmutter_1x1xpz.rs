//! Figure 10: the proposed 3D SpTRSV on simulated Perlmutter (NVIDIA A100)
//! with `1 × 1 × Pz` layouts, `Pz = 1…64`, CPU vs GPU ranks, 1 and 50 RHS.
//!
//! Paper headline: CPU→GPU speedups up to 6.5× / 4.6× / 4.8× / 5× (1 RHS)
//! and 5.2× / 3.7× / 4.1× / 4× (50 RHS) — notably higher than Crusher
//! (lower GPU software overheads on the NVIDIA stack).

fn main() {
    println!("== Fig. 10: Perlmutter 1x1xPz, CPU vs GPU, proposed 3D SpTRSV ==\n");
    let best = benchkit::gpu_1x1xpz_figure(
        simgrid::MachineModel::perlmutter_gpu(),
        &[
            "s1_mat_0_253872",
            "s2D9pt2048",
            "nlpkkt80",
            "dielFilterV3real",
        ],
    );
    // Cross-system check mirroring the paper: Perlmutter's best CPU->GPU
    // speedup exceeds Crusher's on the shared matrices.
    let crusher =
        benchkit::gpu_1x1xpz_best_speedup(simgrid::MachineModel::crusher_gpu(), "s2D9pt2048");
    let perl = best
        .iter()
        .find(|(m, _)| *m == "s2D9pt2048")
        .map(|(_, s)| *s)
        .unwrap();
    println!("\ns2D9pt best CPU->GPU speedup: Perlmutter {perl:.2}x vs Crusher {crusher:.2}x");
    assert!(
        perl > crusher,
        "Perlmutter's GPU path must outperform Crusher's (paper §4.2.1)"
    );
}
