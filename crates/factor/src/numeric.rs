//! Left-looking supernodal numeric LU.

use ordering::SymbolicLU;
use sparse::dense::DenseMat;
use sparse::CsrMatrix;

/// Errors from the numeric factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorError {
    /// A diagonal pivot was (numerically) zero in the given supernode.
    SingularDiagonal { supernode: usize },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::SingularDiagonal { supernode } => {
                write!(
                    f,
                    "numerically singular diagonal block in supernode {supernode}"
                )
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Numeric data of one supernode. See the crate docs for the layout.
#[derive(Clone, Debug)]
pub struct Panel {
    /// `w × w` col-major: unit-lower `L(K,K)` below the diagonal, `U(K,K)`
    /// on/above it.
    pub dblock: Vec<f64>,
    /// `r × w` col-major `L(R_K, K)`; row order matches
    /// `SymbolicLU::rows_below(K)`.
    pub l_below: Vec<f64>,
    /// `w × r` col-major `U(K, R_K)`; column order matches
    /// `SymbolicLU::rows_below(K)`.
    pub u_right: Vec<f64>,
    /// `w × w` inverse of the unit-lower diagonal factor.
    pub dinv_l: Vec<f64>,
    /// `w × w` inverse of the upper diagonal factor.
    pub dinv_u: Vec<f64>,
}

/// The supernodal LU factors of a permuted matrix, together with the
/// symbolic structure they were computed for.
#[derive(Debug)]
pub struct LuFactors {
    sym: SymbolicLU,
    panels: Vec<Panel>,
}

impl LuFactors {
    /// Symbolic structure of the factors.
    pub fn sym(&self) -> &SymbolicLU {
        &self.sym
    }

    /// Numeric panel of supernode `k`.
    pub fn panel(&self, k: usize) -> &Panel {
        &self.panels[k]
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.sym.n()
    }

    /// Total bytes of numeric factor storage (panels only).
    pub fn factor_bytes(&self) -> usize {
        self.panels
            .iter()
            .map(|p| {
                8 * (p.dblock.len()
                    + p.l_below.len()
                    + p.u_right.len()
                    + p.dinv_l.len()
                    + p.dinv_u.len())
            })
            .sum()
    }
}

/// Factorize the permuted matrix `pa` over the given symbolic structure.
pub fn factorize_numeric(pa: &CsrMatrix, sym: SymbolicLU) -> Result<LuFactors, FactorError> {
    let n = sym.n();
    assert_eq!(pa.nrows(), n);
    let pat = pa.transpose(); // column access: pat.row_iter(j) yields (i, A(i,j))
    let nsup = sym.n_supernodes();
    let mut panels: Vec<Panel> = Vec::with_capacity(nsup);

    // Scatter map: global row index -> local position in the current panel
    // (0..w = diagonal rows, w..w+r = below rows). u32::MAX = absent.
    let mut map = vec![u32::MAX; n];

    for k in 0..nsup {
        let cols = sym.sup_cols(k);
        let (s, e) = (cols.start, cols.end);
        let w = e - s;
        let rows = sym.rows_below(k);
        let r = rows.len();

        for (off, m) in map[s..e].iter_mut().enumerate() {
            *m = off as u32;
        }
        for (p, &i) in rows.iter().enumerate() {
            map[i as usize] = (w + p) as u32;
        }

        // F: (w + r) × w working panel for column block K (L side + diag).
        // G: w × r working panel for the U row block right of the diagonal.
        let mut f = vec![0.0f64; (w + r) * w];
        let mut g = vec![0.0f64; w * r];

        // Scatter A.
        for j in s..e {
            let fcol = &mut f[(j - s) * (w + r)..(j - s + 1) * (w + r)];
            for (i, v) in pat.row_iter(j) {
                if i >= s {
                    let pos = map[i];
                    debug_assert_ne!(pos, u32::MAX, "A entry outside symbolic pattern");
                    fcol[pos as usize] = v;
                }
            }
            for (c, v) in pa.row_iter(j) {
                if c >= e {
                    let pos = map[c] as usize - w;
                    g[(j - s) + pos * w] = v;
                }
            }
        }

        // Left-looking updates from every earlier supernode I with a block
        // in row-block K (equivalently: U(I, cols(K)) ≠ 0).
        for &iu in sym.blocks_left(k) {
            let i = iu as usize;
            let icols = sym.sup_cols(i);
            let wi = icols.len();
            let irows = sym.rows_below(i);
            let ri = irows.len();
            let ip = &panels[i];
            // Row positions of I's structure: [lo, mid) are rows in [s, e)
            // (columns of K), [mid, ri) are rows ≥ e.
            let lo = irows.partition_point(|&x| (x as usize) < s);
            let mid = irows.partition_point(|&x| (x as usize) < e);
            debug_assert!(lo < mid, "blocks_left inconsistent with row structure");

            // F update: F(map[row], S_I[q] − s) −= Σ_t L_below(I)[p,t] · U_right(I)[t,q]
            // for p in lo..ri (rows ≥ s), q in lo..mid (cols of K in S_I).
            for q in lo..mid {
                let colk = irows[q] as usize - s;
                let fcol = &mut f[colk * (w + r)..(colk + 1) * (w + r)];
                let ucol = &ip.u_right[q * wi..(q + 1) * wi];
                for (t, &uv) in ucol.iter().enumerate() {
                    if uv == 0.0 {
                        continue;
                    }
                    let lcol = &ip.l_below[t * ri..(t + 1) * ri];
                    for p in lo..ri {
                        let pos = map[irows[p] as usize] as usize;
                        fcol[pos] -= lcol[p] * uv;
                    }
                }
            }

            // G update: G(row − s, map[col] − w) −= Σ_t L_below(I)[p,t] · U_right(I)[t,q]
            // for p in lo..mid (rows of K), q in mid..ri (cols ≥ e).
            for q in mid..ri {
                let colpos = map[irows[q] as usize] as usize - w;
                let gcol = &mut g[colpos * w..(colpos + 1) * w];
                let ucol = &ip.u_right[q * wi..(q + 1) * wi];
                for (t, &uv) in ucol.iter().enumerate() {
                    if uv == 0.0 {
                        continue;
                    }
                    let lcol = &ip.l_below[t * ri..(t + 1) * ri];
                    for p in lo..mid {
                        let rowk = irows[p] as usize - s;
                        gcol[rowk] -= lcol[p] * uv;
                    }
                }
            }
        }

        // Factor the diagonal block in place (Doolittle, no pivoting).
        // The top w × w of F is stored with leading dimension (w + r).
        let ld = w + r;
        for j in 0..w {
            let piv = f[j + j * ld];
            if piv.abs() < 1e-300 {
                return Err(FactorError::SingularDiagonal { supernode: k });
            }
            for i in j + 1..w {
                let l = f[i + j * ld] / piv;
                f[i + j * ld] = l;
                if l != 0.0 {
                    for c in j + 1..w {
                        f[i + c * ld] -= l * f[j + c * ld];
                    }
                }
            }
        }

        // L_below = F_below · U(K,K)⁻¹  (solve X·U = F_below column by column:
        // x_j = (f_j − Σ_{t<j} x_t · U(t,j)) / U(j,j)).
        let mut l_below = vec![0.0f64; r * w];
        for j in 0..w {
            // copy F rows w..w+r of column j
            for p in 0..r {
                l_below[p + j * r] = f[w + p + j * ld];
            }
            for t in 0..j {
                let u_tj = f[t + j * ld];
                if u_tj == 0.0 {
                    continue;
                }
                for p in 0..r {
                    l_below[p + j * r] -= l_below[p + t * r] * u_tj;
                }
            }
            let d = 1.0 / f[j + j * ld];
            for p in 0..r {
                l_below[p + j * r] *= d;
            }
        }

        // U_right = L(K,K)⁻¹ · G (unit-lower forward solve per column).
        let mut u_right = g;
        for q in 0..r {
            let col = &mut u_right[q * w..(q + 1) * w];
            for i in 1..w {
                let mut acc = col[i];
                for t in 0..i {
                    acc -= f[i + t * ld] * col[t];
                }
                col[i] = acc;
            }
        }

        // Extract dblock and the diagonal inverses.
        let mut dblock = vec![0.0f64; w * w];
        for j in 0..w {
            for i in 0..w {
                dblock[i + j * w] = f[i + j * ld];
            }
        }
        let mut lkk = DenseMat::identity(w);
        let mut ukk = DenseMat::zeros(w, w);
        for j in 0..w {
            for i in 0..w {
                let v = dblock[i + j * w];
                if i > j {
                    lkk.set(i, j, v);
                } else {
                    ukk.set(i, j, v);
                }
            }
        }
        let dinv_l = lkk
            .inverse()
            .ok_or(FactorError::SingularDiagonal { supernode: k })?;
        let dinv_u = ukk
            .inverse()
            .ok_or(FactorError::SingularDiagonal { supernode: k })?;

        panels.push(Panel {
            dblock,
            l_below,
            u_right,
            dinv_l: dinv_l.data().to_vec(),
            dinv_u: dinv_u.data().to_vec(),
        });

        // Reset the scatter map.
        map[s..e].fill(u32::MAX);
        for &i in rows {
            map[i as usize] = u32::MAX;
        }
    }

    Ok(LuFactors { sym, panels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ordering::SymbolicOptions;
    use sparse::gen;

    /// Reconstruct the dense L·U product from the panels and compare to the
    /// permuted matrix (small problems only).
    fn check_lu_reconstruction(a: &sparse::CsrMatrix, pz: usize) {
        let (nd, sym) = ordering::analyze(a, pz, &SymbolicOptions::default());
        let pa = a.permute_sym(&nd.perm);
        let n = pa.nrows();
        let lu = factorize_numeric(&pa, sym).expect("factorizes");
        let sym = lu.sym();
        // Build dense L and U.
        let mut l = vec![0.0; n * n];
        let mut u = vec![0.0; n * n];
        for k in 0..sym.n_supernodes() {
            let cols = sym.sup_cols(k);
            let (s, w) = (cols.start, cols.len());
            let rows = sym.rows_below(k);
            let p = lu.panel(k);
            for j in 0..w {
                for i in 0..w {
                    let v = p.dblock[i + j * w];
                    if i > j {
                        l[(s + i) + (s + j) * n] = v;
                    } else {
                        u[(s + i) + (s + j) * n] = v;
                    }
                }
                l[(s + j) + (s + j) * n] = 1.0;
                for (q, &gi) in rows.iter().enumerate() {
                    l[gi as usize + (s + j) * n] = p.l_below[q + j * rows.len()];
                    u[(s + j) + gi as usize * n] = p.u_right[j + q * w];
                }
            }
        }
        // Compare (L·U) to pa entrywise.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..n {
                    acc += l[i + t * n] * u[t + j * n];
                }
                let want = pa.get(i, j);
                assert!(
                    (acc - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "LU({i},{j}) = {acc}, A = {want}"
                );
            }
        }
    }

    #[test]
    fn reconstructs_poisson2d() {
        check_lu_reconstruction(&gen::poisson2d_5pt(6, 6), 2);
    }

    #[test]
    fn reconstructs_poisson3d() {
        check_lu_reconstruction(&gen::poisson3d_7pt(3, 3, 3), 1);
    }

    #[test]
    fn reconstructs_random_band() {
        check_lu_reconstruction(&gen::fusion_band(40, 4, 6, 9), 2);
    }

    #[test]
    fn reconstructs_chem() {
        check_lu_reconstruction(&gen::chem_cliques(30, 12, 6, 1), 1);
    }

    #[test]
    fn singular_matrix_reports_error() {
        // Explicit zero diagonal, no off-diagonal coupling in row 0.
        let mut coo = sparse::CooMatrix::new(3);
        coo.push(0, 0, 0.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        let a = coo.to_csr();
        let (nd, sym) = ordering::analyze(&a, 1, &SymbolicOptions::default());
        let pa = a.permute_sym(&nd.perm);
        let err = factorize_numeric(&pa, sym).unwrap_err();
        matches!(err, FactorError::SingularDiagonal { .. });
    }

    #[test]
    fn factor_bytes_positive() {
        let a = gen::poisson2d_5pt(5, 5);
        let (nd, sym) = ordering::analyze(&a, 1, &SymbolicOptions::default());
        let pa = a.permute_sym(&nd.perm);
        let lu = factorize_numeric(&pa, sym).unwrap();
        assert!(lu.factor_bytes() > 0);
        assert_eq!(lu.n(), 25);
    }
}
