//! Supernodal numeric LU factorization (SuperLU_DIST substitute).
//!
//! The paper's SpTRSV operates on the LU factors produced by SuperLU_DIST's
//! 3D factorization. This crate provides that substrate: a left-looking
//! supernodal LU without pivoting (the static-pivoting setting the paper
//! runs in — generators guarantee diagonal dominance), with precomputed
//! inverses of the diagonal blocks `L(K,K)⁻¹` and `U(K,K)⁻¹`, exactly the
//! form Eq. (1)/(2) of the paper assume.
//!
//! Storage per supernode `K` of width `w` with `r` below-diagonal rows:
//! * `dblock` — `w × w` dense block holding the unit-lower `L(K,K)` strictly
//!   below the diagonal and `U(K,K)` on and above it (LAPACK `getrf` style);
//! * `l_below` — `r × w` dense panel `L(R_K, K)` over the symbolic row set;
//! * `u_right` — `w × r` dense panel `U(K, R_K)` (pattern symmetry makes the
//!   column set equal to the row set, the paper's equal-column-length
//!   assumption);
//! * `dinv_l`, `dinv_u` — inverses of the unit-lower and upper diagonal
//!   factors.

mod numeric;
mod solve;

pub use numeric::{factorize_numeric, FactorError, LuFactors, Panel};

use ordering::{NdResult, SymbolicOptions};
use sparse::CsrMatrix;

/// A fully analyzed and factorized matrix: ND permutation, separator tree,
/// symbolic structure, and numeric LU panels (all in the permuted space).
pub struct Factorized {
    /// Nested-dissection result (permutation + separator tree).
    pub nd: NdResult,
    /// The permuted matrix `P A Pᵀ` the factors refer to.
    pub pa: CsrMatrix,
    /// Numeric factors plus embedded symbolic structure.
    pub lu: LuFactors,
}

impl Factorized {
    /// Solve `A x = b` (original ordering) for `nrhs` column-major RHSs.
    pub fn solve(&self, b: &[f64], nrhs: usize) -> Vec<f64> {
        let n = self.pa.nrows();
        assert_eq!(b.len(), n * nrhs);
        let mut pb = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                pb[r * n + i] = b[r * n + self.nd.perm[i]];
            }
        }
        self.lu.solve_l(&mut pb, nrhs);
        self.lu.solve_u(&mut pb, nrhs);
        let mut x = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                x[r * n + self.nd.perm[i]] = pb[r * n + i];
            }
        }
        x
    }
}

/// Full pipeline: nested dissection (with the top `log2(pz)` levels forced
/// binary), symbolic analysis, numeric factorization.
pub fn factorize(
    a: &CsrMatrix,
    pz: usize,
    opts: &SymbolicOptions,
) -> Result<Factorized, FactorError> {
    let (nd, sym) = ordering::analyze(a, pz, opts);
    let pa = a.permute_sym(&nd.perm);
    let lu = factorize_numeric(&pa, sym)?;
    Ok(Factorized { nd, pa, lu })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn pipeline_solves_poisson() {
        let a = gen::poisson2d_9pt(12, 12);
        let f = factorize(&a, 4, &SymbolicOptions::default()).expect("factorizes");
        let b = gen::standard_rhs(a.nrows(), 3);
        let x = f.solve(&b, 3);
        assert!(sparse::rel_residual_inf(&a, &x, &b, 3) < 1e-10);
    }
}
