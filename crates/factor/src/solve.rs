//! Sequential reference triangular solves on the supernodal factors.
//!
//! These implement Eq. (1) and Eq. (2) of the paper directly (with the
//! precomputed diagonal inverses) and serve as the ground truth every
//! distributed algorithm is verified against.

use crate::numeric::LuFactors;
use sparse::dense::gemv;

impl LuFactors {
    /// In-place lower-triangular solve `L y = b` for `nrhs` column-major
    /// right-hand sides (`b` is overwritten with `y`).
    pub fn solve_l(&self, b: &mut [f64], nrhs: usize) {
        let n = self.n();
        assert_eq!(b.len(), n * nrhs);
        let sym = self.sym();
        let mut yk = Vec::new();
        for k in 0..sym.n_supernodes() {
            let cols = sym.sup_cols(k);
            let (s, w) = (cols.start, cols.len());
            let rows = sym.rows_below(k);
            let p = self.panel(k);
            // y(K) = L(K,K)⁻¹ · b(K)
            yk.clear();
            yk.resize(w * nrhs, 0.0);
            for r in 0..nrhs {
                gemv(
                    1.0,
                    &p.dinv_l,
                    w,
                    w,
                    &b[r * n + s..r * n + s + w],
                    &mut yk[r * w..(r + 1) * w],
                );
            }
            for r in 0..nrhs {
                b[r * n + s..r * n + s + w].copy_from_slice(&yk[r * w..(r + 1) * w]);
            }
            // b(R_K) −= L(R_K, K) · y(K)
            let ri = rows.len();
            for r in 0..nrhs {
                for j in 0..w {
                    let yv = yk[r * w + j];
                    if yv == 0.0 {
                        continue;
                    }
                    let lcol = &p.l_below[j * ri..(j + 1) * ri];
                    for (q, &gi) in rows.iter().enumerate() {
                        b[r * n + gi as usize] -= lcol[q] * yv;
                    }
                }
            }
        }
    }

    /// In-place upper-triangular solve `U x = y` for `nrhs` column-major
    /// right-hand sides (`b` is overwritten with `x`).
    pub fn solve_u(&self, b: &mut [f64], nrhs: usize) {
        let n = self.n();
        assert_eq!(b.len(), n * nrhs);
        let sym = self.sym();
        let mut acc = Vec::new();
        for k in (0..sym.n_supernodes()).rev() {
            let cols = sym.sup_cols(k);
            let (s, w) = (cols.start, cols.len());
            let rows = sym.rows_below(k);
            let p = self.panel(k);
            // t = y(K) − U(K, R_K) · x(R_K)
            acc.clear();
            acc.resize(w * nrhs, 0.0);
            for r in 0..nrhs {
                acc[r * w..(r + 1) * w].copy_from_slice(&b[r * n + s..r * n + s + w]);
            }
            for (q, &gi) in rows.iter().enumerate() {
                let ucol = &p.u_right[q * w..(q + 1) * w];
                for r in 0..nrhs {
                    let xv = b[r * n + gi as usize];
                    if xv == 0.0 {
                        continue;
                    }
                    for i in 0..w {
                        acc[r * w + i] -= ucol[i] * xv;
                    }
                }
            }
            // x(K) = U(K,K)⁻¹ · t
            for r in 0..nrhs {
                let dst = &mut b[r * n + s..r * n + s + w];
                dst.iter_mut().for_each(|v| *v = 0.0);
                gemv(1.0, &p.dinv_u, w, w, &acc[r * w..(r + 1) * w], dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::factorize;
    use ordering::SymbolicOptions;
    use sparse::gen;

    fn roundtrip(a: &sparse::CsrMatrix, pz: usize, nrhs: usize, tol: f64) {
        let f = factorize(a, pz, &SymbolicOptions::default()).expect("factorizes");
        let b = gen::standard_rhs(a.nrows(), nrhs);
        let x = f.solve(&b, nrhs);
        let res = sparse::rel_residual_inf(a, &x, &b, nrhs);
        assert!(res < tol, "residual {res} too large");
    }

    #[test]
    fn poisson2d_single_rhs() {
        roundtrip(&gen::poisson2d_9pt(10, 10), 1, 1, 1e-11);
    }

    #[test]
    fn poisson2d_multi_rhs() {
        roundtrip(&gen::poisson2d_9pt(9, 7), 2, 5, 1e-11);
    }

    #[test]
    fn poisson3d() {
        roundtrip(&gen::poisson3d_7pt(4, 4, 4), 4, 2, 1e-11);
    }

    #[test]
    fn kkt_matrix() {
        roundtrip(&gen::kkt3d(3, 3, 3), 2, 1, 1e-11);
    }

    #[test]
    fn elasticity_matrix() {
        roundtrip(&gen::elasticity3d(3, 3, 2, 5), 2, 3, 1e-11);
    }

    #[test]
    fn wave_matrix() {
        roundtrip(&gen::wave3d_27pt(4, 3, 3), 2, 1, 1e-11);
    }

    #[test]
    fn chem_matrix() {
        roundtrip(&gen::chem_cliques(80, 40, 10, 2), 2, 2, 1e-10);
    }

    #[test]
    fn fusion_matrix() {
        roundtrip(&gen::fusion_band(120, 5, 15, 3), 4, 1, 1e-10);
    }

    #[test]
    fn tiny_supernodes_still_solve() {
        let a = gen::poisson2d_5pt(8, 8);
        let (nd, sym) = ordering::analyze(
            &a,
            2,
            &SymbolicOptions {
                max_supernode: 1,
                relax_size: 0,
            },
        );
        let pa = a.permute_sym(&nd.perm);
        let lu = crate::factorize_numeric(&pa, sym).unwrap();
        let b = gen::standard_rhs(64, 1);
        // permute
        let mut pb = vec![0.0; 64];
        for i in 0..64 {
            pb[i] = b[nd.perm[i]];
        }
        lu.solve_l(&mut pb, 1);
        lu.solve_u(&mut pb, 1);
        let mut x = vec![0.0; 64];
        for i in 0..64 {
            x[nd.perm[i]] = pb[i];
        }
        assert!(sparse::rel_residual_inf(&a, &x, &b, 1) < 1e-11);
    }
}
