//! Stress tests of the supernodal factorization against a dense reference.

use ordering::SymbolicOptions;
use sparse::dense::DenseMat;
use sparse::gen;

/// Dense LU solve (partial pivoting via DenseMat::inverse) as ground truth.
fn dense_solve(a: &sparse::CsrMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let mut dm = DenseMat::zeros(n, n);
    for i in 0..n {
        for (j, v) in a.row_iter(i) {
            dm.set(i, j, v);
        }
    }
    let inv = dm.inverse().expect("nonsingular");
    let mut x = vec![0.0; n];
    sparse::dense::gemv(1.0, inv.data(), n, n, b, &mut x);
    x
}

#[test]
fn matches_dense_inverse_on_every_family() {
    for m in gen::table1_suite(gen::Scale::Tiny) {
        let a = &m.matrix;
        let f = lufactor::factorize(a, 2, &SymbolicOptions::default()).unwrap();
        let b = gen::standard_rhs(a.nrows(), 1);
        let want = dense_solve(a, &b);
        let got = f.solve(&b, 1);
        let diff = sparse::max_abs_diff(&got, &want);
        assert!(diff < 1e-8, "{}: diff {diff}", m.name);
    }
}

#[test]
fn supernode_width_sweep() {
    // The same system must solve identically for every panel-width cap.
    let a = gen::poisson2d_9pt(12, 12);
    let b = gen::standard_rhs(a.nrows(), 2);
    let reference = {
        let f = lufactor::factorize(&a, 1, &SymbolicOptions::default()).unwrap();
        f.solve(&b, 2)
    };
    for max_supernode in [1usize, 2, 5, 17, 200] {
        for relax_size in [0usize, 4, 32] {
            let opts = SymbolicOptions {
                max_supernode,
                relax_size,
            };
            let f = lufactor::factorize(&a, 2, &opts).unwrap();
            let x = f.solve(&b, 2);
            let diff = sparse::max_abs_diff(&x, &reference);
            assert!(
                diff < 1e-10,
                "max_supernode={max_supernode} relax={relax_size}: diff {diff}"
            );
        }
    }
}

#[test]
fn relaxation_reduces_supernode_count() {
    let a = gen::poisson2d_9pt(32, 32);
    let strict = ordering::analyze(
        &a,
        1,
        &SymbolicOptions {
            relax_size: 0,
            ..SymbolicOptions::default()
        },
    )
    .1;
    let relaxed = ordering::analyze(&a, 1, &SymbolicOptions::default()).1;
    assert!(
        relaxed.n_supernodes() < strict.n_supernodes() / 2,
        "relaxation must merge small supernodes: {} vs {}",
        relaxed.n_supernodes(),
        strict.n_supernodes()
    );
    // At the price of bounded extra (explicit zero) storage.
    assert!(relaxed.nnz_l() < 3 * strict.nnz_l());
}

#[test]
fn wide_rhs_block() {
    let a = gen::poisson3d_7pt(4, 4, 3);
    let f = lufactor::factorize(&a, 1, &SymbolicOptions::default()).unwrap();
    let nrhs = 50;
    let b = gen::standard_rhs(a.nrows(), nrhs);
    let x = f.solve(&b, nrhs);
    assert!(sparse::rel_residual_inf(&a, &x, &b, nrhs) < 1e-10);
}

#[test]
fn deep_forced_tree_on_small_matrix() {
    // Forcing far more tree levels than the matrix can use must still work
    // (empty layout nodes on some paths).
    let a = gen::poisson2d_5pt(6, 6);
    let f = lufactor::factorize(&a, 16, &SymbolicOptions::default()).unwrap();
    let b = gen::standard_rhs(36, 1);
    let x = f.solve(&b, 1);
    assert!(sparse::rel_residual_inf(&a, &x, &b, 1) < 1e-10);
}
