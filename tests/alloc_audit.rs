//! Steady-state allocation audit.
//!
//! The solve hot paths are bracketed by [`sptrsv::audit::pass_scope`]
//! regions (the pass-interpreter loop and the single-GPU column sweeps).
//! A counting global allocator reports every heap allocation made by a
//! thread while inside such a region; after one warm-up solve — which is
//! allowed to grow arenas, ledger slots, and interpreter scratch — a
//! second solve of the same system must perform **zero** heap allocations
//! inside the audited regions, for all four solver variants.
//!
//! This is the enforcement teeth behind the zero-copy/arena design: any
//! regression that sneaks a `Vec` or `HashMap` insert back into the
//! steady-state loop fails here with a count, not a silent slowdown.

use lufactor::factorize;
use ordering::SymbolicOptions;
use simgrid::MachineModel;
use sparse::gen;
use sptrsv::{
    Algorithm, Arch, BatchPolicy, ExecutorKind, QueueFullPolicy, ServiceConfig, Solver3d,
    SolverConfig, SolverService,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// The audit counter is process-global, so the audit tests must not run
/// concurrently with each other.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counting hook allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        sptrsv::audit::on_alloc();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        sptrsv::audit::on_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        sptrsv::audit::on_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn audited_allocs_on_second_solve(
    name: &str,
    algorithm: Algorithm,
    arch: Arch,
    executor: ExecutorKind,
    px: usize,
    py: usize,
    pz: usize,
) -> u64 {
    let a = gen::poisson2d_9pt(12, 12);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).unwrap());
    let nrhs = 2;
    let b = gen::standard_rhs(a.nrows(), nrhs);
    let machine = match arch {
        Arch::Cpu => MachineModel::cori_haswell(),
        Arch::Gpu => MachineModel::perlmutter_gpu(),
    };
    let cfg = SolverConfig {
        px,
        py,
        pz,
        nrhs,
        algorithm,
        arch,
        machine,
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor,
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);
    let want = f.solve(&b, nrhs);

    // Warm-up: arenas size themselves, ledgers build their slot maps,
    // interpreter scratch grows to the high-water mark.
    let warm = solver.solve(&b, nrhs);
    assert!(
        sparse::max_abs_diff(&warm.x, &want) < 1e-11,
        "{name}: warm-up solve wrong"
    );
    let _warmup = sptrsv::audit::take_scoped_allocs();

    // Steady state: same plan, same schedule, reused state.
    let out = solver.solve(&b, nrhs);
    assert!(
        sparse::max_abs_diff(&out.x, &want) < 1e-11,
        "{name}: steady-state solve wrong"
    );
    sptrsv::audit::take_scoped_allocs()
}

#[test]
fn steady_state_solves_never_allocate_in_audited_regions() {
    let _serial = AUDIT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // Liveness check first: the hook must actually count an in-scope
    // allocation, or the zero assertions below would pass vacuously.
    {
        let _ = sptrsv::audit::take_scoped_allocs();
        let scope = sptrsv::audit::pass_scope();
        let v: Vec<u64> = Vec::with_capacity(64);
        std::hint::black_box(&v);
        drop(v);
        drop(scope);
        assert!(
            sptrsv::audit::take_scoped_allocs() >= 1,
            "counting allocator hook is not live"
        );
    }
    use ExecutorKind::{Level, Tree};
    for (name, algorithm, arch, executor, px, py, pz) in [
        ("new3d/cpu/tree", Algorithm::New3d, Arch::Cpu, Tree, 2, 2, 2),
        (
            "new3d/cpu/level",
            Algorithm::New3d,
            Arch::Cpu,
            Level,
            2,
            2,
            2,
        ),
        (
            "baseline3d/cpu/tree",
            Algorithm::Baseline3d,
            Arch::Cpu,
            Tree,
            2,
            2,
            2,
        ),
        (
            "baseline3d/cpu/level",
            Algorithm::Baseline3d,
            Arch::Cpu,
            Level,
            2,
            2,
            2,
        ),
        (
            "new3d/gpu-multi/tree",
            Algorithm::New3d,
            Arch::Gpu,
            Tree,
            2,
            2,
            2,
        ),
        (
            "new3d/gpu-multi/level",
            Algorithm::New3d,
            Arch::Gpu,
            Level,
            2,
            2,
            2,
        ),
        (
            "new3d/gpu-single/tree",
            Algorithm::New3d,
            Arch::Gpu,
            Tree,
            1,
            1,
            2,
        ),
        // Pz = 4 exercises multi-round trimmed allreduces: the pack slots
        // are pre-sized inside `sparse_allreduce`/`naive_allreduce`, so
        // the audited (un)packing must stay allocation-free across rounds
        // under the live-trimmed layouts too (the pre-PR9 `unpack_set`
        // heap-allocated brand-new broadcast slots mid-solve here).
        (
            "new3d/cpu/tree/pz4",
            Algorithm::New3d,
            Arch::Cpu,
            Tree,
            2,
            1,
            4,
        ),
        (
            "new3d-naive/cpu/tree/pz4",
            Algorithm::New3dNaiveAllreduce,
            Arch::Cpu,
            Tree,
            2,
            1,
            4,
        ),
        (
            "baseline3d/cpu/tree/pz4",
            Algorithm::Baseline3d,
            Arch::Cpu,
            Tree,
            2,
            1,
            4,
        ),
    ] {
        let n = audited_allocs_on_second_solve(name, algorithm, arch, executor, px, py, pz);
        assert_eq!(
            n, 0,
            "{name}: {n} heap allocations inside audited steady-state regions \
             on the second solve (expected none)"
        );
    }
}

/// Steady-state serving: after one warm-up batch, every further batch
/// through a [`SolverService`] — submit copy-in, mux, demux, collect
/// copy-out — performs zero heap allocations inside the audited regions.
/// Batches are deterministically width-4 (width-triggered flushes), so
/// the warm-up covers the exact steady-state shape.
#[test]
fn steady_state_serving_never_allocates_in_audited_regions() {
    let _serial = AUDIT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let a = gen::poisson2d_9pt(12, 12);
    let n = a.nrows();
    let f = Arc::new(factorize(&a, 2, &SymbolicOptions::default()).unwrap());
    let cfg = SolverConfig {
        px: 2,
        py: 2,
        pz: 2,
        nrhs: 1,
        algorithm: Algorithm::New3d,
        arch: Arch::Cpu,
        machine: MachineModel::cori_haswell(),
        chaos_seed: 0,
        fault: Default::default(),
        backend: Default::default(),
        executor: Default::default(),
    };
    let solver = Solver3d::new(Arc::clone(&f), cfg);

    // Bit-exact references: each column solved standalone on the same plan.
    let b = gen::standard_rhs(n, 4);
    let mut want = vec![0.0; 4 * n];
    for r in 0..4 {
        let out = solver.solve(&b[r * n..(r + 1) * n], 1);
        want[r * n..(r + 1) * n].copy_from_slice(&out.x);
    }

    let svc = SolverService::start(
        solver,
        ServiceConfig {
            // A long window makes every flush width-triggered at exactly 4.
            batch: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_secs(10),
            },
            queue_capacity: 16,
            max_request_width: 1,
            on_full: QueueFullPolicy::Block,
        },
    );
    let round = |svc: &SolverService| {
        let tickets: Vec<_> = (0..4)
            .map(|r| svc.submit(&b[r * n..(r + 1) * n], 1).unwrap())
            .collect();
        for (r, t) in tickets.into_iter().enumerate() {
            assert_eq!(
                t.wait(),
                &want[r * n..(r + 1) * n],
                "serving audit: request {r} not bit-identical"
            );
        }
    };

    // Warm-up batch: service scratch and solver arenas hit high water.
    round(&svc);
    let _warmup = sptrsv::audit::take_scoped_allocs();

    // Steady state: three more batches, all allocation-free in scope.
    // Live observability reads (scrape-style metrics snapshot, span
    // profile, flight-recorder dump) run between batches: they allocate
    // on the reader's thread — outside any audited region — and must not
    // leak allocations into the recorder/metric update paths they share
    // state with.
    for _ in 0..3 {
        round(&svc);
        std::hint::black_box(svc.metrics().to_openmetrics());
        std::hint::black_box(svc.span_profile().to_collapsed());
        std::hint::black_box(svc.dump_flight_recorder());
    }
    let scoped = sptrsv::audit::take_scoped_allocs();
    assert_eq!(
        scoped, 0,
        "serving steady state: {scoped} heap allocations inside audited \
         regions across three batches (expected none)"
    );
    svc.shutdown();
}

/// The always-on observability primitives are themselves allocation-free
/// once warm: recording spans into a flight recorder (through both the
/// fill and wraparound regimes) and updating pre-touched counters and
/// log2 latency histograms never touch the heap.
#[test]
fn recorder_and_live_metric_updates_never_allocate() {
    use simgrid::{latency_buckets, Category, FlightRecorder, Metrics, TraceEvent};
    let _serial = AUDIT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut recorder = FlightRecorder::new(64);
    let mut metrics = Metrics::new();
    metrics.touch_counter("service.requests");
    metrics.touch_histogram("service.solve_seconds", latency_buckets());
    let _ = sptrsv::audit::take_scoped_allocs();
    {
        let _scope = sptrsv::audit::pass_scope();
        for i in 0..1000u64 {
            let t = i as f64 * 1e-3;
            recorder.record(TraceEvent::compute(t, t + 5e-4, Category::Flop));
            metrics.inc("service.requests", 1);
            metrics.observe(
                "service.solve_seconds",
                latency_buckets(),
                1e-6 * (i + 1) as f64,
            );
        }
    }
    let scoped = sptrsv::audit::take_scoped_allocs();
    assert_eq!(
        scoped, 0,
        "observability steady state: {scoped} heap allocations recording \
         1000 spans and metric updates (expected none)"
    );
    // The loop really exercised both regimes and the series really moved.
    assert_eq!(recorder.len(), 64);
    assert_eq!(recorder.overwritten(), 1000 - 64);
    assert_eq!(metrics.counter("service.requests"), 1000);
    assert_eq!(
        metrics.histogram("service.solve_seconds").unwrap().count(),
        1000
    );
}
