//! MatrixMarket fixture round-trip: the `.mtx` path into the solver is
//! lossless.
//!
//! A committed fixture (an R-MAT power-law matrix, the kind of irregular
//! input the level executor exists for) is parsed to CSR, re-emitted
//! through the writer, and parsed again — the two parses must be
//! **bit-identical** (the writer prints 17 significant digits, enough to
//! round-trip every finite `f64` exactly). The parsed fixture then runs
//! through the distributed solver under both execution engines to pin the
//! full file-to-solution path.
//!
//! Regenerate the fixture after an intentional generator change with
//! `UPDATE_GOLDEN=1 cargo test --test mtx_roundtrip` and commit the diff.

mod common;

use simgrid::MachineModel;
use sparse::io::{read_matrix_market, read_matrix_market_file, write_matrix_market};
use sptrsv_repro::prelude::*;
use std::path::Path;
use std::sync::Arc;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/rmat_s6.mtx");

fn fixture_matrix() -> sparse::CsrMatrix {
    gen::rmat(6, 5, 17)
}

#[test]
fn fixture_roundtrips_bit_identically() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &fixture_matrix()).expect("serialize fixture");
        std::fs::write(FIXTURE, &buf).expect("write fixture");
        eprintln!("updated {FIXTURE}");
        return;
    }

    let first = read_matrix_market_file(Path::new(FIXTURE))
        .unwrap_or_else(|e| panic!("cannot parse {FIXTURE}: {e}\nrun with UPDATE_GOLDEN=1 once"));
    assert_eq!(
        first,
        fixture_matrix(),
        "fixture drifted from gen::rmat(6, 5, 17); regenerate with UPDATE_GOLDEN=1"
    );

    // parse → re-emit → parse must be the identity, down to the bits.
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &first).expect("re-emit");
    let second = read_matrix_market(&buf[..]).expect("re-parse");
    assert_eq!(first.nrows(), second.nrows());
    assert_eq!(first.nnz(), second.nnz());
    for i in 0..first.nrows() {
        for ((j1, v1), (j2, v2)) in first.row_iter(i).zip(second.row_iter(i)) {
            assert_eq!(j1, j2, "row {i}: pattern drifted through the writer");
            assert_eq!(
                v1.to_bits(),
                v2.to_bits(),
                "({i},{j1}): value {v1:e} did not round-trip bit-identically"
            );
        }
    }
}

/// The parsed fixture solves correctly under both execution engines, and
/// the engines agree bitwise — the end-to-end `.mtx` → distributed-solve
/// path honored by `sptrsv3d --matrix`.
#[test]
fn fixture_solves_under_both_engines() {
    let a = read_matrix_market_file(Path::new(FIXTURE))
        .unwrap_or_else(|e| panic!("cannot parse {FIXTURE}: {e}\nrun with UPDATE_GOLDEN=1 once"));
    let (pz, nrhs) = (2, 2);
    let f = Arc::new(factorize(&a, pz, &SymbolicOptions::default()).expect("factorize"));
    let b = gen::standard_rhs(a.nrows(), nrhs);
    let want = f.solve(&b, nrhs);

    let run = |executor| {
        let cfg = SolverConfig {
            px: 2,
            py: 2,
            pz,
            nrhs,
            algorithm: Algorithm::New3d,
            arch: Arch::Cpu,
            machine: MachineModel::cori_haswell(),
            chaos_seed: 0,
            fault: Default::default(),
            backend: common::backend(),
            executor,
        };
        solve_distributed(&f, &b, &cfg)
    };
    let tree = run(ExecutorKind::Tree);
    let level = run(ExecutorKind::Level);
    assert!(sparse::max_abs_diff(&tree.x, &want) < 1e-9);
    assert!(
        tree.x == level.x,
        "engines disagree on the .mtx fixture: max |diff| {:e}",
        sparse::max_abs_diff(&tree.x, &level.x)
    );
}
